//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this dependency-free (apart from the vendored
//! `rand`) implementation of the subset of the proptest 1.x API used by
//! the MIB test suite: the [`Strategy`] trait with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`collection::vec`],
//! [`test_runner::ProptestConfig`], and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from upstream: cases are generated from a fixed
//! deterministic seed per case index, and failing cases are *not*
//! shrunk — the failing input is reported as generated.

#![forbid(unsafe_code)]
// Vendored API stand-in: exempt from the repository pedantic lint pass.
#![allow(clippy::pedantic)]

/// Strategy combinators and range/tuple strategy implementations.
pub mod strategy {
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// A source of random values of an associated type.
    ///
    /// Unlike upstream proptest there is no value tree / shrinking; a
    /// strategy simply generates a value from the per-case RNG.
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `func`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, func: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, func }
        }

        /// Generates a value, then generates from the strategy `func`
        /// returns for it (dependent generation).
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, func: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { source: self, func }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        func: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.func)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        func: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            let inner = (self.func)(self.source.generate(rng));
            inner.generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.rng.gen_range(self.clone())
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut TestRng) -> f32 {
            rng.rng.gen_range(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s whose length is drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors of `element` values with a length in `size`.
    /// A degenerate (empty) size range always produces empty vectors.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start >= self.size.end {
                self.size.start
            } else {
                rng.rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner configuration and the per-case RNG.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases each property test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic per-case RNG handed to strategies.
    pub struct TestRng {
        pub(crate) rng: StdRng,
    }

    impl TestRng {
        /// RNG for case number `case` of a test named `name` — stable
        /// across runs so failures are reproducible.
        pub fn for_case(name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100000001b3);
            }
            TestRng {
                rng: StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x5bd1e995)),
            }
        }
    }

    /// Error carried out of a failing property body by `prop_assert!`.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: String) -> Self {
            TestCaseError(msg)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests. Each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut proptest_rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut proptest_rng,
                        );
                    )*
                    let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("proptest case {case} failed: {e}");
                    }
                }
            }
        )*
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// Asserts a condition inside a property body, failing the case (with
/// an optional formatted message) rather than panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Asserts two expressions are unequal inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}

/// Re-exported so `use proptest::prelude::*` call sites can also name
/// the config type at the crate root, as upstream allows.
pub use test_runner::ProptestConfig;

#[allow(unused_imports)]
use strategy::Strategy as _;

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn map_and_flat_map_compose(n in 1usize..8) {
            let strat = (0usize..n).prop_map(|v| v * 2);
            let mut rng = crate::test_runner::TestRng::for_case("inner", 0);
            let v = strat.generate(&mut rng);
            prop_assert!(v % 2 == 0);
            prop_assert!(v < 2 * n);
        }

        #[test]
        fn vec_lengths_respect_range(v in collection::vec(0i32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for x in &v {
                prop_assert!((0..5).contains(x));
            }
        }

        #[test]
        fn tuples_generate_componentwise(t in (0u32..4, -1.0f64..1.0)) {
            prop_assert!(t.0 < 4);
            prop_assert!(t.1 >= -1.0 && t.1 < 1.0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let strat = collection::vec(0u64..1000, 1..20);
        let a = strat.generate(&mut crate::test_runner::TestRng::for_case("d", 3));
        let b = strat.generate(&mut crate::test_runner::TestRng::for_case("d", 3));
        assert_eq!(a, b);
    }
}
