//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this minimal, dependency-free implementation of the
//! subset of the rand 0.8 API used by the MIB crates: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`] / [`Rng::gen_range`] /
//! [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a
//! high-quality, deterministic stream, though *not* bit-compatible with
//! upstream `StdRng` (ChaCha12). Every consumer in this workspace only
//! relies on per-seed determinism, not on the exact upstream stream.

#![forbid(unsafe_code)]
// Vendored API stand-in: exempt from the repository pedantic lint pass.
#![allow(clippy::pedantic)]

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of pseudo-random `u64`s plus derived helpers.
pub trait Rng {
    /// Returns the next raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` from its standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`; integers uniform over the type).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

/// Seeding interface: construct a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled from their "standard" distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value of type `T` can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_range_impls!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u: f64 = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        let u: f64 = f64::sample(rng);
        lo + u * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: Rng>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        let u: f32 = f32::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ with SplitMix64
    /// seeding. Deterministic per seed; not the upstream ChaCha12 stream.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Random-order operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

/// Prelude matching `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f = rng.gen_range(-3.0..5.0);
            assert!((-3.0..5.0).contains(&f));
            let i: usize = rng.gen_range(2..9);
            assert!((2..9).contains(&i));
            let k: i64 = rng.gen_range(-4..=4);
            assert!((-4..=4).contains(&k));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
