//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this dependency-free implementation of the subset
//! of the criterion 0.5 API used by `crates/bench`: [`Criterion`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Behavior: under `cargo bench` (cargo passes `--bench`) each benchmark
//! is measured with a warm-up followed by adaptively sized timing batches
//! and reported as median ns/iter on stdout. Under `cargo test` (no
//! `--bench` flag) each benchmark body runs exactly once as a smoke test
//! so the suite stays fast. An optional positional argument filters
//! benchmarks by substring, as upstream does.

#![forbid(unsafe_code)]
// Vendored API stand-in: exempt from the repository pedantic lint pass.
#![allow(clippy::pedantic)]

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost. The stub times each routine
/// invocation individually, so the variants are equivalent; the type
/// exists for API compatibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state: upstream batches many per allocation.
    SmallInput,
    /// Large per-iteration state: upstream batches few.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Re-export of the standard black box, for call sites that use
/// `criterion::black_box` rather than `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark registry/driver, configured from the command line.
pub struct Criterion {
    measure: bool,
    filter: Option<String>,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measure: false,
            filter: None,
            measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Reads `--bench` (measure mode) and a positional substring filter
    /// from `std::env::args`, mirroring upstream's entry point.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--bench" => self.measure = true,
                "--test" => self.measure = false,
                // Harness flags cargo may forward; all ignored.
                "--nocapture" | "--quiet" | "-q" | "--exact" | "--ignored" => {}
                "--measurement-time" => {
                    if let Some(v) = args.next() {
                        if let Ok(secs) = v.parse::<f64>() {
                            self.measurement_time = Duration::from_secs_f64(secs);
                        }
                    }
                }
                other => {
                    if !other.starts_with('-') && self.filter.is_none() {
                        self.filter = Some(other.to_string());
                    }
                }
            }
        }
        self
    }

    /// Overrides the per-benchmark measurement budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            measure: self.measure,
            budget: self.measurement_time,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(id);
        self
    }
}

/// Passed to each benchmark closure; times the routine it is given.
pub struct Bencher {
    measure: bool,
    budget: Duration,
    samples: Vec<f64>,
}

impl Bencher {
    /// Benchmarks `routine`, timing repeated calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if !self.measure {
            std::hint::black_box(routine());
            return;
        }
        // Warm-up and calibration: how many calls fit in ~1/10 budget?
        let t0 = Instant::now();
        let mut calib = 0u64;
        while t0.elapsed() < self.budget.mul_f64(0.1) {
            std::hint::black_box(routine());
            calib += 1;
        }
        let per_call = t0.elapsed().as_secs_f64() / calib.max(1) as f64;
        let batch =
            ((self.budget.as_secs_f64() * 0.09 / per_call.max(1e-9)) as u64).clamp(1, 1 << 20);
        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline || self.samples.len() < 5 {
            let s = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.samples.push(s.elapsed().as_secs_f64() / batch as f64);
            if self.samples.len() >= 200 {
                break;
            }
        }
    }

    /// Benchmarks `routine` on fresh state from `setup`; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        if !self.measure {
            std::hint::black_box(routine(setup()));
            return;
        }
        // Warm-up.
        for _ in 0..3 {
            std::hint::black_box(routine(setup()));
        }
        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline || self.samples.len() < 5 {
            let input = setup();
            let s = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(s.elapsed().as_secs_f64());
            if self.samples.len() >= 5000 {
                break;
            }
        }
    }

    /// Like [`Bencher::iter_batched`]; the stub does not distinguish
    /// by-ref setup reuse.
    pub fn iter_batched_ref<I, O, S: FnMut() -> I, R: FnMut(&mut I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        self.iter_batched(setup_wrapper(&mut setup), |mut i| routine(&mut i), _size);

        fn setup_wrapper<'a, I, S: FnMut() -> I>(s: &'a mut S) -> impl FnMut() -> I + 'a {
            move || s()
        }
    }

    fn report(&mut self, id: &str) {
        if !self.measure {
            println!("{id:<48} ok (smoke)");
            return;
        }
        if self.samples.is_empty() {
            println!("{id:<48} no samples");
            return;
        }
        self.samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let pick = |q: f64| self.samples[((self.samples.len() - 1) as f64 * q) as usize];
        let (lo, med, hi) = (pick(0.05), pick(0.5), pick(0.95));
        println!(
            "{id:<48} time: [{} {} {}]",
            fmt_time(lo),
            fmt_time(med),
            fmt_time(hi)
        );
        self.samples.clear();
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Groups benchmark functions into one runnable set.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Entry point running one or more [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_each_routine_once() {
        let mut calls = 0;
        let mut c = Criterion::default(); // measure = false
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut calls = 0;
        let mut c = Criterion {
            filter: Some("yes".into()),
            ..Criterion::default()
        };
        c.bench_function("no/skip", |b| b.iter(|| calls += 1));
        c.bench_function("yes/run", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn measure_mode_collects_samples() {
        let mut c = Criterion {
            measure: true,
            filter: None,
            measurement_time: Duration::from_millis(20),
        };
        c.bench_function("tiny", |b| b.iter(|| std::hint::black_box(3u64.pow(7))));
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1.0f64; 64],
                |v| v.iter().sum::<f64>(),
                BatchSize::SmallInput,
            )
        });
    }
}
