//! Closed-loop model predictive control — the latency-critical domain the
//! paper motivates with millisecond sampling periods.
//!
//! Each control step re-solves the MPC QP from the measured state (a
//! bounds-only parametric update), applies the first input to the plant,
//! and advances. The deterministic per-solve cycle count of the MIB
//! machine is exactly what guarantees "the control command is applied
//! before the next sensor sample".
//!
//! ```sh
//! cargo run --release --example mpc_closed_loop
//! ```

use mib::problems::mpc;
use mib::qp::{Settings, Solver};
use mib::sparse::vector::norm2;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let inst = mpc(6, 3, 12, 77);
    let settings = Settings {
        eps_abs: 1e-4,
        eps_rel: 1e-4,
        ..Settings::default()
    };
    let mut solver = Solver::new(inst.problem.clone(), settings)?;

    // Start from a perturbed state and regulate toward the origin.
    let mut x_state: Vec<f64> = inst.x_init.iter().map(|&v| 3.0 * v + 0.4).collect();
    println!("{:>5} {:>12} {:>8} {:>10}", "step", "|x|", "iters", "|u0|");
    let initial_norm = norm2(&x_state);
    for step in 0..60 {
        let (l, u) = inst.bounds_for(&x_state);
        solver.update_bounds(&l, &u)?;
        let r = solver.solve();
        assert!(r.status.is_solved(), "step {step}: {}", r.status);
        let u0 = inst.first_input(&r.x).to_vec();
        if step % 3 == 0 {
            println!(
                "{:>5} {:>12.6} {:>8} {:>10.4}",
                step,
                norm2(&x_state),
                r.iterations,
                norm2(&u0)
            );
        }
        x_state = inst.step(&x_state, &u0);
    }
    let final_norm = norm2(&x_state);
    println!("\nstate norm: {initial_norm:.4} -> {final_norm:.6}");
    assert!(
        final_norm < 0.5 * initial_norm,
        "controller failed to reduce the state norm ({initial_norm:.3} -> {final_norm:.3})"
    );
    println!("closed-loop regulation succeeded");
    Ok(())
}
