//! Quickstart: define a small QP, solve it with both algorithm variants,
//! and inspect the solution and work profile.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mib::qp::{KktBackend, Problem, Settings, Solver};
use mib::sparse::CscMatrix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // minimize 1/2 xᵀ [4 1; 1 2] x + [1 1]ᵀ x
    // subject to x0 + x1 = 1, 0 <= x <= 0.7
    let p = CscMatrix::from_dense(2, 2, &[4.0, 1.0, 1.0, 2.0]).upper_triangle()?;
    let a = CscMatrix::from_dense(3, 2, &[1.0, 1.0, 1.0, 0.0, 0.0, 1.0]);
    let l = vec![1.0, 0.0, 0.0];
    let u = vec![1.0, 0.7, 0.7];
    let problem = Problem::new(p, vec![1.0, 1.0], a, l, u)?;

    for backend in [KktBackend::Direct, KktBackend::Indirect] {
        let mut settings = Settings::with_backend(backend);
        settings.eps_abs = 1e-6;
        settings.eps_rel = 1e-6;
        let mut solver = Solver::new(problem.clone(), settings)?;
        let result = solver.solve();
        println!("=== OSQP-{} ===", backend.name());
        println!("status:     {}", result.status);
        println!("x:          [{:.4}, {:.4}]", result.x[0], result.x[1]);
        println!("objective:  {:.6}", result.obj_val);
        println!("iterations: {}", result.iterations);
        println!(
            "residuals:  prim {:.2e}, dual {:.2e}",
            result.prim_res, result.dual_res
        );
        let ops = result.profile.ops;
        println!(
            "flops:      mac {:.0}, permute {:.0}, col-elim {:.0}, elementwise {:.0}",
            ops.mac, ops.permute, ops.col_elim, ops.elementwise
        );
        if backend == KktBackend::Indirect {
            println!("pcg iters:  {}", result.profile.pcg_iters);
        }
        println!();
    }
    Ok(())
}
