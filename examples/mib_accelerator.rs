//! Running a QP on the simulated Multi-Issue Butterfly machine itself:
//! compile the problem's sparsity pattern to network-instruction schedules,
//! execute the ADMM iteration cycle-accurately, and compare the on-machine
//! solution and timing against the reference solver and the baseline
//! platform models.
//!
//! ```sh
//! cargo run --release --example mib_accelerator
//! ```

use mib::compiler::lower::lower;
use mib::core::hbm::HbmStream;
use mib::core::machine::{HazardPolicy, Machine};
use mib::core::MibConfig;
use mib::platforms::{CpuModel, CpuVariant, PlatformModel, WorkSummary};
use mib::problems::mpc;
use mib::qp::{Settings, Solver};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let inst = mpc(4, 2, 8, 3);
    let problem = inst.problem.clone();
    let settings = Settings {
        scaling_iters: 0, // the lowered program models the unscaled problem
        adaptive_rho: false,
        eps_abs: 1e-6,
        eps_rel: 1e-6,
        ..Settings::default()
    };

    // Reference solve (exact iterate trajectory + work profile).
    let mut reference = Solver::new(problem.clone(), settings.clone())?;
    let result = reference.solve();
    println!(
        "reference: {} in {} iterations",
        result.status, result.iterations
    );

    // Compile for the C=32 prototype.
    let config = MibConfig::c32();
    let lowered = lower(&problem, &settings, config)?;
    println!(
        "compiled schedules: load {} cy, factor {} cy, iteration {} cy, check {} cy",
        lowered.load_cycles(),
        lowered.setup_cycles(),
        lowered.iteration_cycles(),
        lowered.check_cycles()
    );

    // Execute on the machine: load + factor once, then replay the
    // iteration program (strict hazard checking: the schedule must be
    // provably hazard-free).
    let mut machine = Machine::new(config);
    for sched in [&lowered.load, &lowered.setup] {
        machine.run(
            &sched.program,
            &mut HbmStream::new(sched.hbm.clone()),
            HazardPolicy::Strict,
        )?;
    }
    let mut stats = mib::core::stats::ExecStats::default();
    for _ in 0..result.iterations {
        let s = machine.run(
            &lowered.iteration.program,
            &mut HbmStream::new(lowered.iteration.hbm.clone()),
            HazardPolicy::Strict,
        )?;
        stats.merge(&s);
    }
    println!(
        "machine executed {} slots over {} cycles ({} stalls — must be 0), utilization {:.1}%",
        stats.slots,
        stats.cycles,
        stats.stall_cycles,
        100.0 * stats.utilization(config.total_nodes())
    );
    assert_eq!(stats.stall_cycles, 0, "compiled schedules are hazard-free");

    // Compare the on-machine iterate with the reference solution.
    let n = problem.num_vars();
    // x lives at the 6th allocated vector (q,l,u,rho,rho_inv,x) — recompute
    // its layout the same way the lowering did.
    let mut alloc = mib::compiler::Allocator::new(config.width);
    let m = problem.num_constraints();
    let (_q, _l, _u, _rho, _ri) = (
        alloc.alloc(n),
        alloc.alloc(m),
        alloc.alloc(m),
        alloc.alloc(m),
        alloc.alloc(m),
    );
    let x_layout = alloc.alloc(n);
    let mut max_err = 0.0f64;
    for e in 0..n {
        let got = machine.regs().read(x_layout.bank(e), x_layout.addr(e))?;
        max_err = max_err.max((got - result.x[e]).abs());
    }
    println!("max |x_machine - x_reference| = {max_err:.2e}");
    assert!(max_err < 1e-4, "on-machine ADMM must track the reference");

    // Timing: deterministic MIB cycles vs the modelled CPU baseline.
    let checks = result.iterations.div_ceil(settings.check_termination);
    let mib_s = lowered.total_seconds(result.iterations, 0, checks, result.profile.factor_count);
    let work = WorkSummary::from_result(&problem, &settings, &result);
    let cpu_s = CpuModel::new(CpuVariant::Builtin).solve_time(&work);
    println!(
        "end-to-end: MIB C=32 {:.3} ms (deterministic) vs CPU model {:.3} ms -> {:.1}x",
        mib_s * 1e3,
        cpu_s * 1e3,
        cpu_s / mib_s
    );
    Ok(())
}
