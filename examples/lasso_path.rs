//! Lasso regularization path: sweep the ℓ₁ penalty and watch the support
//! shrink — a machine-learning workload from the paper's benchmark suite
//! (solved here with the OSQP-indirect variant, the one the GPU and RSQP
//! baselines support).
//!
//! ```sh
//! cargo run --release --example lasso_path
//! ```

use mib::problems::lasso;
use mib::qp::{KktBackend, Settings, Solver};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 40; // features
    let m = 120; // samples
    let problem = lasso(n, m, 2024);

    // The generator bakes one lambda into q; sweep by scaling the t-block
    // of the linear cost (q = [0; 0; λ·1]).
    let base_q = problem.q().to_vec();
    let mut settings = Settings::with_backend(KktBackend::Indirect);
    settings.eps_abs = 1e-5;
    settings.eps_rel = 1e-5;
    settings.max_iter = 20_000;
    let mut solver = Solver::new(problem, settings)?;

    println!(
        "{:>10} {:>8} {:>10} {:>12}",
        "lambda/l0", "iters", "support", "pcg iters"
    );
    let mut supports = Vec::new();
    for &scale in &[4.0, 2.0, 1.0, 0.5, 0.25, 0.1, 0.02] {
        let q: Vec<f64> = base_q
            .iter()
            .enumerate()
            .map(|(i, &v)| if i >= n + m { v * scale } else { v })
            .collect();
        solver.update_q(&q)?;
        let r = solver.solve();
        assert!(r.status.is_solved(), "lambda scale {scale}: {}", r.status);
        let support = r.x[..n].iter().filter(|&&w| w.abs() > 1e-3).count();
        println!(
            "{:>10.2} {:>8} {:>10} {:>12}",
            scale, r.iterations, support, r.profile.pcg_iters
        );
        supports.push(support);
    }
    // The support grows (weakly, up to solver tolerance) as the penalty
    // shrinks.
    assert!(
        supports.last().unwrap() + 2 >= supports[0],
        "support should grow along the path: {supports:?}"
    );
    println!("\nsmaller penalties admit more features into the model, as expected");
    Ok(())
}
