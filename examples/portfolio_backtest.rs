//! Portfolio backtesting: the paper's motivating parametric workload
//! ("millions of QPs with the same sparsity pattern must be solved each
//! trading day" — here a risk-aversion sweep with warm-started re-solves).
//!
//! The problem structure (the half-arrow pattern of Figure 2) is built
//! once; each backtest step only rescales the linear term `q = -μ/γ`, so
//! the solver re-uses its setup (and on the MIB machine the compiled
//! schedules would be replayed unchanged).
//!
//! ```sh
//! cargo run --release --example portfolio_backtest
//! ```

use mib::problems::portfolio;
use mib::qp::{Settings, Solver};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n_assets = 80;
    let n_factors = 8;
    let problem = portfolio(n_assets, n_factors, 99);
    let base_q = problem.q().to_vec();

    let settings = Settings {
        eps_abs: 1e-5,
        eps_rel: 1e-5,
        ..Settings::default()
    };
    let mut solver = Solver::new(problem, settings)?;

    println!("risk-aversion sweep over gamma (warm-started parametric re-solves)");
    println!(
        "{:>8} {:>8} {:>10} {:>10} {:>12}",
        "gamma", "iters", "risk", "return", "top weight"
    );
    let mut total_iters = 0usize;
    for step in 0..12 {
        let gamma = 0.25 * 1.6f64.powi(step);
        // q = -mu/gamma on the asset block (zeros on the factor block):
        // the generator built q at gamma=1, so scale it.
        let q: Vec<f64> = base_q.iter().map(|&v| v / gamma).collect();
        solver.update_q(&q)?;
        let r = solver.solve();
        assert!(r.status.is_solved(), "step {step}: {}", r.status);
        total_iters += r.iterations;
        let weights = &r.x[..n_assets];
        let ret: f64 = base_q[..n_assets]
            .iter()
            .zip(weights)
            .map(|(&negmu, &w)| -negmu * w)
            .sum();
        // Risk proxy: the quadratic part of the objective.
        let risk = r.obj_val + ret / gamma;
        let top = weights.iter().copied().fold(0.0f64, f64::max);
        println!(
            "{:>8.3} {:>8} {:>10.5} {:>10.5} {:>12.4}",
            gamma, r.iterations, risk, ret, top
        );
        let budget: f64 = weights.iter().sum();
        assert!((budget - 1.0).abs() < 1e-2, "budget violated: {budget}");
    }
    println!("\ntotal iterations across the sweep: {total_iters}");
    println!("(higher gamma = less risk aversion: expected return rises with gamma)");
    Ok(())
}
