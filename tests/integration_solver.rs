//! Cross-crate integration: benchmark generators → reference solver →
//! KKT optimality verification.

use mib::problems::{instance, Domain};
use mib::qp::{KktBackend, Settings, Solver};
use mib::sparse::vector;

/// Verifies the KKT conditions of a solved instance directly from the
/// returned primal/dual pair (independent of the solver's own residuals).
fn verify_kkt(domain: Domain, index: usize, backend: KktBackend) {
    let inst = instance(domain, index);
    let pr = &inst.problem;
    let mut settings = Settings::with_backend(backend);
    settings.eps_abs = 1e-5;
    settings.eps_rel = 1e-5;
    settings.max_iter = 30_000;
    let r = Solver::new(pr.clone(), settings).unwrap().solve();
    assert!(
        r.status.is_solved(),
        "{domain} #{index} ({}): {}",
        backend.name(),
        r.status
    );

    // Stationarity: ||Px + q + A'y||_inf small relative to the data.
    let mut grad = pr.p().sym_upper_mul_vec(&r.x);
    for (g, &qj) in grad.iter_mut().zip(pr.q()) {
        *g += qj;
    }
    pr.a().tr_mul_vec_acc(&r.y, &mut grad);
    let scale = vector::norm_inf(pr.q()).max(1.0);
    assert!(
        vector::norm_inf(&grad) < 5e-3 * scale.max(vector::norm_inf(&r.y)),
        "{domain} #{index}: stationarity violated: {}",
        vector::norm_inf(&grad)
    );

    // Primal feasibility.
    assert!(
        pr.constraint_violation(&r.x) < 5e-3 * (1.0 + vector::norm_inf(&r.z)),
        "{domain} #{index}: infeasible primal"
    );

    // Complementary slackness sign conventions: y_i > 0 only at (near)
    // active upper bounds, y_i < 0 only at lower bounds.
    let ax = pr.a().mul_vec(&r.x);
    for (i, &axi) in ax.iter().enumerate() {
        let slack_tol = 5e-2 * (1.0 + axi.abs());
        if r.y[i] > 1e-3 {
            assert!(
                pr.u()[i] - axi < slack_tol,
                "{domain} #{index}: positive dual with slack upper bound at row {i}"
            );
        }
        if r.y[i] < -1e-3 {
            assert!(
                axi - pr.l()[i] < slack_tol,
                "{domain} #{index}: negative dual with slack lower bound at row {i}"
            );
        }
    }
}

#[test]
fn portfolio_direct_satisfies_kkt() {
    verify_kkt(Domain::Portfolio, 3, KktBackend::Direct);
}

#[test]
fn portfolio_indirect_satisfies_kkt() {
    verify_kkt(Domain::Portfolio, 3, KktBackend::Indirect);
}

#[test]
fn lasso_both_backends_satisfy_kkt() {
    verify_kkt(Domain::Lasso, 4, KktBackend::Direct);
    verify_kkt(Domain::Lasso, 4, KktBackend::Indirect);
}

#[test]
fn huber_direct_satisfies_kkt() {
    verify_kkt(Domain::Huber, 2, KktBackend::Direct);
}

#[test]
fn mpc_both_backends_satisfy_kkt() {
    verify_kkt(Domain::Mpc, 5, KktBackend::Direct);
    verify_kkt(Domain::Mpc, 5, KktBackend::Indirect);
}

#[test]
fn svm_direct_satisfies_kkt() {
    verify_kkt(Domain::Svm, 3, KktBackend::Direct);
}

#[test]
fn backends_agree_across_domains() {
    for domain in Domain::all() {
        let inst = instance(domain, 1);
        let tight = |backend| {
            let mut s = Settings::with_backend(backend);
            s.eps_abs = 1e-6;
            s.eps_rel = 1e-6;
            s.max_iter = 50_000;
            s
        };
        let rd = Solver::new(inst.problem.clone(), tight(KktBackend::Direct))
            .unwrap()
            .solve();
        let ri = Solver::new(inst.problem.clone(), tight(KktBackend::Indirect))
            .unwrap()
            .solve();
        assert!(rd.status.is_solved() && ri.status.is_solved(), "{domain}");
        assert!(
            (rd.obj_val - ri.obj_val).abs() < 1e-3 * (1.0 + rd.obj_val.abs()),
            "{domain}: direct obj {} vs indirect obj {}",
            rd.obj_val,
            ri.obj_val
        );
    }
}

#[test]
fn solver_is_deterministic() {
    let inst = instance(Domain::Svm, 2);
    let run = || {
        Solver::new(inst.problem.clone(), Settings::default())
            .unwrap()
            .solve()
    };
    let a = run();
    let b = run();
    assert_eq!(a.iterations, b.iterations);
    assert_eq!(a.x, b.x);
    assert_eq!(a.profile.ops, b.profile.ops);
}
