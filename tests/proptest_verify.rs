//! Differential tests between the static verifier (`mib-verify`) and the
//! cycle-accurate machine in strict hazard mode.
//!
//! The contract under test: a program is statically certified (zero
//! error-severity diagnostics) **iff** `Machine::run(Strict)` executes it
//! without error on a stream of matching length. Random op-tuple programs
//! exercise the hazard/latency analysis from both sides; seeded mutations
//! of known-good compiled schedules (slot swaps, shrunk latency gaps,
//! dropped HBM words) check that every dynamically observable corruption
//! is also caught statically.

use mib::compiler::elementwise::load_vec;
use mib::compiler::spmv::{mac_spmv, SpmvOptions};
use mib::compiler::{schedule, Allocator, KernelBuilder, ScheduleOptions};
use mib::core::hbm::HbmStream;
use mib::core::instruction::{LaneSource, LaneWrite, NetInstruction, WriteMode};
use mib::core::machine::{HazardPolicy, Machine};
use mib::core::MibConfig;
use mib::sparse::CscMatrix;
use mib::verify::verify_program;
use proptest::prelude::*;

fn config() -> MibConfig {
    MibConfig {
        width: 8,
        bank_depth: 32,
        clock_hz: 1e6,
    }
}

/// One random op as an integer tuple: (kind, lane, src addr, dst addr,
/// preceding nop gap). Interpreted by [`build_program`].
type OpTuple = (usize, usize, usize, usize, usize);

/// Interprets op tuples into a straight-line network program. Kinds:
/// register move, stream load, accumulating (RMW) write, latch load, and
/// a latch-multiplied read — together they cover every hazard class the
/// verifier models (register RAW, RMW read-before-write, latch RAW).
fn build_program(ops: &[OpTuple], cfg: &MibConfig) -> Vec<NetInstruction> {
    let mut program = Vec::new();
    for &(kind, lane, src, dst, gap) in ops {
        let lane = lane % cfg.width;
        let src = src % cfg.bank_depth;
        let dst = dst % cfg.bank_depth;
        for _ in 0..gap {
            program.push(NetInstruction::nop(cfg.width));
        }
        let mut i = NetInstruction::nop(cfg.width);
        let (input, write) = match kind % 5 {
            0 => (
                LaneSource::Reg { addr: src },
                LaneWrite {
                    addr: dst,
                    mode: WriteMode::Store,
                },
            ),
            1 => (
                LaneSource::Stream,
                LaneWrite {
                    addr: dst,
                    mode: WriteMode::Store,
                },
            ),
            2 => (
                LaneSource::Reg { addr: src },
                LaneWrite {
                    addr: dst,
                    mode: WriteMode::Add,
                },
            ),
            3 => (
                LaneSource::Reg { addr: src },
                LaneWrite {
                    addr: 0,
                    mode: WriteMode::Latch,
                },
            ),
            _ => (
                LaneSource::RegTimesLatch {
                    addr: src,
                    negate: false,
                },
                LaneWrite {
                    addr: dst,
                    mode: WriteMode::Store,
                },
            ),
        };
        i.set_input(lane, input);
        i.route(lane, lane);
        i.set_write(lane, write);
        program.push(i);
    }
    program
}

/// Runs both sides and returns (statically certified, machine accepted).
fn both_verdicts(program: &[NetInstruction], hbm: Vec<f64>, cfg: &MibConfig) -> (bool, bool) {
    let report = verify_program("differential", program, hbm.len(), cfg);
    let mut m = Machine::new(*cfg);
    let dynamic = m
        .run(program, &mut HbmStream::new(hbm), HazardPolicy::Strict)
        .is_ok();
    (report.is_certified(), dynamic)
}

/// A known-good compiled schedule (SpMV over a small dense-ish matrix)
/// used as the mutation substrate.
fn compiled_spmv() -> (Vec<NetInstruction>, Vec<f64>, MibConfig) {
    let cfg = MibConfig {
        width: 8,
        bank_depth: 2048,
        clock_hz: 1e6,
    };
    let rows = [0usize, 0, 1, 1, 2, 3, 3, 4, 5, 5];
    let cols = [0usize, 3, 1, 2, 0, 3, 4, 2, 1, 4];
    let vals = [1.5, -2.0, 0.5, 3.0, -1.0, 2.5, 0.25, -0.75, 1.25, -3.5];
    let a = CscMatrix::from_triplet_parts(6, 5, &rows, &cols, &vals).unwrap();
    let x: Vec<f64> = (0..5).map(|i| i as f64 - 1.5).collect();
    let mut alloc = Allocator::new(cfg.width);
    let xl = alloc.alloc(5);
    let yl = alloc.alloc(6);
    let mut b = KernelBuilder::new("spmv", cfg.width, cfg.latency());
    load_vec(&mut b, xl, &x);
    mac_spmv(
        &mut b,
        &mut alloc,
        &a.to_csr(),
        xl,
        yl,
        false,
        SpmvOptions::default(),
    );
    let s = schedule(&b.finish(), ScheduleOptions::default());
    (s.program, s.hbm, cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random op-tuple programs with an exactly-sized stream: the static
    /// verdict agrees with strict execution in every case.
    #[test]
    fn random_programs_agree_with_strict_machine(
        ops in proptest::collection::vec(
            (0usize..5, 0usize..8, 0usize..32, 0usize..32, 0usize..4),
            1..24,
        ),
    ) {
        let cfg = config();
        let program = build_program(&ops, &cfg);
        let consumed: usize = program.iter().map(|i| i.stream_words()).sum();
        let hbm: Vec<f64> = (0..consumed).map(|k| k as f64 + 0.5).collect();
        let (certified, dynamic) = both_verdicts(&program, hbm, &cfg);
        prop_assert_eq!(
            certified, dynamic,
            "static verdict {} vs machine {}", certified, dynamic
        );
    }

    /// Stream-length perturbations: a short stream is rejected by both
    /// sides; a surplus stream blocks neither (the verifier downgrades it
    /// to a warning because the machine tolerates leftover words).
    #[test]
    fn stream_length_mismatches_agree(
        ops in proptest::collection::vec(
            (0usize..5, 0usize..8, 0usize..32, 0usize..32, 0usize..4),
            1..16,
        ),
        delta in -1isize..2,
    ) {
        let cfg = config();
        let program = build_program(&ops, &cfg);
        let consumed: usize = program.iter().map(|i| i.stream_words()).sum();
        let provided = consumed.saturating_add_signed(delta);
        let hbm: Vec<f64> = (0..provided).map(|k| k as f64 + 0.5).collect();
        let (certified, dynamic) = both_verdicts(&program, hbm, &cfg);
        prop_assert_eq!(certified, dynamic);
        if delta < 0 && consumed > 0 {
            prop_assert!(!certified, "short stream must fail statically");
        }
    }

    /// Slot-swap mutations of a clean compiled schedule: the static
    /// verdict tracks strict execution, so every dynamically caught swap
    /// is also caught statically.
    #[test]
    fn slot_swap_mutations_agree(a in 0usize..1000, b in 0usize..1000) {
        let (mut program, hbm, cfg) = compiled_spmv();
        let n = program.len();
        let (a, b) = (a % n, b % n);
        program.swap(a, b);
        let (certified, dynamic) = both_verdicts(&program, hbm, &cfg);
        prop_assert_eq!(
            certified, dynamic,
            "swap ({}, {}): static {} vs machine {}", a, b, certified, dynamic
        );
    }

    /// Shrunk-latency mutations (delete one slot, pulling every later
    /// instruction a cycle earlier): static and dynamic verdicts agree.
    #[test]
    fn slot_deletion_mutations_agree(k in 0usize..1000) {
        let (mut program, mut hbm, cfg) = compiled_spmv();
        let k = k % program.len();
        let dropped = program.remove(k);
        // Keep the stream aligned with the surviving instructions so the
        // mutation isolates the timing change (the dropped words belong
        // to the removed slot; which positions they occupied is the
        // prefix sum of the preceding slots' consumption).
        let offset: usize = program[..k].iter().map(|i| i.stream_words()).sum();
        for _ in 0..dropped.stream_words() {
            hbm.remove(offset);
        }
        let (certified, dynamic) = both_verdicts(&program, hbm, &cfg);
        prop_assert_eq!(
            certified, dynamic,
            "delete {}: static {} vs machine {}", k, certified, dynamic
        );
    }
}

/// The unmutated substrate is clean on both sides — the mutation tests
/// above start from a genuinely certified program.
#[test]
fn unmutated_substrate_is_clean() {
    let (program, hbm, cfg) = compiled_spmv();
    let (certified, dynamic) = both_verdicts(&program, hbm, &cfg);
    assert!(certified && dynamic);
}

/// Dropping the final HBM word off a clean compiled schedule is caught
/// statically (stream underflow) and dynamically (stream exhaustion).
#[test]
fn dropped_hbm_word_is_caught_statically() {
    let (program, mut hbm, cfg) = compiled_spmv();
    assert!(!hbm.is_empty());
    hbm.pop();
    let (certified, dynamic) = both_verdicts(&program, hbm, &cfg);
    assert!(!certified, "verifier must flag the short stream");
    assert!(!dynamic, "machine must also reject it");
}

/// Shrinking an exact-latency gap by one slot turns a clean hand-built
/// chain into a RAW hazard that both sides reject.
#[test]
fn shrunk_latency_gap_is_caught_statically() {
    let cfg = config();
    let latency = cfg.latency() as usize;
    let mov = |src: usize, dst: usize| {
        let mut i = NetInstruction::nop(cfg.width);
        i.set_input(0, LaneSource::Reg { addr: src });
        i.route(0, 0);
        i.set_write(
            0,
            LaneWrite {
                addr: dst,
                mode: WriteMode::Store,
            },
        );
        i
    };
    let mut program = vec![mov(0, 1)];
    program.extend((0..latency - 1).map(|_| NetInstruction::nop(cfg.width)));
    program.push(mov(1, 2));
    // With `latency - 1` nops the read sits exactly at the write's
    // visibility cycle: clean on both sides.
    let (certified, dynamic) = both_verdicts(&program, Vec::new(), &cfg);
    assert!(certified && dynamic, "exact-latency spacing is legal");
    // Removing one nop shrinks the gap below the pipeline latency.
    program.remove(1);
    let (certified, dynamic) = both_verdicts(&program, Vec::new(), &cfg);
    assert!(!certified, "verifier must flag the shrunk gap");
    assert!(!dynamic, "machine must also reject it");
}

/// Exhaustive adjacent-swap sweep over the compiled substrate: the static
/// verifier catches every mutation strict execution catches (a 100%
/// catch rate on dynamically observable corruptions), and the two sides
/// never disagree in either direction.
#[test]
fn adjacent_swap_sweep_catch_rate() {
    let (program, hbm, cfg) = compiled_spmv();
    let mut dynamic_rejects = 0usize;
    let mut static_rejects = 0usize;
    for k in 1..program.len() {
        let mut mutant = program.clone();
        mutant.swap(k - 1, k);
        let (certified, dynamic) = both_verdicts(&mutant, hbm.clone(), &cfg);
        assert_eq!(certified, dynamic, "swap ({}, {}) disagrees", k - 1, k);
        if !dynamic {
            dynamic_rejects += 1;
        }
        if !certified {
            static_rejects += 1;
        }
    }
    assert_eq!(static_rejects, dynamic_rejects);
    assert!(
        dynamic_rejects > 0,
        "the sweep must contain at least one corrupting mutation"
    );
}
