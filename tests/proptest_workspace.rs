//! Property tests for the workspace-centric solve pipeline.
//!
//! The staged, allocation-free iteration in `mib-qp` must be **bitwise**
//! equivalent to a plainly written allocating ADMM implementation (the
//! structure of the pre-workspace solver): same stage arithmetic, fresh
//! `Vec`s every iteration, allocating LDLᵀ solves. Any reordering of
//! floating-point operations introduced by the refactor would show up here
//! as a bit difference.

use mib::problems::random_qp;
use mib::qp::kkt::KktMatrix;
use mib::qp::{BatchSolver, BatchUpdate, Problem, Settings, Solver, INFTY};
use mib::sparse::ldl::LdlSolver;
use mib::sparse::order::Ordering;
use proptest::prelude::*;

/// Per-constraint step sizes, mirroring the solver's rule.
fn rho_vec_for(settings: &Settings, l: &[f64], u: &[f64]) -> Vec<f64> {
    l.iter()
        .zip(u)
        .map(|(&lo, &hi)| {
            if lo <= -INFTY && hi >= INFTY {
                settings.rho_min
            } else if lo == hi {
                (settings.rho * settings.rho_eq_scale).clamp(settings.rho_min, settings.rho_max)
            } else {
                settings.rho
            }
        })
        .collect()
}

/// The reference: a direct-backend ADMM loop written the allocating way,
/// with no scaling and no adaptive rho. Returns the iterates after `iters`
/// full iterations from a cold start.
fn reference_admm(
    problem: &Problem,
    settings: &Settings,
    iters: usize,
) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let n = problem.num_vars();
    let m = problem.num_constraints();
    let (q, l, u) = (problem.q(), problem.l(), problem.u());
    let rho_vec = rho_vec_for(settings, l, u);
    let rho_inv: Vec<f64> = rho_vec.iter().map(|&r| 1.0 / r).collect();
    let kkt = KktMatrix::assemble(problem.p(), problem.a(), settings.sigma, &rho_vec).unwrap();
    let ldl = LdlSolver::new(kkt.matrix(), Ordering::MinDegree).unwrap();

    let (mut x, mut y, mut z) = (vec![0.0; n], vec![0.0; m], vec![0.0; m]);
    let alpha = settings.alpha;
    for _ in 0..iters {
        let mut rhs = Vec::with_capacity(n + m);
        for j in 0..n {
            rhs.push(settings.sigma * x[j] - q[j]);
        }
        for i in 0..m {
            rhs.push(z[i] - rho_inv[i] * y[i]);
        }
        let sol = ldl.solve(&rhs);
        let (xtilde, nu) = sol.split_at(n);
        let ztilde: Vec<f64> = (0..m).map(|i| z[i] + rho_inv[i] * (nu[i] - y[i])).collect();
        for j in 0..n {
            x[j] = alpha * xtilde[j] + (1.0 - alpha) * x[j];
        }
        for i in 0..m {
            let z_relaxed = alpha * ztilde[i] + (1.0 - alpha) * z[i];
            let w = z_relaxed + rho_inv[i] * y[i];
            let z_new = w.max(l[i]).min(u[i]);
            y[i] += rho_vec[i] * (z_relaxed - z_new);
            z[i] = z_new;
        }
    }
    (x, y, z)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The workspace pipeline reproduces the allocating reference bitwise
    /// on random sparse QPs (identity scaling so the iterates are directly
    /// comparable; adaptive rho off to keep the step size fixed).
    #[test]
    fn staged_solve_matches_allocating_reference(
        n in 2usize..7,
        m in 2usize..9,
        seed in 0u64..10_000,
    ) {
        let problem = random_qp(n, m, 0.5, seed);
        let settings = Settings {
            scaling_iters: 0,
            adaptive_rho: false,
            max_iter: 60,
            ..Settings::default()
        };
        let mut solver = Solver::new(problem.clone(), settings.clone()).unwrap();
        let result = solver.solve();
        // Whatever the exit reason, the iterates completed exactly
        // `result.iterations` full iterations.
        let (x_ref, y_ref, z_ref) = reference_admm(&problem, &settings, result.iterations);
        prop_assert_eq!(&result.x, &x_ref, "x diverged from the allocating reference");
        prop_assert_eq!(&result.y, &y_ref, "y diverged");
        prop_assert_eq!(&result.z, &z_ref, "z diverged");
    }

    /// `solve_into` reusing one result across a stream of problems matches
    /// fresh `solve` calls bitwise — buffer reuse must never leak state.
    #[test]
    fn solve_into_reuse_matches_fresh_solves(seed in 0u64..10_000) {
        let problem = random_qp(5, 7, 0.6, seed);
        let base_q = problem.q().to_vec();
        let mut reused = Solver::new(problem.clone(), Settings::default()).unwrap();
        let mut fresh = Solver::new(problem, Settings::default()).unwrap();
        let mut result = reused.solve();
        for step in 0..4 {
            let qk: Vec<f64> = base_q.iter().map(|&v| v + 0.1 * step as f64).collect();
            reused.update_q(&qk).unwrap();
            reused.reset();
            reused.solve_into(&mut result);
            fresh.update_q(&qk).unwrap();
            fresh.reset();
            let want = fresh.solve();
            prop_assert_eq!(&result.x, &want.x, "step {}", step);
            prop_assert_eq!(result.iterations, want.iterations, "step {}", step);
            prop_assert_eq!(result.status, want.status, "step {}", step);
        }
    }

    /// Batch solving is chunking-invariant on random problems and thread
    /// counts, not just on the hand-picked cases in the unit tests.
    #[test]
    fn batch_parallel_matches_sequential(
        seed in 0u64..10_000,
        count in 1usize..20,
        threads in 1usize..6,
    ) {
        let problem = random_qp(4, 6, 0.6, seed);
        let base_q = problem.q().to_vec();
        let batch = BatchSolver::new(problem, Settings::default())
            .unwrap()
            .with_threads(threads);
        let updates: Vec<BatchUpdate> = (0..count)
            .map(|k| {
                let qk = base_q
                    .iter()
                    .enumerate()
                    .map(|(j, &v)| v + 0.07 * k as f64 - 0.03 * j as f64)
                    .collect();
                BatchUpdate::with_q(qk)
            })
            .collect();
        let par = batch.solve_batch(&updates).unwrap();
        let seq = batch.solve_sequential(&updates).unwrap();
        for (k, (a, b)) in par.iter().zip(&seq).enumerate() {
            prop_assert_eq!(&a.x, &b.x, "problem {} of {} on {} threads", k, count, threads);
            prop_assert_eq!(a.iterations, b.iterations, "problem {}", k);
        }
    }
}
