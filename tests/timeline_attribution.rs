//! Cycle-attribution identity over the verify_schedules program set.
//!
//! [`Machine::run_with_timeline`] attributes every cycle of a run to an
//! instruction kind (issue or stall) or the final pipeline drain. This
//! test replays the same program set `scripts/verify_schedules.sh`
//! certifies — sampled benchmark instances of the five domains, both
//! KKT backends, all five programs — and checks the identity
//! `Timeline::total_cycles() == ExecStats::cycles` exactly, program by
//! program, plus the per-field consistency (slots, stalls, HBM words).
//!
//! Debug-mode lowering re-verifies every schedule, so the default run
//! samples one instance per domain (40 programs); set
//! `MIB_TIMELINE_FULL=1` to replay verify_schedules' full default sample
//! (120 programs) — `scripts/trace_demo.sh` does, in release mode.

use mib::compiler::lower::lower;
use mib::core::hbm::HbmStream;
use mib::core::machine::{HazardPolicy, Machine};
use mib::core::MibConfig;
use mib::problems::{instance, Domain, INSTANCES_PER_DOMAIN};
use mib::qp::{KktBackend, Settings};

#[test]
fn timeline_buckets_sum_to_exec_cycles_across_verify_schedules_set() {
    let config = MibConfig::c32();
    // The verify_schedules default sample: first, middle, last instance of
    // each domain (first only unless MIB_TIMELINE_FULL is set).
    let full = std::env::var_os("MIB_TIMELINE_FULL").is_some();
    let indices: &[usize] = if full {
        &[0, 9, INSTANCES_PER_DOMAIN - 1]
    } else {
        &[0]
    };
    let mut programs_checked = 0usize;
    for domain in Domain::all() {
        for &index in indices {
            let inst = instance(domain, index);
            for backend in [KktBackend::Direct, KktBackend::Indirect] {
                let settings = Settings::with_backend(backend);
                let lowered =
                    lower(&inst.problem, &settings, config).expect("benchmark instance lowers");
                let mut m = Machine::new(config);
                for (name, s) in [
                    ("load", &lowered.load),
                    ("setup", &lowered.setup),
                    ("iteration", &lowered.iteration),
                    ("pcg", &lowered.pcg_iteration),
                    ("check", &lowered.check),
                ] {
                    if s.program.is_empty() {
                        continue;
                    }
                    let label = format!("{domain}[{index}]/{backend:?}/{name}");
                    let mut hbm = HbmStream::new(s.hbm.clone());
                    let (stats, tl) = m
                        .run_with_timeline(&s.program, &mut hbm, HazardPolicy::Strict)
                        .unwrap_or_else(|e| panic!("{label}: {e}"));
                    assert_eq!(
                        tl.total_cycles(),
                        stats.cycles,
                        "{label}: timeline buckets must sum exactly to the cycle count"
                    );
                    assert_eq!(
                        tl.issue_cycles_by_kind.iter().sum::<u64>(),
                        stats.slots,
                        "{label}: one issue cycle per slot"
                    );
                    assert_eq!(
                        tl.stall_cycles(),
                        stats.stall_cycles,
                        "{label}: stall attribution must match the machine's total"
                    );
                    assert_eq!(
                        tl.hbm_words(),
                        stats.hbm_words,
                        "{label}: HBM windows must cover every streamed word"
                    );
                    programs_checked += 1;
                }
            }
        }
    }
    // 5 domains x indices x (direct: 4 programs + indirect: 4 programs).
    let expected = 5 * indices.len() * 8;
    assert_eq!(
        programs_checked, expected,
        "program set unexpectedly changed"
    );
}
