//! Enabled-mode end-to-end tracing tests: solver telemetry matches the
//! returned result bitwise, serve request spans nest the solver's spans,
//! and the Chrome trace-event export is valid JSON.
//!
//! The mib-trace enable flag is process-global; cargo runs test binaries
//! sequentially, so this binary owns the flag for its lifetime, and the
//! tests inside serialize on a local lock (mirroring mib-trace's own
//! enabled-mode unit tests).

use std::sync::{Mutex, MutexGuard, PoisonError};

use mib::problems::portfolio;
use mib::qp::{KktBackend, Settings, SolveTrace, Solver, Status};
use mib::serve::{QpServer, Request, ServeConfig};
use mib::trace::{Category, Event};

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn hold() -> MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

#[test]
fn solver_iteration_telemetry_matches_result_bitwise() {
    let _guard = hold();
    for backend in [KktBackend::Direct, KktBackend::Indirect] {
        mib::trace::clear();
        mib::trace::enable();
        let problem = portfolio(30, 5, 7);
        let settings = Settings {
            backend,
            adaptive_rho_interval: 10,
            ..Settings::default()
        };
        let mut solver = Solver::new(problem, settings).expect("setup");
        let result = solver.solve();
        mib::trace::disable();
        let trace = mib::trace::take();
        assert_eq!(result.status, Status::Solved, "{backend:?}");
        assert_eq!(trace.dropped(), 0);

        let telemetry = SolveTrace::collect(&trace);
        let last = telemetry
            .last_iteration()
            .unwrap_or_else(|| panic!("{backend:?}: no iteration events recorded"));
        // The per-iteration residual events are emitted from the very
        // values the terminating check stores into the result — bitwise.
        assert_eq!(last.prim_res.to_bits(), result.prim_res.to_bits());
        assert_eq!(last.dual_res.to_bits(), result.dual_res.to_bits());
        assert_eq!(last.iter as usize, result.iterations);
        assert!(
            telemetry.iterations.len() > 1,
            "{backend:?}: expected multiple termination checks"
        );
        // Solver phases all closed: setup spans from Solver::new plus the
        // solve-time spans.
        for phase in ["solve", "admm_loop", "kkt_setup"] {
            assert_eq!(
                telemetry.phases_named(phase).count(),
                1,
                "{backend:?}: phase {phase}"
            );
        }
        if backend == KktBackend::Direct {
            assert!(telemetry.phases_named("factor").count() >= 1);
            // Adaptive rho forced refactorizations.
            assert!(
                telemetry.phases_named("refactor").count() >= 1,
                "adaptive_rho_interval 10 must refactor at least once"
            );
        } else {
            assert!(
                telemetry.total_pcg_iters() > 0,
                "indirect backend must report PCG iterations"
            );
        }

        // The Chrome export of the same trace is valid JSON with one
        // counter track per iteration event.
        let json = trace.to_chrome_json();
        mib::trace::validate_json(&json)
            .unwrap_or_else(|e| panic!("{backend:?}: invalid trace JSON: {e}"));
        assert!(json.contains("\"residuals\""));
    }
}

#[test]
fn serve_request_spans_nest_solver_spans() {
    let _guard = hold();
    mib::trace::clear();
    mib::trace::enable();
    let server = QpServer::new(ServeConfig {
        workers_per_shard: 1,
        ..ServeConfig::default()
    });
    let problem = portfolio(24, 4, 3);
    let num_vars = problem.num_vars();
    let tenant = server
        .register(problem, Settings::default())
        .expect("register");
    let response = server
        .submit(tenant, Request::with_q(vec![0.01; num_vars]))
        .expect("submit")
        .wait();
    assert!(response.outcome.is_solved(), "{:?}", response.outcome);
    server.shutdown();
    mib::trace::disable();
    let trace = mib::trace::take();
    assert_eq!(trace.dropped(), 0);

    // The submitting thread recorded the submit mark.
    assert!(
        trace.records().any(|r| matches!(
            r.event,
            Event::Mark {
                name: "submit",
                cat: Category::Serve,
                ..
            }
        )),
        "submit mark missing"
    );

    // On the worker thread, the request span must enclose the serve-side
    // solve_request span, which must enclose the solver's own solve span:
    // Begin(request) < Begin(solve_request) < Begin(solve) < End(solve)
    // <= End(solve_request) <= End(request), all on one thread.
    let worker = trace
        .threads
        .iter()
        .find(|t| t.name.starts_with("mib-serve-"))
        .expect("worker thread trace present");
    let pos = |pred: &dyn Fn(&Event) -> bool| -> usize {
        worker
            .records
            .iter()
            .position(|r| pred(&r.event))
            .unwrap_or_else(|| panic!("missing record on worker thread"))
    };
    let begin = |name: &'static str, cat: Category| {
        pos(
            &move |e: &Event| matches!(*e, Event::Begin { name: n, cat: c } if n == name && c == cat),
        )
    };
    let end = |name: &'static str, cat: Category| {
        pos(&move |e: &Event| matches!(*e, Event::End { name: n, cat: c } if n == name && c == cat))
    };
    let b_request = begin("request", Category::Serve);
    let b_solve_req = begin("solve_request", Category::Serve);
    let b_solve = begin("solve", Category::Solver);
    let e_solve = end("solve", Category::Solver);
    let e_solve_req = end("solve_request", Category::Serve);
    let e_request = end("request", Category::Serve);
    assert!(
        b_request < b_solve_req
            && b_solve_req < b_solve
            && b_solve < e_solve
            && e_solve < e_solve_req
            && e_solve_req < e_request,
        "serve spans must nest solver spans: \
         {b_request} < {b_solve_req} < {b_solve} < {e_solve} < {e_solve_req} < {e_request}"
    );

    // Iteration events recorded on the worker thread sit under the batch
    // hierarchy, and the whole trace still exports as valid JSON.
    assert!(worker
        .records
        .iter()
        .any(|r| matches!(r.event, Event::Iteration { .. })));
    let json = trace.to_chrome_json();
    mib::trace::validate_json(&json).expect("serve trace JSON");
}
