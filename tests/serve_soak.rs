//! Multi-threaded soak test of the serving runtime.
//!
//! Four client threads hammer a `QpServer` with a deterministic mixed
//! workload — tenants across all five benchmark domains and both KKT
//! backends, parametric perturbations, deadlines, cancellations — through
//! a deliberately small queue so `QueueFull` backpressure actually fires.
//! The acceptance bar:
//!
//! 1. every accepted request reaches a terminal response (no hangs, no
//!    lost tickets — the submitted/completed counters agree),
//! 2. every `Solved` answer is **bitwise** identical to a direct
//!    single-threaded solve of the identically parameterized problem,
//! 3. the server survives shutdown with all workers joined.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use mib::problems::{instance, Domain};
use mib::qp::{KktBackend, Problem, Settings, Solver, Status};
use mib::serve::{Outcome, QpServer, Request, Response, ServeConfig, SubmitError, TenantId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 40;

struct TenantSpec {
    id: TenantId,
    problem: Problem,
    template: Solver,
}

/// Deterministic per-client RNG stream: clients generate disjoint,
/// reproducible workloads regardless of scheduling.
fn client_rng(client: usize) -> StdRng {
    StdRng::seed_from_u64(0x50a4 ^ ((client as u64) << 8))
}

fn perturbed_request(rng: &mut StdRng, problem: &Problem) -> Request {
    let mut request = Request::default();
    if rng.gen::<f64>() < 0.7 {
        let mut q = problem.q().to_vec();
        for qi in q.iter_mut() {
            *qi += 0.02 * (rng.gen::<f64>() - 0.5);
        }
        request.q = Some(q);
    }
    match rng.gen_range(0..10usize) {
        // Already expired or near-instant: exercises Expired / TimedOut.
        0 => request.deadline = Some(Duration::from_micros(rng.gen_range(1..30u64))),
        1 | 2 => request.deadline = Some(Duration::from_secs(20)),
        _ => {}
    }
    request
}

#[test]
fn soak_mixed_tenants_under_backpressure() {
    // Small queue so QueueFull genuinely fires under 4 clients.
    let server = QpServer::new(ServeConfig {
        queue_capacity: 4,
        workers_per_shard: 2,
        max_batch: 8,
        batch_window: Duration::from_micros(100),
        max_shards: 8,
    });

    // Mixed patterns: one tenant per domain on the direct backend, plus
    // one indirect-backend tenant (same structure, different shard).
    let mut tenants: Vec<TenantSpec> = Vec::new();
    for domain in [
        Domain::Portfolio,
        Domain::Lasso,
        Domain::Huber,
        Domain::Mpc,
        Domain::Svm,
    ] {
        let spec = instance(domain, 0);
        let settings = Settings::default();
        let id = server
            .register(spec.problem.clone(), settings.clone())
            .expect("register");
        let template = Solver::new(spec.problem.clone(), settings).expect("template");
        tenants.push(TenantSpec {
            id,
            problem: spec.problem,
            template,
        });
    }
    {
        let spec = instance(Domain::Portfolio, 1);
        let settings = Settings::with_backend(KktBackend::Indirect);
        let id = server
            .register(spec.problem.clone(), settings.clone())
            .expect("register indirect");
        let template = Solver::new(spec.problem.clone(), settings).expect("template");
        tenants.push(TenantSpec {
            id,
            problem: spec.problem,
            template,
        });
    }

    let rejected = AtomicU64::new(0);
    let served: Mutex<Vec<(usize, usize, Request, Response)>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for client in 0..CLIENTS {
            let server = &server;
            let tenants = &tenants;
            let served = &served;
            let rejected = &rejected;
            s.spawn(move || {
                let mut rng = client_rng(client);
                let mut tickets = Vec::new();
                for k in 0..REQUESTS_PER_CLIENT {
                    let t = rng.gen_range(0..tenants.len());
                    let request = perturbed_request(&mut rng, &tenants[t].problem);
                    let cancel = rng.gen::<f64>() < 0.05;
                    let ticket = loop {
                        match server.submit(tenants[t].id, request.clone()) {
                            Ok(ticket) => break ticket,
                            Err(SubmitError::QueueFull { depth }) => {
                                assert!(depth >= 1);
                                rejected.fetch_add(1, Ordering::Relaxed);
                                std::thread::yield_now();
                            }
                            Err(e) => panic!("client {client} submit failed: {e}"),
                        }
                    };
                    if cancel {
                        ticket.cancel();
                    }
                    tickets.push((t, k, request, ticket));
                }
                let mut finished = Vec::with_capacity(tickets.len());
                for (t, k, request, ticket) in tickets {
                    // Generous bound: a hang here is the bug this test exists
                    // to catch.
                    let response = ticket
                        .wait_timeout(Duration::from_secs(90))
                        .unwrap_or_else(|_| panic!("client {client} request {k} never completed"));
                    finished.push((t, k, request, response));
                }
                served.lock().expect("served lock").extend(finished);
            });
        }
    });
    server.shutdown();

    let served = served.into_inner().expect("served lock");
    assert_eq!(
        served.len(),
        CLIENTS * REQUESTS_PER_CLIENT,
        "every accepted request must reach a terminal response"
    );

    // Bitwise parity of every Solved answer against a direct solve.
    let mut solved = 0usize;
    for (t, k, request, response) in &served {
        let tenant = &tenants[*t];
        match &response.outcome {
            Outcome::Finished(result) => {
                if result.status != Status::Solved {
                    continue;
                }
                solved += 1;
                let mut reference = tenant.template.clone();
                let q = request
                    .q
                    .clone()
                    .unwrap_or_else(|| tenant.problem.q().to_vec());
                reference.update_q(&q).expect("reference update_q");
                reference
                    .update_bounds(tenant.problem.l(), tenant.problem.u())
                    .expect("reference update_bounds");
                reference.reset();
                let expect = reference.solve();
                assert_eq!(expect.status, Status::Solved, "request {k}");
                assert_eq!(expect.iterations, result.iterations, "request {k}");
                let bitwise = result
                    .x
                    .iter()
                    .zip(&expect.x)
                    .all(|(a, b)| a.to_bits() == b.to_bits())
                    && result
                        .y
                        .iter()
                        .zip(&expect.y)
                        .all(|(a, b)| a.to_bits() == b.to_bits())
                    && result.obj_val.to_bits() == expect.obj_val.to_bits();
                assert!(
                    bitwise,
                    "served answer for request {k} (tenant {t}) is not bitwise equal"
                );
            }
            Outcome::Expired | Outcome::Cancelled => {}
            Outcome::Failed(e) => panic!("request {k} failed: {e}"),
        }
    }
    assert!(
        solved >= served.len() / 2,
        "most of the workload must actually solve (got {solved}/{})",
        served.len()
    );

    // The metrics pipeline agrees with the client-side picture.
    let metrics = server.metrics();
    let c = &metrics.counters;
    let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
    assert_eq!(load(&c.submitted), (CLIENTS * REQUESTS_PER_CLIENT) as u64);
    assert_eq!(load(&c.completed), load(&c.submitted));
    assert_eq!(load(&c.solved), solved as u64);
    assert_eq!(
        load(&c.rejected_queue_full),
        rejected.load(Ordering::Relaxed)
    );
    assert!(
        rejected.load(Ordering::Relaxed) > 0,
        "a queue of 4 under 4 clients must exercise QueueFull backpressure"
    );
    // Both backends were served, on separate shards.
    assert!(
        load(&c.shard_misses) >= 6,
        "one shard per registered pattern"
    );
}
