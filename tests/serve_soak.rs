//! Multi-threaded soak test of the serving runtime.
//!
//! Four client threads hammer a `QpServer` with a deterministic mixed
//! workload — tenants across all five benchmark domains and both KKT
//! backends, parametric perturbations, deadlines, cancellations — through
//! a deliberately small queue so `QueueFull` backpressure actually fires.
//! The acceptance bar:
//!
//! 1. every accepted request reaches a terminal response (no hangs, no
//!    lost tickets — the submitted/completed counters agree),
//! 2. every `Solved` answer is **bitwise** identical to a direct
//!    single-threaded solve of the identically parameterized problem,
//! 3. the server survives shutdown with all workers joined.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use mib::problems::{instance, Domain};
use mib::qp::{Algorithm, KktBackend, Problem, Settings, Solver, Status};
use mib::serve::{Outcome, QpServer, Request, Response, ServeConfig, SubmitError, TenantId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 40;
/// Portfolio (mixed-backend, router-dispatched) requests per client.
const ROUTED_PER_CLIENT: usize = 10;

struct TenantSpec {
    id: TenantId,
    problem: Problem,
    template: Solver,
}

/// Deterministic per-client RNG stream: clients generate disjoint,
/// reproducible workloads regardless of scheduling.
fn client_rng(client: usize) -> StdRng {
    StdRng::seed_from_u64(0x50a4 ^ ((client as u64) << 8))
}

fn perturbed_request(rng: &mut StdRng, problem: &Problem) -> Request {
    let mut request = Request::default();
    if rng.gen::<f64>() < 0.7 {
        let mut q = problem.q().to_vec();
        for qi in q.iter_mut() {
            *qi += 0.02 * (rng.gen::<f64>() - 0.5);
        }
        request.q = Some(q);
    }
    match rng.gen_range(0..10usize) {
        // Already expired or near-instant: exercises Expired / TimedOut.
        0 => request.deadline = Some(Duration::from_micros(rng.gen_range(1..30u64))),
        1 | 2 => request.deadline = Some(Duration::from_secs(20)),
        _ => {}
    }
    request
}

#[test]
fn soak_mixed_tenants_under_backpressure() {
    // Small queue so QueueFull genuinely fires under 4 clients.
    const QUEUE_CAPACITY: usize = 4;
    let server = QpServer::new(ServeConfig {
        queue_capacity: QUEUE_CAPACITY,
        workers_per_shard: 2,
        max_batch: 8,
        batch_window: Duration::from_micros(100),
        max_shards: 8,
        // Audit every third routed request on the sibling backend; the
        // acceptance bar below requires zero discrepancies.
        shadow_every: 3,
        shadow_rel_tol: 1e-2,
        obs: mib::serve::ObsConfig::default(),
    });

    // Mixed patterns: one tenant per domain on the direct backend, plus
    // one indirect-backend tenant (same structure, different shard).
    let mut tenants: Vec<TenantSpec> = Vec::new();
    for domain in [
        Domain::Portfolio,
        Domain::Lasso,
        Domain::Huber,
        Domain::Mpc,
        Domain::Svm,
    ] {
        let spec = instance(domain, 0);
        let settings = Settings::default();
        let id = server
            .register(spec.problem.clone(), settings.clone())
            .expect("register");
        let template = Solver::new(spec.problem.clone(), settings).expect("template");
        tenants.push(TenantSpec {
            id,
            problem: spec.problem,
            template,
        });
    }
    {
        let spec = instance(Domain::Portfolio, 1);
        let settings = Settings::with_backend(KktBackend::Indirect);
        let id = server
            .register(spec.problem.clone(), settings.clone())
            .expect("register indirect");
        let template = Solver::new(spec.problem.clone(), settings).expect("template");
        tenants.push(TenantSpec {
            id,
            problem: spec.problem,
            template,
        });
    }

    // A mixed-backend portfolio on a structure none of the plain tenants
    // use: ADMM and restarted-PDHG (PDQP) variants of the same problem,
    // dispatched through the telemetry router with shadow auditing on.
    let portfolio_spec = instance(Domain::Lasso, 1);
    // Tolerances tightened to 1e-5: at the default 1e-3 the two backends'
    // objectives can legitimately differ by more than the audit tolerance
    // on a just-terminated solve.
    let variant = |algorithm| {
        let mut s = Settings::with_algorithm(algorithm);
        s.eps_abs = 1e-5;
        s.eps_rel = 1e-5;
        s.max_iter = match algorithm {
            Algorithm::Admm => 50_000,
            Algorithm::Pdqp => 2_000_000,
        };
        s
    };
    let portfolio = server
        .register_portfolio(
            &portfolio_spec.problem,
            vec![variant(Algorithm::Admm), variant(Algorithm::Pdqp)],
        )
        .expect("register portfolio");
    // One reference template per backend (indexed by Algorithm::index()):
    // a routed answer is checked bitwise against the template of
    // whichever backend served it.
    let portfolio_templates = [
        Solver::new(portfolio_spec.problem.clone(), variant(Algorithm::Admm))
            .expect("admm portfolio template"),
        Solver::new(portfolio_spec.problem.clone(), variant(Algorithm::Pdqp))
            .expect("pdqp portfolio template"),
    ];

    let rejected = AtomicU64::new(0);
    let served: Mutex<Vec<(usize, usize, Request, Response)>> = Mutex::new(Vec::new());
    let routed_served: Mutex<Vec<(usize, Request, Response)>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for client in 0..CLIENTS {
            let server = &server;
            let tenants = &tenants;
            let served = &served;
            let routed_served = &routed_served;
            let rejected = &rejected;
            let portfolio_problem = &portfolio_spec.problem;
            s.spawn(move || {
                let mut rng = client_rng(client);
                let mut tickets = Vec::new();
                for k in 0..REQUESTS_PER_CLIENT {
                    let t = rng.gen_range(0..tenants.len());
                    let request = perturbed_request(&mut rng, &tenants[t].problem);
                    let cancel = rng.gen::<f64>() < 0.05;
                    let ticket = loop {
                        match server.submit(tenants[t].id, request.clone()) {
                            Ok(ticket) => break ticket,
                            Err(SubmitError::QueueFull { depth, capacity }) => {
                                assert!(depth >= 1);
                                assert_eq!(capacity, QUEUE_CAPACITY);
                                rejected.fetch_add(1, Ordering::Relaxed);
                                std::thread::yield_now();
                            }
                            Err(e) => panic!("client {client} submit failed: {e}"),
                        }
                    };
                    if cancel {
                        ticket.cancel();
                    }
                    tickets.push((t, k, request, ticket));
                }
                // Router-dispatched portfolio traffic: parametric-only
                // perturbations (no deadlines, no cancels) so every
                // accepted routed request actually solves and the shadow
                // audits always reach a verdict.
                let mut routed_tickets = Vec::new();
                for _ in 0..ROUTED_PER_CLIENT {
                    let mut request = Request::default();
                    let mut q = portfolio_problem.q().to_vec();
                    for qi in q.iter_mut() {
                        *qi += 0.02 * (rng.gen::<f64>() - 0.5);
                    }
                    request.q = Some(q);
                    let ticket = loop {
                        match server.submit_routed(portfolio, request.clone()) {
                            Ok(ticket) => break ticket,
                            Err(SubmitError::QueueFull { .. }) => {
                                rejected.fetch_add(1, Ordering::Relaxed);
                                std::thread::yield_now();
                            }
                            Err(e) => panic!("client {client} routed submit failed: {e}"),
                        }
                    };
                    routed_tickets.push((client, request, ticket));
                }
                let mut finished = Vec::with_capacity(tickets.len());
                for (t, k, request, ticket) in tickets {
                    // Generous bound: a hang here is the bug this test exists
                    // to catch.
                    let response = ticket
                        .wait_timeout(Duration::from_secs(90))
                        .unwrap_or_else(|_| panic!("client {client} request {k} never completed"));
                    finished.push((t, k, request, response));
                }
                served.lock().expect("served lock").extend(finished);
                let mut routed_finished = Vec::with_capacity(routed_tickets.len());
                for (c, request, ticket) in routed_tickets {
                    let response =
                        ticket
                            .wait_timeout(Duration::from_secs(90))
                            .unwrap_or_else(|_| {
                                panic!("client {client} routed request never completed")
                            });
                    routed_finished.push((c, request, response));
                }
                routed_served
                    .lock()
                    .expect("routed served lock")
                    .extend(routed_finished);
            });
        }
    });
    server.shutdown();

    let served = served.into_inner().expect("served lock");
    assert_eq!(
        served.len(),
        CLIENTS * REQUESTS_PER_CLIENT,
        "every accepted request must reach a terminal response"
    );

    // Bitwise parity of every Solved answer against a direct solve.
    let mut solved = 0usize;
    for (t, k, request, response) in &served {
        let tenant = &tenants[*t];
        match &response.outcome {
            Outcome::Finished(result) => {
                if result.status != Status::Solved {
                    continue;
                }
                solved += 1;
                let mut reference = tenant.template.clone();
                let q = request
                    .q
                    .clone()
                    .unwrap_or_else(|| tenant.problem.q().to_vec());
                reference.update_q(&q).expect("reference update_q");
                reference
                    .update_bounds(tenant.problem.l(), tenant.problem.u())
                    .expect("reference update_bounds");
                reference.reset();
                let expect = reference.solve();
                assert_eq!(expect.status, Status::Solved, "request {k}");
                assert_eq!(expect.iterations, result.iterations, "request {k}");
                let bitwise = result
                    .x
                    .iter()
                    .zip(&expect.x)
                    .all(|(a, b)| a.to_bits() == b.to_bits())
                    && result
                        .y
                        .iter()
                        .zip(&expect.y)
                        .all(|(a, b)| a.to_bits() == b.to_bits())
                    && result.obj_val.to_bits() == expect.obj_val.to_bits();
                assert!(
                    bitwise,
                    "served answer for request {k} (tenant {t}) is not bitwise equal"
                );
            }
            Outcome::Expired | Outcome::Cancelled => {}
            Outcome::Failed(e) => panic!("request {k} failed: {e}"),
        }
    }
    assert!(
        solved >= served.len() / 2,
        "most of the workload must actually solve (got {solved}/{})",
        served.len()
    );

    // Routed portfolio answers: every request solved, and each answer is
    // bitwise identical to a direct solve on the template of whichever
    // backend the router dispatched it to.
    let routed_served = routed_served.into_inner().expect("routed served lock");
    assert_eq!(routed_served.len(), CLIENTS * ROUTED_PER_CLIENT);
    let mut routed_by_backend = [0usize; 2];
    for (c, request, response) in &routed_served {
        let Outcome::Finished(result) = &response.outcome else {
            panic!("routed request from client {c} did not finish: {response:?}");
        };
        assert_eq!(result.status, Status::Solved, "routed request (client {c})");
        let backend_idx = result.algorithm.index();
        routed_by_backend[backend_idx] += 1;
        let mut reference = portfolio_templates[backend_idx].clone();
        let q = request.q.clone().expect("routed requests always perturb q");
        reference.update_q(&q).expect("routed reference update_q");
        reference
            .update_bounds(portfolio_spec.problem.l(), portfolio_spec.problem.u())
            .expect("routed reference update_bounds");
        reference.reset();
        let expect = reference.solve();
        assert_eq!(expect.status, Status::Solved);
        assert_eq!(expect.iterations, result.iterations);
        let bitwise = result
            .x
            .iter()
            .zip(&expect.x)
            .all(|(a, b)| a.to_bits() == b.to_bits())
            && result.obj_val.to_bits() == expect.obj_val.to_bits();
        assert!(
            bitwise,
            "routed {} answer (client {c}) is not bitwise equal to a direct solve",
            result.algorithm
        );
    }
    let routed_solved = routed_served.len();
    assert!(
        routed_by_backend.iter().all(|&n| n > 0),
        "the router must exercise both backends (admm/pdqp split: {routed_by_backend:?})"
    );

    // The metrics pipeline agrees with the client-side picture.
    let metrics = server.metrics();
    let c = &metrics.counters;
    let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
    assert_eq!(
        load(&c.submitted),
        (CLIENTS * (REQUESTS_PER_CLIENT + ROUTED_PER_CLIENT)) as u64
    );
    assert_eq!(load(&c.completed), load(&c.submitted));
    assert_eq!(load(&c.solved), (solved + routed_solved) as u64);
    assert_eq!(
        load(&c.rejected_queue_full),
        rejected.load(Ordering::Relaxed)
    );
    assert!(
        rejected.load(Ordering::Relaxed) > 0,
        "a queue of 4 under 4 clients must exercise QueueFull backpressure"
    );
    // Both backends were served, on separate shards.
    assert!(
        load(&c.shard_misses) >= 6,
        "one shard per registered pattern"
    );

    // Shadow auditing: a deterministic 1-in-3 sample of routed requests
    // was re-solved on the sibling backend, every audit reached a
    // verdict, and the backends never disagreed.
    assert_eq!(
        load(&c.routed_portfolio),
        (CLIENTS * ROUTED_PER_CLIENT) as u64
    );
    // Sampling ticks are consumed by QueueFull-rejected attempts too, so
    // the exact count varies with backpressure timing; it must fire, and
    // every audit must reach a verdict.
    let audits = load(&c.shadow_audits);
    assert!(audits >= 1, "shadow sampling must fire");
    assert_eq!(load(&c.shadow_mismatches), 0, "backends must agree");
    assert_eq!(load(&c.shadow_inconclusive), 0);
    assert_eq!(load(&c.shadow_agreements), audits);
    // Per-backend solve counters saw traffic from both algorithms
    // (primaries plus shadow re-solves).
    let m = &metrics.backend;
    for algo in Algorithm::all() {
        assert!(
            m.solves(algo) >= 1 && m.solved(algo) >= 1,
            "backend {algo} saw no traffic"
        );
    }
    assert!(
        m.solves(Algorithm::Admm) + m.solves(Algorithm::Pdqp)
            >= (CLIENTS * ROUTED_PER_CLIENT) as u64 + audits,
        "routed primaries and shadow solves all feed the backend counters"
    );
}
