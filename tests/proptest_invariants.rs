//! Property-based tests on the core data structures and the
//! compiler/machine contract.

use mib::compiler::elementwise::load_vec;
use mib::compiler::permute::permute;
use mib::compiler::spmv::{mac_spmv, SpmvOptions};
use mib::compiler::{schedule, Allocator, KernelBuilder, ScheduleOptions};
use mib::core::hbm::HbmStream;
use mib::core::machine::{HazardPolicy, Machine};
use mib::core::MibConfig;
use mib::sparse::ldl::LdlSymbolic;
use mib::sparse::order::Ordering;
use mib::sparse::{CscMatrix, Permutation};
use proptest::prelude::*;

/// Strategy: a random sparse matrix as triplets.
fn sparse_matrix(max_dim: usize) -> impl Strategy<Value = CscMatrix> {
    (1..max_dim, 1..max_dim).prop_flat_map(|(nr, nc)| {
        proptest::collection::vec((0..nr, 0..nc, -10.0f64..10.0), 0..(2 * nr * nc).min(64))
            .prop_map(move |trips| {
                let rows: Vec<usize> = trips.iter().map(|t| t.0).collect();
                let cols: Vec<usize> = trips.iter().map(|t| t.1).collect();
                let vals: Vec<f64> = trips.iter().map(|t| t.2).collect();
                CscMatrix::from_triplet_parts(nr, nc, &rows, &cols, &vals).unwrap()
            })
    })
}

/// Strategy: a random SPD matrix (diagonally dominant), upper triangle.
fn spd_upper(max_n: usize) -> impl Strategy<Value = CscMatrix> {
    (2..max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n, -1.0f64..1.0), 0..3 * n).prop_map(move |edges| {
            let mut rows = Vec::new();
            let mut cols = Vec::new();
            let mut vals = Vec::new();
            for i in 0..n {
                rows.push(i);
                cols.push(i);
                vals.push(n as f64 + 4.0);
            }
            for (a, b, v) in edges {
                if a != b {
                    rows.push(a.min(b));
                    cols.push(a.max(b));
                    vals.push(v / 2.0); // duplicates sum; stay dominant
                }
            }
            CscMatrix::from_triplet_parts(n, n, &rows, &cols, &vals).unwrap()
        })
    })
}

fn dense_mul(m: &CscMatrix, x: &[f64]) -> Vec<f64> {
    let d = m.to_dense();
    (0..m.nrows())
        .map(|i| (0..m.ncols()).map(|j| d[i * m.ncols() + j] * x[j]).sum())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// CSC ↔ dense and CSC ↔ CSR round trips preserve the matrix.
    #[test]
    fn csc_round_trips(m in sparse_matrix(12)) {
        let pruned = m.prune();
        let dense = CscMatrix::from_dense(m.nrows(), m.ncols(), &m.to_dense());
        prop_assert_eq!(&dense, &pruned);
        prop_assert_eq!(&m.to_csr().to_csc(), &m);
        prop_assert_eq!(&m.transpose().transpose(), &m);
    }

    /// SpMV agrees with the dense computation, and `Aᵀ` duality holds.
    #[test]
    fn spmv_matches_dense(m in sparse_matrix(12), seed in 0u64..1000) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x: Vec<f64> = (0..m.ncols()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let y = m.mul_vec(&x);
        let want = dense_mul(&m, &x);
        for (a, b) in y.iter().zip(&want) {
            prop_assert!((a - b).abs() < 1e-9);
        }
        // <Ax, w> == <x, Aᵀw>
        let w: Vec<f64> = (0..m.nrows()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let lhs = mib::sparse::vector::dot(&y, &w);
        let rhs = mib::sparse::vector::dot(&x, &m.tr_mul_vec(&w));
        prop_assert!((lhs - rhs).abs() < 1e-8 * (1.0 + lhs.abs()));
    }

    /// LDLᵀ factorization solves `Ax = b` for any SPD matrix under any
    /// ordering.
    #[test]
    fn ldl_solves_spd(a in spd_upper(14), seed in 0u64..1000) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = a.ncols();
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        for ord in [Ordering::Natural, Ordering::MinDegree, Ordering::Rcm] {
            let solver = mib::sparse::ldl::LdlSolver::new(&a, ord).unwrap();
            let x = solver.solve(&b);
            let ax = a.sym_upper_mul_vec(&x);
            for (u, v) in ax.iter().zip(&b) {
                prop_assert!((u - v).abs() < 1e-7, "ordering {:?}", ord);
            }
        }
    }

    /// The elimination tree's column counts equal the true factor fill.
    #[test]
    fn etree_counts_match_numeric_fill(a in spd_upper(14)) {
        let sym = LdlSymbolic::new(&a).unwrap();
        let f = sym.factor(&a).unwrap();
        prop_assert_eq!(sym.l_nnz(), f.l_nnz());
    }

    /// Permutations round-trip through apply/apply_inv.
    #[test]
    fn permutation_round_trip(perm in proptest::collection::vec(0usize..32, 1..32)) {
        let n = perm.len();
        let mut sorted: Vec<usize> = (0..n).collect();
        // Build a valid permutation from the random ranks.
        sorted.sort_by_key(|&i| (perm[i], i));
        let p = Permutation::from_vec(sorted).unwrap();
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        prop_assert_eq!(p.apply_inv(&p.apply(&x)), x.clone());
        let double_inverse = p.inverse().inverse();
        prop_assert_eq!(double_inverse.perm(), p.perm());
    }

    /// Compiled permutation programs executed on the machine realize the
    /// permutation exactly, hazard-free.
    #[test]
    fn machine_permutation_is_exact(ranks in proptest::collection::vec(0u32..1000, 2..40)) {
        let n = ranks.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| (ranks[i], i));
        let p = Permutation::from_vec(order).unwrap();
        let config = MibConfig { width: 8, bank_depth: 512, clock_hz: 1e6 };
        let data: Vec<f64> = (0..n).map(|i| i as f64 + 0.25).collect();
        let mut alloc = Allocator::new(config.width);
        let src = alloc.alloc(n);
        let dst = alloc.alloc(n);
        let mut b = KernelBuilder::new("perm", config.width, config.latency());
        load_vec(&mut b, src, &data);
        permute(&mut b, src, dst, &p);
        let s = schedule(&b.finish(), ScheduleOptions::default());
        let mut m = Machine::new(config);
        m.run(&s.program, &mut HbmStream::new(s.hbm.clone()), HazardPolicy::Strict).unwrap();
        let got: Vec<f64> = (0..n).map(|k| m.regs().read(dst.bank(k), dst.addr(k)).unwrap()).collect();
        prop_assert_eq!(got, p.apply(&data));
    }

    /// Compiled SpMV programs executed on the machine match the reference
    /// product bit-for-bit under strict hazard checking, regardless of the
    /// sparsity pattern.
    #[test]
    fn machine_spmv_is_exact(a in sparse_matrix(10), seed in 0u64..1000) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x: Vec<f64> = (0..a.ncols()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let config = MibConfig { width: 8, bank_depth: 2048, clock_hz: 1e6 };
        let mut alloc = Allocator::new(config.width);
        let xl = alloc.alloc(a.ncols());
        let yl = alloc.alloc(a.nrows());
        let mut b = KernelBuilder::new("spmv", config.width, config.latency());
        load_vec(&mut b, xl, &x);
        mac_spmv(&mut b, &mut alloc, &a.to_csr(), xl, yl, false, SpmvOptions::default());
        let s = schedule(&b.finish(), ScheduleOptions::default());
        let mut m = Machine::new(config);
        m.run(&s.program, &mut HbmStream::new(s.hbm.clone()), HazardPolicy::Strict).unwrap();
        let want = a.mul_vec(&x);
        for (e, w) in want.iter().enumerate() {
            let g = m.regs().read(yl.bank(e), yl.addr(e)).unwrap();
            prop_assert!((g - w).abs() < 1e-10, "row {}: {} vs {}", e, g, w);
        }
    }

    /// Box projection is idempotent and bounded.
    #[test]
    fn projection_properties(
        x in proptest::collection::vec(-100.0f64..100.0, 1..40),
        seed in 0u64..1000,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let bounds: Vec<(f64, f64)> = (0..x.len())
            .map(|_| {
                let a: f64 = rng.gen_range(-50.0..50.0);
                let b: f64 = rng.gen_range(-50.0..50.0);
                (a.min(b), a.max(b))
            })
            .collect();
        let l: Vec<f64> = bounds.iter().map(|b| b.0).collect();
        let u: Vec<f64> = bounds.iter().map(|b| b.1).collect();
        let p = mib::sparse::vector::project_box(&x, &l, &u);
        let pp = mib::sparse::vector::project_box(&p, &l, &u);
        prop_assert_eq!(&p, &pp);
        for ((v, &lo), &hi) in p.iter().zip(&l).zip(&u) {
            prop_assert!(*v >= lo && *v <= hi);
        }
    }
}
