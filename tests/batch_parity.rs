//! Acceptance test for the batched multi-problem frontend: a batch of 64+
//! same-pattern portfolio problems solved on 4 worker threads must match a
//! sequential run **bitwise** — result-for-result, field-for-field.

use mib::problems::portfolio;
use mib::qp::{BatchSolver, BatchUpdate, KktBackend, Settings, Status};

const BATCH: usize = 64;

/// One scenario per batch entry: perturbed expected returns (the `q`
/// vector), the per-scenario data of the paper's portfolio backtest.
fn return_scenarios(base_q: &[f64]) -> Vec<BatchUpdate> {
    (0..BATCH)
        .map(|k| {
            let q = base_q
                .iter()
                .enumerate()
                .map(|(j, &v)| v * (1.0 + 0.02 * (k as f64 % 7.0)) + 1e-3 * (k + j) as f64)
                .collect();
            BatchUpdate::with_q(q)
        })
        .collect()
}

fn assert_batch_parity(backend: KktBackend) {
    let problem = portfolio(30, 5, 11);
    let settings = Settings {
        backend,
        ..Settings::default()
    };
    let batch = BatchSolver::new(problem, settings)
        .expect("setup")
        .with_threads(4);
    let updates = return_scenarios(batch.template().problem().q());
    assert!(updates.len() >= 64);

    let parallel = batch.solve_batch(&updates).expect("parallel batch");
    let sequential = batch.solve_sequential(&updates).expect("sequential batch");

    assert_eq!(parallel.len(), updates.len());
    for (k, (par, seq)) in parallel.iter().zip(&sequential).enumerate() {
        assert_eq!(
            par.status,
            Status::Solved,
            "scenario {k} ({backend:?}) did not solve"
        );
        assert_eq!(par.status, seq.status, "scenario {k}");
        assert_eq!(
            par.x, seq.x,
            "scenario {k}: x differs between parallel and sequential"
        );
        assert_eq!(par.y, seq.y, "scenario {k}: y differs");
        assert_eq!(par.z, seq.z, "scenario {k}: z differs");
        assert_eq!(
            par.iterations, seq.iterations,
            "scenario {k}: iteration count differs"
        );
        assert!(
            par.obj_val.to_bits() == seq.obj_val.to_bits(),
            "scenario {k}: objective differs bitwise"
        );
    }
}

#[test]
fn direct_batch_of_64_matches_sequential_bitwise() {
    assert_batch_parity(KktBackend::Direct);
}

#[test]
fn indirect_batch_of_64_matches_sequential_bitwise() {
    assert_batch_parity(KktBackend::Indirect);
}

/// Thread-count invariance: the same batch on 1, 2, 3 and 8 threads gives
/// identical results (chunk boundaries move; answers must not).
#[test]
fn results_do_not_depend_on_thread_count() {
    let problem = portfolio(20, 4, 5);
    let batch = BatchSolver::new(problem, Settings::default()).expect("setup");
    let updates = return_scenarios(batch.template().problem().q());
    let reference = batch.solve_sequential(&updates).expect("sequential");
    for threads in [1, 2, 3, 8] {
        let b = batch.clone().with_threads(threads);
        let got = b.solve_batch(&updates).expect("parallel");
        for (k, (g, r)) in got.iter().zip(&reference).enumerate() {
            assert_eq!(g.x, r.x, "scenario {k} differs on {threads} threads");
            assert_eq!(
                g.iterations, r.iterations,
                "scenario {k} on {threads} threads"
            );
        }
    }
}
