//! Exactness proof for the static timing analyzer, over the benchmark
//! suite.
//!
//! [`mib::verify::timing::predict`] claims to reproduce
//! [`Machine::run_with_timeline`] **bitwise** without computing any
//! functional state: total cycles, every `ExecStats` counter, and the
//! per-kind issue/stall timeline buckets. This test replays the
//! verify_schedules program set — sampled benchmark instances of the
//! five domains, both KKT backends, all compiled programs — and asserts
//! full-struct equality under both hazard policies, plus agreement
//! between the compiler's [`static_cost`] oracle and the simulator.
//!
//! Debug-mode lowering re-verifies every schedule, so the default run
//! samples one instance per domain (40 programs); set `MIB_TIMING_FULL=1`
//! to replay the full 120-program verify_schedules sample in release
//! mode (`scripts/verify_schedules.sh` gates the same set every run).

use mib::compiler::lower::lower;
use mib::compiler::static_cost;
use mib::core::hbm::HbmStream;
use mib::core::machine::{HazardPolicy, Machine};
use mib::core::MibConfig;
use mib::problems::{instance, Domain, INSTANCES_PER_DOMAIN};
use mib::qp::{KktBackend, Settings};
use mib::verify::critical_path::critical_path;
use mib::verify::timing;

#[test]
fn static_prediction_is_bitwise_exact_across_the_suite() {
    let config = MibConfig::c32();
    let full = std::env::var_os("MIB_TIMING_FULL").is_some();
    let indices: &[usize] = if full {
        &[0, 9, INSTANCES_PER_DOMAIN - 1]
    } else {
        &[0]
    };
    let mut programs_checked = 0usize;
    for domain in Domain::all() {
        for &index in indices {
            let inst = instance(domain, index);
            for backend in [KktBackend::Direct, KktBackend::Indirect] {
                let settings = Settings::with_backend(backend);
                let lowered =
                    lower(&inst.problem, &settings, config).expect("benchmark instance lowers");
                let mut m = Machine::new(config);
                for (name, s) in [
                    ("load", &lowered.load),
                    ("setup", &lowered.setup),
                    ("iteration", &lowered.iteration),
                    ("pcg", &lowered.pcg_iteration),
                    ("check", &lowered.check),
                ] {
                    if s.program.is_empty() {
                        continue;
                    }
                    let label = format!("{domain}[{index}]/{backend:?}/{name}");
                    for policy in [HazardPolicy::Strict, HazardPolicy::Stall] {
                        let predicted = timing::predict(&s.program, s.hbm.len(), &config, policy)
                            .unwrap_or_else(|e| panic!("{label}: prediction failed: {e}"));
                        let mut hbm = HbmStream::new(s.hbm.clone());
                        let (stats, tl) = m
                            .run_with_timeline(&s.program, &mut hbm, policy)
                            .unwrap_or_else(|e| panic!("{label}: {e}"));
                        assert_eq!(
                            predicted.stats, stats,
                            "{label} ({policy:?}): predicted stats must equal the machine's"
                        );
                        assert_eq!(
                            predicted.timeline, tl,
                            "{label} ({policy:?}): predicted attribution must equal the \
                             machine's, bucket by bucket"
                        );
                    }
                    // The compiler's cost oracle is the same predictor; its
                    // cycles and the critical path's total must agree with
                    // the simulator too.
                    let cost = static_cost(s, &config).expect("certified schedule has a cost");
                    let (stats, _) = m
                        .run_with_timeline(
                            &s.program,
                            &mut HbmStream::new(s.hbm.clone()),
                            HazardPolicy::Strict,
                        )
                        .unwrap();
                    assert_eq!(cost.cycles, stats.cycles, "{label}: oracle cycles");
                    assert_eq!(cost.slots, stats.slots, "{label}: oracle slots");
                    assert_eq!(cost.stall_cycles, 0, "{label}: certified => no stalls");
                    let cp = critical_path(&s.program, &config);
                    assert_eq!(cp.cycles, stats.cycles, "{label}: critical-path total");
                    assert_eq!(cp.stall_cycles, 0, "{label}: certified => tight hops only");
                    programs_checked += 1;
                }
            }
        }
    }
    // 5 domains x indices x (direct: 4 programs + indirect: 4 programs).
    let expected = 5 * indices.len() * 8;
    assert_eq!(
        programs_checked, expected,
        "program set unexpectedly changed"
    );
}
