//! End-to-end tail-sampling tests: the flight recorder retains a full
//! span tree — synthetic queue wait, serve-side solve phases, solver
//! kernels — for requests that miss their deadline, keyed by the
//! *client-supplied* trace id; and thread-buffer overflow surfaces as a
//! monotonic counter in the metrics snapshot.
//!
//! Constructing a [`QpServer`] with the obs plane enabled flips the
//! process-global mib-trace flag, so this binary owns that flag for its
//! lifetime (cargo runs test binaries in separate processes) and the
//! tests inside serialize on a local lock — the same discipline as
//! `tests/trace_pipeline.rs`.

use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use mib::problems::portfolio;
use mib::qp::{Settings, Status};
use mib::serve::{ObsConfig, Outcome, QpServer, Request, ServeConfig};
use mib::trace::{Category, Event, KeepReason};

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn hold() -> MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

#[test]
fn deadline_missed_request_retains_queue_solve_and_kernel_spans() {
    let _guard = hold();
    let server = QpServer::new(ServeConfig {
        obs: ObsConfig {
            enabled: true,
            // Nothing is "slow": only deadline misses (and sheds and
            // cancellations) should be retained.
            slow_us: u64::MAX,
            ..ObsConfig::default()
        },
        ..ServeConfig::default()
    });
    // Unattainable tolerances never converge, so the solve provably
    // outlives the 20ms deadline and exits at an in-loop deadline check.
    let tenant = server
        .register(
            portfolio(120, 20, 7),
            Settings {
                eps_abs: 1e-300,
                eps_rel: 0.0,
                max_iter: usize::MAX,
                check_interval: 16,
                ..Settings::default()
            },
        )
        .unwrap();

    let trace_id: u128 = (0x0b5e_u128 << 64) | 0xf11e_7001;
    let ticket = server
        .submit(
            tenant,
            Request {
                deadline: Some(Duration::from_millis(20)),
                ..Request::default()
            }
            .traced(trace_id),
        )
        .unwrap();
    let response = ticket.wait();
    match &response.outcome {
        Outcome::Finished(r) => assert_eq!(r.status, Status::TimedOut),
        other => panic!("expected an in-solve deadline miss, got {other:?}"),
    }

    let obs = server.obs();
    let record = obs
        .flight()
        .lookup(trace_id)
        .expect("deadline-missed request must be retained under the client id");
    assert_eq!(record.reason, KeepReason::DeadlineMissed);

    let begins: Vec<&str> = record
        .records
        .iter()
        .filter_map(|r| match &r.event {
            Event::Begin { name, .. } => Some(*name),
            _ => None,
        })
        .collect();
    for phase in ["queue_wait", "request", "solve_request", "solve"] {
        assert!(
            begins.contains(&phase),
            "flight trace missing the {phase} span; got {begins:?}"
        );
    }
    assert!(
        record
            .records
            .iter()
            .any(|r| r.event.category() == Category::Kernel),
        "flight trace must reach down into kernel spans"
    );

    // The Chrome export carries the whole tree under the formatted id.
    let json = record.to_chrome_json();
    for needle in ["queue_wait", "solve_request", "traceEvents"] {
        assert!(json.contains(needle), "chrome export missing {needle}");
    }

    server.shutdown();
}

#[test]
fn trace_buffer_overflow_is_counted_and_rendered() {
    let _guard = hold();
    mib::trace::clear();
    mib::trace::enable();
    let before = mib::trace::total_dropped();
    for _ in 0..(mib::trace::BUFFER_CAPACITY + 64) {
        mib::trace::record(Event::Mark {
            name: "overflow_probe",
            cat: Category::Serve,
            value: 1.0,
        });
    }
    let after = mib::trace::total_dropped();
    assert!(
        after >= before + 64,
        "overflowing the thread buffer must count drops ({before} -> {after})"
    );
    mib::trace::clear();

    // The serve metrics snapshot exposes the same monotonic counter.
    let server = QpServer::new(ServeConfig::default());
    let text = server.metrics().render();
    let line = text
        .lines()
        .find(|l| l.starts_with("mib_trace_dropped_records_total "))
        .expect("render must expose the trace drop counter");
    let rendered: u64 = line
        .split_whitespace()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .expect("counter value parses");
    assert!(
        rendered >= after,
        "rendered drop counter ({rendered}) must cover the observed drops ({after})"
    );
    server.shutdown();
}
