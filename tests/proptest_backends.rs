//! Property tests parameterized over the solver backends.
//!
//! The [`QpBackend`](mib::qp::QpBackend) abstraction must not weaken the
//! determinism contract the serving layer is built on: for **every**
//! algorithm, a pooled solver that has served arbitrary earlier traffic
//! and is then re-parameterized, `reset()` and warm-started from a prior
//! result must produce answers **bitwise** identical to a fresh clone of
//! the template given the same updates. `warm_start_from` must reject
//! mismatched dimensions without touching the iterates.

use mib::problems::random_qp;
use mib::qp::{Algorithm, QpError, Settings, Solver};
use proptest::prelude::*;

/// Suite-sized settings for one backend: PDQP takes many more (cheap)
/// first-order iterations than factorized ADMM, so its cap is higher.
fn settings_for(algorithm: Algorithm) -> Settings {
    let mut s = Settings::with_algorithm(algorithm);
    s.max_iter = match algorithm {
        Algorithm::Admm => 4_000,
        Algorithm::Pdqp => 200_000,
    };
    s
}

fn assert_bitwise(a: &mib::qp::SolveResult, b: &mib::qp::SolveResult, what: &str) {
    assert_eq!(a.status, b.status, "{what}: status");
    assert_eq!(a.iterations, b.iterations, "{what}: iterations");
    assert_eq!(a.algorithm, b.algorithm, "{what}: algorithm");
    assert!(
        a.x.iter()
            .zip(&b.x)
            .all(|(p, q)| p.to_bits() == q.to_bits()),
        "{what}: x is not bitwise equal"
    );
    assert!(
        a.y.iter()
            .zip(&b.y)
            .all(|(p, q)| p.to_bits() == q.to_bits()),
        "{what}: y is not bitwise equal"
    );
    assert_eq!(
        a.obj_val.to_bits(),
        b.obj_val.to_bits(),
        "{what}: obj_val is not bitwise equal"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Pooled-solver invariant, per backend: after serving a perturbed
    /// request, `update_q` + `reset` + `warm_start_from` a donor result
    /// reproduces a fresh template clone bitwise.
    #[test]
    fn pooled_reset_and_warm_start_match_fresh_clone(
        n in 2usize..7,
        m in 2usize..9,
        seed in 0u64..10_000,
    ) {
        let problem = random_qp(n, m, 0.6, seed);
        let base_q = problem.q().to_vec();
        for algorithm in Algorithm::all() {
            let template = Solver::new(problem.clone(), settings_for(algorithm)).unwrap();
            prop_assert_eq!(template.settings().algorithm, algorithm);

            // A donor solution to warm-start from.
            let donor = template.clone().solve();

            // The pooled solver serves an unrelated perturbed request
            // first, dirtying its iterates and workspace.
            let mut pooled = template.clone();
            let dirty_q: Vec<f64> = base_q.iter().map(|&v| v - 0.3).collect();
            pooled.update_q(&dirty_q).unwrap();
            let _ = pooled.solve();

            // Both solvers now serve the same request from the same warm
            // start; the pooled one must forget its history completely.
            let qk: Vec<f64> = base_q.iter().map(|&v| v + 0.2).collect();
            pooled.update_q(&qk).unwrap();
            pooled.reset();
            pooled.warm_start_from(&donor).unwrap();
            let served = pooled.solve();

            let mut fresh = template.clone();
            fresh.update_q(&qk).unwrap();
            fresh.reset();
            fresh.warm_start_from(&donor).unwrap();
            let expect = fresh.solve();

            assert_bitwise(&served, &expect, algorithm.name());
        }
    }

    /// Dimension validation, per backend: a donor result from a
    /// different-shaped problem is rejected with `QpError::InvalidProblem`
    /// and the solve proceeds exactly as if the call never happened.
    #[test]
    fn mismatched_warm_start_is_rejected_and_harmless(
        n in 2usize..6,
        m in 2usize..8,
        seed in 0u64..10_000,
    ) {
        let problem = random_qp(n, m, 0.6, seed);
        let foreign = random_qp(n + 1, m + 2, 0.6, seed ^ 0xbeef);
        for algorithm in Algorithm::all() {
            let template = Solver::new(problem.clone(), settings_for(algorithm)).unwrap();
            let foreign_donor =
                Solver::new(foreign.clone(), settings_for(algorithm)).unwrap().solve();

            let mut solver = template.clone();
            let err = solver.warm_start_from(&foreign_donor).unwrap_err();
            prop_assert!(
                matches!(err, QpError::InvalidProblem(_)),
                "expected InvalidProblem, got {err:?}"
            );
            let after_rejection = solver.solve();
            let untouched = template.clone().solve();
            assert_bitwise(&after_rejection, &untouched, algorithm.name());
        }
    }
}
