//! Property tests for the static timing analyzer: the prediction must
//! move **exactly** as the machine moves, under arbitrary program
//! mutations.
//!
//! Three attack surfaces:
//! - random op-tuple programs (every hazard class, both hazard
//!   policies): prediction equals simulation bitwise on acceptance, and
//!   reproduces the identical fault on rejection;
//! - seeded mutations of a known-good compiled schedule — slot swaps,
//!   inserted bubbles, dropped HBM words — each must shift the predicted
//!   cycles exactly as it shifts the measured cycles;
//! - `ProgramCache` round-trips: a cache-hit schedule must predict
//!   bitwise identically to the freshly lowered one.

use mib::compiler::elementwise::load_vec;
use mib::compiler::spmv::{mac_spmv, SpmvOptions};
use mib::compiler::{schedule, Allocator, KernelBuilder, ProgramCache, ScheduleOptions};
use mib::core::hbm::HbmStream;
use mib::core::instruction::{LaneSource, LaneWrite, NetInstruction, WriteMode};
use mib::core::machine::{HazardPolicy, Machine};
use mib::core::MibConfig;
use mib::sparse::CscMatrix;
use mib::verify::timing;
use proptest::prelude::*;

fn config() -> MibConfig {
    MibConfig {
        width: 8,
        bank_depth: 32,
        clock_hz: 1e6,
    }
}

/// One random op as an integer tuple: (kind, lane, src addr, dst addr,
/// preceding nop gap). Same interpretation as `tests/proptest_verify.rs`:
/// register move, stream load, accumulating (RMW) write, latch load, and
/// a latch-multiplied read — every hazard class the predictor replays.
type OpTuple = (usize, usize, usize, usize, usize);

fn build_program(ops: &[OpTuple], cfg: &MibConfig) -> Vec<NetInstruction> {
    let mut program = Vec::new();
    for &(kind, lane, src, dst, gap) in ops {
        let lane = lane % cfg.width;
        let src = src % cfg.bank_depth;
        let dst = dst % cfg.bank_depth;
        for _ in 0..gap {
            program.push(NetInstruction::nop(cfg.width));
        }
        let mut i = NetInstruction::nop(cfg.width);
        let (input, write) = match kind % 5 {
            0 => (
                LaneSource::Reg { addr: src },
                LaneWrite {
                    addr: dst,
                    mode: WriteMode::Store,
                },
            ),
            1 => (
                LaneSource::Stream,
                LaneWrite {
                    addr: dst,
                    mode: WriteMode::Store,
                },
            ),
            2 => (
                LaneSource::Reg { addr: src },
                LaneWrite {
                    addr: dst,
                    mode: WriteMode::Add,
                },
            ),
            3 => (
                LaneSource::Reg { addr: src },
                LaneWrite {
                    addr: 0,
                    mode: WriteMode::Latch,
                },
            ),
            _ => (
                LaneSource::RegTimesLatch {
                    addr: src,
                    negate: false,
                },
                LaneWrite {
                    addr: dst,
                    mode: WriteMode::Store,
                },
            ),
        };
        i.set_input(lane, input);
        i.route(lane, lane);
        i.set_write(lane, write);
        program.push(i);
    }
    program
}

/// Asserts the prediction equals the machine outcome exactly for one
/// (program, stream, policy) triple: full stats + timeline equality on
/// acceptance, identical error value on rejection. Returns the agreed
/// cycle count when the program is accepted.
fn assert_exact(
    program: &[NetInstruction],
    hbm: &[f64],
    cfg: &MibConfig,
    policy: HazardPolicy,
) -> Option<u64> {
    let predicted = timing::predict(program, hbm.len(), cfg, policy);
    let simulated =
        Machine::new(*cfg).run_with_timeline(program, &mut HbmStream::new(hbm.to_vec()), policy);
    match (predicted, simulated) {
        (Ok(p), Ok((stats, tl))) => {
            assert_eq!(p.stats, stats, "stats must match bitwise ({policy:?})");
            assert_eq!(p.timeline, tl, "attribution must match ({policy:?})");
            Some(stats.cycles)
        }
        (Err(pe), Err(me)) => {
            assert_eq!(pe, me, "predicted fault must be the machine's fault");
            None
        }
        (p, m) => panic!("verdicts diverge ({policy:?}): predicted {p:?}, machine {m:?}"),
    }
}

/// A known-good compiled schedule (SpMV over a small sparse matrix) used
/// as the mutation substrate.
fn compiled_spmv() -> (Vec<NetInstruction>, Vec<f64>, MibConfig) {
    let cfg = MibConfig {
        width: 8,
        bank_depth: 2048,
        clock_hz: 1e6,
    };
    let rows = [0usize, 0, 1, 1, 2, 3, 3, 4, 5, 5];
    let cols = [0usize, 3, 1, 2, 0, 3, 4, 2, 1, 4];
    let vals = [1.5, -2.0, 0.5, 3.0, -1.0, 2.5, 0.25, -0.75, 1.25, -3.5];
    let a = CscMatrix::from_triplet_parts(6, 5, &rows, &cols, &vals).unwrap();
    let x: Vec<f64> = (0..5).map(|i| i as f64 - 1.5).collect();
    let mut alloc = Allocator::new(cfg.width);
    let xl = alloc.alloc(5);
    let yl = alloc.alloc(6);
    let mut b = KernelBuilder::new("spmv", cfg.width, cfg.latency());
    load_vec(&mut b, xl, &x);
    mac_spmv(
        &mut b,
        &mut alloc,
        &a.to_csr(),
        xl,
        yl,
        false,
        SpmvOptions::default(),
    );
    let s = schedule(&b.finish(), ScheduleOptions::default());
    (s.program, s.hbm, cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random op-tuple programs under both policies: the prediction is
    /// exact whether the program stalls, runs clean, or faults.
    #[test]
    fn random_programs_predict_exactly(
        ops in proptest::collection::vec(
            (0usize..5, 0usize..8, 0usize..32, 0usize..32, 0usize..4),
            1..24,
        ),
        surplus in 0usize..2,
    ) {
        let cfg = config();
        let program = build_program(&ops, &cfg);
        let consumed: usize = program.iter().map(|i| i.stream_words()).sum();
        let hbm: Vec<f64> = (0..consumed + surplus).map(|k| k as f64 + 0.5).collect();
        assert_exact(&program, &hbm, &cfg, HazardPolicy::Stall);
        assert_exact(&program, &hbm, &cfg, HazardPolicy::Strict);
    }

    /// Slot-swap mutations of the compiled substrate: whatever the swap
    /// does to the machine (reorder cleanly, introduce stalls, fault),
    /// the prediction does the identical thing.
    #[test]
    fn slot_swap_mutations_predict_exactly(a in 0usize..1000, b in 0usize..1000) {
        let (mut program, hbm, cfg) = compiled_spmv();
        let n = program.len();
        let (a, b) = (a % n, b % n);
        program.swap(a, b);
        assert_exact(&program, &hbm, &cfg, HazardPolicy::Stall);
        assert_exact(&program, &hbm, &cfg, HazardPolicy::Strict);
    }

    /// Inserted bubbles: a nop in a certified (stall-free) schedule moves
    /// both the machine and the prediction by exactly one cycle.
    #[test]
    fn inserted_bubble_moves_prediction_by_one(k in 0usize..1000) {
        let (mut program, hbm, cfg) = compiled_spmv();
        let baseline = assert_exact(&program, &hbm, &cfg, HazardPolicy::Stall)
            .expect("substrate is clean");
        let k = k % (program.len() + 1);
        program.insert(k, NetInstruction::nop(cfg.width));
        let mutated = assert_exact(&program, &hbm, &cfg, HazardPolicy::Stall)
            .expect("a bubble cannot fault a clean schedule");
        prop_assert_eq!(mutated, baseline + 1);
    }

    /// Dropped HBM words: the prediction faults with the machine's exact
    /// `StreamExhausted` error — same instruction, same value.
    #[test]
    fn dropped_hbm_words_predict_the_same_fault(drop in 1usize..4) {
        let (program, mut hbm, cfg) = compiled_spmv();
        prop_assert!(hbm.len() >= drop, "substrate streams enough words");
        hbm.truncate(hbm.len() - drop);
        let verdict = assert_exact(&program, &hbm, &cfg, HazardPolicy::Stall);
        prop_assert!(verdict.is_none(), "short stream must fault both sides");
        assert_exact(&program, &hbm, &cfg, HazardPolicy::Strict);
    }
}

/// The unmutated substrate is clean and predicts exactly under both
/// policies — the mutation properties above start from a real baseline.
#[test]
fn unmutated_substrate_predicts_exactly() {
    let (program, hbm, cfg) = compiled_spmv();
    let stall = assert_exact(&program, &hbm, &cfg, HazardPolicy::Stall);
    let strict = assert_exact(&program, &hbm, &cfg, HazardPolicy::Strict);
    assert!(stall.is_some() && stall == strict);
}

/// `ProgramCache` round-trip: a cache hit clones the compiled schedules,
/// and the static prediction over the cloned program must be bitwise
/// identical to the fresh one — stats, timeline buckets, and per-slot
/// issue cycles.
#[test]
fn cache_hit_predicts_bitwise_identically() {
    let p_mat = CscMatrix::from_dense(2, 2, &[4.0, 1.0, 0.0, 2.0])
        .upper_triangle()
        .unwrap();
    let a = CscMatrix::from_dense(3, 2, &[1.0, 1.0, 1.0, 0.0, 0.0, 1.0]);
    let problem = |q0: f64| {
        mib::qp::Problem::new(
            p_mat.clone(),
            vec![q0, 1.0],
            a.clone(),
            vec![1.0, 0.0, 0.0],
            vec![1.0, 0.7, 0.7],
        )
        .unwrap()
    };
    let config = MibConfig {
        width: 8,
        bank_depth: 1 << 14,
        clock_hz: 1e6,
    };
    let settings = mib::qp::Settings::default();
    let mut cache = ProgramCache::new();
    let fresh = cache
        .lower_cached(&problem(1.0), &settings, config)
        .unwrap();
    // Same sparsity pattern, new values: this is the cache-hit path.
    let hit = cache
        .lower_cached(&problem(-2.0), &settings, config)
        .unwrap();
    assert_eq!(cache.stats().hits, 1, "second lowering must hit the cache");
    for (name, f, h) in [
        ("setup", &fresh.setup, &hit.setup),
        ("iteration", &fresh.iteration, &hit.iteration),
        ("check", &fresh.check, &hit.check),
    ] {
        if f.program.is_empty() {
            continue;
        }
        let pf = timing::predict(&f.program, f.hbm.len(), &config, HazardPolicy::Strict)
            .unwrap_or_else(|e| panic!("{name}: fresh prediction failed: {e}"));
        let ph = timing::predict(&h.program, h.hbm.len(), &config, HazardPolicy::Strict)
            .unwrap_or_else(|e| panic!("{name}: cached prediction failed: {e}"));
        assert_eq!(pf.stats, ph.stats, "{name}: cached stats must be identical");
        assert_eq!(
            pf.timeline, ph.timeline,
            "{name}: cached attribution must be identical"
        );
        assert_eq!(
            pf.issue_cycles, ph.issue_cycles,
            "{name}: cached per-slot issue cycles must be identical"
        );
        // And the timeline identity survives the cache: buckets still sum
        // to the predicted cycle count.
        assert_eq!(ph.timeline.total_cycles(), ph.stats.cycles, "{name}");
    }
}
