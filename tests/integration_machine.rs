//! End-to-end machine integration: compile benchmark problems to MIB
//! schedules, execute them cycle-accurately under strict hazard checking,
//! and verify the on-machine ADMM tracks the reference solver.

use mib::compiler::lower::lower;
use mib::compiler::Allocator;
use mib::core::hbm::HbmStream;
use mib::core::machine::{HazardPolicy, Machine};
use mib::core::MibConfig;
use mib::problems::{instance, mpc, Domain};
use mib::qp::{KktBackend, Settings, Solver};

fn mib_settings(backend: KktBackend) -> Settings {
    let mut s = Settings::with_backend(backend);
    // The lowered program models the unscaled, fixed-rho algorithm.
    s.scaling_iters = 0;
    s.adaptive_rho = false;
    s.eps_abs = 1e-6;
    s.eps_rel = 1e-6;
    s
}

/// Runs the direct-variant iteration program for `iters` iterations and
/// returns the machine's x vector.
fn run_direct_on_machine(
    problem: &mib::qp::Problem,
    settings: &Settings,
    config: MibConfig,
    iters: usize,
) -> Vec<f64> {
    let lowered = lower(problem, settings, config).expect("lowering succeeds");
    let mut machine = Machine::new(config);
    for sched in [&lowered.load, &lowered.setup] {
        machine
            .run(
                &sched.program,
                &mut HbmStream::new(sched.hbm.clone()),
                HazardPolicy::Strict,
            )
            .expect("hazard-free");
    }
    for _ in 0..iters {
        machine
            .run(
                &lowered.iteration.program,
                &mut HbmStream::new(lowered.iteration.hbm.clone()),
                HazardPolicy::Strict,
            )
            .expect("hazard-free");
    }
    // Recover the x layout (6th allocation in alloc_common order).
    let n = problem.num_vars();
    let m = problem.num_constraints();
    let mut alloc = Allocator::new(config.width);
    for len in [n, m, m, m, m] {
        alloc.alloc(len);
    }
    let x = alloc.alloc(n);
    (0..n)
        .map(|e| machine.regs().read(x.bank(e), x.addr(e)).expect("in range"))
        .collect()
}

#[test]
fn on_machine_admm_tracks_reference_mpc() {
    let inst = mpc(3, 2, 5, 11);
    let settings = mib_settings(KktBackend::Direct);
    let reference = Solver::new(inst.problem.clone(), settings.clone())
        .unwrap()
        .solve();
    assert!(reference.status.is_solved());
    let got = run_direct_on_machine(
        &inst.problem,
        &settings,
        MibConfig::c16(),
        reference.iterations.max(100),
    );
    for (g, w) in got.iter().zip(&reference.x) {
        assert!((g - w).abs() < 1e-3, "machine {g} vs reference {w}");
    }
}

#[test]
fn on_machine_admm_tracks_reference_portfolio() {
    let pr = mib::problems::portfolio(24, 3, 5);
    let settings = mib_settings(KktBackend::Direct);
    let reference = Solver::new(pr.clone(), settings.clone()).unwrap().solve();
    assert!(reference.status.is_solved());
    let got = run_direct_on_machine(
        &pr,
        &settings,
        MibConfig::c32(),
        reference.iterations.max(150),
    );
    for (g, w) in got.iter().zip(&reference.x) {
        assert!((g - w).abs() < 1e-3, "machine {g} vs reference {w}");
    }
}

#[test]
fn all_domain_programs_are_hazard_free_both_variants() {
    for domain in Domain::all() {
        let inst = instance(domain, 0);
        for backend in [KktBackend::Direct, KktBackend::Indirect] {
            let settings = mib_settings(backend);
            let lowered = lower(&inst.problem, &settings, MibConfig::c16())
                .unwrap_or_else(|e| panic!("{domain}: {e}"));
            let mut machine = Machine::new(MibConfig::c16());
            for sched in [
                &lowered.load,
                &lowered.setup,
                &lowered.iteration,
                &lowered.pcg_iteration,
                &lowered.check,
            ] {
                if sched.program.is_empty() {
                    continue;
                }
                let stats = machine
                    .run(
                        &sched.program,
                        &mut HbmStream::new(sched.hbm.clone()),
                        HazardPolicy::Stall,
                    )
                    .unwrap_or_else(|e| panic!("{domain} ({}): {e}", backend.name()));
                assert_eq!(
                    stats.stall_cycles,
                    0,
                    "{domain} ({}): schedule must be stall-free",
                    backend.name()
                );
            }
        }
    }
}

#[test]
fn wider_machine_uses_fewer_iteration_cycles() {
    let inst = instance(Domain::Svm, 4);
    let settings = mib_settings(KktBackend::Indirect);
    let narrow = lower(&inst.problem, &settings, MibConfig::with_width(8)).unwrap();
    let wide = lower(&inst.problem, &settings, MibConfig::c32()).unwrap();
    assert!(
        wide.pcg_cycles() < narrow.pcg_cycles(),
        "C=32 ({}) should beat C=8 ({}) on PCG cycles",
        wide.pcg_cycles(),
        narrow.pcg_cycles()
    );
}

#[test]
fn schedules_are_value_generic_across_instances() {
    // Two problem instances sharing a sparsity pattern (same structure,
    // different numeric values — the paper's portfolio-backtest scenario)
    // must compile to identical slot counts; only the HBM stream differs.
    // That is the amortization property the compile time relies on.
    let a = mib::problems::portfolio(30, 3, 1);
    let (p0, q0, a0, l0, u0) = a.clone().into_parts();
    let b = mib::qp::Problem::new(
        p0.map_values(|v| 1.5 * v),
        q0.iter().map(|&v| 0.5 * v).collect(),
        a0.map_values(|v| if v == 1.0 { v } else { 0.7 * v }),
        l0,
        u0,
    )
    .unwrap();
    assert!(a.a().same_pattern(b.a()));
    let settings = mib_settings(KktBackend::Indirect);
    let la = lower(&a, &settings, MibConfig::c16()).unwrap();
    let lb = lower(&b, &settings, MibConfig::c16()).unwrap();
    assert_eq!(la.iteration.slots(), lb.iteration.slots());
    assert_eq!(la.pcg_iteration.slots(), lb.pcg_iteration.slots());
    assert_eq!(la.check.slots(), lb.check.slots());
}
