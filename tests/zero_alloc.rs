//! Counting-allocator proof of the workspace-centric solve pipeline: after
//! [`Solver::new`], a [`Solver::solve_into`] performs **zero** heap
//! allocations — across the ADMM iteration, the KKT solve (both backends)
//! and the residual/termination paths — *with the mib-trace
//! instrumentation compiled in and disabled*: every potential span or
//! event in the measured region costs one relaxed atomic load and nothing
//! else.
//!
//! The crates themselves `#![forbid(unsafe_code)]`, so the `GlobalAlloc`
//! shim lives here in the integration-test binary. Counting is per-thread
//! (a thread-local counter) so the harness running other tests on sibling
//! threads cannot pollute a measurement. No test in this binary may call
//! `mib::trace::enable()` — enabled-mode behavior is covered by
//! `tests/trace_pipeline.rs`, which cargo runs as a separate process.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use mib::problems::portfolio;
use mib::qp::{KktBackend, Settings, Solver, Status};

struct CountingAlloc;

thread_local! {
    static ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // `try_with` so allocations during TLS teardown don't panic.
        let _ = ALLOC_COUNT.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOC_COUNT.try_with(|c| c.set(c.get() + 1));
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOC_COUNT.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Number of heap allocations the current thread performs inside `f`.
fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOC_COUNT.with(|c| c.get());
    f();
    ALLOC_COUNT.with(|c| c.get()) - before
}

/// Disabled-mode tracing is allocation-free in isolation: a dense loop of
/// potential spans and gated events touches neither the heap nor
/// thread-local storage. (The solve tests below prove the same property
/// end-to-end through the instrumented `solve_into`.)
#[test]
fn disabled_tracing_instrumentation_allocates_nothing() {
    assert!(
        !mib::trace::enabled(),
        "zero_alloc tests measure disabled-mode tracing only"
    );
    let allocs = allocations_during(|| {
        for _ in 0..10_000 {
            let tracing = mib::trace::enabled();
            let _span = mib::trace::span_if(tracing, "probe", mib::trace::Category::Solver);
            mib::trace::record_if(
                tracing,
                mib::trace::Event::Mark {
                    name: "m",
                    cat: mib::trace::Category::Solver,
                    value: 0.0,
                },
            );
        }
    });
    assert_eq!(allocs, 0, "disabled-mode tracing allocated {allocs} times");
}

/// The dispatched SIMD kernels never touch the heap: dispatch resolution
/// is one relaxed atomic load (the `OnceLock` env probe is warmed outside
/// the measurement) and every kernel works in caller-provided buffers,
/// on both the portable and the vectorized path.
#[test]
fn simd_kernels_perform_zero_allocations() {
    use mib::sparse::simd;
    // Warm the lazily initialized default dispatch path (reads MIB_SIMD)
    // before measuring.
    let path = simd::dispatch_path();
    let n = 1 << 10;
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
    let mut y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).cos()).collect();
    let mut out = vec![0.0; n];
    let l = vec![-0.5; n];
    let u = vec![0.5; n];
    let idx: Vec<usize> = (0..n).map(|i| (i * 7) % n).collect();
    let allocs = allocations_during(|| {
        let d = simd::dot(&x, &y);
        let m = simd::norm_inf_sum3(&x, &y, &l);
        simd::axpy_into(&mut y, 0.25, &x);
        simd::ew_prod_into(&mut out, &x, &y);
        simd::project_box_into(&mut y, &l, &u);
        let g = simd::gather_dot(path, &x, &idx, &y);
        simd::scatter_axpy(path, &mut out, &idx, &x, 0.5);
        // Fold the reduction results into an output so none of the calls
        // can be optimized away.
        out[0] += (d + m + g) * 1e-300;
    });
    assert_eq!(
        allocs, 0,
        "SIMD kernels performed {allocs} heap allocations"
    );
}

fn assert_solve_is_allocation_free(backend: KktBackend) {
    let problem = portfolio(30, 5, 7);
    let settings = Settings {
        backend,
        // Force adaptive-rho refactorizations during the measured solve so
        // the numeric-refactor path is covered too.
        adaptive_rho_interval: 10,
        ..Settings::default()
    };

    let mut solver = Solver::new(problem, settings).expect("setup");
    // Warm-up: the first solve sizes the result buffers (and lets lazy
    // one-time costs, e.g. TLS init, happen outside the measurement).
    let mut result = solver.solve();
    assert_eq!(
        result.status,
        Status::Solved,
        "{backend:?} warm-up must solve"
    );
    assert!(
        result.iterations > 10,
        "problem too easy to exercise adaptive rho"
    );

    solver.reset();
    let allocs = allocations_during(|| solver.solve_into(&mut result));
    assert_eq!(result.status, Status::Solved);
    assert_eq!(
        allocs, 0,
        "{backend:?} solve_into performed {allocs} heap allocations; \
         the workspace pipeline must perform none"
    );
}

#[test]
fn direct_solve_into_performs_zero_allocations() {
    assert_solve_is_allocation_free(KktBackend::Direct);
}

#[test]
fn indirect_solve_into_performs_zero_allocations() {
    assert_solve_is_allocation_free(KktBackend::Indirect);
}

/// The PDQP backend shares the zero-allocation contract: restarted
/// primal-dual iterations, epoch averaging, restarts and the candidate
/// KKT scoring all run out of the preallocated workspace.
#[test]
fn pdqp_solve_into_performs_zero_allocations() {
    let problem = portfolio(30, 5, 7);
    let settings = Settings {
        max_iter: 500_000,
        ..Settings::with_algorithm(mib::qp::Algorithm::Pdqp)
    };
    let mut solver = Solver::new(problem, settings).expect("setup");
    let mut result = solver.solve();
    assert_eq!(result.status, Status::Solved, "pdqp warm-up must solve");
    solver.reset();
    let allocs = allocations_during(|| solver.solve_into(&mut result));
    assert_eq!(result.status, Status::Solved);
    assert_eq!(
        allocs, 0,
        "pdqp solve_into performed {allocs} heap allocations; \
         the first-order pipeline must perform none"
    );
}

/// Parametric re-solves (the batch workload's inner loop) are also
/// allocation-free once the update vectors live outside the solver.
#[test]
fn warm_started_resolve_performs_zero_allocations() {
    let problem = portfolio(24, 4, 3);
    let mut solver = Solver::new(problem, Settings::default()).expect("setup");
    let mut result = solver.solve();
    assert_eq!(result.status, Status::Solved);
    // Second solve warm-starts from the first solution.
    let allocs = allocations_during(|| solver.solve_into(&mut result));
    assert_eq!(result.status, Status::Solved);
    assert_eq!(allocs, 0, "warm-started re-solve allocated {allocs} times");
}
