//! Differential property suite for the runtime-dispatched SIMD kernels.
//!
//! The contract pinned here is the heart of the PR-8 vectorization: for
//! **every** kernel in `mib::sparse::simd`, the AVX2 path and the
//! portable chunked-scalar path are **bitwise identical** on arbitrary
//! inputs — both implement the same canonical lane-chunked reduction
//! order, the same canonical min/max semantics and the same
//! mul-then-add (no FMA) arithmetic. On hosts without AVX2 the forced
//! dispatch is refused and each property degenerates to a self-check of
//! the portable path (trivially equal); on AVX2 hosts every case is a
//! real cross-path comparison.
//!
//! Dispatch forcing is process-global, so all properties in this binary
//! serialize on one lock: a concurrently flipped path could otherwise
//! make a case silently compare one path against itself.

use std::sync::{Mutex, MutexGuard, PoisonError};

use mib::problems::random_qp;
use mib::qp::{Settings, Solver};
use mib::sparse::simd::{self, DispatchPath};
use proptest::prelude::*;

/// Serializes every property case: `force_dispatch` is process-global.
static DISPATCH_LOCK: Mutex<()> = Mutex::new(());

fn hold() -> MutexGuard<'static, ()> {
    DISPATCH_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Restores auto-detected dispatch when a case exits (even via a failed
/// `prop_assert!`, which returns early).
struct ForceGuard;

impl Drop for ForceGuard {
    fn drop(&mut self) {
        simd::force_dispatch(None);
    }
}

/// Runs `f` once under the forced portable path and once under forced
/// AVX2, returning both outputs. The second element is `None` when the
/// host has no AVX2 (nothing to differentiate against).
fn on_both_paths<T>(mut f: impl FnMut() -> T) -> (T, Option<T>) {
    let _restore = ForceGuard;
    assert!(
        simd::force_dispatch(Some(DispatchPath::Portable)),
        "portable dispatch must always be available"
    );
    let portable = f();
    let vectorized = simd::force_dispatch(Some(DispatchPath::Avx2)).then(&mut f);
    (portable, vectorized)
}

/// Bit-exact view of a float slice (NaN-safe equality).
fn bits(x: &[f64]) -> Vec<u64> {
    x.iter().map(|v| v.to_bits()).collect()
}

/// Strategy for `k` same-length value vectors of length `< max_len`
/// (lengths 0..4 exercise the degenerate no-full-chunk cases, longer
/// ones the lane loop plus tail).
fn same_len(k: usize, max_len: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    (0usize..max_len)
        .prop_flat_map(move |n| collection::vec(collection::vec(-100.0f64..100.0, n..n), k..k))
}

/// Sorted lower/upper bound pair plus a subject vector, for the
/// projection/clamp kernels.
fn boxed(
    k_extra: usize,
    max_len: usize,
) -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<f64>, Vec<f64>)> {
    same_len(k_extra + 2, max_len).prop_map(|mut vs| {
        let ub = vs.pop().expect("k_extra + 2 >= 2");
        let lb = vs.pop().expect("k_extra + 2 >= 2");
        let (l, u): (Vec<f64>, Vec<f64>) = lb
            .iter()
            .zip(&ub)
            .map(|(&a, &b)| (simd::cmin(a, b), simd::cmax(a, b)))
            .unzip();
        (vs, l, u)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn reductions_bitwise_match(vs in same_len(3, 40)) {
        let _guard = hold();
        let (x, y, z) = (&vs[0], &vs[1], &vs[2]);
        let (a, b) = on_both_paths(|| {
            [
                simd::dot(x, y).to_bits(),
                simd::norm_inf(x).to_bits(),
                simd::norm_inf_diff(x, y).to_bits(),
                simd::norm_inf_sum3(x, y, z).to_bits(),
            ]
        });
        if let Some(b) = b {
            prop_assert_eq!(a, b, "reduction kernels disagree across paths");
        }
    }

    #[test]
    fn gather_scatter_bitwise_match(
        vs in same_len(2, 40),
        target_len in 1usize..60,
        s in -3.0f64..3.0,
    ) {
        let _guard = hold();
        let vals = &vs[0];
        // Indices into a separate target vector, duplicates allowed —
        // scatter order (lane order == index order) is part of the
        // contract.
        let idx: Vec<usize> = vals
            .iter()
            .enumerate()
            .map(|(k, &v)| (k + v.abs() as usize * 7) % target_len)
            .collect();
        let x: Vec<f64> = (0..target_len).map(|i| (i as f64) * 0.37 - 3.0).collect();
        let (a, b) = on_both_paths(|| {
            let g = simd::gather_dot(simd::dispatch_path(), vals, &idx, &x);
            let mut y = x.clone();
            simd::scatter_axpy(simd::dispatch_path(), &mut y, &idx, vals, s);
            (g.to_bits(), bits(&y))
        });
        if let Some(b) = b {
            prop_assert_eq!(a, b, "gather/scatter kernels disagree across paths");
        }
    }

    #[test]
    fn elementwise_kernels_bitwise_match(
        vs in same_len(5, 40),
        s0 in -3.0f64..3.0,
        s1 in -3.0f64..3.0,
    ) {
        let _guard = hold();
        let (v0, v1, v2, v3, v4) = (&vs[0], &vs[1], &vs[2], &vs[3], &vs[4]);
        let n = v0.len();
        let (a, b) = on_both_paths(|| {
            let mut out = vec![0.0; n];
            let mut acc = Vec::new();
            let mut y = v0.clone();
            simd::axpy_into(&mut y, s0, v1);
            acc.extend(bits(&y));
            let mut y = v0.clone();
            simd::axpby_into(s0, &mut y, s1, v1);
            acc.extend(bits(&y));
            simd::ew_prod_into(&mut out, v0, v1);
            acc.extend(bits(&out));
            simd::prod_scale_into(&mut out, v0, v1, s0);
            acc.extend(bits(&out));
            let mut y = v0.clone();
            simd::mul_assign(&mut y, v1);
            acc.extend(bits(&y));
            let mut y = v0.clone();
            simd::add_assign(&mut y, v1);
            acc.extend(bits(&y));
            simd::sub_into(&mut out, v0, v1);
            acc.extend(bits(&out));
            simd::neg_into(&mut out, v0);
            acc.extend(bits(&out));
            simd::div_scale_into(&mut out, v0, 1.0 + s0.abs());
            acc.extend(bits(&out));
            simd::sax_sub_into(&mut out, s0, v0, v1);
            acc.extend(bits(&out));
            simd::sub_prod_into(&mut out, v0, v1, v2);
            acc.extend(bits(&out));
            simd::add_prod_diff_into(&mut out, v0, v1, v2, v3);
            acc.extend(bits(&out));
            simd::prod_diff_into(&mut out, v0, v1, v2);
            acc.extend(bits(&out));
            let mut p = v0.clone();
            simd::update_dir_into(&mut p, v4, s1);
            acc.extend(bits(&p));
            acc
        });
        if let Some(b) = b {
            prop_assert_eq!(a, b, "element-wise kernels disagree across paths");
        }
    }

    #[test]
    fn stage_fusion_kernels_bitwise_match(
        data in boxed(4, 40),
        alpha in 0.1f64..1.9,
        tau in 0.01f64..2.0,
        sigma in 0.1f64..5.0,
    ) {
        let _guard = hold();
        let (vs, l, u) = data;
        let (v0, v1, v2, v3) = (&vs[0], &vs[1], &vs[2], &vs[3]);
        let n = v0.len();
        let (a, b) = on_both_paths(|| {
            let mut acc = Vec::new();
            let mut x = v0.clone();
            let mut delta = vec![0.0; n];
            simd::relax_delta_into(&mut x, &mut delta, alpha, v1);
            acc.extend(bits(&x));
            acc.extend(bits(&delta));
            let mut z = v0.clone();
            let mut z_rel = vec![0.0; n];
            simd::relax_project_into(&mut z, &mut z_rel, alpha, v1, v2, v3, &l, &u);
            acc.extend(bits(&z));
            acc.extend(bits(&z_rel));
            let mut y = v0.clone();
            simd::scaled_diff_update_into(&mut y, &mut delta, v1, v2, v3);
            acc.extend(bits(&y));
            acc.extend(bits(&delta));
            let mut x = v0.clone();
            simd::project_box_into(&mut x, &l, &u);
            acc.extend(bits(&x));
            let mut out = vec![0.0; n];
            simd::clamp_into(&mut out, v0, &l, &u);
            acc.extend(bits(&out));
            let mut xt = vec![0.0; n];
            let mut ext = vec![0.0; n];
            simd::grad_step_into(&mut xt, &mut ext, v0, tau, v1, v2, v3);
            acc.extend(bits(&xt));
            acc.extend(bits(&ext));
            let mut y = v0.clone();
            let mut zt = vec![0.0; n];
            simd::moreau_into(&mut y, &mut zt, sigma, v1, &l, &u);
            acc.extend(bits(&y));
            acc.extend(bits(&zt));
            acc
        });
        if let Some(b) = b {
            prop_assert_eq!(a, b, "fused stage kernels disagree across paths");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// End-to-end differential: a full ADMM solve (SpMV, LDLᵀ solves,
    /// every vector stage, residuals, termination) forced down each
    /// dispatch path returns bitwise-identical results — iterate
    /// trajectories, iteration counts and objective included.
    #[test]
    fn full_solve_bitwise_matches_across_paths(
        n in 2usize..7,
        m in 2usize..9,
        seed in 0u64..10_000,
    ) {
        let _guard = hold();
        let problem = random_qp(n, m, 0.6, seed);
        let (a, b) = on_both_paths(|| {
            let mut solver =
                Solver::new(problem.clone(), Settings::default()).expect("setup");
            let r = solver.solve();
            (r.status, r.iterations, bits(&r.x), bits(&r.y), r.obj_val.to_bits())
        });
        if let Some(b) = b {
            prop_assert_eq!(a.0, b.0, "status differs across dispatch paths");
            prop_assert_eq!(a.1, b.1, "iteration count differs across dispatch paths");
            prop_assert_eq!(a.2, b.2, "x differs across dispatch paths");
            prop_assert_eq!(a.3, b.3, "y differs across dispatch paths");
            prop_assert_eq!(a.4, b.4, "obj_val differs across dispatch paths");
        }
    }
}
