//! The top-level instruction set (Table I of the paper).
//!
//! The MIB programming model is two-level: a small **top-level ISA**
//! expresses whole matrix/vector operations, and each top-level instruction
//! that touches the computation network (`net_compute`) expands into many
//! **network instructions** scheduled against the problem's sparsity
//! pattern by the compiler (`mib-compiler`). The top-level program is
//! shared across problem domains and "doesn't need to be recompiled"
//! (Section III.D); only the `net_schedule`s it references are
//! pattern-specific.
//!
//! This module defines the typed top-level ISA. Operands are symbolic
//! (named vectors/scalars); the compiler binds them to register-file
//! layouts and HBM addresses.

use std::fmt;

/// A symbolic reference to a vector operand.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VecRef(pub String);

impl fmt::Display for VecRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for VecRef {
    fn from(s: &str) -> Self {
        VecRef(s.to_owned())
    }
}

/// A symbolic reference to a scalar operand.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ScalarRef(pub String);

impl fmt::Display for ScalarRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ScalarRef {
    fn from(s: &str) -> Self {
        ScalarRef(s.to_owned())
    }
}

/// One top-level instruction (Table I).
#[derive(Debug, Clone, PartialEq)]
pub enum TopInstruction {
    /// `s0 = |v1|_inf`.
    NormInf {
        /// Destination scalar.
        s0: ScalarRef,
        /// Input vector.
        v1: VecRef,
    },
    /// Conditionally set vector values:
    /// `v0[i] = s0 if v1[i] satisfies the condition else s1`.
    CondSet {
        /// Value when the condition holds.
        s0: ScalarRef,
        /// Value otherwise.
        s1: ScalarRef,
        /// Destination vector.
        v0: VecRef,
        /// Condition vector.
        v1: VecRef,
    },
    /// Element-wise reciprocal `v0 = 1 ./ v0`.
    EwReci {
        /// In/out vector.
        v0: VecRef,
    },
    /// Element-wise product `v0 = v0 .* v1`.
    EwProd {
        /// In/out vector.
        v0: VecRef,
        /// Second factor.
        v1: VecRef,
    },
    /// `v0 = s0*v0 + s1*v1`.
    Axpby {
        /// Scale of `v0`.
        s0: ScalarRef,
        /// Scale of `v1`.
        s1: ScalarRef,
        /// In/out vector.
        v0: VecRef,
        /// Added vector.
        v1: VecRef,
    },
    /// Element-wise minimum `v0 = min(v0, v1)`.
    SelectMin {
        /// In/out vector.
        v0: VecRef,
        /// Comparand.
        v1: VecRef,
    },
    /// Element-wise maximum `v0 = max(v0, v1)`.
    SelectMax {
        /// In/out vector.
        v0: VecRef,
        /// Comparand.
        v1: VecRef,
    },
    /// Run a compiled network schedule (`net_compute n0, a0`).
    NetCompute {
        /// Name of the `net_schedule` to execute.
        schedule: String,
    },
    /// Stream a vector from HBM into the register files.
    LoadVec {
        /// The vector being loaded.
        v0: VecRef,
    },
    /// Stream a vector from the register files back to HBM.
    WriteVec {
        /// The vector being stored.
        v0: VecRef,
    },
}

impl TopInstruction {
    /// The Table-I mnemonic.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            TopInstruction::NormInf { .. } => "norm_inf",
            TopInstruction::CondSet { .. } => "cond_set",
            TopInstruction::EwReci { .. } => "ew_reci",
            TopInstruction::EwProd { .. } => "ew_prod",
            TopInstruction::Axpby { .. } => "axpby",
            TopInstruction::SelectMin { .. } => "select_min",
            TopInstruction::SelectMax { .. } => "select_max",
            TopInstruction::NetCompute { .. } => "net_compute",
            TopInstruction::LoadVec { .. } => "load_vec",
            TopInstruction::WriteVec { .. } => "write_vec",
        }
    }

    /// Whether this instruction uses the butterfly network (vs. the vector
    /// path only).
    pub fn uses_network(&self) -> bool {
        matches!(self, TopInstruction::NetCompute { .. })
    }
}

impl fmt::Display for TopInstruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopInstruction::NormInf { s0, v1 } => write!(f, "norm_inf {s0}, {v1}"),
            TopInstruction::CondSet { s0, s1, v0, v1 } => {
                write!(f, "cond_set {s0}, {s1}, {v0}, {v1}")
            }
            TopInstruction::EwReci { v0 } => write!(f, "ew_reci {v0}"),
            TopInstruction::EwProd { v0, v1 } => write!(f, "ew_prod {v0}, {v1}"),
            TopInstruction::Axpby { s0, s1, v0, v1 } => {
                write!(f, "axpby {s0}, {s1}, {v0}, {v1}")
            }
            TopInstruction::SelectMin { v0, v1 } => write!(f, "select_min {v0}, {v1}"),
            TopInstruction::SelectMax { v0, v1 } => write!(f, "select_max {v0}, {v1}"),
            TopInstruction::NetCompute { schedule } => write!(f, "net_compute {schedule}"),
            TopInstruction::LoadVec { v0 } => write!(f, "load_vec {v0}"),
            TopInstruction::WriteVec { v0 } => write!(f, "write_vec {v0}"),
        }
    }
}

/// A top-level program: the algorithm skeleton shared across domains.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TopProgram {
    instructions: Vec<TopInstruction>,
}

impl TopProgram {
    /// An empty program.
    pub fn new() -> Self {
        TopProgram::default()
    }

    /// Appends an instruction.
    pub fn push(&mut self, inst: TopInstruction) -> &mut Self {
        self.instructions.push(inst);
        self
    }

    /// The instruction sequence.
    pub fn instructions(&self) -> &[TopInstruction] {
        &self.instructions
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Names of all referenced network schedules, in first-use order.
    pub fn schedules(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for inst in &self.instructions {
            if let TopInstruction::NetCompute { schedule } = inst {
                if !seen.contains(&schedule.as_str()) {
                    seen.push(schedule.as_str());
                }
            }
        }
        seen
    }
}

impl fmt::Display for TopProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for inst in &self.instructions {
            writeln!(f, "{inst}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonics_match_table_one() {
        let cases: Vec<(TopInstruction, &str)> = vec![
            (
                TopInstruction::NormInf {
                    s0: "prim_res".into(),
                    v1: "r".into(),
                },
                "norm_inf",
            ),
            (TopInstruction::EwReci { v0: "d".into() }, "ew_reci"),
            (
                TopInstruction::Axpby {
                    s0: "alpha".into(),
                    s1: "one_minus_alpha".into(),
                    v0: "x".into(),
                    v1: "xtilde".into(),
                },
                "axpby",
            ),
            (
                TopInstruction::NetCompute {
                    schedule: "L_solve".into(),
                },
                "net_compute",
            ),
            (
                TopInstruction::LoadVec {
                    v0: "xtilde_view".into(),
                },
                "load_vec",
            ),
        ];
        for (inst, mnem) in cases {
            assert_eq!(inst.mnemonic(), mnem);
            assert!(inst.to_string().starts_with(mnem));
        }
    }

    #[test]
    fn program_lists_schedules_in_order() {
        let mut p = TopProgram::new();
        p.push(TopInstruction::NetCompute {
            schedule: "permutate".into(),
        })
        .push(TopInstruction::NetCompute {
            schedule: "L_solve".into(),
        })
        .push(TopInstruction::NetCompute {
            schedule: "permutate".into(),
        });
        assert_eq!(p.schedules(), vec!["permutate", "L_solve"]);
        assert_eq!(p.len(), 3);
        assert!(p.instructions()[0].uses_network());
    }
}
