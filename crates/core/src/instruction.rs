//! Network instructions: the per-cycle configuration of every node.

use crate::MibError;

/// Operating mode of an adder node (2 control bits, Figure 5a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NodeMode {
    /// Node carries no live value this cycle.
    #[default]
    Idle,
    /// Broadcast the "direct" input (same lane of the previous stage).
    Direct,
    /// Broadcast the "cross" input (lane XOR 2ˢ of the previous stage).
    Cross,
    /// Broadcast the sum of both inputs (the MAC-tree merge mode).
    Sum,
}

/// Source of a lane's value at the multiplier stage.
///
/// Register reads always target the lane's own bank; the second multiplier
/// operand comes from the HBM stream, the per-lane broadcast latch or an
/// immediate baked into the instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LaneSource {
    /// Pass the register value through unchanged (multiplier bypassed).
    Reg {
        /// Address within the lane's bank.
        addr: usize,
    },
    /// Inject the next HBM stream word directly (used by `load_vec`).
    Stream,
    /// Register value times the next HBM stream word (the MAC primitive's
    /// matrix-value multiply), optionally negated.
    RegTimesStream {
        /// Address within the lane's bank.
        addr: usize,
        /// Negate the product (used for elimination updates).
        negate: bool,
    },
    /// Register value times the lane's broadcast latch (the column
    /// elimination primitive), optionally negated.
    RegTimesLatch {
        /// Address within the lane's bank.
        addr: usize,
        /// Negate the product.
        negate: bool,
    },
    /// Register value times an immediate scalar (used by `axpby` and the
    /// relaxation updates).
    RegTimesImm {
        /// Address within the lane's bank.
        addr: usize,
        /// The immediate multiplier.
        imm: f64,
    },
    /// HBM stream word times the lane's broadcast latch (column-oriented
    /// `Aᵀ·y` products, where the matrix value streams and the vector
    /// element was latched).
    StreamTimesLatch {
        /// Negate the product.
        negate: bool,
    },
}

impl LaneSource {
    /// Whether this source consumes one HBM stream word.
    pub fn uses_stream(&self) -> bool {
        matches!(
            self,
            LaneSource::Stream
                | LaneSource::RegTimesStream { .. }
                | LaneSource::StreamTimesLatch { .. }
        )
    }

    /// The register address read, if any.
    pub fn reg_addr(&self) -> Option<usize> {
        match *self {
            LaneSource::Reg { addr }
            | LaneSource::RegTimesStream { addr, .. }
            | LaneSource::RegTimesLatch { addr, .. }
            | LaneSource::RegTimesImm { addr, .. } => Some(addr),
            LaneSource::Stream | LaneSource::StreamTimesLatch { .. } => None,
        }
    }

    /// Whether this source reads the lane's broadcast latch.
    pub fn uses_latch(&self) -> bool {
        matches!(
            self,
            LaneSource::RegTimesLatch { .. } | LaneSource::StreamTimesLatch { .. }
        )
    }

    /// Whether the multiplier performs an actual multiplication (for FLOP
    /// accounting).
    pub fn is_multiply(&self) -> bool {
        !matches!(self, LaneSource::Reg { .. } | LaneSource::Stream)
    }
}

/// What the writeback stage does with a lane's final value.
///
/// `Add`, `Min`, `Max` and `MaxAbs` are read–modify–write operations of the
/// writeback ALU (the same ALU that implements the paper's `select_min` /
/// `select_max` / `norm_inf` top-level instructions); they carry the same
/// hazard semantics as a read followed by a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WriteMode {
    /// Store the value.
    Store,
    /// Accumulate: `reg[addr] += value` (the accumulating writeback port).
    Add,
    /// Store the reciprocal `1/value` (pivot inversion for `D⁻¹`).
    StoreRecip,
    /// Load the value into the lane's broadcast latch instead of a register
    /// (the Fig. 6b distribution step).
    Latch,
    /// `reg[addr] = min(reg[addr], value)` — `select_min`.
    Min,
    /// `reg[addr] = max(reg[addr], value)` — `select_max`.
    Max,
    /// `reg[addr] = max(reg[addr], |value|)` — the `norm_inf` reduction.
    MaxAbs,
}

impl WriteMode {
    /// Whether the mode reads the target register before writing it.
    pub fn is_rmw(self) -> bool {
        matches!(
            self,
            WriteMode::Add | WriteMode::Min | WriteMode::Max | WriteMode::MaxAbs
        )
    }
}

/// A lane's writeback action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LaneWrite {
    /// Address within the lane's bank (ignored for [`WriteMode::Latch`]).
    pub addr: usize,
    /// Writeback behaviour.
    pub mode: WriteMode,
}

/// Mode of a lane's **output multiplier node** (Figure 5b: "input and
/// output multiplier nodes can be bypassed if needed"). The output
/// multiplier scales the network's routed value by an HBM stream word just
/// before writeback — the datapath of the column-elimination primitive:
/// a broadcast vector element fans out through the butterfly and each
/// target lane multiplies it by its streamed matrix value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OutMul {
    /// Pass the routed value through unchanged.
    #[default]
    Bypass,
    /// Multiply by the next HBM stream word.
    MulStream {
        /// Negate the product.
        negate: bool,
    },
}

/// Classification of a network instruction by the primitive it implements;
/// used for statistics and the Fig. 3/Fig. 8 style breakdowns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum InstrKind {
    /// Row-oriented multiply–accumulate (reduction trees).
    Mac,
    /// Column elimination update.
    ColElim,
    /// Broadcast/distribution of one value to several lanes.
    Broadcast,
    /// Vector permutation across banks.
    Permute,
    /// Element-wise vector operation.
    Elementwise,
    /// Compiler-inserted data prefetch (bank-to-bank copy).
    Prefetch,
    /// Empty cycle.
    #[default]
    Nop,
}

impl InstrKind {
    /// Number of variants (the length of per-kind counter arrays).
    pub const COUNT: usize = 7;

    /// Every variant, in [`InstrKind::index`] order.
    pub const ALL: [InstrKind; InstrKind::COUNT] = [
        InstrKind::Mac,
        InstrKind::ColElim,
        InstrKind::Broadcast,
        InstrKind::Permute,
        InstrKind::Elementwise,
        InstrKind::Prefetch,
        InstrKind::Nop,
    ];

    /// Dense index of the variant — the bucket used by every per-kind
    /// counter array ([`ExecStats::slots_by_kind`], the profiling
    /// timeline). `InstrKind::ALL[k.index()] == k` for every variant
    /// (pinned by an exhaustive round-trip test), so adding a variant
    /// without growing [`InstrKind::ALL`] and [`InstrKind::COUNT`] fails
    /// to compile rather than silently mis-bucketing statistics.
    ///
    /// [`ExecStats::slots_by_kind`]: crate::stats::ExecStats::slots_by_kind
    pub fn index(self) -> usize {
        match self {
            InstrKind::Mac => 0,
            InstrKind::ColElim => 1,
            InstrKind::Broadcast => 2,
            InstrKind::Permute => 3,
            InstrKind::Elementwise => 4,
            InstrKind::Prefetch => 5,
            InstrKind::Nop => 6,
        }
    }

    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            InstrKind::Mac => "mac",
            InstrKind::ColElim => "col_elim",
            InstrKind::Broadcast => "broadcast",
            InstrKind::Permute => "permute",
            InstrKind::Elementwise => "elementwise",
            InstrKind::Prefetch => "prefetch",
            InstrKind::Nop => "nop",
        }
    }
}

/// One network instruction: the complete configuration of the multiplier
/// stage, all adder stages and the writeback stage for a single issue slot.
#[derive(Debug, Clone, PartialEq)]
pub struct NetInstruction {
    width: usize,
    /// Per-lane multiplier-stage source (`None` = lane unused).
    inputs: Vec<Option<LaneSource>>,
    /// Adder node modes, `stages × width`.
    nodes: Vec<Vec<NodeMode>>,
    /// Per-lane writeback (`None` = discard).
    writes: Vec<Option<LaneWrite>>,
    /// Per-lane output multiplier modes.
    out_muls: Vec<OutMul>,
    /// Primitive classification.
    pub kind: InstrKind,
}

impl NetInstruction {
    /// An empty (no-op) instruction for a width-`C` network.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not a power of two `≥ 2`.
    pub fn nop(width: usize) -> Self {
        assert!(
            width.is_power_of_two() && width >= 2,
            "width must be a power of two >= 2"
        );
        let stages = width.trailing_zeros() as usize;
        NetInstruction {
            width,
            inputs: vec![None; width],
            nodes: vec![vec![NodeMode::Idle; width]; stages],
            writes: vec![None; width],
            out_muls: vec![OutMul::Bypass; width],
            kind: InstrKind::Nop,
        }
    }

    /// Network width `C`.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of adder stages.
    pub fn stages(&self) -> usize {
        self.nodes.len()
    }

    /// Per-lane inputs.
    pub fn inputs(&self) -> &[Option<LaneSource>] {
        &self.inputs
    }

    /// Per-lane writebacks.
    pub fn writes(&self) -> &[Option<LaneWrite>] {
        &self.writes
    }

    /// Mode of adder node `(stage, lane)`.
    pub fn node(&self, stage: usize, lane: usize) -> NodeMode {
        self.nodes[stage][lane]
    }

    /// Sets a lane input.
    ///
    /// # Panics
    ///
    /// Panics if the lane already has an input (merge through
    /// [`NetInstruction::try_merge`] instead) or is out of range.
    pub fn set_input(&mut self, lane: usize, src: LaneSource) {
        assert!(self.inputs[lane].is_none(), "lane {lane} input already set");
        self.inputs[lane] = Some(src);
    }

    /// Sets a lane writeback.
    ///
    /// # Panics
    ///
    /// Panics if the lane already has a writeback or is out of range.
    pub fn set_write(&mut self, lane: usize, write: LaneWrite) {
        assert!(self.writes[lane].is_none(), "lane {lane} write already set");
        self.writes[lane] = Some(write);
    }

    /// Sets a lane's output multiplier mode.
    ///
    /// # Panics
    ///
    /// Panics if the output multiplier is already in use.
    pub fn set_out_mul(&mut self, lane: usize, mode: OutMul) {
        assert!(
            self.out_muls[lane] == OutMul::Bypass,
            "lane {lane} output multiplier already set"
        );
        self.out_muls[lane] = mode;
    }

    /// Per-lane output multiplier modes.
    pub fn out_muls(&self) -> &[OutMul] {
        &self.out_muls
    }

    /// Sets an adder node mode.
    ///
    /// # Panics
    ///
    /// Panics if the node is already non-idle with a different mode.
    pub fn set_node(&mut self, stage: usize, lane: usize, mode: NodeMode) {
        let cur = self.nodes[stage][lane];
        assert!(
            cur == NodeMode::Idle || cur == mode,
            "node ({stage}, {lane}) already set to {cur:?}"
        );
        self.nodes[stage][lane] = mode;
    }

    /// Upgrades a node to `Sum` mode (merging a reduction collision);
    /// allowed from `Idle`, `Direct`, `Cross` or `Sum`.
    pub fn set_node_sum(&mut self, stage: usize, lane: usize) {
        self.nodes[stage][lane] = NodeMode::Sum;
    }

    /// Whether the instruction does nothing.
    pub fn is_nop(&self) -> bool {
        self.inputs.iter().all(Option::is_none)
            && self.writes.iter().all(Option::is_none)
            && self
                .nodes
                .iter()
                .all(|stage| stage.iter().all(|&m| m == NodeMode::Idle))
    }

    /// Number of busy nodes (multiplier nodes with inputs + non-idle adder
    /// nodes) — the numerator of the spatial-utilization statistic.
    pub fn busy_nodes(&self) -> usize {
        let mul = self.inputs.iter().filter(|i| i.is_some()).count();
        let adders: usize = self
            .nodes
            .iter()
            .map(|stage| stage.iter().filter(|&&m| m != NodeMode::Idle).count())
            .sum();
        mul + adders
    }

    /// Number of HBM stream words this instruction consumes (input stage
    /// plus output multipliers).
    pub fn stream_words(&self) -> usize {
        self.inputs
            .iter()
            .flatten()
            .filter(|s| s.uses_stream())
            .count()
            + self
                .out_muls
                .iter()
                .filter(|&&m| m != OutMul::Bypass)
                .count()
    }

    /// Iterates over the `(lane, addr)` register locations read at the
    /// multiplier stage (one per lane at most — the single read port).
    pub fn reg_read_locs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.inputs
            .iter()
            .enumerate()
            .filter_map(|(lane, input)| Some((lane, input.as_ref()?.reg_addr()?)))
    }

    /// Iterates over the lanes whose multiplier stage reads the per-lane
    /// broadcast latch.
    pub fn latch_read_lanes(&self) -> impl Iterator<Item = usize> + '_ {
        self.inputs
            .iter()
            .enumerate()
            .filter(|(_, input)| input.is_some_and(|src| src.uses_latch()))
            .map(|(lane, _)| lane)
    }

    /// Iterates over the `(lane, addr)` register locations read by
    /// read-modify-write writebacks (`Add`, `Min`, `Max`, `MaxAbs`).
    pub fn rmw_read_locs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.writes.iter().enumerate().filter_map(|(lane, write)| {
            let w = write.as_ref()?;
            w.mode.is_rmw().then_some((lane, w.addr))
        })
    }

    /// Iterates over the configured writebacks as `(lane, write)` pairs.
    pub fn write_locs(&self) -> impl Iterator<Item = (usize, LaneWrite)> + '_ {
        self.writes
            .iter()
            .enumerate()
            .filter_map(|(lane, write)| Some((lane, (*write)?)))
    }

    /// Whether the final adder stage drives `lane` with a live value. A
    /// writeback on an undriven lane commits the architectural zero (the
    /// idle-node output), which is almost always a scheduling artifact.
    pub fn lane_driven(&self, lane: usize) -> bool {
        match self.nodes.last() {
            Some(stage) => stage[lane] != NodeMode::Idle,
            None => self.inputs[lane].is_some(),
        }
    }

    /// Number of floating-point operations this instruction performs:
    /// active input multipliers, `Sum` adder nodes, output multipliers,
    /// and the writeback ALU ops (`Add`, `StoreRecip`, `Min`, `Max`,
    /// `MaxAbs`). Statically derivable, and exactly the increment the
    /// machine applies to `ExecStats::flops` when executing the slot —
    /// one of the issue-rule introspection accessors the static timing
    /// analyzer (`mib-verify`) replays the machine from.
    pub fn flop_count(&self) -> u64 {
        let muls = self
            .inputs
            .iter()
            .flatten()
            .filter(|s| s.is_multiply())
            .count();
        let sums: usize = self
            .nodes
            .iter()
            .map(|stage| stage.iter().filter(|&&m| m == NodeMode::Sum).count())
            .sum();
        let out_muls = self
            .out_muls
            .iter()
            .filter(|&&m| m != OutMul::Bypass)
            .count();
        let wb_alu = self
            .writes
            .iter()
            .flatten()
            .filter(|w| w.mode != WriteMode::Store && w.mode != WriteMode::Latch)
            .count();
        (muls + sums + out_muls + wb_alu) as u64
    }

    /// Number of register reads the multiplier stage performs (lanes whose
    /// source carries a register address) — the `ExecStats::reg_reads`
    /// increment of this slot.
    pub fn reg_read_count(&self) -> u64 {
        self.reg_read_locs().count() as u64
    }

    /// Number of writebacks (stores, accumulates and latches) — the
    /// `ExecStats::reg_writes` increment of this slot.
    pub fn write_count(&self) -> u64 {
        self.writes.iter().flatten().count() as u64
    }

    /// Per-stage busy-element counts of this slot, in the shape the
    /// profiling [`Timeline`](crate::timeline::Timeline) accumulates. The
    /// machine records exactly this value when executing the slot, so a
    /// static replay using this accessor reproduces the timeline's
    /// occupancy totals bitwise.
    pub fn stage_occupancy(&self) -> crate::timeline::StageOccupancy {
        crate::timeline::StageOccupancy {
            multiplier_lanes: self.inputs.iter().filter(|i| i.is_some()).count() as u64,
            adder_nodes: self
                .nodes
                .iter()
                .map(|stage| stage.iter().filter(|&&m| m != NodeMode::Idle).count() as u64)
                .sum(),
            output_mul_lanes: self
                .out_muls
                .iter()
                .filter(|&&m| !matches!(m, OutMul::Bypass))
                .count() as u64,
            writeback_lanes: self.writes.iter().filter(|w| w.is_some()).count() as u64,
        }
    }

    /// The hardware-occupancy vector of Section IV.B: one bit per node
    /// (`C·(log₂C + 1)` bits), multiplier stage first.
    pub fn occupancy(&self) -> Vec<bool> {
        let mut v = Vec::with_capacity(self.width * (self.stages() + 1));
        for input in &self.inputs {
            v.push(input.is_some());
        }
        for stage in &self.nodes {
            for &m in stage {
                v.push(m != NodeMode::Idle);
            }
        }
        v
    }

    /// The structural **footprint**: every node this instruction produces a
    /// value on *or consumes an input from*. A `Direct`/`Cross`/`Sum` node
    /// reads specific previous-stage outputs; those slots must not be driven
    /// by another instruction merged into the same cycle (a `Sum` node whose
    /// second input is architecturally zero relies on that lane *staying*
    /// idle). Merging is legal iff footprints are disjoint — this is the
    /// occupancy vector the first-fit scheduler packs.
    pub fn footprint(&self) -> Vec<bool> {
        let mut v = self.occupancy();
        let w = self.width;
        for (s, stage) in self.nodes.iter().enumerate() {
            for (lane, &m) in stage.iter().enumerate() {
                if m == NodeMode::Idle {
                    continue;
                }
                // Row offset of the previous stage in the flat vector:
                // stage 0 consumes multiplier outputs (offset 0).
                let prev_off = s * w;
                let bit = 1usize << s;
                match m {
                    NodeMode::Direct => v[prev_off + lane] = true,
                    NodeMode::Cross => v[prev_off + (lane ^ bit)] = true,
                    NodeMode::Sum => {
                        v[prev_off + lane] = true;
                        v[prev_off + (lane ^ bit)] = true;
                    }
                    NodeMode::Idle => unreachable!(),
                }
            }
        }
        v
    }

    /// Tests whether `other` can be merged into `self` without structural
    /// conflicts: disjoint footprints (shared or consumed nodes) and
    /// disjoint per-lane read/write ports.
    pub fn conflicts_with(&self, other: &NetInstruction) -> Option<String> {
        if self.width != other.width {
            return Some("width mismatch".into());
        }
        for lane in 0..self.width {
            if self.inputs[lane].is_some() && other.inputs[lane].is_some() {
                return Some(format!("lane {lane} read port"));
            }
            if self.writes[lane].is_some() && other.writes[lane].is_some() {
                return Some(format!("lane {lane} write port"));
            }
        }
        let fa = self.footprint();
        let fb = other.footprint();
        let w = self.width;
        for (idx, (a, b)) in fa.iter().zip(&fb).enumerate() {
            if *a && *b {
                let stage = idx / w;
                let lane = idx % w;
                return Some(if stage == 0 {
                    format!("multiplier node {lane}")
                } else {
                    format!("adder node ({}, {lane})", stage - 1)
                });
            }
        }
        None
    }

    /// Merges two structurally disjoint instructions into one issue slot
    /// (the *spatial interleave* of Section IV.B).
    ///
    /// # Errors
    ///
    /// Returns [`MibError::MergeConflict`] naming the shared resource.
    pub fn try_merge(&self, other: &NetInstruction) -> Result<NetInstruction, MibError> {
        if let Some(conflict) = self.conflicts_with(other) {
            return Err(MibError::MergeConflict(conflict));
        }
        let mut merged = self.clone();
        for lane in 0..self.width {
            if let Some(src) = other.inputs[lane] {
                merged.inputs[lane] = Some(src);
            }
            if let Some(w) = other.writes[lane] {
                merged.writes[lane] = Some(w);
            }
            if other.out_muls[lane] != OutMul::Bypass {
                merged.out_muls[lane] = other.out_muls[lane];
            }
        }
        for s in 0..self.stages() {
            for lane in 0..self.width {
                if other.nodes[s][lane] != NodeMode::Idle {
                    merged.nodes[s][lane] = other.nodes[s][lane];
                }
            }
        }
        if merged.kind != other.kind {
            // A merged slot holding different primitives keeps the first
            // kind; statistics treat slots, not logical instructions.
        }
        Ok(merged)
    }

    /// Routes a value from `src` lane to `dst` lane through the butterfly,
    /// setting `Direct`/`Cross` modes along the unique path (the XOR rule of
    /// Section III.C). Existing `Sum` nodes on the path are left as sums —
    /// callers building reduction trees upgrade collision nodes explicitly.
    ///
    /// Returns the sequence of `(stage, lane)` nodes on the path, **after**
    /// each stage's routing decision (i.e. the node whose output carries the
    /// value).
    pub fn route(&mut self, src: usize, dst: usize) -> Vec<(usize, usize)> {
        let mut path = Vec::with_capacity(self.stages());
        let mut lane = src;
        for s in 0..self.stages() {
            let bit = 1usize << s;
            let cross = (src ^ dst) & bit != 0;
            let next = if cross { lane ^ bit } else { lane };
            let mode = if cross {
                NodeMode::Cross
            } else {
                NodeMode::Direct
            };
            let cur = self.nodes[s][next];
            if cur == NodeMode::Idle {
                self.nodes[s][next] = mode;
            } else if cur != mode && cur != NodeMode::Sum {
                panic!("routing conflict at node ({s}, {next}): {cur:?} vs {mode:?}");
            }
            path.push((s, next));
            lane = next;
        }
        debug_assert_eq!(lane, dst);
        path
    }

    /// Builds a reduction tree: every lane in `sources` is routed to `dst`,
    /// and nodes where two live values meet are set to `Sum` — the
    /// multi-mode MAC tree of Figure 6a. Sources must be distinct.
    ///
    /// # Panics
    ///
    /// Panics on a routing conflict with previously configured nodes or on
    /// duplicate sources.
    pub fn reduce(&mut self, sources: &[usize], dst: usize) {
        let stages = self.stages();
        let mut live: Vec<usize> = sources.to_vec();
        live.sort_unstable();
        for w in live.windows(2) {
            assert_ne!(w[0], w[1], "duplicate reduction source lane {}", w[0]);
        }
        for s in 0..stages {
            let bit = 1usize << s;
            let mut next: Vec<usize> = Vec::with_capacity(live.len());
            for &lane in &live {
                let target = (lane & !bit) | (dst & bit);
                next.push(target);
            }
            next.sort_unstable();
            next.dedup();
            for &t in &next {
                let from_direct = live.contains(&t);
                let from_cross = live.contains(&(t ^ bit));
                let mode = match (from_direct, from_cross) {
                    (true, true) => NodeMode::Sum,
                    (true, false) => NodeMode::Direct,
                    (false, true) => NodeMode::Cross,
                    (false, false) => unreachable!("target with no live input"),
                };
                let cur = self.nodes[s][t];
                assert!(
                    cur == NodeMode::Idle || cur == mode,
                    "reduction conflict at node ({s}, {t}): {cur:?} vs {mode:?}"
                );
                self.nodes[s][t] = mode;
            }
            live = next;
        }
        debug_assert_eq!(live, vec![dst]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instr_kind_index_round_trips_exhaustively() {
        // `ALL` enumerates every variant exactly once, in index order:
        // a match on each element keeps this test exhaustive — adding an
        // `InstrKind` variant fails compilation here until `ALL`, `COUNT`
        // and `index()` are all updated together.
        assert_eq!(InstrKind::ALL.len(), InstrKind::COUNT);
        for (pos, kind) in InstrKind::ALL.into_iter().enumerate() {
            match kind {
                InstrKind::Mac
                | InstrKind::ColElim
                | InstrKind::Broadcast
                | InstrKind::Permute
                | InstrKind::Elementwise
                | InstrKind::Prefetch
                | InstrKind::Nop => {}
            }
            assert_eq!(kind.index(), pos, "{kind:?} is mis-bucketed");
            assert_eq!(InstrKind::ALL[kind.index()], kind);
        }
        // Indices are dense and distinct.
        let mut seen = [false; InstrKind::COUNT];
        for kind in InstrKind::ALL {
            assert!(!seen[kind.index()], "duplicate index for {kind:?}");
            seen[kind.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Names are distinct too (they key report rows).
        for (i, a) in InstrKind::ALL.iter().enumerate() {
            for b in &InstrKind::ALL[i + 1..] {
                assert_ne!(a.name(), b.name());
            }
        }
    }

    #[test]
    fn nop_is_empty() {
        let i = NetInstruction::nop(8);
        assert!(i.is_nop());
        assert_eq!(i.stages(), 3);
        assert_eq!(i.busy_nodes(), 0);
        assert_eq!(i.occupancy().len(), 8 * 4);
    }

    #[test]
    fn route_follows_xor_rule() {
        let mut i = NetInstruction::nop(8);
        // Paper example (Fig. 6c): input 0 to output 3 needs control 011:
        // cross at stages 0 and 1, direct at stage 2.
        let path = i.route(0, 3);
        assert_eq!(path, vec![(0, 1), (1, 3), (2, 3)]);
        assert_eq!(i.node(0, 1), NodeMode::Cross);
        assert_eq!(i.node(1, 3), NodeMode::Cross);
        assert_eq!(i.node(2, 3), NodeMode::Direct);
    }

    #[test]
    fn merge_disjoint_instructions() {
        let mut a = NetInstruction::nop(8);
        a.set_input(0, LaneSource::Reg { addr: 0 });
        a.route(0, 0);
        a.set_write(
            0,
            LaneWrite {
                addr: 1,
                mode: WriteMode::Store,
            },
        );
        let mut b = NetInstruction::nop(8);
        b.set_input(4, LaneSource::Reg { addr: 0 });
        b.route(4, 4);
        b.set_write(
            4,
            LaneWrite {
                addr: 1,
                mode: WriteMode::Store,
            },
        );
        let m = a.try_merge(&b).unwrap();
        assert_eq!(m.busy_nodes(), a.busy_nodes() + b.busy_nodes());
    }

    #[test]
    fn merge_conflicts_detected() {
        let mut a = NetInstruction::nop(8);
        a.set_input(0, LaneSource::Reg { addr: 0 });
        let mut b = NetInstruction::nop(8);
        b.set_input(0, LaneSource::Reg { addr: 5 });
        assert!(a.try_merge(&b).is_err());

        let mut c = NetInstruction::nop(8);
        c.route(0, 2);
        let mut d = NetInstruction::nop(8);
        // 6 -> 2 shares the final node (2, 2) with 0 -> 2.
        d.route(6, 2);
        // Verify conflict detection catches the shared node.
        assert!(c.conflicts_with(&d).is_some());
    }

    #[test]
    fn occupancy_counts_used_nodes() {
        let mut i = NetInstruction::nop(4);
        i.set_input(1, LaneSource::Stream);
        i.route(1, 2);
        let occ = i.occupancy();
        // Multiplier node 1 plus 2 adder nodes on the path.
        assert_eq!(occ.iter().filter(|&&b| b).count(), 3);
        assert_eq!(i.busy_nodes(), 3);
        assert_eq!(i.stream_words(), 1);
    }

    #[test]
    fn lane_source_properties() {
        assert!(LaneSource::Stream.uses_stream());
        assert!(!LaneSource::Reg { addr: 0 }.uses_stream());
        assert_eq!(LaneSource::Reg { addr: 3 }.reg_addr(), Some(3));
        assert_eq!(LaneSource::Stream.reg_addr(), None);
        assert!(LaneSource::RegTimesImm { addr: 0, imm: 2.0 }.is_multiply());
        assert!(!LaneSource::Reg { addr: 0 }.is_multiply());
    }
}
