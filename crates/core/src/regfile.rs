//! Banked register files.
//!
//! The MIB machine has one register-file bank per network lane. Each bank
//! has a single read port (multiplier stage) and a single write port
//! (writeback stage) per cycle — the port constraint behind the structural
//! hazards of Section IV.A. The banks here are plain storage; port
//! scheduling is enforced by instruction merging and verified by the
//! machine.

use crate::{MibError, Result};

/// `C` register-file banks of equal depth.
#[derive(Debug, Clone, PartialEq)]
pub struct RegisterFiles {
    banks: Vec<Vec<f64>>,
    depth: usize,
}

impl RegisterFiles {
    /// Allocates `width` banks of `depth` words, zero-initialized.
    pub fn new(width: usize, depth: usize) -> Self {
        RegisterFiles {
            banks: vec![vec![0.0; depth]; width],
            depth,
        }
    }

    /// Number of banks (`C`).
    pub fn width(&self) -> usize {
        self.banks.len()
    }

    /// Words per bank.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Reads `bank[addr]`.
    ///
    /// # Errors
    ///
    /// Returns [`MibError::AddressOutOfRange`] for bad addresses.
    pub fn read(&self, bank: usize, addr: usize) -> Result<f64> {
        self.check(bank, addr)?;
        Ok(self.banks[bank][addr])
    }

    /// Writes `bank[addr] = value`.
    ///
    /// # Errors
    ///
    /// Returns [`MibError::AddressOutOfRange`] for bad addresses.
    pub fn write(&mut self, bank: usize, addr: usize, value: f64) -> Result<()> {
        self.check(bank, addr)?;
        self.banks[bank][addr] = value;
        Ok(())
    }

    /// Accumulates `bank[addr] += value` (the accumulating writeback port).
    ///
    /// # Errors
    ///
    /// Returns [`MibError::AddressOutOfRange`] for bad addresses.
    pub fn accumulate(&mut self, bank: usize, addr: usize, value: f64) -> Result<()> {
        self.check(bank, addr)?;
        self.banks[bank][addr] += value;
        Ok(())
    }

    /// Clears every bank to zero.
    pub fn clear(&mut self) {
        for bank in &mut self.banks {
            bank.fill(0.0);
        }
    }

    fn check(&self, bank: usize, addr: usize) -> Result<()> {
        if bank >= self.banks.len() || addr >= self.depth {
            return Err(MibError::AddressOutOfRange {
                bank,
                addr,
                depth: self.depth,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let mut r = RegisterFiles::new(4, 8);
        r.write(2, 3, 1.5).unwrap();
        assert_eq!(r.read(2, 3).unwrap(), 1.5);
        assert_eq!(r.read(2, 4).unwrap(), 0.0);
        r.accumulate(2, 3, 0.5).unwrap();
        assert_eq!(r.read(2, 3).unwrap(), 2.0);
    }

    #[test]
    fn bad_addresses_rejected() {
        let mut r = RegisterFiles::new(2, 4);
        assert!(r.read(2, 0).is_err());
        assert!(r.read(0, 4).is_err());
        assert!(r.write(0, 9, 1.0).is_err());
    }

    #[test]
    fn clear_zeroes_everything() {
        let mut r = RegisterFiles::new(2, 2);
        r.write(1, 1, 9.0).unwrap();
        r.clear();
        assert_eq!(r.read(1, 1).unwrap(), 0.0);
    }
}
