//! The HBM data stream.
//!
//! The paper's design streams data items from HBM **contiguously** alongside
//! the instruction stream: matrix nonzeros for MAC instructions, vector
//! segments for `load_vec`, and so on (green arrows in Figure 4). Because
//! the compiler lays out the data in exactly the order instructions consume
//! it, the model is a simple cursor over a word array with bandwidth
//! accounting: an instruction may consume at most `C` words (one per lane),
//! which is precisely the per-cycle HBM budget that defines `C`.

/// A contiguous HBM read stream.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HbmStream {
    data: Vec<f64>,
    pos: usize,
}

impl HbmStream {
    /// Creates a stream over the given word sequence.
    pub fn new(data: Vec<f64>) -> Self {
        HbmStream { data, pos: 0 }
    }

    /// An empty stream (for programs that consume no HBM data).
    pub fn empty() -> Self {
        HbmStream::default()
    }

    /// Appends words to the end of the stream.
    pub fn extend_from_slice(&mut self, words: &[f64]) {
        self.data.extend_from_slice(words);
    }

    /// Pops the next word, or `None` when exhausted.
    pub fn next_word(&mut self) -> Option<f64> {
        let w = self.data.get(self.pos).copied();
        if w.is_some() {
            self.pos += 1;
        }
        w
    }

    /// Words consumed so far.
    pub fn consumed(&self) -> usize {
        self.pos
    }

    /// Words remaining.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Total length of the stream.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the stream holds no data at all.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Rewinds to the beginning (replaying the same program, e.g. one ADMM
    /// iteration's schedule executed every iteration).
    pub fn rewind(&mut self) {
        self.pos = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_in_order_and_counts() {
        let mut s = HbmStream::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(s.next_word(), Some(1.0));
        assert_eq!(s.next_word(), Some(2.0));
        assert_eq!(s.consumed(), 2);
        assert_eq!(s.remaining(), 1);
        assert_eq!(s.next_word(), Some(3.0));
        assert_eq!(s.next_word(), None);
        s.rewind();
        assert_eq!(s.next_word(), Some(1.0));
    }

    #[test]
    fn extend_appends() {
        let mut s = HbmStream::empty();
        assert!(s.is_empty());
        s.extend_from_slice(&[4.0]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.next_word(), Some(4.0));
    }
}
