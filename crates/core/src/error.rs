use std::error::Error;
use std::fmt;

/// Errors raised by the MIB machine model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MibError {
    /// A data hazard was detected in strict verification mode: the
    /// instruction at `cycle` reads or accumulates into a location whose
    /// pending write completes only at `ready`. The reported location is
    /// the **binding** hazard — the pending write with the latest
    /// visibility cycle — so dynamic reports line up with the static
    /// verifier's diagnostics.
    DataHazard {
        /// Issue cycle of the offending instruction.
        cycle: u64,
        /// Index of the instruction within the program.
        instruction: usize,
        /// Offending bank (the lane whose latch is pending, for latch
        /// hazards).
        bank: usize,
        /// Offending address within the bank (0 for latch hazards).
        addr: usize,
        /// Whether the pending location is the lane's broadcast latch
        /// rather than a register.
        latch: bool,
        /// Cycle at which the pending write becomes visible.
        ready: u64,
    },
    /// The HBM stream was exhausted while an instruction requested a word.
    StreamExhausted {
        /// Index of the instruction within the program.
        instruction: usize,
    },
    /// A register access was outside the configured bank depth.
    AddressOutOfRange {
        /// Offending bank.
        bank: usize,
        /// Offending address.
        addr: usize,
        /// Configured bank depth.
        depth: usize,
    },
    /// An instruction's width does not match the machine width.
    WidthMismatch {
        /// Width of the instruction.
        instruction: usize,
        /// Width of the machine.
        machine: usize,
    },
    /// Two instructions could not be merged because of a structural
    /// conflict (shared node, lane input or lane write).
    MergeConflict(String),
}

impl fmt::Display for MibError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MibError::DataHazard {
                cycle,
                instruction,
                bank,
                addr,
                latch,
                ready,
            } => {
                if *latch {
                    write!(
                        f,
                        "data hazard at cycle {cycle} (instruction {instruction}): lane {bank} broadcast latch not ready until cycle {ready}"
                    )
                } else {
                    write!(
                        f,
                        "data hazard at cycle {cycle} (instruction {instruction}): bank {bank} addr {addr} not ready until cycle {ready}"
                    )
                }
            }
            MibError::StreamExhausted { instruction } => {
                write!(f, "hbm stream exhausted at instruction {instruction}")
            }
            MibError::AddressOutOfRange { bank, addr, depth } => write!(
                f,
                "register address {addr} out of range for bank {bank} (depth {depth})"
            ),
            MibError::WidthMismatch {
                instruction,
                machine,
            } => write!(
                f,
                "instruction width {instruction} does not match machine width {machine}"
            ),
            MibError::MergeConflict(msg) => write!(f, "merge conflict: {msg}"),
        }
    }
}

impl Error for MibError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_location() {
        let e = MibError::DataHazard {
            cycle: 9,
            instruction: 3,
            bank: 2,
            addr: 7,
            latch: false,
            ready: 12,
        };
        let s = e.to_string();
        assert!(s.contains("cycle 9") && s.contains("bank 2") && s.contains("12"));
        let l = MibError::DataHazard {
            cycle: 9,
            instruction: 3,
            bank: 2,
            addr: 0,
            latch: true,
            ready: 12,
        };
        assert!(l.to_string().contains("lane 2 broadcast latch"));
    }
}
