//! Cycle-accurate model of the **Multi-Issue Butterfly (MIB)** spatial
//! architecture (Section III of the paper).
//!
//! The machine consists of:
//!
//! * `C` single-port **register-file banks** ([`regfile::RegisterFiles`]);
//!   lane *i* of the network reads from and writes to bank *i* only — data
//!   is moved between banks by the network itself,
//! * a **multiplier stage** of `C` nodes, each able to bypass its register
//!   operand, inject an HBM stream word, or multiply the register operand by
//!   a stream word / a per-lane broadcast latch / an immediate
//!   ([`instruction::LaneSource`]),
//! * `log₂C` **adder stages** of `C` multi-mode nodes; node *j* of stage *s*
//!   sees the previous stage's lane *j* ("direct") and lane *j XOR 2ˢ*
//!   ("cross") and selects `Direct`, `Cross`, their `Sum`, or `Idle` — the
//!   four 2-bit modes of Figure 5,
//! * a **writeback stage** that stores, accumulates (`Add`), reciprocates
//!   (`Recip`, used for LDLᵀ pivots) or latches the lane value,
//! * an **HBM stream** ([`hbm::HbmStream`]) delivering up to `C` contiguous
//!   words per cycle alongside the instruction stream.
//!
//! One [`instruction::NetInstruction`] is the full per-cycle configuration
//! of every node — *multi-issue* means the compiler merges several logical
//! operations into one configuration wherever their node-occupancy vectors
//! and register ports do not collide (Section IV). The
//! [`machine::Machine`] executes programs functionally while enforcing the
//! pipeline hazard rules, so a mis-scheduled program either stalls (with
//! stalls counted) or fails verification.
//!
//! Two fidelity notes relative to the paper, also recorded in DESIGN.md:
//! the paper leaves the column-elimination datapath partially unspecified;
//! we concretize it with a per-lane *broadcast latch* (loaded by the
//! Fig. 6b distribution instruction) and an accumulating writeback port.
//! Both are standard FPGA datapath elements and preserve the paper's port
//! counts (one read, one write per bank per cycle).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod error;
pub mod hbm;
pub mod instruction;
pub mod isa;
pub mod machine;
pub mod regfile;
pub mod stats;
pub mod timeline;

pub use config::MibConfig;
pub use error::MibError;

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, MibError>;
