//! Execution statistics of the MIB pipeline.

use crate::instruction::InstrKind;

/// Counters collected while the machine executes a program.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ExecStats {
    /// Total cycles including stalls and the final pipeline drain.
    pub cycles: u64,
    /// Issue slots executed (merged instructions).
    pub slots: u64,
    /// Cycles lost to data-hazard stalls (0 for a well-scheduled program).
    pub stall_cycles: u64,
    /// Sum over slots of busy node counts (spatial utilization numerator).
    pub busy_nodes: u64,
    /// Floating-point operations performed (multiplies + adds + recips).
    pub flops: u64,
    /// HBM words streamed.
    pub hbm_words: u64,
    /// Register reads performed.
    pub reg_reads: u64,
    /// Register writes performed (including accumulates and latches).
    pub reg_writes: u64,
    /// Slots broken down by primitive kind, indexed by
    /// [`InstrKind::index`]: Mac, ColElim, Broadcast, Permute,
    /// Elementwise, Prefetch, Nop.
    pub slots_by_kind: [u64; InstrKind::COUNT],
}

impl ExecStats {
    /// Records a slot of the given kind.
    pub fn count_kind(&mut self, kind: InstrKind) {
        self.slots_by_kind[kind.index()] += 1;
    }

    /// Spatial utilization: busy nodes / (cycles × total nodes).
    pub fn utilization(&self, total_nodes: usize) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.busy_nodes as f64 / (self.cycles as f64 * total_nodes as f64)
    }

    /// Achieved FLOP/s at the given clock.
    pub fn flops_per_second(&self, clock_hz: f64) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.flops as f64 * clock_hz / self.cycles as f64
    }

    /// Merges another run's counters into this one (e.g. summing phases).
    pub fn merge(&mut self, other: &ExecStats) {
        self.cycles += other.cycles;
        self.slots += other.slots;
        self.stall_cycles += other.stall_cycles;
        self.busy_nodes += other.busy_nodes;
        self.flops += other.flops;
        self.hbm_words += other.hbm_words;
        self.reg_reads += other.reg_reads;
        self.reg_writes += other.reg_writes;
        for i in 0..InstrKind::COUNT {
            self.slots_by_kind[i] += other.slots_by_kind[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_math() {
        let s = ExecStats {
            cycles: 10,
            busy_nodes: 60,
            ..ExecStats::default()
        };
        assert!((s.utilization(12) - 0.5).abs() < 1e-12);
        assert_eq!(ExecStats::default().utilization(12), 0.0);
    }

    #[test]
    fn kind_counting_and_merge() {
        let mut a = ExecStats::default();
        a.count_kind(InstrKind::Mac);
        a.count_kind(InstrKind::Mac);
        a.count_kind(InstrKind::Permute);
        assert_eq!(a.slots_by_kind[0], 2);
        assert_eq!(a.slots_by_kind[3], 1);
        let mut b = ExecStats {
            cycles: 5,
            flops: 7,
            ..ExecStats::default()
        };
        b.count_kind(InstrKind::Mac);
        b.merge(&a);
        assert_eq!(b.slots_by_kind[0], 3);
        assert_eq!(b.flops, 7);
    }

    #[test]
    fn flops_per_second() {
        let s = ExecStats {
            cycles: 100,
            flops: 200,
            ..ExecStats::default()
        };
        assert!((s.flops_per_second(1e6) - 2e6).abs() < 1.0);
    }
}
