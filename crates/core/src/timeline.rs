//! Cycle-attributed execution timeline: where every cycle of a
//! [`Machine::run`](crate::machine::Machine::run) went.
//!
//! [`ExecStats`](crate::stats::ExecStats) answers *how many* cycles a
//! program took; the [`Timeline`] answers *why* — every cycle is
//! attributed to exactly one bucket (the issue cycle of an instruction
//! kind, a hazard stall charged to the stalled instruction's kind, or the
//! final pipeline drain), so the buckets sum **exactly** to
//! `ExecStats::cycles` (the invariant [`Timeline::total_cycles`] encodes,
//! pinned across the whole benchmark program suite by a workspace test).
//! Alongside the cycle attribution the timeline collects per-pipeline-
//! stage occupancy totals and the merged HBM streaming windows.

use crate::instruction::InstrKind;

/// Busy-element totals per pipeline stage, summed over all issued slots.
/// Each counter's denominator for an occupancy ratio is
/// `slots × width` (`slots × width × log₂ width` for the adder stages).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageOccupancy {
    /// Multiplier-stage lanes with an active input source.
    pub multiplier_lanes: u64,
    /// Non-idle adder-network nodes (all stages).
    pub adder_nodes: u64,
    /// Output-multiplier lanes actually multiplying (not bypassed).
    pub output_mul_lanes: u64,
    /// Lanes performing a writeback (stores, accumulates, latches).
    pub writeback_lanes: u64,
}

impl StageOccupancy {
    fn merge(&mut self, other: &StageOccupancy) {
        self.multiplier_lanes += other.multiplier_lanes;
        self.adder_nodes += other.adder_nodes;
        self.output_mul_lanes += other.output_mul_lanes;
        self.writeback_lanes += other.writeback_lanes;
    }
}

/// A maximal run of consecutive issue cycles during which the HBM stream
/// delivered words (a "streaming burst").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HbmWindow {
    /// First issue cycle of the window.
    pub start_cycle: u64,
    /// One past the last issue cycle of the window.
    pub end_cycle: u64,
    /// Words streamed inside the window.
    pub words: u64,
}

/// Cycle-bucketed profile of one program execution (see the module docs
/// for the attribution rules).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Timeline {
    /// Issue cycles attributed to each instruction kind
    /// (indexed by [`InstrKind::index`]; one cycle per issued slot).
    pub issue_cycles_by_kind: [u64; InstrKind::COUNT],
    /// Hazard-stall cycles attributed to the kind of the instruction
    /// that had to wait.
    pub stall_cycles_by_kind: [u64; InstrKind::COUNT],
    /// Final pipeline drain after the last issue (`latency` cycles, 0
    /// for an empty program).
    pub drain_cycles: u64,
    /// Per-stage busy-element totals.
    pub occupancy: StageOccupancy,
    /// Merged HBM streaming windows, in issue order.
    pub hbm_windows: Vec<HbmWindow>,
}

impl Timeline {
    /// Total attributed cycles. Equals
    /// [`ExecStats::cycles`](crate::stats::ExecStats::cycles) of the
    /// same run, exactly: every cycle lands in exactly one bucket.
    pub fn total_cycles(&self) -> u64 {
        self.issue_cycles_by_kind.iter().sum::<u64>()
            + self.stall_cycles_by_kind.iter().sum::<u64>()
            + self.drain_cycles
    }

    /// Total hazard-stall cycles (equals `ExecStats::stall_cycles`).
    pub fn stall_cycles(&self) -> u64 {
        self.stall_cycles_by_kind.iter().sum()
    }

    /// Total words streamed inside the recorded HBM windows (equals
    /// `ExecStats::hbm_words`).
    pub fn hbm_words(&self) -> u64 {
        self.hbm_windows.iter().map(|w| w.words).sum()
    }

    /// Records one issued slot: an issue cycle in the kind's bucket,
    /// `stalled` wait cycles charged to the same kind, stage occupancy,
    /// and — when the slot streamed words — an HBM window extension.
    ///
    /// Public so that static analyses (the `mib-verify` timing predictor)
    /// can build a timeline through the *same* accumulation rules the
    /// machine uses, making bucket-by-bucket equality assertions
    /// meaningful.
    pub fn record_slot(
        &mut self,
        kind: InstrKind,
        issue_cycle: u64,
        stalled: u64,
        occupancy: &StageOccupancy,
        hbm_words: u64,
    ) {
        self.issue_cycles_by_kind[kind.index()] += 1;
        self.stall_cycles_by_kind[kind.index()] += stalled;
        self.occupancy.merge(occupancy);
        if hbm_words > 0 {
            match self.hbm_windows.last_mut() {
                // Contiguous with the previous streaming slot: extend.
                Some(last) if last.end_cycle == issue_cycle => {
                    last.end_cycle = issue_cycle + 1;
                    last.words += hbm_words;
                }
                _ => self.hbm_windows.push(HbmWindow {
                    start_cycle: issue_cycle,
                    end_cycle: issue_cycle + 1,
                    words: hbm_words,
                }),
            }
        }
    }

    /// Renders a compact text table (kind, issue cycles, stall cycles),
    /// plus occupancy and streaming-window totals.
    pub fn report(&self, width: usize) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let total = self.total_cycles();
        let _ = writeln!(out, "cycle attribution ({total} total):");
        for kind in InstrKind::ALL {
            let issue = self.issue_cycles_by_kind[kind.index()];
            let stall = self.stall_cycles_by_kind[kind.index()];
            if issue == 0 && stall == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "  {:<12} {issue:>10} issue  {stall:>8} stall",
                kind.name()
            );
        }
        let _ = writeln!(
            out,
            "  {:<12} {:>10} drain",
            "(pipeline)", self.drain_cycles
        );
        let slots: u64 = self.issue_cycles_by_kind.iter().sum();
        if slots > 0 && width > 0 {
            let lanes = slots * width as u64;
            let stages = lanes * width.trailing_zeros() as u64;
            let pct = |n: u64, d: u64| {
                #[allow(clippy::cast_precision_loss)]
                if d == 0 {
                    0.0
                } else {
                    100.0 * n as f64 / d as f64
                }
            };
            let _ = writeln!(
                out,
                "stage occupancy: mul {:.1}%  adders {:.1}%  out-mul {:.1}%  writeback {:.1}%",
                pct(self.occupancy.multiplier_lanes, lanes),
                pct(self.occupancy.adder_nodes, stages),
                pct(self.occupancy.output_mul_lanes, lanes),
                pct(self.occupancy.writeback_lanes, lanes),
            );
        }
        let _ = writeln!(
            out,
            "hbm: {} window(s), {} words",
            self.hbm_windows.len(),
            self.hbm_words()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribution_sums_and_window_merging() {
        let mut tl = Timeline::default();
        let occ = StageOccupancy {
            multiplier_lanes: 4,
            adder_nodes: 6,
            output_mul_lanes: 0,
            writeback_lanes: 1,
        };
        tl.record_slot(InstrKind::Mac, 0, 0, &occ, 8);
        tl.record_slot(InstrKind::Mac, 1, 0, &occ, 8);
        // A stalled Permute: issued at cycle 5 after 3 wait cycles.
        tl.record_slot(InstrKind::Permute, 5, 3, &occ, 0);
        tl.record_slot(InstrKind::Prefetch, 6, 0, &occ, 2);
        tl.drain_cycles = 5;

        assert_eq!(tl.issue_cycles_by_kind[InstrKind::Mac.index()], 2);
        assert_eq!(tl.stall_cycles(), 3);
        assert_eq!(tl.total_cycles(), 4 + 3 + 5);
        // Slots 0 and 1 merged into one window; slot 6 starts a new one.
        assert_eq!(
            tl.hbm_windows,
            vec![
                HbmWindow {
                    start_cycle: 0,
                    end_cycle: 2,
                    words: 16
                },
                HbmWindow {
                    start_cycle: 6,
                    end_cycle: 7,
                    words: 2
                },
            ]
        );
        assert_eq!(tl.hbm_words(), 18);
        assert_eq!(tl.occupancy.multiplier_lanes, 16);

        let report = tl.report(8);
        assert!(report.contains("12 total"), "{report}");
        assert!(report.contains("mac"), "{report}");
        assert!(report.contains("2 window(s), 18 words"), "{report}");
    }

    #[test]
    fn empty_timeline_is_zero() {
        let tl = Timeline::default();
        assert_eq!(tl.total_cycles(), 0);
        assert_eq!(tl.hbm_words(), 0);
        assert!(tl.report(8).contains("0 total"));
    }
}
