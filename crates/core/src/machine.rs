//! The pipelined MIB machine: functional execution plus cycle-accurate
//! hazard accounting.
//!
//! The machine issues at most one (merged) network instruction per cycle.
//! The pipeline is fully static: results become architecturally visible
//! `latency = log₂C + 2` cycles after issue (multiplier stage, `log₂C`
//! adder stages, writeback). A program whose consumer issues inside a
//! producer's latency window has a **data hazard**; under
//! [`HazardPolicy::Stall`] the machine delays issue (counting stall
//! cycles), under [`HazardPolicy::Strict`] it reports an error — the mode
//! used to verify that compiler schedules are hazard-free.

use std::collections::HashMap;

use crate::hbm::HbmStream;
use crate::instruction::{LaneSource, NetInstruction, NodeMode, WriteMode};
use crate::regfile::RegisterFiles;
use crate::stats::ExecStats;
use crate::timeline::Timeline;
use crate::{MibConfig, MibError, Result};

/// How the machine reacts to data hazards in the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HazardPolicy {
    /// Delay issue until operands are ready, counting the lost cycles.
    #[default]
    Stall,
    /// Fail with [`MibError::DataHazard`] — schedules from the compiler
    /// must pass strict verification.
    Strict,
}

/// A Multi-Issue Butterfly machine instance.
#[derive(Debug, Clone)]
pub struct Machine {
    config: MibConfig,
    regs: RegisterFiles,
    latches: Vec<f64>,
}

impl Machine {
    /// Builds a machine for the given configuration.
    pub fn new(config: MibConfig) -> Self {
        let regs = RegisterFiles::new(config.width, config.bank_depth);
        Machine {
            config,
            regs,
            latches: vec![0.0; config.width],
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MibConfig {
        &self.config
    }

    /// The register files (e.g. to read results after a run).
    pub fn regs(&self) -> &RegisterFiles {
        &self.regs
    }

    /// Mutable register files (e.g. to preload vectors before a run).
    pub fn regs_mut(&mut self) -> &mut RegisterFiles {
        &mut self.regs
    }

    /// Resets registers and latches to zero.
    pub fn reset(&mut self) {
        self.regs.clear();
        self.latches.fill(0.0);
    }

    /// Executes a program against the HBM stream, returning statistics.
    ///
    /// # Errors
    ///
    /// Returns [`MibError::DataHazard`] (strict policy),
    /// [`MibError::StreamExhausted`], [`MibError::WidthMismatch`] or
    /// [`MibError::AddressOutOfRange`].
    pub fn run(
        &mut self,
        program: &[NetInstruction],
        hbm: &mut HbmStream,
        policy: HazardPolicy,
    ) -> Result<ExecStats> {
        self.run_inner(program, hbm, policy, None)
    }

    /// Like [`Machine::run`], additionally collecting a cycle-attributed
    /// [`Timeline`] (per-kind issue/stall buckets, stage occupancy, HBM
    /// streaming windows). The timeline's buckets sum exactly to the
    /// returned [`ExecStats::cycles`]; the functional result and the
    /// statistics are bitwise identical to a plain [`Machine::run`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Machine::run`].
    pub fn run_with_timeline(
        &mut self,
        program: &[NetInstruction],
        hbm: &mut HbmStream,
        policy: HazardPolicy,
    ) -> Result<(ExecStats, Timeline)> {
        let mut timeline = Timeline::default();
        let stats = self.run_inner(program, hbm, policy, Some(&mut timeline))?;
        Ok((stats, timeline))
    }

    fn run_inner(
        &mut self,
        program: &[NetInstruction],
        hbm: &mut HbmStream,
        policy: HazardPolicy,
        mut timeline: Option<&mut Timeline>,
    ) -> Result<ExecStats> {
        let width = self.config.width;
        let latency = self.config.latency();
        let mut stats = ExecStats::default();
        // (bank, addr) -> cycle at which the pending write becomes visible.
        let mut ready: HashMap<(usize, usize), u64> = HashMap::new();
        let mut latch_ready = vec![0u64; width];
        let mut cycle: u64 = 0;

        for (idx, inst) in program.iter().enumerate() {
            if inst.width() != width {
                return Err(MibError::WidthMismatch {
                    instruction: inst.width(),
                    machine: width,
                });
            }

            // Earliest hazard-free issue cycle. Tracks the *binding* hazard
            // (the pending write with the latest visibility cycle) so the
            // strict-mode error carries the same provenance the static
            // verifier reports.
            let mut issue = cycle;
            let mut binding_hazard: Option<(usize, usize, bool, u64)> = None;
            let mut note_hazard =
                |bank: usize, addr: usize, latch: bool, r: u64, issue: &mut u64| {
                    if r > *issue {
                        *issue = r;
                        binding_hazard = Some((bank, addr, latch, r));
                    }
                };
            for (lane, input) in inst.inputs().iter().enumerate() {
                let Some(src) = input else { continue };
                if let Some(addr) = src.reg_addr() {
                    if let Some(&r) = ready.get(&(lane, addr)) {
                        note_hazard(lane, addr, false, r, &mut issue);
                    }
                }
                if src.uses_latch() && latch_ready[lane] > issue {
                    let r = latch_ready[lane];
                    note_hazard(lane, 0, true, r, &mut issue);
                }
            }
            // Read-modify-write writebacks read their target.
            for (lane, write) in inst.writes().iter().enumerate() {
                let Some(w) = write else { continue };
                if w.mode.is_rmw() {
                    if let Some(&r) = ready.get(&(lane, w.addr)) {
                        note_hazard(lane, w.addr, false, r, &mut issue);
                    }
                }
            }
            if issue > cycle {
                if policy == HazardPolicy::Strict {
                    let (bank, addr, latch, r) =
                        binding_hazard.expect("issue moved implies a recorded hazard");
                    return Err(MibError::DataHazard {
                        cycle,
                        instruction: idx,
                        bank,
                        addr,
                        latch,
                        ready: r,
                    });
                }
                stats.stall_cycles += issue - cycle;
            }

            // ---- Functional evaluation ----
            let hbm_words_before = stats.hbm_words;
            // Multiplier stage (stream words consumed in lane order).
            let mut values = vec![0.0f64; width];
            for (lane, input) in inst.inputs().iter().enumerate() {
                let Some(src) = input else { continue };
                let v = match *src {
                    LaneSource::Reg { addr } => self.regs.read(lane, addr)?,
                    LaneSource::Stream => self.stream_word(hbm, idx, &mut stats)?,
                    LaneSource::RegTimesStream { addr, negate } => {
                        let r = self.regs.read(lane, addr)?;
                        let s = self.stream_word(hbm, idx, &mut stats)?;
                        stats.flops += 1;
                        if negate {
                            -(r * s)
                        } else {
                            r * s
                        }
                    }
                    LaneSource::RegTimesLatch { addr, negate } => {
                        let r = self.regs.read(lane, addr)?;
                        stats.flops += 1;
                        let p = r * self.latches[lane];
                        if negate {
                            -p
                        } else {
                            p
                        }
                    }
                    LaneSource::RegTimesImm { addr, imm } => {
                        let r = self.regs.read(lane, addr)?;
                        stats.flops += 1;
                        r * imm
                    }
                    LaneSource::StreamTimesLatch { negate } => {
                        let s = self.stream_word(hbm, idx, &mut stats)?;
                        stats.flops += 1;
                        let p = s * self.latches[lane];
                        if negate {
                            -p
                        } else {
                            p
                        }
                    }
                };
                if src.reg_addr().is_some() {
                    stats.reg_reads += 1;
                }
                values[lane] = v;
            }
            // Adder stages.
            for s in 0..inst.stages() {
                let bit = 1usize << s;
                let mut next = vec![0.0f64; width];
                for lane in 0..width {
                    next[lane] = match inst.node(s, lane) {
                        NodeMode::Idle => 0.0,
                        NodeMode::Direct => values[lane],
                        NodeMode::Cross => values[lane ^ bit],
                        NodeMode::Sum => {
                            stats.flops += 1;
                            values[lane] + values[lane ^ bit]
                        }
                    };
                }
                values = next;
            }
            // Output multiplier stage (consumes stream words after the
            // input stage, in lane order).
            for (lane, &om) in inst.out_muls().iter().enumerate() {
                if let crate::instruction::OutMul::MulStream { negate } = om {
                    let s = self.stream_word(hbm, idx, &mut stats)?;
                    stats.flops += 1;
                    values[lane] *= if negate { -s } else { s };
                }
            }
            // Writeback stage.
            for (lane, write) in inst.writes().iter().enumerate() {
                let Some(w) = write else { continue };
                let v = values[lane];
                match w.mode {
                    WriteMode::Store => self.regs.write(lane, w.addr, v)?,
                    WriteMode::Add => {
                        stats.flops += 1;
                        self.regs.accumulate(lane, w.addr, v)?;
                    }
                    WriteMode::StoreRecip => {
                        stats.flops += 1;
                        self.regs.write(lane, w.addr, 1.0 / v)?;
                    }
                    WriteMode::Latch => self.latches[lane] = v,
                    WriteMode::Min => {
                        stats.flops += 1;
                        let cur = self.regs.read(lane, w.addr)?;
                        self.regs.write(lane, w.addr, cur.min(v))?;
                    }
                    WriteMode::Max => {
                        stats.flops += 1;
                        let cur = self.regs.read(lane, w.addr)?;
                        self.regs.write(lane, w.addr, cur.max(v))?;
                    }
                    WriteMode::MaxAbs => {
                        stats.flops += 1;
                        let cur = self.regs.read(lane, w.addr)?;
                        self.regs.write(lane, w.addr, cur.max(v.abs()))?;
                    }
                }
                stats.reg_writes += 1;
                if w.mode == WriteMode::Latch {
                    latch_ready[lane] = issue + latency;
                } else {
                    ready.insert((lane, w.addr), issue + latency);
                }
            }

            stats.slots += 1;
            stats.busy_nodes += inst.busy_nodes() as u64;
            stats.count_kind(inst.kind);
            if let Some(tl) = timeline.as_deref_mut() {
                tl.record_slot(
                    inst.kind,
                    issue,
                    issue - cycle,
                    &inst.stage_occupancy(),
                    stats.hbm_words - hbm_words_before,
                );
            }
            cycle = issue + 1;
        }
        let drain = if stats.slots > 0 { latency } else { 0 };
        stats.cycles = cycle + drain;
        if let Some(tl) = timeline {
            tl.drain_cycles = drain;
        }
        Ok(stats)
    }

    fn stream_word(
        &mut self,
        hbm: &mut HbmStream,
        instruction: usize,
        stats: &mut ExecStats,
    ) -> Result<f64> {
        let w = hbm
            .next_word()
            .ok_or(MibError::StreamExhausted { instruction })?;
        stats.hbm_words += 1;
        Ok(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::{InstrKind, LaneWrite};

    fn machine8() -> Machine {
        Machine::new(MibConfig {
            width: 8,
            bank_depth: 64,
            clock_hz: 1e6,
        })
    }

    /// Loads vector elements cyclically: element e -> bank e % C, addr e / C.
    fn preload(m: &mut Machine, base: usize, v: &[f64]) {
        let c = m.config().width;
        for (e, &x) in v.iter().enumerate() {
            m.regs_mut().write(e % c, base + e / c, x).unwrap();
        }
    }

    #[test]
    fn mac_reduction_sums_all_lanes() {
        let mut m = machine8();
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        preload(&mut m, 0, &x);
        // One MAC instruction: every lane multiplies its register by a
        // streamed matrix value, all products reduce to lane 3 through the
        // multi-mode MAC tree.
        let mut inst = NetInstruction::nop(8);
        inst.kind = InstrKind::Mac;
        for lane in 0..8 {
            inst.set_input(
                lane,
                LaneSource::RegTimesStream {
                    addr: 0,
                    negate: false,
                },
            );
        }
        inst.reduce(&[0, 1, 2, 3, 4, 5, 6, 7], 3);
        inst.set_write(
            3,
            LaneWrite {
                addr: 10,
                mode: WriteMode::Store,
            },
        );
        let weights = [1.0, 1.0, 2.0, 1.0, 1.0, 1.0, 1.0, 0.5];
        let mut hbm = HbmStream::new(weights.to_vec());
        let stats = m.run(&[inst], &mut hbm, HazardPolicy::Strict).unwrap();
        // Expected: sum(x .* w) = 1+2+6+4+5+6+7+4 = 35.
        assert_eq!(m.regs().read(3, 10).unwrap(), 35.0);
        assert_eq!(stats.hbm_words, 8);
        assert!(stats.flops >= 8 + 7); // 8 multiplies + 7 adds
    }

    #[test]
    fn permutation_moves_values_across_banks() {
        let mut m = machine8();
        preload(&mut m, 0, &[10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0]);
        // Rotate by 3: element at lane i goes to lane (i + 3) % 8.
        // A rotation is a butterfly-routable permutation.
        let mut inst = NetInstruction::nop(8);
        inst.kind = InstrKind::Permute;
        for lane in 0..8 {
            inst.set_input(lane, LaneSource::Reg { addr: 0 });
        }
        for lane in 0..8 {
            inst.route(lane, (lane + 3) % 8);
        }
        for lane in 0..8 {
            inst.set_write(
                lane,
                LaneWrite {
                    addr: 1,
                    mode: WriteMode::Store,
                },
            );
        }
        let mut hbm = HbmStream::empty();
        m.run(&[inst], &mut hbm, HazardPolicy::Strict).unwrap();
        for lane in 0..8 {
            let src = (lane + 8 - 3) % 8;
            assert_eq!(
                m.regs().read(lane, 1).unwrap(),
                ((src + 1) * 10) as f64,
                "lane {lane}"
            );
        }
    }

    #[test]
    fn broadcast_latch_and_column_elimination() {
        let mut m = machine8();
        // x values: x[0..8] at addr 0; column values l at addr 1.
        preload(&mut m, 0, &[5.0; 8]); // all x_r = 5
        preload(&mut m, 1, &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]); // l_r = r at addr 1
                                                                       // Broadcast x_1 = 5.0 from lane 1 to all latches.
        let mut bcast = NetInstruction::nop(8);
        bcast.kind = InstrKind::Broadcast;
        bcast.set_input(1, LaneSource::Reg { addr: 0 });
        for dst in 0..8 {
            bcast.route(1, dst);
        }
        for lane in 0..8 {
            bcast.set_write(
                lane,
                LaneWrite {
                    addr: 0,
                    mode: WriteMode::Latch,
                },
            );
        }
        // Elimination: x_r -= l_r * x_broadcast for every lane.
        let mut elim = NetInstruction::nop(8);
        elim.kind = InstrKind::ColElim;
        for lane in 0..8 {
            elim.set_input(
                lane,
                LaneSource::RegTimesLatch {
                    addr: 1,
                    negate: true,
                },
            );
            elim.route(lane, lane);
            elim.set_write(
                lane,
                LaneWrite {
                    addr: 0,
                    mode: WriteMode::Add,
                },
            );
        }
        let mut hbm = HbmStream::empty();
        // Strict mode must reject back-to-back issue (latch RAW hazard),
        // naming the offending instruction and the latch as the location.
        let err = m.clone().run(
            &[bcast.clone(), elim.clone()],
            &mut hbm,
            HazardPolicy::Strict,
        );
        assert!(matches!(
            err,
            Err(MibError::DataHazard {
                instruction: 1,
                latch: true,
                ..
            })
        ));
        // Stall mode resolves it.
        let stats = m
            .run(&[bcast, elim], &mut hbm, HazardPolicy::Stall)
            .unwrap();
        assert!(stats.stall_cycles > 0);
        for lane in 0..8 {
            // x_r = 5 - r * 5
            assert_eq!(m.regs().read(lane, 0).unwrap(), 5.0 - lane as f64 * 5.0);
        }
    }

    #[test]
    fn broadcast_routing_is_multicast() {
        // Verify that routing one source to many destinations reuses shared
        // path prefixes without conflict (Fig. 6b).
        let mut inst = NetInstruction::nop(8);
        inst.set_input(2, LaneSource::Reg { addr: 0 });
        for dst in 0..8 {
            inst.route(2, dst);
        }
        // No panic = consistent modes; every lane receives the value.
        let mut m = machine8();
        m.regs_mut().write(2, 0, 42.0).unwrap();
        for lane in 0..8 {
            inst.set_write(
                lane,
                LaneWrite {
                    addr: 5,
                    mode: WriteMode::Store,
                },
            );
        }
        m.run(&[inst], &mut HbmStream::empty(), HazardPolicy::Strict)
            .unwrap();
        for lane in 0..8 {
            assert_eq!(m.regs().read(lane, 5).unwrap(), 42.0, "lane {lane}");
        }
    }

    #[test]
    fn store_recip_inverts() {
        let mut m = machine8();
        m.regs_mut().write(0, 0, 4.0).unwrap();
        let mut inst = NetInstruction::nop(8);
        inst.set_input(0, LaneSource::Reg { addr: 0 });
        inst.route(0, 0);
        inst.set_write(
            0,
            LaneWrite {
                addr: 1,
                mode: WriteMode::StoreRecip,
            },
        );
        m.run(&[inst], &mut HbmStream::empty(), HazardPolicy::Strict)
            .unwrap();
        assert_eq!(m.regs().read(0, 1).unwrap(), 0.25);
    }

    #[test]
    fn stream_exhaustion_is_reported() {
        let mut m = machine8();
        let mut inst = NetInstruction::nop(8);
        inst.set_input(0, LaneSource::Stream);
        inst.route(0, 0);
        inst.set_write(
            0,
            LaneWrite {
                addr: 0,
                mode: WriteMode::Store,
            },
        );
        let err = m.run(&[inst], &mut HbmStream::empty(), HazardPolicy::Stall);
        assert!(matches!(
            err,
            Err(MibError::StreamExhausted { instruction: 0 })
        ));
    }

    #[test]
    fn stall_counts_match_latency() {
        let mut m = machine8();
        // Producer writes (0, 0); consumer reads it immediately after.
        let mut producer = NetInstruction::nop(8);
        producer.set_input(0, LaneSource::Stream);
        producer.route(0, 0);
        producer.set_write(
            0,
            LaneWrite {
                addr: 0,
                mode: WriteMode::Store,
            },
        );
        let mut consumer = NetInstruction::nop(8);
        consumer.set_input(0, LaneSource::Reg { addr: 0 });
        consumer.route(0, 0);
        consumer.set_write(
            0,
            LaneWrite {
                addr: 1,
                mode: WriteMode::Store,
            },
        );
        let mut hbm = HbmStream::new(vec![7.0]);
        let stats = m
            .run(&[producer, consumer], &mut hbm, HazardPolicy::Stall)
            .unwrap();
        // Consumer wanted cycle 1, producer ready at 0 + latency(5).
        assert_eq!(stats.stall_cycles, m.config().latency() - 1);
        assert_eq!(m.regs().read(0, 1).unwrap(), 7.0);
    }

    #[test]
    fn strict_error_carries_binding_hazard_provenance() {
        let mut m = machine8();
        // Two producers on different banks; the consumer reads both. The
        // later producer (bank 1) is the binding hazard and must be the one
        // reported.
        let mut p0 = NetInstruction::nop(8);
        p0.set_input(0, LaneSource::Stream);
        p0.route(0, 0);
        p0.set_write(
            0,
            LaneWrite {
                addr: 2,
                mode: WriteMode::Store,
            },
        );
        let mut p1 = NetInstruction::nop(8);
        p1.set_input(1, LaneSource::Stream);
        p1.route(1, 1);
        p1.set_write(
            1,
            LaneWrite {
                addr: 3,
                mode: WriteMode::Store,
            },
        );
        let mut consumer = NetInstruction::nop(8);
        consumer.set_input(0, LaneSource::Reg { addr: 2 });
        consumer.set_input(1, LaneSource::Reg { addr: 3 });
        consumer.route(0, 0);
        consumer.route(1, 1);
        consumer.set_write(
            0,
            LaneWrite {
                addr: 4,
                mode: WriteMode::Store,
            },
        );
        let mut hbm = HbmStream::new(vec![1.0, 2.0]);
        let err = m.run(&[p0, p1, consumer], &mut hbm, HazardPolicy::Strict);
        let latency = MibConfig {
            width: 8,
            bank_depth: 64,
            clock_hz: 1e6,
        }
        .latency();
        assert_eq!(
            err,
            Err(MibError::DataHazard {
                cycle: 2,
                instruction: 2,
                bank: 1,
                addr: 3,
                latch: false,
                ready: 1 + latency,
            })
        );
    }

    #[test]
    fn nop_program_runs_empty() {
        let mut m = machine8();
        let stats = m
            .run(&[], &mut HbmStream::empty(), HazardPolicy::Strict)
            .unwrap();
        assert_eq!(stats.cycles, 0);
        assert_eq!(stats.slots, 0);
    }

    /// A producer/consumer pair that stalls, plus a streaming MAC: the
    /// timeline must attribute every cycle (issue + stall + drain) and
    /// agree bitwise with the plain run.
    #[test]
    fn timeline_attribution_matches_exec_stats() {
        let mut mac = NetInstruction::nop(8);
        mac.kind = InstrKind::Mac;
        for lane in 0..8 {
            mac.set_input(
                lane,
                LaneSource::RegTimesStream {
                    addr: 0,
                    negate: false,
                },
            );
        }
        mac.reduce(&[0, 1, 2, 3, 4, 5, 6, 7], 0);
        mac.set_write(
            0,
            LaneWrite {
                addr: 3,
                mode: WriteMode::Store,
            },
        );
        // Immediately consume the MAC result: forces a stall window.
        let mut consumer = NetInstruction::nop(8);
        consumer.kind = InstrKind::Permute;
        consumer.set_input(0, LaneSource::Reg { addr: 3 });
        consumer.route(0, 5);
        consumer.set_write(
            5,
            LaneWrite {
                addr: 4,
                mode: WriteMode::Store,
            },
        );
        let program = [mac, consumer];
        let words = vec![1.0; 8];

        let mut plain = machine8();
        let stats_plain = plain
            .run(
                &program,
                &mut HbmStream::new(words.clone()),
                HazardPolicy::Stall,
            )
            .unwrap();
        let mut timed = machine8();
        let (stats, tl) = timed
            .run_with_timeline(&program, &mut HbmStream::new(words), HazardPolicy::Stall)
            .unwrap();

        assert_eq!(stats, stats_plain);
        assert_eq!(
            plain.regs().read(5, 4).unwrap(),
            timed.regs().read(5, 4).unwrap()
        );
        assert_eq!(tl.total_cycles(), stats.cycles);
        assert_eq!(tl.stall_cycles(), stats.stall_cycles);
        assert_eq!(tl.hbm_words(), stats.hbm_words);
        assert_eq!(tl.issue_cycles_by_kind[InstrKind::Mac.index()], 1);
        assert_eq!(tl.issue_cycles_by_kind[InstrKind::Permute.index()], 1);
        // The stall is charged to the stalled (consumer) instruction.
        assert_eq!(
            tl.stall_cycles_by_kind[InstrKind::Permute.index()],
            stats.stall_cycles
        );
        assert_eq!(tl.drain_cycles, machine8().config().latency());
        // The MAC streamed 8 words in one single-cycle window.
        assert_eq!(tl.hbm_windows.len(), 1);
        assert_eq!(tl.hbm_windows[0].words, 8);
        // Occupancy: 8 multiplier lanes + 1 reg-read lane, 2 writebacks.
        assert_eq!(tl.occupancy.multiplier_lanes, 9);
        assert_eq!(tl.occupancy.writeback_lanes, 2);
    }

    #[test]
    fn timeline_empty_program_attributes_zero() {
        let mut m = machine8();
        let (stats, tl) = m
            .run_with_timeline(&[], &mut HbmStream::empty(), HazardPolicy::Strict)
            .unwrap();
        assert_eq!(stats.cycles, 0);
        assert_eq!(tl.total_cycles(), 0);
        assert!(tl.hbm_windows.is_empty());
    }
}
