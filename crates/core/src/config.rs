/// Static configuration of an MIB instance.
///
/// The paper's unified scalability parameter is `C`, "the maximum number of
/// data items that can be obtained from the HBM in every clock cycle"
/// (Section III.A); every architectural width is derived from it. The two
/// FPGA prototypes use `C = 16` (300 MHz) and `C = 32` (236 MHz).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MibConfig {
    /// Network width `C` (must be a power of two, at least 2).
    pub width: usize,
    /// Register-file depth per bank (words).
    pub bank_depth: usize,
    /// Clock frequency in Hz, used to convert cycle counts to time.
    pub clock_hz: f64,
}

impl MibConfig {
    /// The paper's `C = 16` prototype (300 MHz on the Alveo U50).
    pub fn c16() -> Self {
        MibConfig {
            width: 16,
            bank_depth: 1 << 16,
            clock_hz: 300e6,
        }
    }

    /// The paper's `C = 32` prototype (236 MHz on the Alveo U50).
    pub fn c32() -> Self {
        MibConfig {
            width: 32,
            bank_depth: 1 << 16,
            clock_hz: 236e6,
        }
    }

    /// A custom width with a default bank depth and an interpolated clock.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not a power of two or is below 2.
    pub fn with_width(width: usize) -> Self {
        assert!(
            width.is_power_of_two() && width >= 2,
            "width must be a power of two >= 2"
        );
        // Wider networks close timing at lower clocks (300 MHz at C=16,
        // 236 MHz at C=32 in the paper); extrapolate mildly.
        let clock_hz = match width {
            0..=16 => 300e6,
            17..=32 => 236e6,
            33..=64 => 200e6,
            _ => 160e6,
        };
        MibConfig {
            width,
            bank_depth: 1 << 16,
            clock_hz,
        }
    }

    /// Number of adder stages, `log₂C`.
    pub fn stages(&self) -> usize {
        self.width.trailing_zeros() as usize
    }

    /// Total node count `C·(log₂C + 1)` — multiplier stage plus adder
    /// stages. 192 for `C = 32`, matching Figure 8 of the paper.
    pub fn total_nodes(&self) -> usize {
        self.width * (self.stages() + 1)
    }

    /// Pipeline latency in cycles from issue to result visibility:
    /// multiplier stage + `log₂C` adder stages + writeback.
    pub fn latency(&self) -> u64 {
        self.stages() as u64 + 2
    }

    /// Control bits per network instruction for the adder stages,
    /// `2·C·log₂C` (Section III.C).
    pub fn control_bits(&self) -> usize {
        2 * self.width * self.stages()
    }

    /// Converts a cycle count to seconds at the configured clock.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz
    }
}

impl Default for MibConfig {
    fn default() -> Self {
        MibConfig::c32()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c32_matches_paper_node_count() {
        let c = MibConfig::c32();
        assert_eq!(c.width, 32);
        assert_eq!(c.stages(), 5);
        assert_eq!(c.total_nodes(), 192); // "192 nodes" in Fig. 8
        assert_eq!(c.control_bits(), 2 * 32 * 5);
    }

    #[test]
    fn c16_latency_and_time() {
        let c = MibConfig::c16();
        assert_eq!(c.stages(), 4);
        assert_eq!(c.latency(), 6);
        assert!((c.cycles_to_seconds(300_000_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        MibConfig::with_width(12);
    }
}
