//! The ADMM backend (Algorithm 1 of the paper), behind [`QpBackend`].
//!
//! This module is the former `solver.rs` iteration core, moved verbatim
//! behind the trait boundary: the arithmetic, stage order and adaptive-ρ
//! logic are untouched, so results remain **bitwise identical** to the
//! pre-trait solver. The public entry point is the
//! [`Solver`](crate::Solver) facade, which boxes an [`AdmmSolver`] when
//! [`Settings::algorithm`](crate::Settings) is [`Algorithm::Admm`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use mib_sparse::vector;
use mib_trace::{Category as TraceCat, Event as TraceEvent};

use crate::backend::{Algorithm, QpBackend};
use crate::linsys::{DirectKkt, IndirectKkt, KktSolver};
use crate::profile::Profile;
use crate::scaling::{ruiz_equilibrate, Scaling};
use crate::workspace::SolveWorkspace;
use crate::{KktBackend, Problem, QpError, Result, Settings, SolveResult, Status, INFTY};

/// The ADMM QP solver (Algorithm 1 of the paper).
///
/// An `AdmmSolver` owns a scaled copy of the problem, the selected KKT
/// backend, the current iterates and a [`SolveWorkspace`] holding every
/// scratch vector the iteration needs; after [`AdmmSolver::new`] returns,
/// a call to `solve_into` performs **no heap allocation**. Repeated solves
/// warm-start from the previous solution, and the parametric update
/// methods (`update_q`, `update_bounds`) support the "millions of QPs with
/// the same sparsity pattern" workflow the paper's portfolio example
/// describes without re-running setup.
///
/// The iteration is decomposed into named stages — `stage_rhs`,
/// `stage_ztilde`, `stage_x_update`, `stage_z_projection`,
/// `stage_y_update`, `stage_residuals`, `stage_adaptive_rho` — each of
/// which reads and writes well-defined workspace buffers, so they are
/// testable in isolation and map one-to-one onto the schedule fragments
/// the MIB compiler emits.
#[derive(Debug)]
pub struct AdmmSolver {
    settings: Settings,
    /// Original (unscaled) problem, used for residuals and certificates.
    orig: Problem,
    // Scaled data.
    q: Vec<f64>,
    l: Vec<f64>,
    u: Vec<f64>,
    scaling: Scaling,
    rho: f64,
    rho_vec: Vec<f64>,
    rho_inv_vec: Vec<f64>,
    kkt: Box<dyn KktSolver>,
    // Scaled iterates.
    x: Vec<f64>,
    y: Vec<f64>,
    z: Vec<f64>,
    ws: SolveWorkspace,
    profile: Profile,
    /// External cancellation flag, polled every `check_interval` iterations.
    cancel: Option<Arc<AtomicBool>>,
    /// External absolute deadline (combined with `settings.time_limit`).
    deadline: Option<Instant>,
}

impl Clone for AdmmSolver {
    fn clone(&self) -> Self {
        AdmmSolver {
            settings: self.settings.clone(),
            orig: self.orig.clone(),
            q: self.q.clone(),
            l: self.l.clone(),
            u: self.u.clone(),
            scaling: self.scaling.clone(),
            rho: self.rho,
            rho_vec: self.rho_vec.clone(),
            rho_inv_vec: self.rho_inv_vec.clone(),
            kkt: self.kkt.clone_box(),
            x: self.x.clone(),
            y: self.y.clone(),
            z: self.z.clone(),
            ws: self.ws.clone(),
            profile: self.profile,
            cancel: self.cancel.clone(),
            deadline: self.deadline,
        }
    }
}

/// Residual snapshot used by termination and adaptive-ρ logic.
#[derive(Debug, Clone, Copy)]
struct Residuals {
    prim: f64,
    dual: f64,
    prim_norm: f64,
    dual_norm: f64,
}

impl AdmmSolver {
    /// Sets up the solver: validates settings, equilibrates the problem,
    /// builds the `ρ` vector and the KKT backend.
    ///
    /// # Errors
    ///
    /// Returns setting/problem validation errors or
    /// [`QpError::KktFactorization`] if the initial factorization fails.
    pub fn new(problem: Problem, settings: Settings) -> Result<Self> {
        settings.validate()?;
        let n = problem.num_vars();
        let m = problem.num_constraints();

        // Scale a copy of the data.
        let mut p = problem.p().clone();
        let mut q = problem.q().to_vec();
        let mut a = problem.a().clone();
        let mut l = problem.l().to_vec();
        let mut u = problem.u().to_vec();
        let tracing = mib_trace::enabled();
        let scaling = if settings.scaling_iters > 0 {
            let _scaling_span = mib_trace::span_if(tracing, "scaling", TraceCat::Solver);
            ruiz_equilibrate(
                &mut p,
                &mut q,
                &mut a,
                &mut l,
                &mut u,
                settings.scaling_iters,
            )
        } else {
            Scaling::identity(n, m)
        };

        let (rho_vec, rho_inv_vec) = build_rho_vec(&settings, settings.rho, &l, &u);

        let mut profile = Profile::default();
        let kkt_setup_span = mib_trace::span_if(tracing, "kkt_setup", TraceCat::Kkt);
        let kkt: Box<dyn KktSolver> = match settings.backend {
            KktBackend::Direct => Box::new(DirectKkt::new(
                &p,
                &a,
                settings.sigma,
                &rho_vec,
                &mut profile,
            )?),
            KktBackend::Indirect => Box::new(IndirectKkt::new(
                &p,
                &a,
                settings.sigma,
                &rho_vec,
                settings.eps_pcg_start,
                settings.eps_pcg_min,
                settings.max_pcg_iter,
            )),
        };
        drop(kkt_setup_span);

        // `p`/`a` move into nothing — the backends clone what they need; we
        // keep the scaled P/A inside the backend only, and original copies
        // in `orig`. q/l/u stay here because updates and projections use them.
        drop(p);
        drop(a);

        Ok(AdmmSolver {
            settings,
            orig: problem,
            q,
            l,
            u,
            scaling,
            rho: 0.1,
            rho_vec,
            rho_inv_vec,
            kkt,
            x: vec![0.0; n],
            y: vec![0.0; m],
            z: vec![0.0; m],
            ws: SolveWorkspace::new(n, m),
            profile,
            cancel: None,
            deadline: None,
        })
        .map(|mut s| {
            s.rho = s.settings.rho;
            s
        })
    }

    /// The current base step size `ρ`.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Warm-starts the iterates from an (unscaled) primal/dual guess.
    ///
    /// # Panics
    ///
    /// Panics if the lengths do not match the problem dimensions.
    pub fn warm_start(&mut self, x: &[f64], y: &[f64]) {
        assert_eq!(x.len(), self.x.len(), "warm start x has wrong length");
        assert_eq!(y.len(), self.y.len(), "warm start y has wrong length");
        for (i, xs) in self.x.iter_mut().enumerate() {
            *xs = x[i] * self.scaling.dinv[i];
        }
        for (i, ys) in self.y.iter_mut().enumerate() {
            *ys = y[i] * self.scaling.c * self.scaling.einv[i];
        }
        // z = A x in the scaled space is re-established by the first
        // iteration; initialize with the projection of the current guess.
        self.orig.a().mul_vec_into(x, &mut self.ws.ax);
        for (i, zs) in self.z.iter_mut().enumerate() {
            *zs = self.ws.ax[i] * self.scaling.e[i];
        }
    }

    /// Resets the solver to its post-setup state: zero iterates, initial
    /// `ρ`, no warm-start memory in the backend. After `reset`, a solve
    /// reproduces the very first solve of a freshly constructed solver
    /// bitwise. [`BatchSolver`](crate::BatchSolver) relies on this to make
    /// parallel and sequential batch runs identical.
    ///
    /// The `ρ` vector is rebuilt from the *current* bounds, so the reset
    /// state is a pure function of the current problem data — a pooled
    /// solver that served other parameters first reaches bitwise the same
    /// state as a fresh clone of its template with the same updates
    /// applied, even when a bounds update changed a constraint's
    /// loose/equality/inequality classification.
    pub fn reset(&mut self) {
        self.x.fill(0.0);
        self.y.fill(0.0);
        self.z.fill(0.0);
        self.kkt.reset();
        self.rho = self.settings.rho;
        // Rebuild only when some entry actually changes (classification
        // drift or a previous adaptive-ρ run); `rho_vec` always mirrors the
        // value the KKT backend was last updated with, so an unchanged
        // vector needs no refactorization.
        let changed = self
            .l
            .iter()
            .zip(&self.u)
            .zip(&self.rho_vec)
            .any(|((&lo, &hi), &r)| rho_for(&self.settings, self.rho, lo, hi) != r);
        if changed {
            build_rho_vec_into(
                &self.settings,
                self.rho,
                &self.l,
                &self.u,
                &mut self.rho_vec,
                &mut self.rho_inv_vec,
            );
            let mut prof = self.profile;
            let _ = self.kkt.update_rho(&self.rho_vec, &mut prof);
            self.profile = prof;
        }
    }

    /// Replaces the linear cost `q` (same dimensions), preserving scaling.
    ///
    /// # Errors
    ///
    /// Returns [`QpError::InvalidProblem`] on length mismatch or non-finite
    /// entries.
    pub fn update_q(&mut self, q: &[f64]) -> Result<()> {
        if q.len() != self.q.len() {
            return Err(QpError::InvalidProblem(format!(
                "q has length {} but problem has {} variables",
                q.len(),
                self.q.len()
            )));
        }
        if q.iter().any(|v| !v.is_finite()) {
            return Err(QpError::InvalidProblem("q entries must be finite".into()));
        }
        let (p0, _q0, a0, l0, u0) = self.orig.clone().into_parts();
        self.orig = Problem::new(p0, q.to_vec(), a0, l0, u0)?;
        for (j, qs) in self.q.iter_mut().enumerate() {
            *qs = q[j] * self.scaling.c * self.scaling.d[j];
        }
        Ok(())
    }

    /// Replaces the bounds `l`, `u` (same dimensions), preserving scaling.
    ///
    /// # Errors
    ///
    /// Returns [`QpError::InvalidProblem`] if any `l[i] > u[i]` or lengths
    /// mismatch.
    pub fn update_bounds(&mut self, l: &[f64], u: &[f64]) -> Result<()> {
        if l.len() != self.l.len() || u.len() != self.u.len() {
            return Err(QpError::InvalidProblem("bound length mismatch".into()));
        }
        let (p0, q0, a0, _l0, _u0) = self.orig.clone().into_parts();
        self.orig = Problem::new(p0, q0, a0, l.to_vec(), u.to_vec())?;
        for i in 0..l.len() {
            self.l[i] = if l[i].abs() < INFTY {
                l[i] * self.scaling.e[i]
            } else {
                l[i]
            };
            self.u[i] = if u[i].abs() < INFTY {
                u[i] * self.scaling.e[i]
            } else {
                u[i]
            };
        }
        Ok(())
    }

    /// Runs the ADMM iteration, writing the outcome into an existing
    /// [`SolveResult`]. When `result` comes from a previous solve of the
    /// same problem dimensions, this performs **zero heap allocations** on
    /// feasible problems — the property the repository's counting-allocator
    /// test pins down. (Infeasible exits clone the certificate vector.)
    pub fn solve_into(&mut self, result: &mut SolveResult) {
        let start = Instant::now();
        // The solve's only read of the tracing flag: spans and events below
        // are gated on this hoisted bool, so the disabled-mode cost of the
        // whole instrumented solve is this one relaxed atomic load.
        let tracing = mib_trace::enabled();
        // Opt-in per-stage kernel spans (several per iteration), hoisted
        // like `tracing` so the disabled cost is one more relaxed load.
        let ktrace = mib_trace::kernel_spans();
        // Iteration stride for per-iteration detail (stage spans and the
        // KKT timestamp pair): 1 records every iteration exactly; the
        // serving plane raises it so always-on tracing samples instead.
        let kstride = usize::try_from(mib_trace::kernel_span_stride()).unwrap_or(usize::MAX);
        let _solve_span = mib_trace::span_if(tracing, "solve", TraceCat::Solver);
        // Keep setup factorization work, reset per-solve counters.
        let mut prof = self.profile;
        prof.admm_iters = 0;

        let n = self.x.len();
        let m = self.y.len();
        let max_iter = self.settings.max_iter;
        let check_every = self.settings.check_termination;
        // Round the adaptive interval up to a multiple of the termination
        // check so fresh residuals are always available.
        let adapt_every = self
            .settings
            .adaptive_rho_interval
            .div_ceil(check_every)
            .max(1)
            * check_every;

        result.x.resize(n, 0.0);
        result.y.resize(m, 0.0);
        result.z.resize(m, 0.0);
        result.certificate.clear();

        // Effective deadline: the earlier of the per-solve time limit and
        // the externally installed absolute deadline.
        let deadline = match (self.settings.time_limit.map(|d| start + d), self.deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let check_interval = self.settings.check_interval;

        let mut status = Status::MaxIterations;
        let mut pcg_tol = self.settings.eps_pcg_start;
        let mut final_res: Option<Residuals> = None;
        let mut iterations = 0usize;
        // Telemetry deltas: KKT time and PCG iterations since the last
        // per-iteration record (both stay untouched when tracing is off).
        let mut kkt_ns_total: u64 = 0;
        let mut kkt_ns_reported: u64 = 0;
        let mut pcg_reported = prof.pcg_iters;

        // A request may arrive already cancelled or past its deadline.
        if let Some(s) = self.interruption(deadline) {
            status = s;
        }
        let admm_span = mib_trace::span_if(tracing, "admm_loop", TraceCat::Solver);
        for k in 1..=max_iter {
            if status != Status::MaxIterations {
                break;
            }
            iterations = k;
            // Per-iteration detail is sampled at the kernel stride; with
            // the default stride of 1 every iteration records, so the
            // attribution harnesses keep exact stage totals.
            let sampled = k == 1 || k % kstride == 0;
            let kdetail = ktrace && sampled;
            {
                let _s = mib_trace::span_if(kdetail, "stage_rhs", TraceCat::Kernel);
                self.stage_rhs(&mut prof);
            }
            let kkt_start = if tracing && sampled {
                Some(Instant::now())
            } else {
                None
            };
            let kkt_failed = self.kkt.solve(&mut self.ws, &mut prof).is_err();
            if let Some(t0) = kkt_start {
                kkt_ns_total += u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            }
            if kkt_failed {
                // Factorization failures cannot occur mid-run (pattern and
                // quasi-definiteness are fixed); treat defensively as a stall.
                break;
            }
            {
                let _s = mib_trace::span_if(kdetail, "stage_ztilde", TraceCat::Kernel);
                self.stage_ztilde(&mut prof);
            }
            {
                let _s = mib_trace::span_if(kdetail, "stage_x_update", TraceCat::Kernel);
                self.stage_x_update(&mut prof);
            }
            {
                let _s = mib_trace::span_if(kdetail, "stage_z_projection", TraceCat::Kernel);
                self.stage_z_projection(&mut prof);
            }
            {
                let _s = mib_trace::span_if(kdetail, "stage_y_update", TraceCat::Kernel);
                self.stage_y_update(&mut prof);
            }

            let checking = k % check_every == 0 || k == max_iter;
            if checking {
                let res = {
                    let _s = mib_trace::span_if(kdetail, "stage_residuals", TraceCat::Kernel);
                    self.stage_residuals(&mut prof)
                };
                final_res = Some(res);
                if tracing {
                    // `res.prim`/`res.dual` are the exact values a
                    // terminating check writes into the result, so the
                    // last Iteration event matches the returned
                    // `SolveResult` residuals bitwise.
                    mib_trace::record_if(
                        true,
                        TraceEvent::Iteration {
                            algo: Algorithm::Admm.name(),
                            iter: u32::try_from(k).unwrap_or(u32::MAX),
                            prim_res: res.prim,
                            dual_res: res.dual,
                            rho: self.rho,
                            pcg_iters: u32::try_from(prof.pcg_iters - pcg_reported)
                                .unwrap_or(u32::MAX),
                            kkt_ns: kkt_ns_total - kkt_ns_reported,
                        },
                    );
                    pcg_reported = prof.pcg_iters;
                    kkt_ns_reported = kkt_ns_total;
                }
                let eps_prim = self.settings.eps_abs + self.settings.eps_rel * res.prim_norm;
                let eps_dual = self.settings.eps_abs + self.settings.eps_rel * res.dual_norm;
                if res.prim < eps_prim && res.dual < eps_dual {
                    status = Status::Solved;
                    break;
                }
                if self.check_primal_infeasible(&mut prof) {
                    status = Status::PrimalInfeasible;
                    result.certificate.extend_from_slice(&self.ws.cert_y);
                    break;
                }
                if self.check_dual_infeasible(&mut prof) {
                    status = Status::DualInfeasible;
                    result.certificate.extend_from_slice(&self.ws.cert_x);
                    break;
                }
                // Adaptive PCG tolerance: tighten as the ADMM residuals
                // fall, and halve unconditionally at every check so a
                // stalled outer loop (caused by inexact inner solves)
                // always escapes.
                if self.kkt.backend() == KktBackend::Indirect {
                    let target = 0.15
                        * (res.prim / res.prim_norm.max(1e-12) * res.dual
                            / res.dual_norm.max(1e-12))
                        .sqrt();
                    pcg_tol = (0.5 * pcg_tol).min(target).max(1e-9);
                    self.kkt.set_tolerance(pcg_tol);
                }
                if self.settings.adaptive_rho && k % adapt_every == 0 {
                    let rho_before = self.rho;
                    let res = self.stage_adaptive_rho(res, &mut prof);
                    final_res = Some(res);
                    if tracing && self.rho.to_bits() != rho_before.to_bits() {
                        mib_trace::record_if(
                            true,
                            TraceEvent::RhoUpdate {
                                iter: u32::try_from(k).unwrap_or(u32::MAX),
                                rho_old: rho_before,
                                rho_new: self.rho,
                            },
                        );
                    }
                }
            }
            // Interruption boundary: cancellation and deadline polls live
            // on their own interval so latency-sensitive callers can react
            // faster than the (costlier) termination check. The poll reads
            // no iterate state, so it cannot perturb a run that finishes.
            if k % check_interval == 0 {
                if let Some(s) = self.interruption(deadline) {
                    status = s;
                    break;
                }
            }
            prof.admm_iters = k;
        }
        drop(admm_span);

        // Unscale the solution directly into the result buffers.
        self.scaling.unscale_x_into(&self.x, &mut result.x);
        self.scaling.unscale_y_into(&self.y, &mut result.y);
        self.scaling.unscale_z_into(&self.z, &mut result.z);
        let res = final_res.unwrap_or(Residuals {
            prim: f64::INFINITY,
            dual: f64::INFINITY,
            prim_norm: 1.0,
            dual_norm: 1.0,
        });
        // obj = ½ xᵀPx + qᵀx, with Px staged through the workspace.
        self.orig
            .p()
            .sym_upper_mul_vec_into(&result.x, &mut self.ws.px);
        let obj_val =
            0.5 * vector::dot(&result.x, &self.ws.px) + vector::dot(self.orig.q(), &result.x);

        result.status = status;
        result.algorithm = Algorithm::Admm;
        result.obj_val = obj_val;
        result.prim_res = res.prim;
        result.dual_res = res.dual;
        result.iterations = iterations;
        result.profile = prof;
        result.solve_time = start.elapsed();
    }

    /// Polls the external cancellation flag and the effective deadline.
    /// Cancellation wins over timeout when both fire in the same window.
    fn interruption(&self, deadline: Option<Instant>) -> Option<Status> {
        if self
            .cancel
            .as_ref()
            .is_some_and(|c| c.load(Ordering::Relaxed))
        {
            return Some(Status::Cancelled);
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return Some(Status::TimedOut);
        }
        None
    }

    /// Stage 1: build the KKT right-hand side
    /// `[σ xᵏ − q ; zᵏ − ρ⁻¹ yᵏ]` into `ws.rhs_x` / `ws.rhs_z`.
    fn stage_rhs(&mut self, prof: &mut Profile) {
        let ws = &mut self.ws;
        let sigma = self.settings.sigma;
        vector::sax_sub_into(&mut ws.rhs_x, sigma, &self.x, &self.q);
        vector::sub_prod_into(&mut ws.rhs_z, &self.z, &self.rho_inv_vec, &self.y);
        prof.add_vector((2 * self.x.len() + 2 * self.z.len()) as f64);
    }

    /// Stage 2 (after the KKT solve): `z̃ = z + ρ⁻¹(ν − y)` into
    /// `ws.ztilde`.
    fn stage_ztilde(&mut self, prof: &mut Profile) {
        let ws = &mut self.ws;
        vector::add_prod_diff_into(&mut ws.ztilde, &self.z, &self.rho_inv_vec, &ws.nu, &self.y);
        prof.add_vector(3.0 * self.z.len() as f64);
    }

    /// Stage 3: relaxed x-update `xᵏ⁺¹ = α x̃ + (1−α) xᵏ`, recording the
    /// step `δx` in `ws.delta_x`.
    fn stage_x_update(&mut self, prof: &mut Profile) {
        let ws = &mut self.ws;
        let alpha = self.settings.alpha;
        vector::relax_delta_into(&mut self.x, &mut ws.delta_x, alpha, &ws.xtilde);
        prof.add_vector(4.0 * self.x.len() as f64);
    }

    /// Stage 4: z-projection. Forms the relaxed iterate
    /// `α z̃ + (1−α) zᵏ` (kept in `ws.z_relaxed` for the y-update) and
    /// projects `z_relaxed + ρ⁻¹ yᵏ` onto `[l, u]`.
    fn stage_z_projection(&mut self, prof: &mut Profile) {
        let ws = &mut self.ws;
        let alpha = self.settings.alpha;
        vector::relax_project_into(
            &mut self.z,
            &mut ws.z_relaxed,
            alpha,
            &ws.ztilde,
            &self.rho_inv_vec,
            &self.y,
            &self.l,
            &self.u,
        );
        prof.add_vector(6.0 * self.z.len() as f64);
    }

    /// Stage 5: y-update `yᵏ⁺¹ = yᵏ + ρ (z_relaxed − zᵏ⁺¹)`, recording the
    /// step `δy` in `ws.delta_y`.
    fn stage_y_update(&mut self, prof: &mut Profile) {
        let ws = &mut self.ws;
        vector::scaled_diff_update_into(
            &mut self.y,
            &mut ws.delta_y,
            &self.rho_vec,
            &ws.z_relaxed,
            &self.z,
        );
        prof.add_vector(3.0 * self.y.len() as f64);
    }

    /// Stage 6: unscaled residuals and their normalization terms, staged
    /// through the workspace (`x_us`, `y_us`, `z_us`, `ax`, `px`, `aty`).
    fn stage_residuals(&mut self, prof: &mut Profile) -> Residuals {
        let ws = &mut self.ws;
        self.scaling.unscale_x_into(&self.x, &mut ws.x_us);
        self.scaling.unscale_y_into(&self.y, &mut ws.y_us);
        self.scaling.unscale_z_into(&self.z, &mut ws.z_us);
        let a = self.orig.a();
        let p = self.orig.p();

        a.mul_vec_into(&ws.x_us, &mut ws.ax);
        prof.add_spmv_mac(a.nnz());
        let prim = vector::norm_inf_diff(&ws.ax, &ws.z_us);
        let prim_norm = vector::norm_inf(&ws.ax).max(vector::norm_inf(&ws.z_us));

        p.sym_upper_mul_vec_into(&ws.x_us, &mut ws.px);
        prof.add_spmv_mac(2 * p.nnz());
        a.spmv_t_into(&ws.y_us, &mut ws.aty);
        prof.add_spmv_col_elim(a.nnz());
        let dual = vector::norm_inf_sum3(&ws.px, self.orig.q(), &ws.aty);
        let dual_norm = vector::norm_inf(&ws.px)
            .max(vector::norm_inf(&ws.aty))
            .max(vector::norm_inf(self.orig.q()));
        prof.add_vector(4.0 * (ws.x_us.len() + ws.z_us.len()) as f64);

        Residuals {
            prim,
            dual,
            prim_norm,
            dual_norm,
        }
    }

    /// Tests the primal infeasibility certificate on the unscaled `δy`.
    /// On success the certificate is left in `ws.cert_y`.
    fn check_primal_infeasible(&mut self, prof: &mut Profile) -> bool {
        let eps = self.settings.eps_prim_inf;
        let ws = &mut self.ws;
        // Unscale: δy = E δȳ / c.
        vector::prod_scale_into(
            &mut ws.cert_y,
            &ws.delta_y,
            &self.scaling.e,
            self.scaling.cinv,
        );
        let norm = vector::norm_inf(&ws.cert_y);
        if norm <= 0.0 {
            return false;
        }
        let a = self.orig.a();
        a.spmv_t_into(&ws.cert_y, &mut ws.aty);
        prof.add_spmv_col_elim(a.nnz());
        if vector::norm_inf(&ws.aty) > eps * norm {
            return false;
        }
        // Support function: uᵀ(δy)₊ + lᵀ(δy)₋ must be certifiably negative.
        // Infinite bounds (±1e30) make the sum astronomically positive when
        // the corresponding component has the wrong sign, failing the test
        // exactly as intended.
        let mut lhs = 0.0;
        for (i, &d) in ws.cert_y.iter().enumerate() {
            if d > 0.0 {
                lhs += self.orig.u()[i] * d;
            } else if d < 0.0 {
                lhs += self.orig.l()[i] * d;
            }
        }
        prof.add_vector(2.0 * ws.cert_y.len() as f64);
        lhs <= -eps * norm
    }

    /// Tests the dual infeasibility certificate on the unscaled `δx`.
    /// On success the certificate is left in `ws.cert_x`.
    fn check_dual_infeasible(&mut self, prof: &mut Profile) -> bool {
        let eps = self.settings.eps_dual_inf;
        let ws = &mut self.ws;
        vector::ew_prod_into(&mut ws.cert_x, &ws.delta_x, &self.scaling.d);
        let norm = vector::norm_inf(&ws.cert_x);
        if norm <= 0.0 {
            return false;
        }
        let p = self.orig.p();
        p.sym_upper_mul_vec_into(&ws.cert_x, &mut ws.px);
        prof.add_spmv_mac(2 * p.nnz());
        if vector::norm_inf(&ws.px) > eps * norm {
            return false;
        }
        if vector::dot(self.orig.q(), &ws.cert_x) > -eps * norm {
            return false;
        }
        let a = self.orig.a();
        a.mul_vec_into(&ws.cert_x, &mut ws.ax);
        prof.add_spmv_mac(a.nnz());
        prof.add_vector(2.0 * ws.cert_x.len() as f64);
        for (i, &v) in ws.ax.iter().enumerate() {
            let u_inf = self.orig.u()[i] >= INFTY;
            let l_inf = self.orig.l()[i] <= -INFTY;
            let ok = match (l_inf, u_inf) {
                (true, true) => true,
                (false, true) => v >= -eps * norm,
                (true, false) => v <= eps * norm,
                (false, false) => v.abs() <= eps * norm,
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Stage 7: the OSQP adaptive-ρ rule, rebuilding the `ρ` vectors in
    /// place if the residual balance warrants it. Returns the residuals
    /// (unchanged) for the caller to keep as the latest snapshot.
    fn stage_adaptive_rho(&mut self, res: Residuals, prof: &mut Profile) -> Residuals {
        let prim_rel = res.prim / res.prim_norm.max(1e-12);
        let dual_rel = res.dual / res.dual_norm.max(1e-12);
        if prim_rel <= 0.0 || dual_rel <= 0.0 {
            return res;
        }
        let rho_new = (self.rho * (prim_rel / dual_rel).sqrt())
            .clamp(self.settings.rho_min, self.settings.rho_max);
        let tol = self.settings.adaptive_rho_tolerance;
        if rho_new > self.rho * tol || rho_new < self.rho / tol {
            self.rho = rho_new;
            build_rho_vec_into(
                &self.settings,
                rho_new,
                &self.l,
                &self.u,
                &mut self.rho_vec,
                &mut self.rho_inv_vec,
            );
            if self.kkt.update_rho(&self.rho_vec, prof).is_ok() {
                prof.rho_updates += 1;
            }
        }
        res
    }
}

impl QpBackend for AdmmSolver {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Admm
    }

    fn settings(&self) -> &Settings {
        &self.settings
    }

    fn problem(&self) -> &Problem {
        &self.orig
    }

    fn workspace(&self) -> &SolveWorkspace {
        &self.ws
    }

    fn step_size(&self) -> f64 {
        self.rho
    }

    fn warm_start(&mut self, x: &[f64], y: &[f64]) {
        AdmmSolver::warm_start(self, x, y);
    }

    fn reset(&mut self) {
        AdmmSolver::reset(self);
    }

    fn update_q(&mut self, q: &[f64]) -> Result<()> {
        AdmmSolver::update_q(self, q)
    }

    fn update_bounds(&mut self, l: &[f64], u: &[f64]) -> Result<()> {
        AdmmSolver::update_bounds(self, l, u)
    }

    fn set_cancel_flag(&mut self, cancel: Option<Arc<AtomicBool>>) {
        self.cancel = cancel;
    }

    fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
    }

    fn solve_into(&mut self, result: &mut SolveResult) {
        AdmmSolver::solve_into(self, result);
    }

    fn clone_box(&self) -> Box<dyn QpBackend> {
        Box::new(self.clone())
    }
}

/// Builds the per-constraint step sizes: equality rows get
/// `ρ · rho_eq_scale`, loose rows get `rho_min`, everything else `ρ`.
fn build_rho_vec(settings: &Settings, rho: f64, l: &[f64], u: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let mut rho_vec = vec![0.0; l.len()];
    let mut rho_inv_vec = vec![0.0; l.len()];
    build_rho_vec_into(settings, rho, l, u, &mut rho_vec, &mut rho_inv_vec);
    (rho_vec, rho_inv_vec)
}

/// In-place form of [`build_rho_vec`], used on the allocation-free
/// adaptive-ρ path.
fn build_rho_vec_into(
    settings: &Settings,
    rho: f64,
    l: &[f64],
    u: &[f64],
    rho_vec: &mut [f64],
    rho_inv_vec: &mut [f64],
) {
    for (i, (&lo, &hi)) in l.iter().zip(u).enumerate() {
        let r = rho_for(settings, rho, lo, hi);
        rho_vec[i] = r;
        rho_inv_vec[i] = 1.0 / r;
    }
}

/// Per-row step size from the bound classification of `(lo, hi)`.
fn rho_for(settings: &Settings, rho: f64, lo: f64, hi: f64) -> f64 {
    if lo <= -INFTY && hi >= INFTY {
        settings.rho_min
    } else if lo == hi {
        (rho * settings.rho_eq_scale).clamp(settings.rho_min, settings.rho_max)
    } else {
        rho
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mib_sparse::CscMatrix;

    fn staged_solver() -> AdmmSolver {
        let p = CscMatrix::from_dense(2, 2, &[2.0, 0.0, 0.0, 2.0]);
        let a = CscMatrix::from_dense(3, 2, &[1.0, 1.0, 1.0, 0.0, 0.0, 1.0]);
        let problem = Problem::new(
            p,
            vec![-1.0, 0.5],
            a,
            vec![-1.0, 0.0, 0.0],
            vec![1.0, 0.8, 0.8],
        )
        .unwrap();
        // Keep stage arithmetic easy to verify: no scaling.
        let s = Settings {
            scaling_iters: 0,
            ..Settings::default()
        };
        AdmmSolver::new(problem, s).unwrap()
    }

    #[test]
    fn stage_rhs_builds_kkt_rhs() {
        let mut solver = staged_solver();
        solver.x.copy_from_slice(&[0.5, -0.25]);
        solver.z.copy_from_slice(&[0.1, 0.2, 0.3]);
        solver.y.copy_from_slice(&[1.0, -1.0, 0.5]);
        let mut prof = Profile::default();
        solver.stage_rhs(&mut prof);
        let sigma = solver.settings.sigma;
        for j in 0..2 {
            let want = sigma * solver.x[j] - solver.q[j];
            assert_eq!(solver.ws.rhs_x[j], want);
        }
        for i in 0..3 {
            let want = solver.z[i] - solver.rho_inv_vec[i] * solver.y[i];
            assert_eq!(solver.ws.rhs_z[i], want);
        }
        assert!(prof.ops.elementwise > 0.0);
    }

    #[test]
    fn stage_x_update_applies_relaxation() {
        let mut solver = staged_solver();
        solver.x.copy_from_slice(&[1.0, 2.0]);
        solver.ws.xtilde.copy_from_slice(&[3.0, -2.0]);
        let alpha = solver.settings.alpha;
        let mut prof = Profile::default();
        solver.stage_x_update(&mut prof);
        for j in 0..2 {
            let x_old = [1.0, 2.0][j];
            let want = alpha * solver.ws.xtilde[j] + (1.0 - alpha) * x_old;
            assert_eq!(solver.x[j], want);
            assert_eq!(solver.ws.delta_x[j], want - x_old);
        }
    }

    #[test]
    fn z_projection_then_y_update_matches_fused_reference() {
        let mut solver = staged_solver();
        let z0 = [0.9, -0.4, 0.85];
        let y0 = [0.3, -0.6, 0.0];
        let ztilde = [1.5, 0.1, -0.2];
        solver.z.copy_from_slice(&z0);
        solver.y.copy_from_slice(&y0);
        solver.ws.ztilde.copy_from_slice(&ztilde);
        let mut prof = Profile::default();
        solver.stage_z_projection(&mut prof);
        solver.stage_y_update(&mut prof);
        // Reference: the fused per-element update.
        let alpha = solver.settings.alpha;
        for i in 0..3 {
            let z_relaxed = alpha * ztilde[i] + (1.0 - alpha) * z0[i];
            let w = z_relaxed + solver.rho_inv_vec[i] * y0[i];
            let z_new = w.max(solver.l[i]).min(solver.u[i]);
            let y_new = y0[i] + solver.rho_vec[i] * (z_relaxed - z_new);
            assert_eq!(solver.z[i], z_new, "z[{i}]");
            assert_eq!(solver.y[i], y_new, "y[{i}]");
            assert_eq!(solver.ws.delta_y[i], y_new - y0[i], "delta_y[{i}]");
        }
    }

    #[test]
    fn stage_residuals_matches_direct_computation() {
        let mut solver = staged_solver();
        solver.x.copy_from_slice(&[0.4, 0.2]);
        solver.z.copy_from_slice(&[0.6, 0.4, 0.2]);
        solver.y.copy_from_slice(&[0.1, 0.0, -0.1]);
        let mut prof = Profile::default();
        let res = solver.stage_residuals(&mut prof);
        // With identity scaling the unscaled iterates are the iterates.
        let a = solver.orig.a();
        let ax = a.mul_vec(&[0.4, 0.2]);
        let prim = vector::norm_inf_diff(&ax, &[0.6, 0.4, 0.2]);
        assert_eq!(res.prim, prim);
        let px = solver.orig.p().sym_upper_mul_vec(&[0.4, 0.2]);
        let aty = a.tr_mul_vec(&[0.1, 0.0, -0.1]);
        let mut dual = 0.0f64;
        for j in 0..2 {
            dual = dual.max((px[j] + solver.orig.q()[j] + aty[j]).abs());
        }
        assert_eq!(res.dual, dual);
    }

    #[test]
    fn build_rho_vec_into_matches_allocating() {
        let s = Settings::default();
        let l = [-2e30, 1.0, 0.0];
        let u = [2e30, 1.0, 5.0];
        let (rv, riv) = build_rho_vec(&s, 0.25, &l, &u);
        assert_eq!(rv[0], s.rho_min, "loose row");
        assert_eq!(
            rv[1],
            (0.25 * s.rho_eq_scale).clamp(s.rho_min, s.rho_max),
            "equality row"
        );
        assert_eq!(rv[2], 0.25, "inequality row");
        for (a, b) in rv.iter().zip(&riv) {
            assert_eq!(*b, 1.0 / *a);
        }
    }
}
