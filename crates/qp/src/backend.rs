//! The pluggable solver-algorithm boundary: [`Algorithm`] selection and
//! the [`QpBackend`] trait every iteration family implements.
//!
//! The public [`Solver`](crate::Solver) facade owns a `Box<dyn QpBackend>`
//! and forwards every call, so the layers above (`mib-serve` routing,
//! `BatchSolver`, the bench harnesses) treat algorithms uniformly: setup
//! from [`Problem`] + [`Settings`], allocation-free [`solve_into`] on a
//! shared [`SolveWorkspace`], warm starting, parametric updates,
//! cancellation/deadline hooks and per-iteration `Iteration` telemetry.
//!
//! Two backends exist today:
//!
//! * [`AdmmSolver`](crate::AdmmSolver) — the OSQP-style ADMM loop
//!   (Algorithm 1 of the paper), with direct LDLᵀ or indirect PCG KKT
//!   solves. The trait refactor left its arithmetic untouched: results are
//!   bitwise-identical to the pre-trait solver.
//! * [`PdqpSolver`](crate::PdqpSolver) — a restarted, averaged primal-dual
//!   hybrid gradient method ("PDQP", after Lu & Yang's first-order QP
//!   solver). Its hot path is three sparse mat-vecs per iteration on the
//!   existing `_into` kernels — no factorization at all.
//!
//! [`solve_into`]: QpBackend::solve_into
//! [`SolveWorkspace`]: crate::SolveWorkspace

use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Instant;

use crate::workspace::SolveWorkspace;
use crate::{Problem, Result, Settings, SolveResult};

/// Which iteration family solves the QP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Algorithm {
    /// OSQP-style ADMM (splitting + KKT solves; Algorithm 1 of the paper).
    #[default]
    Admm,
    /// Restarted averaged primal-dual hybrid gradient ("PDQP" à la
    /// Lu & Yang): factorization-free, three mat-vecs per iteration.
    Pdqp,
}

/// Number of algorithm variants (size of per-algorithm metric arrays).
pub const ALGORITHM_COUNT: usize = 2;

impl Algorithm {
    /// Short lowercase name (`"admm"` / `"pdqp"`), used in reports,
    /// telemetry tags and metric labels.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Admm => "admm",
            Algorithm::Pdqp => "pdqp",
        }
    }

    /// Dense index in `0..ALGORITHM_COUNT`, for per-algorithm counters.
    pub fn index(self) -> usize {
        match self {
            Algorithm::Admm => 0,
            Algorithm::Pdqp => 1,
        }
    }

    /// Every algorithm, in [`Algorithm::index`] order.
    pub fn all() -> [Algorithm; ALGORITHM_COUNT] {
        [Algorithm::Admm, Algorithm::Pdqp]
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One solver algorithm behind the [`Solver`](crate::Solver) facade.
///
/// # Contract
///
/// Implementations own a scaled copy of the problem, their iterates and a
/// [`SolveWorkspace`]; after construction, [`solve_into`] performs **no
/// heap allocation** (the counting-allocator test enforces this for every
/// backend). [`reset`] restores the post-setup state bitwise as a pure
/// function of the *current* problem data — the invariant pooled serving
/// and batch parity rely on. Backends emit
/// [`Iteration`](mib_trace::Event::Iteration) telemetry (tagged with
/// [`Algorithm::name`]) at every termination-check boundary when tracing
/// is enabled.
///
/// [`solve_into`]: QpBackend::solve_into
/// [`reset`]: QpBackend::reset
pub trait QpBackend: std::fmt::Debug + Send + Sync {
    /// Which algorithm this backend implements.
    fn algorithm(&self) -> Algorithm;

    /// The solver settings.
    fn settings(&self) -> &Settings;

    /// The original (unscaled) problem.
    fn problem(&self) -> &Problem;

    /// The preallocated workspace (for inspection in tests and benches).
    fn workspace(&self) -> &SolveWorkspace;

    /// The current base step size: `ρ` for ADMM, the primal step `τ` for
    /// PDQP. Reported in telemetry; comparable only within one algorithm.
    fn step_size(&self) -> f64;

    /// Warm-starts the iterates from an (unscaled) primal/dual guess.
    ///
    /// # Panics
    ///
    /// Panics if the lengths do not match the problem dimensions. (The
    /// [`Solver`](crate::Solver) facade offers the validating
    /// [`warm_start_from`](crate::Solver::warm_start_from) instead.)
    fn warm_start(&mut self, x: &[f64], y: &[f64]);

    /// Resets the backend to its post-setup state (see the trait docs).
    fn reset(&mut self);

    /// Replaces the linear cost `q` (same dimensions), preserving scaling.
    ///
    /// # Errors
    ///
    /// [`QpError::InvalidProblem`](crate::QpError) on length mismatch or
    /// non-finite entries.
    fn update_q(&mut self, q: &[f64]) -> Result<()>;

    /// Replaces the bounds `l`, `u` (same dimensions), preserving scaling.
    ///
    /// # Errors
    ///
    /// [`QpError::InvalidProblem`](crate::QpError) if any `l[i] > u[i]` or
    /// lengths mismatch.
    fn update_bounds(&mut self, l: &[f64], u: &[f64]) -> Result<()>;

    /// Installs (or clears) an external cancellation flag, polled every
    /// [`Settings::check_interval`] iterations.
    fn set_cancel_flag(&mut self, cancel: Option<Arc<AtomicBool>>);

    /// Installs (or clears) an absolute wall-clock deadline (combined
    /// with [`Settings::time_limit`]; whichever expires first wins).
    fn set_deadline(&mut self, deadline: Option<Instant>);

    /// Runs the iteration, writing the outcome into an existing
    /// [`SolveResult`]. Allocation-free when `result` comes from a
    /// previous solve of the same dimensions (infeasible exits clone the
    /// certificate vector).
    fn solve_into(&mut self, result: &mut SolveResult);

    /// Clones the backend behind the object boundary.
    fn clone_box(&self) -> Box<dyn QpBackend>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_names_indices_and_order() {
        assert_eq!(Algorithm::Admm.name(), "admm");
        assert_eq!(Algorithm::Pdqp.name(), "pdqp");
        assert_eq!(Algorithm::default(), Algorithm::Admm);
        for (i, algo) in Algorithm::all().into_iter().enumerate() {
            assert_eq!(algo.index(), i);
        }
        assert_eq!(Algorithm::all().len(), ALGORITHM_COUNT);
        assert_eq!(Algorithm::Pdqp.to_string(), "pdqp");
    }
}
