use mib_sparse::CscMatrix;

use crate::{QpError, Result, INFTY};

/// A convex quadratic program in OSQP standard form (equation (1) of the
/// paper):
///
/// ```text
/// minimize   (1/2) xᵀ P x + qᵀ x
/// subject to l ≤ A x ≤ u
/// ```
///
/// `P` must be positive semidefinite and is stored by its **upper triangle**
/// only (the OSQP convention). `A` is a general `m × n` sparse matrix.
/// Infinite bounds are encoded as values with magnitude `≥` [`INFTY`].
#[derive(Debug, Clone, PartialEq)]
pub struct Problem {
    p: CscMatrix,
    q: Vec<f64>,
    a: CscMatrix,
    l: Vec<f64>,
    u: Vec<f64>,
}

impl Problem {
    /// Creates and validates a problem.
    ///
    /// # Errors
    ///
    /// Returns [`QpError::InvalidProblem`] if:
    /// * dimensions are inconsistent,
    /// * `P` is not square, not upper-triangular-stored, or `n == 0`,
    /// * any `l[i] > u[i]`,
    /// * any entry of `P`, `q` or `A` is non-finite,
    /// * any bound is NaN.
    pub fn new(p: CscMatrix, q: Vec<f64>, a: CscMatrix, l: Vec<f64>, u: Vec<f64>) -> Result<Self> {
        let n = q.len();
        let m = l.len();
        if n == 0 {
            return Err(QpError::InvalidProblem("problem has zero variables".into()));
        }
        if p.nrows() != n || p.ncols() != n {
            return Err(QpError::InvalidProblem(format!(
                "P is {}x{} but q has length {n}",
                p.nrows(),
                p.ncols()
            )));
        }
        if !p.is_upper_triangular() {
            return Err(QpError::InvalidProblem(
                "P must be stored by its upper triangle".into(),
            ));
        }
        if a.ncols() != n || a.nrows() != m {
            return Err(QpError::InvalidProblem(format!(
                "A is {}x{} but expected {m}x{n}",
                a.nrows(),
                a.ncols()
            )));
        }
        if u.len() != m {
            return Err(QpError::InvalidProblem(format!(
                "l has length {m} but u has length {}",
                u.len()
            )));
        }
        for (i, (&lo, &hi)) in l.iter().zip(&u).enumerate() {
            if lo.is_nan() || hi.is_nan() {
                return Err(QpError::InvalidProblem(format!("nan bound at row {i}")));
            }
            if lo > hi {
                return Err(QpError::InvalidProblem(format!(
                    "lower bound {lo} exceeds upper bound {hi} at row {i}"
                )));
            }
        }
        if p.values().iter().any(|v| !v.is_finite())
            || a.values().iter().any(|v| !v.is_finite())
            || q.iter().any(|v| !v.is_finite())
        {
            return Err(QpError::InvalidProblem(
                "P, q and A entries must be finite".into(),
            ));
        }
        Ok(Problem { p, q, a, l, u })
    }

    /// Number of decision variables `n`.
    pub fn num_vars(&self) -> usize {
        self.q.len()
    }

    /// Number of constraints `m`.
    pub fn num_constraints(&self) -> usize {
        self.l.len()
    }

    /// The objective matrix `P` (upper triangle storage).
    pub fn p(&self) -> &CscMatrix {
        &self.p
    }

    /// The linear objective term `q`.
    pub fn q(&self) -> &[f64] {
        &self.q
    }

    /// The constraint matrix `A`.
    pub fn a(&self) -> &CscMatrix {
        &self.a
    }

    /// The lower bounds `l`.
    pub fn l(&self) -> &[f64] {
        &self.l
    }

    /// The upper bounds `u`.
    pub fn u(&self) -> &[f64] {
        &self.u
    }

    /// Total nonzeros `nnz(P) + nnz(A)` — the problem-size metric the
    /// paper's benchmark suite is parameterized by.
    pub fn total_nnz(&self) -> usize {
        self.p.nnz() + self.a.nnz()
    }

    /// Evaluates the objective `(1/2) xᵀPx + qᵀx`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n`.
    pub fn objective(&self, x: &[f64]) -> f64 {
        let px = self.p.sym_upper_mul_vec(x);
        0.5 * mib_sparse::vector::dot(x, &px) + mib_sparse::vector::dot(&self.q, x)
    }

    /// Maximum violation of `l ≤ Ax ≤ u` at `x` (0 when feasible).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n`.
    pub fn constraint_violation(&self, x: &[f64]) -> f64 {
        let ax = self.a.mul_vec(x);
        ax.iter()
            .zip(self.l.iter().zip(&self.u))
            .map(|(&v, (&lo, &hi))| (lo - v).max(v - hi).max(0.0))
            .fold(0.0f64, f64::max)
    }

    /// Returns the indices of equality constraints (`l == u`), which receive
    /// a boosted step size in the `ρ` vector.
    pub fn equality_rows(&self) -> Vec<usize> {
        self.l
            .iter()
            .zip(&self.u)
            .enumerate()
            .filter(|(_, (&lo, &hi))| lo == hi && lo.abs() < INFTY)
            .map(|(i, _)| i)
            .collect()
    }

    /// Returns the indices of loose constraints (both bounds infinite).
    pub fn loose_rows(&self) -> Vec<usize> {
        self.l
            .iter()
            .zip(&self.u)
            .enumerate()
            .filter(|(_, (&lo, &hi))| lo <= -INFTY && hi >= INFTY)
            .map(|(i, _)| i)
            .collect()
    }

    /// Decomposes into the raw parts `(P, q, A, l, u)`.
    pub fn into_parts(self) -> (CscMatrix, Vec<f64>, CscMatrix, Vec<f64>, Vec<f64>) {
        (self.p, self.q, self.a, self.l, self.u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Problem {
        let p = CscMatrix::from_dense(2, 2, &[2.0, 0.0, 0.0, 2.0]);
        let a = CscMatrix::identity(2);
        Problem::new(p, vec![-1.0, -1.0], a, vec![0.0, 0.0], vec![1.0, 1.0]).unwrap()
    }

    #[test]
    fn dimensions_reported() {
        let pr = tiny();
        assert_eq!(pr.num_vars(), 2);
        assert_eq!(pr.num_constraints(), 2);
        assert_eq!(pr.total_nnz(), 4);
    }

    #[test]
    fn objective_and_violation() {
        let pr = tiny();
        // f(x) = x0^2 + x1^2 - x0 - x1, at (1, 1): 2 - 2 = 0.
        assert_eq!(pr.objective(&[1.0, 1.0]), 0.0);
        assert_eq!(pr.constraint_violation(&[0.5, 0.5]), 0.0);
        assert_eq!(pr.constraint_violation(&[2.0, 0.5]), 1.0);
        assert_eq!(pr.constraint_violation(&[-0.5, 0.5]), 0.5);
    }

    #[test]
    fn rejects_bad_bounds() {
        let p = CscMatrix::identity(1);
        let a = CscMatrix::identity(1);
        assert!(Problem::new(p.clone(), vec![0.0], a.clone(), vec![2.0], vec![1.0]).is_err());
        assert!(Problem::new(p, vec![0.0], a, vec![f64::NAN], vec![1.0]).is_err());
    }

    #[test]
    fn rejects_lower_triangular_p() {
        let p = CscMatrix::from_dense(2, 2, &[1.0, 0.0, 1.0, 1.0]);
        let a = CscMatrix::identity(2);
        assert!(Problem::new(p, vec![0.0; 2], a, vec![0.0; 2], vec![1.0; 2]).is_err());
    }

    #[test]
    fn rejects_dimension_mismatch() {
        let p = CscMatrix::identity(2);
        let a = CscMatrix::identity(3);
        assert!(Problem::new(p, vec![0.0; 2], a, vec![0.0; 3], vec![1.0; 3]).is_err());
    }

    #[test]
    fn classifies_rows() {
        let p = CscMatrix::identity(1);
        let a = CscMatrix::from_dense(3, 1, &[1.0, 1.0, 1.0]);
        let pr = Problem::new(
            p,
            vec![0.0],
            a,
            vec![1.0, -2e30, -2e30],
            vec![1.0, 2e30, 5.0],
        )
        .unwrap();
        assert_eq!(pr.equality_rows(), vec![0]);
        assert_eq!(pr.loose_rows(), vec![1]);
    }
}
