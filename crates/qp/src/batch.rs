//! Batched multi-problem frontend: solve many same-pattern QPs from one
//! symbolic setup.
//!
//! The expensive part of [`Solver::new`] is structural — Ruiz
//! equilibration, the AMD-style fill-reducing ordering, the elimination
//! tree and the symbolic KKT factorization all depend only on the sparsity
//! pattern, not the values. The paper's target workload ("millions of QPs
//! with the same sparsity pattern", e.g. a portfolio problem re-solved per
//! asset-return scenario) therefore pays that cost once.
//!
//! [`BatchSolver`] packages this: it performs setup a single time, then
//! solves a stream of per-problem parametric updates ([`BatchUpdate`]) by
//! cloning the prepared solver into `std::thread::scope` workers — no
//! extra dependencies, no symbolic refactorization per problem.
//!
//! # Determinism
//!
//! Batch results are **independent of the thread count and chunking**:
//! every problem is re-parameterized from the shared template (an update of
//! `None` restores the template's value rather than inheriting whatever the
//! worker solved last) and solved from a cold start via [`Solver::reset`].
//! `solve_batch` over N problems on any number of threads is bitwise
//! identical to N sequential solves — the property the batch parity test in
//! `tests/` pins down.

use std::sync::mpsc;

use crate::{Problem, QpError, Result, Settings, SolveResult, Solver};

/// Per-problem parametric update applied on top of the template problem.
///
/// A `None` field keeps the template's value for that component. Only the
/// vector data (`q`, `l`, `u`) may vary across a batch; the matrices `P`
/// and `A` — and with them the whole symbolic setup — are shared.
#[derive(Debug, Clone, Default)]
pub struct BatchUpdate {
    /// Replacement linear cost, or `None` to use the template's `q`.
    pub q: Option<Vec<f64>>,
    /// Replacement bounds `(l, u)`, or `None` to use the template's.
    pub bounds: Option<(Vec<f64>, Vec<f64>)>,
    /// Fault injection for the panic-propagation unit test: the worker
    /// panics right before solving this update.
    #[cfg(test)]
    pub(crate) panic_in_worker: bool,
}

impl BatchUpdate {
    /// An update that only replaces the linear cost.
    pub fn with_q(q: Vec<f64>) -> Self {
        BatchUpdate {
            q: Some(q),
            ..BatchUpdate::default()
        }
    }

    /// An update that only replaces the bounds.
    pub fn with_bounds(l: Vec<f64>, u: Vec<f64>) -> Self {
        BatchUpdate {
            bounds: Some((l, u)),
            ..BatchUpdate::default()
        }
    }
}

/// Outcome of a panic-tolerant batch run (see
/// [`BatchSolver::solve_batch_partial`]).
#[derive(Debug, Clone, Default)]
pub struct BatchOutcome {
    /// `results[i]` is the solution of `updates[i]`, or `None` if the
    /// worker responsible for it panicked before completing it.
    pub results: Vec<Option<SolveResult>>,
    /// Captured panic messages, one per panicked worker (empty on a clean
    /// run).
    pub panics: Vec<String>,
}

impl BatchOutcome {
    /// `true` when every problem completed (no worker panicked mid-chunk).
    pub fn is_complete(&self) -> bool {
        self.panics.is_empty() && self.results.iter().all(Option::is_some)
    }
}

/// Default worker count: the `MIB_THREADS` environment variable when it
/// parses as a positive integer, otherwise `available_parallelism()`.
fn default_thread_count() -> usize {
    if let Ok(raw) = std::env::var("MIB_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Solves batches of QPs sharing one sparsity pattern (and one symbolic
/// setup) in parallel.
#[derive(Debug, Clone)]
pub struct BatchSolver {
    template: Solver,
    num_threads: usize,
}

impl BatchSolver {
    /// Runs setup (scaling, ordering, symbolic + numeric factorization)
    /// once on the template problem.
    ///
    /// # Thread policy
    ///
    /// The default worker count is `available_parallelism()`, overridable
    /// with the `MIB_THREADS` environment variable (parsed as a positive
    /// integer; anything else falls back to the default). An explicit
    /// [`with_threads`](BatchSolver::with_threads) call always wins over
    /// both. At solve time the effective count is additionally capped at
    /// the batch length — spawning more workers than problems only adds
    /// idle threads — and work is split into contiguous chunks of
    /// `ceil(batch_len / threads)` problems.
    ///
    /// # Errors
    ///
    /// Propagates any [`Solver::new`] setup error.
    pub fn new(problem: Problem, settings: Settings) -> Result<Self> {
        let template = Solver::new(problem, settings)?;
        let num_threads = default_thread_count();
        Ok(BatchSolver {
            template,
            num_threads,
        })
    }

    /// Sets the number of worker threads (clamped to at least 1). The
    /// results do not depend on this value, only the wall-clock time does.
    pub fn with_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads.max(1);
        self
    }

    /// The configured worker-thread count.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// The prepared template solver.
    pub fn template(&self) -> &Solver {
        &self.template
    }

    /// Solves one problem per update, in parallel across the configured
    /// worker threads. `results[i]` corresponds to `updates[i]`.
    ///
    /// # Errors
    ///
    /// Returns the first per-problem update error (e.g. a length
    /// mismatch); problem data errors abort the batch. A worker panic is
    /// reported as [`QpError::WorkerPanic`] instead of unwinding through
    /// (and aborting) the scope; use [`BatchSolver::solve_batch_partial`]
    /// to additionally recover the surviving problems' results.
    pub fn solve_batch(&self, updates: &[BatchUpdate]) -> Result<Vec<SolveResult>> {
        let outcome = self.solve_batch_partial(updates)?;
        if !outcome.panics.is_empty() {
            return Err(QpError::WorkerPanic(outcome.panics.join("; ")));
        }
        Ok(outcome
            .results
            .into_iter()
            .map(|r| r.expect("no panic recorded, so every result is present"))
            .collect())
    }

    /// Panic-tolerant variant of [`BatchSolver::solve_batch`]: workers
    /// stream each completed result back as soon as it is solved, so a
    /// panic (in this crate or in a poisoned data path) loses only the
    /// problems the panicking worker had not finished — every other
    /// problem's result survives, and the captured panic messages are
    /// reported in [`BatchOutcome::panics`] instead of unwinding.
    ///
    /// # Errors
    ///
    /// Returns the first per-problem update error (e.g. a length
    /// mismatch); problem data errors abort the batch.
    pub fn solve_batch_partial(&self, updates: &[BatchUpdate]) -> Result<BatchOutcome> {
        let n = updates.len();
        let mut outcome = BatchOutcome {
            results: (0..n).map(|_| None).collect(),
            panics: Vec::new(),
        };
        if n == 0 {
            return Ok(outcome);
        }
        let threads = self.num_threads.min(n);
        let chunk_size = n.div_ceil(threads);
        let template = &self.template;
        let (tx, rx) = mpsc::channel::<(usize, SolveResult)>();
        let mut first_err: Option<QpError> = None;
        std::thread::scope(|scope| {
            let handles: Vec<_> = updates
                .chunks(chunk_size)
                .enumerate()
                .map(|(ci, chunk)| {
                    let tx = tx.clone();
                    scope.spawn(move || run_chunk_streaming(template, chunk, ci * chunk_size, &tx))
                })
                .collect();
            drop(tx);
            for (ci, handle) in handles.into_iter().enumerate() {
                match handle.join() {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => {
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                    }
                    Err(payload) => outcome
                        .panics
                        .push(format!("worker {ci}: {}", panic_message(payload.as_ref()))),
                }
            }
            // All senders are gone; drain whatever the workers completed.
            for (index, result) in rx {
                outcome.results[index] = Some(result);
            }
        });
        match first_err {
            Some(e) => Err(e),
            None => Ok(outcome),
        }
    }

    /// Solves the batch on the current thread with a single cloned solver —
    /// the reference implementation `solve_batch` must match bitwise, and
    /// the baseline the batch benchmarks compare against.
    ///
    /// # Errors
    ///
    /// Same contract as [`BatchSolver::solve_batch`].
    pub fn solve_sequential(&self, updates: &[BatchUpdate]) -> Result<Vec<SolveResult>> {
        run_chunk(&self.template, updates)
    }
}

/// Solves a chunk of updates on one cloned solver. Every problem is
/// re-parameterized from the template's base data so the outcome does not
/// depend on which chunk (or order) it lands in.
fn run_chunk(template: &Solver, chunk: &[BatchUpdate]) -> Result<Vec<SolveResult>> {
    let (tx, rx) = mpsc::channel();
    run_chunk_streaming(template, chunk, 0, &tx)?;
    drop(tx);
    let mut results: Vec<Option<SolveResult>> = (0..chunk.len()).map(|_| None).collect();
    for (index, result) in rx {
        results[index] = Some(result);
    }
    Ok(results.into_iter().map(Option::unwrap).collect())
}

/// Chunk runner that streams each result through `tx` as soon as it is
/// solved (tagged with its global batch index), so completed work survives
/// a later panic on the same worker.
fn run_chunk_streaming(
    template: &Solver,
    chunk: &[BatchUpdate],
    base_index: usize,
    tx: &mpsc::Sender<(usize, SolveResult)>,
) -> Result<()> {
    let mut solver = template.clone();
    let base = template.problem();
    let (base_q, base_l, base_u) = (base.q().to_vec(), base.l().to_vec(), base.u().to_vec());
    for (offset, update) in chunk.iter().enumerate() {
        #[cfg(test)]
        assert!(
            !update.panic_in_worker,
            "injected batch worker panic (test fault injection)"
        );
        solver.update_q(update.q.as_deref().unwrap_or(&base_q))?;
        match &update.bounds {
            Some((l, u)) => solver.update_bounds(l, u)?,
            None => solver.update_bounds(&base_l, &base_u)?,
        }
        solver.reset();
        // The receiver outlives the scope; a send can only fail if the
        // parent already gave up on the batch, in which case dropping the
        // result is the right thing to do.
        let _ = tx.send((base_index + offset, solver.solve()));
    }
    Ok(())
}

/// Renders a captured panic payload (the `Any` from `JoinHandle::join`).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KktBackend, Status};
    use mib_sparse::CscMatrix;

    fn template_problem() -> Problem {
        // minimize x'Px + q'x  s.t. sum(x) = 1, 0 <= x <= 0.8
        let p = CscMatrix::from_dense(2, 2, &[2.0, 0.5, 0.0, 2.0])
            .upper_triangle()
            .unwrap();
        let a = CscMatrix::from_dense(3, 2, &[1.0, 1.0, 1.0, 0.0, 0.0, 1.0]);
        Problem::new(
            p,
            vec![-1.0, -0.5],
            a,
            vec![1.0, 0.0, 0.0],
            vec![1.0, 0.8, 0.8],
        )
        .unwrap()
    }

    fn q_sweep(count: usize) -> Vec<BatchUpdate> {
        (0..count)
            .map(|k| {
                let t = k as f64 / count as f64;
                BatchUpdate::with_q(vec![-1.0 - t, -0.5 + 0.3 * t])
            })
            .collect()
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        let batch = BatchSolver::new(template_problem(), Settings::default())
            .unwrap()
            .with_threads(4);
        let updates = q_sweep(13); // deliberately not divisible by 4
        let par = batch.solve_batch(&updates).unwrap();
        let seq = batch.solve_sequential(&updates).unwrap();
        assert_eq!(par.len(), seq.len());
        for (i, (a, b)) in par.iter().zip(&seq).enumerate() {
            assert_eq!(a.status, Status::Solved, "problem {i}");
            assert_eq!(a.x, b.x, "problem {i}: parallel/sequential x differ");
            assert_eq!(a.iterations, b.iterations, "problem {i}");
        }
    }

    #[test]
    fn none_update_restores_template_values() {
        let batch = BatchSolver::new(template_problem(), Settings::default())
            .unwrap()
            .with_threads(2);
        // Problem 1 changes q; problem 2 must see the template q again.
        let updates = vec![
            BatchUpdate::default(),
            BatchUpdate::with_q(vec![-5.0, -5.0]),
            BatchUpdate::default(),
        ];
        let results = batch.solve_batch(&updates).unwrap();
        assert_eq!(
            results[0].x, results[2].x,
            "None update must not inherit prior q"
        );
        assert_ne!(results[0].x, results[1].x);
    }

    #[test]
    fn bounds_stream_solves() {
        let batch = BatchSolver::new(template_problem(), Settings::default())
            .unwrap()
            .with_threads(2);
        let updates: Vec<BatchUpdate> = (0..6)
            .map(|k| {
                let cap = 0.5 + 0.05 * k as f64;
                BatchUpdate::with_bounds(vec![1.0, 0.0, 0.0], vec![1.0, cap, cap])
            })
            .collect();
        let results = batch.solve_batch(&updates).unwrap();
        for (k, r) in results.iter().enumerate() {
            let cap = 0.5 + 0.05 * k as f64;
            assert_eq!(r.status, Status::Solved);
            assert!(r.x[0] <= cap + 1e-2, "x0 = {} exceeds cap {cap}", r.x[0]);
            assert!(r.x[1] <= cap + 1e-2, "x1 = {} exceeds cap {cap}", r.x[1]);
            assert!(
                (r.x[0] + r.x[1] - 1.0).abs() < 1e-2,
                "sum constraint violated"
            );
        }
    }

    #[test]
    fn indirect_backend_batches_deterministically() {
        let batch = BatchSolver::new(
            template_problem(),
            Settings::with_backend(KktBackend::Indirect),
        )
        .unwrap()
        .with_threads(3);
        let updates = q_sweep(7);
        let par = batch.solve_batch(&updates).unwrap();
        let seq = batch.solve_sequential(&updates).unwrap();
        for (a, b) in par.iter().zip(&seq) {
            assert_eq!(
                a.x, b.x,
                "PCG warm-start state must not leak across problems"
            );
        }
    }

    #[test]
    fn worker_panic_is_an_error_not_an_abort() {
        let batch = BatchSolver::new(template_problem(), Settings::default())
            .unwrap()
            .with_threads(4);
        let mut updates = q_sweep(8);
        updates[5].panic_in_worker = true;
        let err = batch.solve_batch(&updates).unwrap_err();
        match err {
            QpError::WorkerPanic(msg) => {
                assert!(msg.contains("injected"), "unexpected message: {msg}")
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
    }

    #[test]
    fn partial_batch_returns_survivor_results() {
        let batch = BatchSolver::new(template_problem(), Settings::default())
            .unwrap()
            .with_threads(4);
        // 8 problems on 4 threads -> chunks of 2. Poison the second problem
        // of chunk 1 (global index 3): index 2 completes and must survive,
        // index 3 is lost, every other chunk is untouched.
        let mut updates = q_sweep(8);
        updates[3].panic_in_worker = true;
        let outcome = batch.solve_batch_partial(&updates).unwrap();
        assert_eq!(outcome.panics.len(), 1);
        assert!(!outcome.is_complete());
        assert!(
            outcome.results[3].is_none(),
            "poisoned problem has no result"
        );
        let reference = batch.solve_sequential(&q_sweep(8)).unwrap();
        for (i, r) in outcome.results.iter().enumerate() {
            if i == 3 {
                continue;
            }
            let r = r.as_ref().unwrap_or_else(|| panic!("problem {i} lost"));
            assert_eq!(r.x, reference[i].x, "survivor {i} must match reference");
        }
    }

    #[test]
    fn clean_partial_batch_is_complete() {
        let batch = BatchSolver::new(template_problem(), Settings::default())
            .unwrap()
            .with_threads(3);
        let outcome = batch.solve_batch_partial(&q_sweep(7)).unwrap();
        assert!(outcome.is_complete());
        assert!(outcome.panics.is_empty());
        assert_eq!(outcome.results.len(), 7);
    }

    #[test]
    fn invalid_update_aborts_batch() {
        let batch = BatchSolver::new(template_problem(), Settings::default()).unwrap();
        let updates = vec![BatchUpdate::with_q(vec![1.0])]; // wrong length
        assert!(batch.solve_batch(&updates).is_err());
    }

    #[test]
    fn empty_batch_is_empty() {
        let batch = BatchSolver::new(template_problem(), Settings::default()).unwrap();
        assert!(batch.solve_batch(&[]).unwrap().is_empty());
    }
}
