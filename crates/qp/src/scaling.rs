//! Modified Ruiz equilibration (the scaling step OSQP performs at setup).
//!
//! Repeatedly normalizes the infinity norms of the columns of the stacked
//! matrix `[P Aᵀ; A 0]` toward 1 and rescales the cost so that gradients of
//! the quadratic and linear terms are balanced. Scaling dramatically reduces
//! ADMM iteration counts on badly conditioned problems, and the scaling
//! vectors enter the unscaled termination criteria.

use mib_sparse::{vector, CscMatrix};

use crate::INFTY;

/// Clamp applied to every per-pass scaling factor, as in OSQP
/// (`MIN_SCALING` / `MAX_SCALING`).
const MIN_SCALING: f64 = 1e-4;
/// Upper clamp for per-pass scaling factors.
const MAX_SCALING: f64 = 1e4;

/// Diagonal scalings produced by Ruiz equilibration.
///
/// The scaled problem is
/// `P̄ = c·D P D`, `q̄ = c·D q`, `Ā = E A D`, `l̄ = E l`, `ū = E u`,
/// and solutions map back as `x = D x̄`, `z = E⁻¹ z̄`, `y = E ȳ / c`.
#[derive(Debug, Clone, PartialEq)]
pub struct Scaling {
    /// Cost scaling factor `c`.
    pub c: f64,
    /// Variable scaling `D` (diagonal, length `n`).
    pub d: Vec<f64>,
    /// Constraint scaling `E` (diagonal, length `m`).
    pub e: Vec<f64>,
    /// Reciprocals of `d`.
    pub dinv: Vec<f64>,
    /// Reciprocals of `e`.
    pub einv: Vec<f64>,
    /// Reciprocal of `c`.
    pub cinv: f64,
}

impl Scaling {
    /// The identity scaling (used when `scaling_iters == 0`).
    pub fn identity(n: usize, m: usize) -> Self {
        Scaling {
            c: 1.0,
            d: vec![1.0; n],
            e: vec![1.0; m],
            dinv: vec![1.0; n],
            einv: vec![1.0; m],
            cinv: 1.0,
        }
    }

    /// Maps a scaled primal iterate back to the original space: `x = D x̄`.
    pub fn unscale_x(&self, x_scaled: &[f64]) -> Vec<f64> {
        vector::ew_prod(&self.d, x_scaled)
    }

    /// Allocation-free form of [`Scaling::unscale_x`].
    pub fn unscale_x_into(&self, x_scaled: &[f64], out: &mut [f64]) {
        vector::ew_prod_into(out, &self.d, x_scaled);
    }

    /// Maps a scaled constraint iterate back: `z = E⁻¹ z̄`.
    pub fn unscale_z(&self, z_scaled: &[f64]) -> Vec<f64> {
        vector::ew_prod(&self.einv, z_scaled)
    }

    /// Allocation-free form of [`Scaling::unscale_z`].
    pub fn unscale_z_into(&self, z_scaled: &[f64], out: &mut [f64]) {
        vector::ew_prod_into(out, &self.einv, z_scaled);
    }

    /// Maps a scaled dual iterate back: `y = E ȳ / c`.
    pub fn unscale_y(&self, y_scaled: &[f64]) -> Vec<f64> {
        self.e
            .iter()
            .zip(y_scaled)
            .map(|(&e, &y)| e * y * self.cinv)
            .collect()
    }

    /// Allocation-free form of [`Scaling::unscale_y`].
    pub fn unscale_y_into(&self, y_scaled: &[f64], out: &mut [f64]) {
        vector::prod_scale_into(out, &self.e, y_scaled, self.cinv);
    }

    /// Maps a scaled objective value back: `f = f̄ / c`.
    pub fn unscale_obj(&self, obj_scaled: f64) -> f64 {
        obj_scaled * self.cinv
    }
}

/// Scales a bound vector in place, leaving infinite entries untouched so
/// that the solver's infinity semantics survive scaling.
fn scale_bounds(bounds: &mut [f64], e: &[f64]) {
    for (b, &s) in bounds.iter_mut().zip(e) {
        if b.abs() < INFTY {
            *b *= s;
        }
    }
}

/// Runs `iters` passes of modified Ruiz equilibration **in place** on the
/// problem data, returning the accumulated [`Scaling`].
///
/// `p` must be the upper triangle of the objective matrix. With `iters == 0`
/// the data is untouched and the identity scaling is returned.
pub fn ruiz_equilibrate(
    p: &mut CscMatrix,
    q: &mut [f64],
    a: &mut CscMatrix,
    l: &mut [f64],
    u: &mut [f64],
    iters: usize,
) -> Scaling {
    let n = q.len();
    let m = l.len();
    let mut c = 1.0f64;
    let mut d = vec![1.0f64; n];
    let mut e = vec![1.0f64; m];

    for _ in 0..iters {
        // Per-pass scalings from the column norms of [P Aᵀ; A 0]:
        // variable column j sees column j of P (symmetric) and column j of A;
        // constraint column n+i sees row i of A.
        let p_norms = p.sym_upper_col_norms_inf();
        let a_col_norms = a.col_norms_inf();
        let a_row_norms = a.row_norms_inf();

        let mut delta_d = vec![1.0f64; n];
        for j in 0..n {
            let norm = p_norms[j].max(a_col_norms[j]);
            delta_d[j] = scaling_factor(norm);
        }
        let mut delta_e = vec![1.0f64; m];
        for i in 0..m {
            delta_e[i] = scaling_factor(a_row_norms[i]);
        }

        // Apply: P <- Δd P Δd, q <- Δd q, A <- Δe A Δd, l/u <- Δe l/u.
        p.scale_cols(&delta_d);
        p.scale_rows(&delta_d);
        for (qj, &s) in q.iter_mut().zip(&delta_d) {
            *qj *= s;
        }
        a.scale_cols(&delta_d);
        a.scale_rows(&delta_e);
        scale_bounds(l, &delta_e);
        scale_bounds(u, &delta_e);
        for (dj, &s) in d.iter_mut().zip(&delta_d) {
            *dj *= s;
        }
        for (ei, &s) in e.iter_mut().zip(&delta_e) {
            *ei *= s;
        }

        // Cost normalization: γ = 1 / max(mean column norm of P, ‖q‖∞).
        let p_norms = p.sym_upper_col_norms_inf();
        let mean_p = if n > 0 {
            p_norms.iter().sum::<f64>() / n as f64
        } else {
            0.0
        };
        let q_norm = vector::norm_inf(q);
        let denom = mean_p.max(q_norm);
        let gamma = if denom > 0.0 {
            scaling_factor_linear(denom)
        } else {
            1.0
        };
        if gamma != 1.0 {
            for v in p.values_mut() {
                *v *= gamma;
            }
            for qj in q.iter_mut() {
                *qj *= gamma;
            }
            c *= gamma;
        }
    }

    let dinv = vector::ew_reci(&d);
    let einv = vector::ew_reci(&e);
    Scaling {
        cinv: 1.0 / c,
        c,
        d,
        e,
        dinv,
        einv,
    }
}

/// `1/sqrt(norm)` clamped to the allowed range; zero norms give 1.
fn scaling_factor(norm: f64) -> f64 {
    if norm == 0.0 {
        1.0
    } else {
        (1.0 / norm.sqrt()).clamp(MIN_SCALING, MAX_SCALING)
    }
}

/// `1/norm` clamped (used for the cost scaling, which is not square-rooted).
fn scaling_factor_linear(norm: f64) -> f64 {
    if norm == 0.0 {
        1.0
    } else {
        (1.0 / norm).clamp(MIN_SCALING, MAX_SCALING)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn badly_scaled() -> (CscMatrix, Vec<f64>, CscMatrix, Vec<f64>, Vec<f64>) {
        let p = CscMatrix::from_dense(2, 2, &[1e4, 0.0, 0.0, 1e-3])
            .upper_triangle()
            .unwrap();
        let a = CscMatrix::from_dense(2, 2, &[1e3, 0.0, 0.0, 1e-2]);
        (p, vec![1e2, 1e-2], a, vec![0.0, 0.0], vec![1.0, 1e4])
    }

    #[test]
    fn equilibration_flattens_norms() {
        let (mut p, mut q, mut a, mut l, mut u) = badly_scaled();
        let before_spread = {
            let norms = a.row_norms_inf();
            norms.iter().copied().fold(0.0f64, f64::max)
                / norms.iter().copied().fold(f64::INFINITY, f64::min)
        };
        ruiz_equilibrate(&mut p, &mut q, &mut a, &mut l, &mut u, 10);
        let after = a.row_norms_inf();
        let after_spread = after.iter().copied().fold(0.0f64, f64::max)
            / after.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(
            after_spread < before_spread / 100.0,
            "row norm spread {after_spread} not reduced from {before_spread}"
        );
        for &v in &after {
            assert!(v > 0.05 && v < 20.0, "row norm {v} far from 1");
        }
    }

    #[test]
    fn zero_iters_is_identity() {
        let (mut p, mut q, mut a, mut l, mut u) = badly_scaled();
        let p0 = p.clone();
        let s = ruiz_equilibrate(&mut p, &mut q, &mut a, &mut l, &mut u, 0);
        assert_eq!(p, p0);
        assert_eq!(s, Scaling::identity(2, 2));
    }

    #[test]
    fn unscaling_round_trips() {
        let (mut p, mut q, mut a, mut l, mut u) = badly_scaled();
        let x_orig = vec![0.3, -0.7];
        let ax_orig = a.mul_vec(&x_orig);
        let s = ruiz_equilibrate(&mut p, &mut q, &mut a, &mut l, &mut u, 10);
        // Scaled x̄ = D⁻¹ x; unscale must recover x.
        let x_scaled = vector::ew_prod(&s.dinv, &x_orig);
        let back = s.unscale_x(&x_scaled);
        for (u0, v0) in back.iter().zip(&x_orig) {
            assert!((u0 - v0).abs() < 1e-12);
        }
        // Ā x̄ = E A x; unscale_z(E A x) must equal A x.
        let ax_scaled = a.mul_vec(&x_scaled);
        let ax_back = s.unscale_z(&ax_scaled);
        for (u0, v0) in ax_back.iter().zip(&ax_orig) {
            assert!((u0 - v0).abs() < 1e-9, "{u0} vs {v0}");
        }
    }

    #[test]
    fn infinite_bounds_survive_scaling() {
        let mut p = CscMatrix::identity(1);
        let mut q = vec![1.0];
        let mut a = CscMatrix::from_dense(2, 1, &[1e4, 1.0]);
        let mut l = vec![-2e30, 0.0];
        let mut u = vec![1.0, 2e30];
        ruiz_equilibrate(&mut p, &mut q, &mut a, &mut l, &mut u, 10);
        assert!(
            l[0] <= -INFTY,
            "infinite lower bound was corrupted: {}",
            l[0]
        );
        assert!(
            u[1] >= INFTY,
            "infinite upper bound was corrupted: {}",
            u[1]
        );
        assert!(u[0].is_finite() && u[0].abs() < INFTY);
    }

    #[test]
    fn scaling_factors_are_clamped() {
        assert_eq!(scaling_factor(0.0), 1.0);
        assert_eq!(scaling_factor(1e-30), MAX_SCALING);
        assert_eq!(scaling_factor(1e30), MIN_SCALING);
        assert!((scaling_factor(4.0) - 0.5).abs() < 1e-15);
    }
}
