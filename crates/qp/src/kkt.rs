//! Assembly of the quasi-definite KKT matrix (equation (3) of the paper):
//!
//! ```text
//! K = [ P + σI    Aᵀ        ]
//!     [ A        -diag(1/ρ) ]
//! ```
//!
//! stored by its upper triangle. The positions of the `-1/ρᵢ` diagonal
//! entries are recorded so that adaptive-`ρ` updates rewrite values in place
//! and trigger a numeric-only refactorization — the OSQP behaviour the paper
//! highlights ("whenever ρ is updated ... K needs to be numerically
//! refactored again (but not symbolically refactored)").

use mib_sparse::{CscMatrix, CsrMatrix, Result};

/// The assembled KKT matrix together with the in-place `ρ` update hooks.
#[derive(Debug, Clone)]
pub struct KktMatrix {
    mat: CscMatrix,
    /// `rho_pos[i]` indexes the value slot holding `-1/ρᵢ`.
    rho_pos: Vec<usize>,
    n: usize,
    m: usize,
}

impl KktMatrix {
    /// Assembles the upper triangle of `K` from the (scaled) problem data.
    ///
    /// `p` is the upper triangle of the objective matrix, `a` the constraint
    /// matrix, `sigma` the primal regularization and `rho_vec` the
    /// per-constraint step sizes.
    ///
    /// # Errors
    ///
    /// Propagates structural errors from matrix construction (none occur for
    /// valid problem data).
    ///
    /// # Panics
    ///
    /// Panics if `rho_vec.len() != a.nrows()` or `p` is not
    /// `a.ncols() x a.ncols()`.
    pub fn assemble(p: &CscMatrix, a: &CscMatrix, sigma: f64, rho_vec: &[f64]) -> Result<Self> {
        let n = p.ncols();
        let m = a.nrows();
        assert_eq!(p.nrows(), n, "P must be square");
        assert_eq!(a.ncols(), n, "A column count must match P");
        assert_eq!(
            rho_vec.len(),
            m,
            "rho vector must have one entry per constraint"
        );

        let a_csr = CsrMatrix::from_csc(a);
        let dim = n + m;
        let mut col_ptr = Vec::with_capacity(dim + 1);
        col_ptr.push(0usize);
        let nnz_estimate = p.nnz() + n + a.nnz() + m;
        let mut row_ind = Vec::with_capacity(nnz_estimate);
        let mut values = Vec::with_capacity(nnz_estimate);

        // Columns 0..n: P + σI (upper triangle).
        for j in 0..n {
            let mut has_diag = false;
            for (i, v) in p.col(j) {
                debug_assert!(i <= j);
                if i == j {
                    has_diag = true;
                    row_ind.push(i);
                    values.push(v + sigma);
                } else {
                    row_ind.push(i);
                    values.push(v);
                }
            }
            if !has_diag {
                row_ind.push(j);
                values.push(sigma);
            }
            col_ptr.push(row_ind.len());
        }
        // Columns n..n+m: Aᵀ block (row i of A) then the -1/ρᵢ diagonal.
        let mut rho_pos = Vec::with_capacity(m);
        for (i, &rho_i) in rho_vec.iter().enumerate() {
            for (j, v) in a_csr.row(i) {
                row_ind.push(j);
                values.push(v);
            }
            rho_pos.push(values.len());
            row_ind.push(n + i);
            values.push(-1.0 / rho_i);
            col_ptr.push(row_ind.len());
        }

        let mat = CscMatrix::from_parts(dim, dim, col_ptr, row_ind, values)?;
        Ok(KktMatrix { mat, rho_pos, n, m })
    }

    /// The assembled matrix (upper triangle of `K`).
    pub fn matrix(&self) -> &CscMatrix {
        &self.mat
    }

    /// Dimension of the variable block (`n`).
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// Dimension of the constraint block (`m`).
    pub fn num_constraints(&self) -> usize {
        self.m
    }

    /// Total dimension `n + m`.
    pub fn dim(&self) -> usize {
        self.n + self.m
    }

    /// Rewrites the `-1/ρᵢ` diagonal entries in place for a new `ρ` vector.
    ///
    /// # Panics
    ///
    /// Panics if `rho_vec.len() != m`.
    pub fn update_rho(&mut self, rho_vec: &[f64]) {
        assert_eq!(
            rho_vec.len(),
            self.m,
            "rho vector must have one entry per constraint"
        );
        let values = self.mat.values_mut();
        for (i, &pos) in self.rho_pos.iter().enumerate() {
            values[pos] = -1.0 / rho_vec[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mib_sparse::CscMatrix;

    fn small() -> (CscMatrix, CscMatrix) {
        let p = CscMatrix::from_dense(2, 2, &[4.0, 1.0, 0.0, 2.0])
            .upper_triangle()
            .unwrap();
        let a = CscMatrix::from_dense(2, 2, &[1.0, 1.0, 1.0, 0.0]);
        (p, a)
    }

    #[test]
    fn assembles_expected_entries() {
        let (p, a) = small();
        let kkt = KktMatrix::assemble(&p, &a, 1e-6, &[0.1, 0.2]).unwrap();
        let k = kkt.matrix();
        assert_eq!(k.shape(), (4, 4));
        assert!(k.is_upper_triangular());
        assert!((k.get(0, 0) - (4.0 + 1e-6)).abs() < 1e-15);
        assert_eq!(k.get(0, 1), 1.0);
        assert!((k.get(1, 1) - (2.0 + 1e-6)).abs() < 1e-15);
        // Aᵀ block: K[j, n+i] = A[i, j].
        assert_eq!(k.get(0, 2), 1.0); // A[0,0]
        assert_eq!(k.get(1, 2), 1.0); // A[0,1]
        assert_eq!(k.get(0, 3), 1.0); // A[1,0]
        assert_eq!(k.get(1, 3), 0.0); // A[1,1] = 0
        assert!((k.get(2, 2) + 10.0).abs() < 1e-12);
        assert!((k.get(3, 3) + 5.0).abs() < 1e-12);
    }

    #[test]
    fn missing_p_diagonal_gets_sigma() {
        // P with an empty diagonal entry at (1,1).
        let p = CscMatrix::from_dense(2, 2, &[4.0, 1.0, 0.0, 0.0])
            .upper_triangle()
            .unwrap();
        let a = CscMatrix::identity(2);
        let kkt = KktMatrix::assemble(&p, &a, 0.5, &[1.0, 1.0]).unwrap();
        assert_eq!(kkt.matrix().get(1, 1), 0.5);
    }

    #[test]
    fn rho_update_rewrites_diagonal_only() {
        let (p, a) = small();
        let mut kkt = KktMatrix::assemble(&p, &a, 1e-6, &[0.1, 0.1]).unwrap();
        let before = kkt.matrix().clone();
        kkt.update_rho(&[1.0, 2.0]);
        let after = kkt.matrix();
        assert!(after.same_pattern(&before));
        assert!((after.get(2, 2) + 1.0).abs() < 1e-15);
        assert!((after.get(3, 3) + 0.5).abs() < 1e-15);
        // Everything else untouched.
        assert_eq!(after.get(0, 2), before.get(0, 2));
        assert_eq!(after.get(0, 0), before.get(0, 0));
    }

    #[test]
    fn kkt_solves_reference_system() {
        // Verify K [x; nu] = rhs via LDL against hand-computable data.
        use mib_sparse::ldl::LdlSymbolic;
        let (p, a) = small();
        let kkt = KktMatrix::assemble(&p, &a, 1e-6, &[0.5, 0.5]).unwrap();
        let sym = LdlSymbolic::new(kkt.matrix()).unwrap();
        let f = sym.factor(kkt.matrix()).unwrap();
        let b = [1.0, 2.0, 3.0, 4.0];
        let x = f.solve(&b);
        let kx = kkt.matrix().sym_upper_mul_vec(&x);
        for (u, v) in kx.iter().zip(&b) {
            assert!((u - v).abs() < 1e-9);
        }
    }
}
