use std::time::Duration;

use crate::backend::Algorithm;
use crate::profile::Profile;

/// Outcome of a solver run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Status {
    /// Both residuals dropped below their tolerances.
    Solved,
    /// The iteration limit was reached before convergence.
    MaxIterations,
    /// A certificate of primal infeasibility was found.
    PrimalInfeasible,
    /// A certificate of dual infeasibility (unboundedness) was found.
    DualInfeasible,
    /// The run hit its deadline ([`Settings::time_limit`] or an external
    /// deadline set through [`Solver::set_deadline`]) before convergence.
    ///
    /// [`Settings::time_limit`]: crate::Settings::time_limit
    /// [`Solver::set_deadline`]: crate::Solver::set_deadline
    TimedOut,
    /// An external cancellation flag (see [`Solver::set_cancel_flag`]) was
    /// raised while the iteration was running.
    ///
    /// [`Solver::set_cancel_flag`]: crate::Solver::set_cancel_flag
    Cancelled,
}

impl Status {
    /// `true` only for [`Status::Solved`].
    pub fn is_solved(self) -> bool {
        matches!(self, Status::Solved)
    }
}

impl std::fmt::Display for Status {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Status::Solved => "solved",
            Status::MaxIterations => "maximum iterations reached",
            Status::PrimalInfeasible => "primal infeasible",
            Status::DualInfeasible => "dual infeasible",
            Status::TimedOut => "timed out",
            Status::Cancelled => "cancelled",
        };
        f.write_str(s)
    }
}

/// The result of a solve: iterates (unscaled), status, residuals, work
/// profile and timing.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveResult {
    /// Termination status.
    pub status: Status,
    /// Which solver algorithm produced this result.
    pub algorithm: Algorithm,
    /// Primal solution `x` (original, unscaled space). For infeasible
    /// statuses this holds the last iterate.
    pub x: Vec<f64>,
    /// Dual solution `y`.
    pub y: Vec<f64>,
    /// Constraint value `z ≈ A x`.
    pub z: Vec<f64>,
    /// Objective value at `x`.
    pub obj_val: f64,
    /// Final (unscaled) primal residual `‖Ax − z‖∞`.
    pub prim_res: f64,
    /// Final (unscaled) dual residual `‖Px + q + Aᵀy‖∞`.
    pub dual_res: f64,
    /// ADMM iterations executed.
    pub iterations: usize,
    /// FLOP/operation profile of the run.
    pub profile: Profile,
    /// Wall-clock time of `solve()` (native execution on this host — the
    /// platform models in `mib-platforms` translate the profile to the
    /// paper's reference hardware instead of using this directly).
    pub solve_time: Duration,
    /// The certificate vector for infeasible statuses (`δy` for primal,
    /// `δx` for dual), empty otherwise.
    pub certificate: Vec<f64>,
}

impl Default for SolveResult {
    /// An empty placeholder result (status [`Status::MaxIterations`],
    /// infinite residuals, no iterates) suitable as the target of a first
    /// [`solve_into`](crate::Solver::solve_into) call.
    fn default() -> Self {
        SolveResult {
            status: Status::MaxIterations,
            algorithm: Algorithm::default(),
            x: Vec::new(),
            y: Vec::new(),
            z: Vec::new(),
            obj_val: 0.0,
            prim_res: f64::INFINITY,
            dual_res: f64::INFINITY,
            iterations: 0,
            profile: Profile::default(),
            solve_time: Duration::ZERO,
            certificate: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_display_and_predicate() {
        assert!(Status::Solved.is_solved());
        assert!(!Status::MaxIterations.is_solved());
        assert_eq!(Status::Solved.to_string(), "solved");
        assert_eq!(Status::PrimalInfeasible.to_string(), "primal infeasible");
        assert_eq!(Status::TimedOut.to_string(), "timed out");
        assert_eq!(Status::Cancelled.to_string(), "cancelled");
        assert!(!Status::TimedOut.is_solved());
        assert!(!Status::Cancelled.is_solved());
    }
}
