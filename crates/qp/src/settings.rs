use std::time::Duration;

use crate::backend::Algorithm;
use crate::{QpError, Result};

/// Which linear-system backend solves the KKT system (2) — the choice
/// between the paper's OSQP-direct and OSQP-indirect variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KktBackend {
    /// Sparse LDLᵀ factorization with forward/backward substitution
    /// (OSQP-direct, Section II.C).
    #[default]
    Direct,
    /// Preconditioned Conjugate Gradient on the reduced system
    /// `(P + σI + AᵀρA) x = b` (OSQP-indirect, Section II.D).
    Indirect,
}

impl KktBackend {
    /// Short lowercase name (`"direct"` / `"indirect"`), used in reports.
    pub fn name(self) -> &'static str {
        match self {
            KktBackend::Direct => "direct",
            KktBackend::Indirect => "indirect",
        }
    }
}

/// Solver configuration, with OSQP-compatible defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct Settings {
    /// Initial ADMM step size `ρ > 0` (default `0.1`).
    pub rho: f64,
    /// Regularization `σ > 0` added to `P` in the KKT matrix (default `1e-6`).
    pub sigma: f64,
    /// Relaxation parameter `α ∈ (0, 2)` (default `1.6`).
    pub alpha: f64,
    /// Absolute tolerance for the termination criterion (default `1e-3`).
    pub eps_abs: f64,
    /// Relative tolerance for the termination criterion (default `1e-3`).
    pub eps_rel: f64,
    /// Primal infeasibility tolerance (default `1e-4`).
    pub eps_prim_inf: f64,
    /// Dual infeasibility tolerance (default `1e-4`).
    pub eps_dual_inf: f64,
    /// Iteration limit (default `4000`).
    pub max_iter: usize,
    /// Check the termination criterion every this many iterations
    /// (default `25`).
    pub check_termination: usize,
    /// Number of Ruiz equilibration passes; `0` disables scaling
    /// (default `10`).
    pub scaling_iters: usize,
    /// Enable adaptive `ρ` updates (default `true`).
    pub adaptive_rho: bool,
    /// Interval (in iterations) between adaptive `ρ` checks (default `100`).
    pub adaptive_rho_interval: usize,
    /// `ρ` changes only when the new value differs by more than this factor
    /// (default `5.0`).
    pub adaptive_rho_tolerance: f64,
    /// Lower clamp for `ρ` (default `1e-6`).
    pub rho_min: f64,
    /// Upper clamp for `ρ` (default `1e6`).
    pub rho_max: f64,
    /// Multiplier applied to `ρ` on equality constraint rows
    /// (default `1e3`).
    pub rho_eq_scale: f64,
    /// The solver algorithm — ADMM (the default) or the restarted
    /// primal-dual first-order method ("PDQP").
    pub algorithm: Algorithm,
    /// The KKT backend — direct LDLᵀ or indirect PCG. Only consulted by
    /// the ADMM algorithm; PDQP never solves a KKT system.
    pub backend: KktBackend,
    /// PCG convergence floor: iteration stops when
    /// `‖r‖₂ ≤ max(eps_pcg_min, tol·‖b‖₂)` (default `1e-7`).
    pub eps_pcg_min: f64,
    /// Initial PCG relative tolerance (default `1e-4`); tightened
    /// adaptively as ADMM residuals shrink.
    pub eps_pcg_start: f64,
    /// PCG iteration cap per KKT solve (default `4 * n` chosen at setup
    /// when `0`).
    pub max_pcg_iter: usize,
    /// Wall-clock budget for one solve, measured from the start of
    /// [`solve_into`]; `None` (the default) disables the limit. When the
    /// budget is exhausted the solver returns [`Status::TimedOut`] at the
    /// next interruption check instead of running to `max_iter`.
    ///
    /// [`solve_into`]: crate::Solver::solve_into
    /// [`Status::TimedOut`]: crate::Status::TimedOut
    pub time_limit: Option<Duration>,
    /// How often (in ADMM iterations) the solver polls the cancellation
    /// flag and the deadline (default `25`). Smaller values react faster
    /// at the cost of one clock read per check; the checks never touch the
    /// iterates, so they cannot perturb the solution of runs that finish.
    pub check_interval: usize,
    /// PDQP restart threshold `β ∈ (0, 1)` (default `0.5`): the restarted
    /// PDHG backend restarts from its best candidate once that candidate's
    /// normalized KKT score has decayed below `β` times the score at the
    /// previous restart. Ignored by the ADMM algorithm.
    pub pdqp_restart_beta: f64,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            rho: 0.1,
            sigma: 1e-6,
            alpha: 1.6,
            eps_abs: 1e-3,
            eps_rel: 1e-3,
            eps_prim_inf: 1e-4,
            eps_dual_inf: 1e-4,
            max_iter: 4000,
            check_termination: 25,
            scaling_iters: 10,
            adaptive_rho: true,
            adaptive_rho_interval: 100,
            adaptive_rho_tolerance: 5.0,
            rho_min: 1e-6,
            rho_max: 1e6,
            rho_eq_scale: 1e3,
            algorithm: Algorithm::Admm,
            backend: KktBackend::Direct,
            eps_pcg_min: 1e-7,
            eps_pcg_start: 1e-4,
            max_pcg_iter: 0,
            time_limit: None,
            check_interval: 25,
            pdqp_restart_beta: 0.5,
        }
    }
}

impl Settings {
    /// OSQP defaults with the given backend selected.
    pub fn with_backend(backend: KktBackend) -> Self {
        Settings {
            backend,
            ..Settings::default()
        }
    }

    /// Defaults with the given solver algorithm selected.
    pub fn with_algorithm(algorithm: Algorithm) -> Self {
        Settings {
            algorithm,
            ..Settings::default()
        }
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns [`QpError::InvalidSetting`] naming the offending parameter.
    pub fn validate(&self) -> Result<()> {
        if !(self.rho > 0.0 && self.rho.is_finite()) {
            return Err(QpError::InvalidSetting(format!(
                "rho must be positive, got {}",
                self.rho
            )));
        }
        if !(self.sigma > 0.0 && self.sigma.is_finite()) {
            return Err(QpError::InvalidSetting(format!(
                "sigma must be positive, got {}",
                self.sigma
            )));
        }
        if !(self.alpha > 0.0 && self.alpha < 2.0) {
            return Err(QpError::InvalidSetting(format!(
                "alpha must lie in (0, 2), got {}",
                self.alpha
            )));
        }
        if self.eps_abs < 0.0 || self.eps_rel < 0.0 || (self.eps_abs == 0.0 && self.eps_rel == 0.0)
        {
            return Err(QpError::InvalidSetting(
                "eps_abs and eps_rel must be nonnegative and not both zero".into(),
            ));
        }
        if self.max_iter == 0 {
            return Err(QpError::InvalidSetting(
                "max_iter must be at least 1".into(),
            ));
        }
        if self.check_termination == 0 {
            return Err(QpError::InvalidSetting(
                "check_termination must be at least 1".into(),
            ));
        }
        if self.rho_min <= 0.0 || self.rho_max < self.rho_min {
            return Err(QpError::InvalidSetting(
                "rho bounds must satisfy 0 < rho_min <= rho_max".into(),
            ));
        }
        if self.adaptive_rho_tolerance < 1.0 {
            return Err(QpError::InvalidSetting(
                "adaptive_rho_tolerance must be >= 1".into(),
            ));
        }
        if self.check_interval == 0 {
            return Err(QpError::InvalidSetting(
                "check_interval must be at least 1".into(),
            ));
        }
        if self.time_limit == Some(Duration::ZERO) {
            return Err(QpError::InvalidSetting(
                "time_limit must be positive (use None to disable)".into(),
            ));
        }
        if !(self.pdqp_restart_beta > 0.0 && self.pdqp_restart_beta < 1.0) {
            return Err(QpError::InvalidSetting(format!(
                "pdqp_restart_beta must lie in (0, 1), got {}",
                self.pdqp_restart_beta
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        Settings::default().validate().unwrap();
        Settings::with_backend(KktBackend::Indirect)
            .validate()
            .unwrap();
    }

    #[test]
    fn invalid_parameters_rejected() {
        let bad = |f: fn(&mut Settings)| {
            let mut s = Settings::default();
            f(&mut s);
            s.validate().is_err()
        };
        assert!(bad(|s| s.rho = 0.0));
        assert!(bad(|s| s.rho = -1.0));
        assert!(bad(|s| s.sigma = 0.0));
        assert!(bad(|s| s.alpha = 2.0));
        assert!(bad(|s| s.alpha = 0.0));
        assert!(bad(|s| {
            s.eps_abs = 0.0;
            s.eps_rel = 0.0;
        }));
        assert!(bad(|s| s.max_iter = 0));
        assert!(bad(|s| s.check_termination = 0));
        assert!(bad(|s| s.rho_max = 1e-9));
        assert!(bad(|s| s.adaptive_rho_tolerance = 0.5));
        assert!(bad(|s| s.check_interval = 0));
        assert!(bad(|s| s.time_limit = Some(Duration::ZERO)));
        assert!(bad(|s| s.pdqp_restart_beta = 0.0));
        assert!(bad(|s| s.pdqp_restart_beta = 1.0));
    }

    #[test]
    fn with_algorithm_selects_the_backend_family() {
        let s = Settings::with_algorithm(Algorithm::Pdqp);
        assert_eq!(s.algorithm, Algorithm::Pdqp);
        s.validate().unwrap();
        assert_eq!(Settings::default().algorithm, Algorithm::Admm);
    }

    #[test]
    fn time_limit_accepts_positive_durations() {
        let s = Settings {
            time_limit: Some(Duration::from_millis(5)),
            check_interval: 1,
            ..Settings::default()
        };
        s.validate().unwrap();
    }

    #[test]
    fn backend_names() {
        assert_eq!(KktBackend::Direct.name(), "direct");
        assert_eq!(KktBackend::Indirect.name(), "indirect");
    }
}
