//! KKT linear-system backends: direct LDLᵀ and indirect PCG.
//!
//! Both backends solve the same abstract problem — given the right-hand side
//! `(r_x, r_z)` of equation (2), produce `(x̃, ν)` with
//!
//! ```text
//! [ P + σI   Aᵀ        ] [ x̃ ]   [ r_x ]
//! [ A       -diag(1/ρ) ] [ ν  ] = [ r_z ]
//! ```
//!
//! The direct backend ([`DirectKkt`]) factors the quasi-definite KKT matrix
//! once and refactors numerically when `ρ` changes. The indirect backend
//! ([`IndirectKkt`]) eliminates the second block row to get the positive
//! definite system `(P + σI + Aᵀ diag(ρ) A) x̃ = r_x + Aᵀ diag(ρ) r_z` and
//! runs Preconditioned Conjugate Gradient (Algorithm 2 of the paper) with a
//! Jacobi preconditioner, never forming `AᵀA` explicitly.

use mib_sparse::ldl::LdlSolver;
use mib_sparse::order::Ordering;
use mib_sparse::{vector, CscMatrix};

use crate::kkt::KktMatrix;
use crate::profile::Profile;
use crate::{KktBackend, QpError, Result};

/// Interface shared by the two KKT backends.
pub trait KktSolver: std::fmt::Debug {
    /// Solves the KKT system for the given right-hand side, writing `x̃`
    /// into `out_x` and `ν` into `out_nu`, and charging the work to
    /// `profile`.
    ///
    /// # Errors
    ///
    /// Returns an error if the underlying factorization or iteration fails.
    fn solve(
        &mut self,
        rhs_x: &[f64],
        rhs_z: &[f64],
        out_x: &mut [f64],
        out_nu: &mut [f64],
        profile: &mut Profile,
    ) -> Result<()>;

    /// Installs a new `ρ` vector (refactoring or re-preconditioning as
    /// needed).
    ///
    /// # Errors
    ///
    /// Returns an error if the refactorization fails.
    fn update_rho(&mut self, rho_vec: &[f64], profile: &mut Profile) -> Result<()>;

    /// Adjusts the iterative tolerance; no-op for the direct backend.
    fn set_tolerance(&mut self, _tol: f64) {}

    /// Which variant this backend implements.
    fn backend(&self) -> KktBackend;
}

/// Direct backend: sparse LDLᵀ of the KKT matrix with minimum-degree
/// ordering (OSQP-direct).
#[derive(Debug)]
pub struct DirectKkt {
    kkt: KktMatrix,
    ldl: LdlSolver,
    work: Vec<f64>,
}

impl DirectKkt {
    /// Assembles and factors the KKT matrix.
    ///
    /// # Errors
    ///
    /// Returns [`QpError::KktFactorization`] if the quasi-definite
    /// factorization fails (which indicates invalid problem data).
    pub fn new(
        p: &CscMatrix,
        a: &CscMatrix,
        sigma: f64,
        rho_vec: &[f64],
        profile: &mut Profile,
    ) -> Result<Self> {
        let kkt = KktMatrix::assemble(p, a, sigma, rho_vec)?;
        let ldl = LdlSolver::new(kkt.matrix(), Ordering::MinDegree)
            .map_err(|e| QpError::KktFactorization(e.to_string()))?;
        profile.add_factor(ldl.factor().flops() as f64);
        let dim = kkt.dim();
        Ok(DirectKkt { kkt, ldl, work: vec![0.0; dim] })
    }

    /// Below-diagonal nonzeros of the factor `L` (drives per-solve cost).
    pub fn l_nnz(&self) -> usize {
        self.ldl.factor().l_nnz()
    }

    /// The assembled KKT matrix (for inspection by the compiler stack).
    pub fn kkt(&self) -> &KktMatrix {
        &self.kkt
    }

    /// The LDLᵀ solver (permutation + factor), exposed for the MIB
    /// compiler, which turns it into network schedules.
    pub fn ldl(&self) -> &LdlSolver {
        &self.ldl
    }
}

impl KktSolver for DirectKkt {
    fn solve(
        &mut self,
        rhs_x: &[f64],
        rhs_z: &[f64],
        out_x: &mut [f64],
        out_nu: &mut [f64],
        profile: &mut Profile,
    ) -> Result<()> {
        let n = self.kkt.num_vars();
        let m = self.kkt.num_constraints();
        debug_assert_eq!(rhs_x.len(), n);
        debug_assert_eq!(rhs_z.len(), m);
        self.work[..n].copy_from_slice(rhs_x);
        self.work[n..].copy_from_slice(rhs_z);
        let sol = self.ldl.solve(&self.work);
        out_x.copy_from_slice(&sol[..n]);
        out_nu.copy_from_slice(&sol[n..]);
        profile.add_triangular_solve(self.ldl.factor().l_nnz(), n + m);
        Ok(())
    }

    fn update_rho(&mut self, rho_vec: &[f64], profile: &mut Profile) -> Result<()> {
        self.kkt.update_rho(rho_vec);
        self.ldl
            .update_values(self.kkt.matrix())
            .map_err(|e| QpError::KktFactorization(e.to_string()))?;
        profile.add_factor(self.ldl.factor().flops() as f64);
        Ok(())
    }

    fn backend(&self) -> KktBackend {
        KktBackend::Direct
    }
}

/// Indirect backend: PCG on the reduced positive-definite system
/// (OSQP-indirect).
#[derive(Debug)]
pub struct IndirectKkt {
    p: CscMatrix,
    a: CscMatrix,
    sigma: f64,
    rho_vec: Vec<f64>,
    /// Jacobi preconditioner: `M = diag(P) + σ + Σᵢ ρᵢ A²ᵢⱼ`.
    precond_inv: Vec<f64>,
    /// Warm-start state: solution of the previous KKT solve.
    x_prev: Vec<f64>,
    /// Relative tolerance for the next solve.
    tol: f64,
    /// Absolute floor on the residual norm.
    eps_min: f64,
    max_iter: usize,
    // Workspaces.
    r: Vec<f64>,
    pdir: Vec<f64>,
    sp: Vec<f64>,
    dvec: Vec<f64>,
    az: Vec<f64>,
}

impl IndirectKkt {
    /// Prepares the PCG backend.
    pub fn new(
        p: &CscMatrix,
        a: &CscMatrix,
        sigma: f64,
        rho_vec: &[f64],
        tol0: f64,
        eps_min: f64,
        max_iter: usize,
    ) -> Self {
        let n = p.ncols();
        let m = a.nrows();
        let max_iter = if max_iter == 0 { (4 * n).max(20) } else { max_iter };
        let mut solver = IndirectKkt {
            p: p.clone(),
            a: a.clone(),
            sigma,
            rho_vec: rho_vec.to_vec(),
            precond_inv: vec![1.0; n],
            x_prev: vec![0.0; n],
            tol: tol0,
            eps_min,
            max_iter,
            r: vec![0.0; n],
            pdir: vec![0.0; n],
            sp: vec![0.0; n],
            dvec: vec![0.0; n],
            az: vec![0.0; m],
        };
        solver.rebuild_preconditioner();
        solver
    }

    fn rebuild_preconditioner(&mut self) {
        let n = self.p.ncols();
        let mut diag = vec![self.sigma; n];
        for j in 0..n {
            diag[j] += self.p.get(j, j);
        }
        for (i, j, v) in self.a.iter() {
            diag[j] += self.rho_vec[i] * v * v;
        }
        self.precond_inv = diag.iter().map(|&d| if d > 0.0 { 1.0 / d } else { 1.0 }).collect();
    }

    /// Applies `v -> S v = (P + σI + Aᵀ diag(ρ) A) v` without forming `S`.
    fn apply_s(&mut self, v: &[f64], out: &mut [f64], profile: &mut Profile) {
        // out = P v (symmetric product) ...
        out.fill(0.0);
        self.p.sym_upper_mul_vec_acc(v, out);
        profile.add_spmv_mac(2 * self.p.nnz());
        // ... + σ v ...
        for (o, &vi) in out.iter_mut().zip(v) {
            *o += self.sigma * vi;
        }
        // ... + Aᵀ (ρ ∘ (A v)): A·v is the MAC primitive, Aᵀ·w is column
        // elimination (Section IV.B of the paper).
        self.az.fill(0.0);
        self.a.mul_vec_acc(v, &mut self.az);
        profile.add_spmv_mac(self.a.nnz());
        for (azi, &rho) in self.az.iter_mut().zip(&self.rho_vec) {
            *azi *= rho;
        }
        self.a.tr_mul_vec_acc(&self.az, out);
        profile.add_spmv_col_elim(self.a.nnz());
        profile.add_vector((2 * v.len() + self.az.len()) as f64);
    }

    /// Runs PCG to solve `S x = b`, warm-started from the previous
    /// solution. Returns the iteration count.
    fn pcg(&mut self, b: &[f64], x: &mut [f64], profile: &mut Profile) -> usize {
        let n = b.len();
        x.copy_from_slice(&self.x_prev);
        // r = S x - b
        let mut sx = std::mem::take(&mut self.sp);
        self.apply_s(x, &mut sx, profile);
        self.sp = sx;
        for i in 0..n {
            self.r[i] = self.sp[i] - b[i];
        }
        let b_norm = vector::norm2(b);
        let threshold = (self.tol * b_norm).max(self.eps_min);
        let mut r_norm = vector::norm2(&self.r);
        if r_norm <= threshold {
            self.x_prev.copy_from_slice(x);
            return 0;
        }
        // d = M⁻¹ r, p = -d
        for i in 0..n {
            self.dvec[i] = self.precond_inv[i] * self.r[i];
            self.pdir[i] = -self.dvec[i];
        }
        let mut rd = vector::dot(&self.r, &self.dvec);
        let mut iters = 0usize;
        while iters < self.max_iter {
            iters += 1;
            let mut sp = std::mem::take(&mut self.sp);
            let pdir = std::mem::take(&mut self.pdir);
            self.apply_s(&pdir, &mut sp, profile);
            self.pdir = pdir;
            self.sp = sp;
            let p_sp = vector::dot(&self.pdir, &self.sp);
            if p_sp <= 0.0 {
                // Numerical breakdown; S is PD so this indicates roundoff —
                // accept the current iterate.
                break;
            }
            let lambda = rd / p_sp;
            for i in 0..n {
                x[i] += lambda * self.pdir[i];
                self.r[i] += lambda * self.sp[i];
            }
            r_norm = vector::norm2(&self.r);
            profile.add_vector(6.0 * n as f64);
            if r_norm <= threshold {
                break;
            }
            for i in 0..n {
                self.dvec[i] = self.precond_inv[i] * self.r[i];
            }
            let rd_new = vector::dot(&self.r, &self.dvec);
            let mu = rd_new / rd;
            rd = rd_new;
            for i in 0..n {
                self.pdir[i] = -self.dvec[i] + mu * self.pdir[i];
            }
            profile.add_vector(5.0 * n as f64);
        }
        self.x_prev.copy_from_slice(x);
        profile.pcg_iters += iters;
        iters
    }
}

impl KktSolver for IndirectKkt {
    fn solve(
        &mut self,
        rhs_x: &[f64],
        rhs_z: &[f64],
        out_x: &mut [f64],
        out_nu: &mut [f64],
        profile: &mut Profile,
    ) -> Result<()> {
        let n = self.p.ncols();
        debug_assert_eq!(rhs_x.len(), n);
        // b = rhs_x + Aᵀ (ρ ∘ rhs_z)
        let mut b = rhs_x.to_vec();
        let rz: Vec<f64> = rhs_z.iter().zip(&self.rho_vec).map(|(&z, &r)| z * r).collect();
        self.a.tr_mul_vec_acc(&rz, &mut b);
        profile.add_spmv_col_elim(self.a.nnz());
        profile.add_vector(rhs_z.len() as f64);
        self.pcg(&b, out_x, profile);
        // ν = ρ ∘ (A x̃ - rhs_z)
        let ax = self.a.mul_vec(out_x);
        profile.add_spmv_mac(self.a.nnz());
        for i in 0..out_nu.len() {
            out_nu[i] = self.rho_vec[i] * (ax[i] - rhs_z[i]);
        }
        profile.add_vector(2.0 * out_nu.len() as f64);
        Ok(())
    }

    fn update_rho(&mut self, rho_vec: &[f64], profile: &mut Profile) -> Result<()> {
        self.rho_vec.copy_from_slice(rho_vec);
        self.rebuild_preconditioner();
        profile.add_vector((self.a.nnz() + self.p.ncols()) as f64);
        Ok(())
    }

    fn set_tolerance(&mut self, tol: f64) {
        self.tol = tol;
    }

    fn backend(&self) -> KktBackend {
        KktBackend::Indirect
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn problem_data() -> (CscMatrix, CscMatrix, f64, Vec<f64>) {
        let p = CscMatrix::from_dense(3, 3, &[4.0, 1.0, 0.0, 0.0, 3.0, 1.0, 0.0, 0.0, 5.0])
            .upper_triangle()
            .unwrap();
        let a = CscMatrix::from_dense(2, 3, &[1.0, 1.0, 0.0, 0.0, 1.0, 2.0]);
        (p, a, 1e-6, vec![0.4, 0.7])
    }

    /// Checks that a backend's (x̃, ν) satisfies both KKT block equations.
    fn check_backend(solver: &mut dyn KktSolver, tol: f64) {
        let (p, a, sigma, rho) = problem_data();
        let rhs_x = [1.0, -2.0, 0.5];
        let rhs_z = [0.3, -0.1];
        let mut x = vec![0.0; 3];
        let mut nu = vec![0.0; 2];
        let mut prof = Profile::default();
        solver.solve(&rhs_x, &rhs_z, &mut x, &mut nu, &mut prof).unwrap();
        // Block 1: (P + σI) x̃ + Aᵀ ν = rhs_x
        let mut r1 = p.sym_upper_mul_vec(&x);
        for (r, &xi) in r1.iter_mut().zip(&x) {
            *r += sigma * xi;
        }
        a.tr_mul_vec_acc(&nu, &mut r1);
        for (got, want) in r1.iter().zip(&rhs_x) {
            assert!((got - want).abs() < tol, "block1: {got} vs {want}");
        }
        // Block 2: A x̃ - ν/ρ = rhs_z
        let ax = a.mul_vec(&x);
        for i in 0..2 {
            let got = ax[i] - nu[i] / rho[i];
            assert!((got - rhs_z[i]).abs() < tol, "block2: {got} vs {}", rhs_z[i]);
        }
    }

    #[test]
    fn direct_solves_kkt() {
        let (p, a, sigma, rho) = problem_data();
        let mut prof = Profile::default();
        let mut solver = DirectKkt::new(&p, &a, sigma, &rho, &mut prof).unwrap();
        assert_eq!(prof.factor_count, 1);
        check_backend(&mut solver, 1e-9);
    }

    #[test]
    fn indirect_solves_kkt() {
        let (p, a, sigma, rho) = problem_data();
        let mut solver = IndirectKkt::new(&p, &a, sigma, &rho, 1e-10, 1e-12, 500);
        check_backend(&mut solver, 1e-6);
    }

    #[test]
    fn backends_agree() {
        let (p, a, sigma, rho) = problem_data();
        let mut prof = Profile::default();
        let mut direct = DirectKkt::new(&p, &a, sigma, &rho, &mut prof).unwrap();
        let mut indirect = IndirectKkt::new(&p, &a, sigma, &rho, 1e-12, 1e-14, 1000);
        let rhs_x = [0.2, 0.4, -0.6];
        let rhs_z = [1.0, 1.0];
        let (mut x1, mut nu1) = (vec![0.0; 3], vec![0.0; 2]);
        let (mut x2, mut nu2) = (vec![0.0; 3], vec![0.0; 2]);
        direct.solve(&rhs_x, &rhs_z, &mut x1, &mut nu1, &mut prof).unwrap();
        indirect.solve(&rhs_x, &rhs_z, &mut x2, &mut nu2, &mut prof).unwrap();
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-7, "x mismatch: {u} vs {v}");
        }
        for (u, v) in nu1.iter().zip(&nu2) {
            assert!((u - v).abs() < 1e-6, "nu mismatch: {u} vs {v}");
        }
    }

    #[test]
    fn direct_rho_update_refactors() {
        let (p, a, sigma, rho) = problem_data();
        let mut prof = Profile::default();
        let mut solver = DirectKkt::new(&p, &a, sigma, &rho, &mut prof).unwrap();
        solver.update_rho(&[1.0, 1.0], &mut prof).unwrap();
        assert_eq!(prof.factor_count, 2);
        // The refactored system must reflect the new rho.
        let rhs_x = [0.0, 0.0, 0.0];
        let rhs_z = [1.0, 0.0];
        let mut x = vec![0.0; 3];
        let mut nu = vec![0.0; 2];
        solver.solve(&rhs_x, &rhs_z, &mut x, &mut nu, &mut prof).unwrap();
        let ax = a.mul_vec(&x);
        assert!((ax[0] - nu[0] / 1.0 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pcg_warm_start_cuts_iterations() {
        let (p, a, sigma, rho) = problem_data();
        let mut solver = IndirectKkt::new(&p, &a, sigma, &rho, 1e-10, 1e-12, 500);
        let rhs_x = [1.0, 1.0, 1.0];
        let rhs_z = [0.5, 0.5];
        let mut x = vec![0.0; 3];
        let mut nu = vec![0.0; 2];
        let mut prof = Profile::default();
        solver.solve(&rhs_x, &rhs_z, &mut x, &mut nu, &mut prof).unwrap();
        let cold = prof.pcg_iters;
        let mut prof2 = Profile::default();
        solver.solve(&rhs_x, &rhs_z, &mut x, &mut nu, &mut prof2).unwrap();
        let warm = prof2.pcg_iters;
        assert!(warm <= 1, "warm-started identical solve should converge immediately, took {warm} (cold: {cold})");
    }
}
