//! KKT linear-system backends: direct LDLᵀ and indirect PCG.
//!
//! Both backends solve the same abstract problem — given the right-hand side
//! `(r_x, r_z)` of equation (2), produce `(x̃, ν)` with
//!
//! ```text
//! [ P + σI   Aᵀ        ] [ x̃ ]   [ r_x ]
//! [ A       -diag(1/ρ) ] [ ν  ] = [ r_z ]
//! ```
//!
//! The direct backend ([`DirectKkt`]) factors the quasi-definite KKT matrix
//! once and refactors numerically when `ρ` changes. The indirect backend
//! ([`IndirectKkt`]) eliminates the second block row to get the positive
//! definite system `(P + σI + Aᵀ diag(ρ) A) x̃ = r_x + Aᵀ diag(ρ) r_z` and
//! runs Preconditioned Conjugate Gradient (Algorithm 2 of the paper) with a
//! Jacobi preconditioner, never forming `AᵀA` explicitly.
//!
//! Backends exchange vectors through the caller's [`SolveWorkspace`]: the
//! right-hand side arrives in [`SolveWorkspace::rhs_x`] /
//! [`SolveWorkspace::rhs_z`], the solution leaves in
//! [`SolveWorkspace::xtilde`] / [`SolveWorkspace::nu`], and all scratch
//! (the stacked direct-solve buffers, the PCG vectors) lives in the same
//! workspace. After construction neither backend allocates on the solve or
//! `ρ`-update paths.

use mib_sparse::ldl::LdlSolver;
use mib_sparse::order::Ordering;
use mib_sparse::{vector, CscMatrix};

use crate::kkt::KktMatrix;
use crate::profile::Profile;
use crate::workspace::SolveWorkspace;
use crate::{KktBackend, QpError, Result};

/// Interface shared by the two KKT backends.
///
/// `Send + Sync` is required so boxed backends can move into — and the
/// template solver can be shared across — the worker threads of
/// [`BatchSolver`](crate::BatchSolver).
pub trait KktSolver: std::fmt::Debug + Send + Sync {
    /// Solves the KKT system. Reads the right-hand side from `ws.rhs_x` /
    /// `ws.rhs_z`, writes `x̃` into `ws.xtilde` and `ν` into `ws.nu`, and
    /// charges the work to `profile`. Implementations may use the scratch
    /// buffers of `ws` freely but must not touch the iterate or residual
    /// buffers.
    ///
    /// # Errors
    ///
    /// Returns an error if the underlying factorization or iteration fails.
    fn solve(&mut self, ws: &mut SolveWorkspace, profile: &mut Profile) -> Result<()>;

    /// Installs a new `ρ` vector (refactoring or re-preconditioning as
    /// needed).
    ///
    /// # Errors
    ///
    /// Returns an error if the refactorization fails.
    fn update_rho(&mut self, rho_vec: &[f64], profile: &mut Profile) -> Result<()>;

    /// Adjusts the iterative tolerance; no-op for the direct backend.
    fn set_tolerance(&mut self, _tol: f64) {}

    /// Clears warm-start state so the next solve behaves like the first;
    /// no-op for stateless backends.
    fn reset(&mut self) {}

    /// Which variant this backend implements.
    fn backend(&self) -> KktBackend;

    /// Clones the backend behind the trait object (used by
    /// [`Solver::clone`](crate::Solver)).
    fn clone_box(&self) -> Box<dyn KktSolver>;
}

/// Direct backend: sparse LDLᵀ of the KKT matrix with minimum-degree
/// ordering (OSQP-direct).
#[derive(Debug, Clone)]
pub struct DirectKkt {
    kkt: KktMatrix,
    ldl: LdlSolver,
}

impl DirectKkt {
    /// Assembles and factors the KKT matrix.
    ///
    /// # Errors
    ///
    /// Returns [`QpError::KktFactorization`] if the quasi-definite
    /// factorization fails (which indicates invalid problem data).
    pub fn new(
        p: &CscMatrix,
        a: &CscMatrix,
        sigma: f64,
        rho_vec: &[f64],
        profile: &mut Profile,
    ) -> Result<Self> {
        let tracing = mib_trace::enabled();
        let kkt = {
            // KKT pattern assembly: the symbolic (structure-only) phase.
            let _symbolic = mib_trace::span_if(tracing, "symbolic", mib_trace::Category::Kkt);
            KktMatrix::assemble(p, a, sigma, rho_vec)?
        };
        let ldl = {
            // Ordering + elimination-tree analysis + numeric LDLᵀ.
            let _factor = mib_trace::span_if(tracing, "factor", mib_trace::Category::Kkt);
            LdlSolver::new(kkt.matrix(), Ordering::MinDegree)
                .map_err(|e| QpError::KktFactorization(e.to_string()))?
        };
        profile.add_factor(ldl.factor().flops() as f64);
        Ok(DirectKkt { kkt, ldl })
    }

    /// Below-diagonal nonzeros of the factor `L` (drives per-solve cost).
    pub fn l_nnz(&self) -> usize {
        self.ldl.factor().l_nnz()
    }

    /// The assembled KKT matrix (for inspection by the compiler stack).
    pub fn kkt(&self) -> &KktMatrix {
        &self.kkt
    }

    /// The LDLᵀ solver (permutation + factor), exposed for the MIB
    /// compiler, which turns it into network schedules.
    pub fn ldl(&self) -> &LdlSolver {
        &self.ldl
    }
}

impl KktSolver for DirectKkt {
    fn solve(&mut self, ws: &mut SolveWorkspace, profile: &mut Profile) -> Result<()> {
        let n = self.kkt.num_vars();
        let m = self.kkt.num_constraints();
        let SolveWorkspace {
            rhs_x,
            rhs_z,
            xtilde,
            nu,
            kkt_rhs,
            kkt_work,
            kkt_sol,
            ..
        } = ws;
        debug_assert_eq!(rhs_x.len(), n);
        debug_assert_eq!(rhs_z.len(), m);
        kkt_rhs[..n].copy_from_slice(rhs_x);
        kkt_rhs[n..].copy_from_slice(rhs_z);
        self.ldl.solve_into(kkt_rhs, kkt_work, kkt_sol);
        xtilde.copy_from_slice(&kkt_sol[..n]);
        nu.copy_from_slice(&kkt_sol[n..]);
        profile.add_triangular_solve(self.ldl.factor().l_nnz(), n + m);
        Ok(())
    }

    fn update_rho(&mut self, rho_vec: &[f64], profile: &mut Profile) -> Result<()> {
        let _refactor = mib_trace::span("refactor", mib_trace::Category::Kkt);
        self.kkt.update_rho(rho_vec);
        self.ldl
            .update_values(self.kkt.matrix())
            .map_err(|e| QpError::KktFactorization(e.to_string()))?;
        profile.add_factor(self.ldl.factor().flops() as f64);
        Ok(())
    }

    fn backend(&self) -> KktBackend {
        KktBackend::Direct
    }

    fn clone_box(&self) -> Box<dyn KktSolver> {
        Box::new(self.clone())
    }
}

/// Indirect backend: PCG on the reduced positive-definite system
/// (OSQP-indirect).
///
/// All per-solve scratch (`r`, `pdir`, `sp`, `dvec`, `az`, `b_red`) lives
/// in the shared [`SolveWorkspace`]; the backend itself carries only
/// problem data, the preconditioner and the warm-start state.
#[derive(Debug, Clone)]
pub struct IndirectKkt {
    p: CscMatrix,
    a: CscMatrix,
    sigma: f64,
    rho_vec: Vec<f64>,
    /// Jacobi preconditioner: `M = diag(P) + σ + Σᵢ ρᵢ A²ᵢⱼ`.
    precond_inv: Vec<f64>,
    /// Warm-start state: solution of the previous KKT solve.
    x_prev: Vec<f64>,
    /// Relative tolerance for the next solve.
    tol: f64,
    /// Initial relative tolerance, restored by [`KktSolver::reset`].
    tol0: f64,
    /// Absolute floor on the residual norm.
    eps_min: f64,
    max_iter: usize,
}

impl IndirectKkt {
    /// Prepares the PCG backend.
    pub fn new(
        p: &CscMatrix,
        a: &CscMatrix,
        sigma: f64,
        rho_vec: &[f64],
        tol0: f64,
        eps_min: f64,
        max_iter: usize,
    ) -> Self {
        let n = p.ncols();
        let max_iter = if max_iter == 0 {
            (4 * n).max(20)
        } else {
            max_iter
        };
        let mut solver = IndirectKkt {
            p: p.clone(),
            a: a.clone(),
            sigma,
            rho_vec: rho_vec.to_vec(),
            precond_inv: vec![1.0; n],
            x_prev: vec![0.0; n],
            tol: tol0,
            tol0,
            eps_min,
            max_iter,
        };
        solver.rebuild_preconditioner();
        solver
    }

    fn rebuild_preconditioner(&mut self) {
        let n = self.p.ncols();
        for j in 0..n {
            self.precond_inv[j] = self.sigma + self.p.get(j, j);
        }
        for (i, j, v) in self.a.iter() {
            self.precond_inv[j] += self.rho_vec[i] * v * v;
        }
        for d in self.precond_inv.iter_mut() {
            *d = if *d > 0.0 { 1.0 / *d } else { 1.0 };
        }
    }

    /// Applies `v -> S v = (P + σI + Aᵀ diag(ρ) A) v` without forming `S`,
    /// using `az` as the length-`m` intermediate.
    fn apply_s(&self, v: &[f64], out: &mut [f64], az: &mut [f64], profile: &mut Profile) {
        // out = P v (symmetric product) ...
        out.fill(0.0);
        self.p.sym_upper_mul_vec_acc(v, out);
        profile.add_spmv_mac(2 * self.p.nnz());
        // ... + σ v ...
        vector::axpy_into(out, self.sigma, v);
        // ... + Aᵀ (ρ ∘ (A v)): A·v is the MAC primitive, Aᵀ·w is column
        // elimination (Section IV.B of the paper).
        az.fill(0.0);
        self.a.mul_vec_acc(v, az);
        profile.add_spmv_mac(self.a.nnz());
        vector::mul_assign(az, &self.rho_vec);
        self.a.tr_mul_vec_acc(az, out);
        profile.add_spmv_col_elim(self.a.nnz());
        profile.add_vector((2 * v.len() + az.len()) as f64);
    }

    /// Runs PCG to solve `S x = b`, warm-started from the previous
    /// solution. All scratch slices come from the caller's workspace.
    /// Returns the iteration count.
    #[allow(clippy::too_many_arguments)]
    fn pcg(
        &mut self,
        b: &[f64],
        x: &mut [f64],
        r: &mut [f64],
        pdir: &mut [f64],
        sp: &mut [f64],
        dvec: &mut [f64],
        az: &mut [f64],
        profile: &mut Profile,
    ) -> usize {
        let n = b.len();
        x.copy_from_slice(&self.x_prev);
        // r = S x - b
        self.apply_s(x, sp, az, profile);
        vector::sub_into(r, sp, b);
        let b_norm = vector::norm2(b);
        let threshold = (self.tol * b_norm).max(self.eps_min);
        let mut r_norm = vector::norm2(r);
        if r_norm <= threshold {
            self.x_prev.copy_from_slice(x);
            return 0;
        }
        // d = M⁻¹ r, p = -d
        vector::ew_prod_into(dvec, &self.precond_inv, r);
        vector::neg_into(pdir, dvec);
        let mut rd = vector::dot(r, dvec);
        let mut iters = 0usize;
        while iters < self.max_iter {
            iters += 1;
            self.apply_s(pdir, sp, az, profile);
            let p_sp = vector::dot(pdir, sp);
            if p_sp <= 0.0 {
                // Numerical breakdown; S is PD so this indicates roundoff —
                // accept the current iterate.
                break;
            }
            let lambda = rd / p_sp;
            vector::axpy_into(x, lambda, pdir);
            vector::axpy_into(r, lambda, sp);
            r_norm = vector::norm2(r);
            profile.add_vector(6.0 * n as f64);
            if r_norm <= threshold {
                break;
            }
            vector::ew_prod_into(dvec, &self.precond_inv, r);
            let rd_new = vector::dot(r, dvec);
            let mu = rd_new / rd;
            rd = rd_new;
            vector::update_dir_into(pdir, dvec, mu);
            profile.add_vector(5.0 * n as f64);
        }
        self.x_prev.copy_from_slice(x);
        profile.pcg_iters += iters;
        iters
    }
}

impl KktSolver for IndirectKkt {
    fn solve(&mut self, ws: &mut SolveWorkspace, profile: &mut Profile) -> Result<()> {
        let SolveWorkspace {
            rhs_x,
            rhs_z,
            xtilde,
            nu,
            r,
            pdir,
            sp,
            dvec,
            az,
            b_red,
            ..
        } = ws;
        debug_assert_eq!(rhs_x.len(), self.p.ncols());
        // b = rhs_x + Aᵀ (ρ ∘ rhs_z); `az` doubles as the ρ ∘ rhs_z scratch
        // before PCG overwrites it.
        b_red.copy_from_slice(rhs_x);
        vector::ew_prod_into(az, rhs_z, &self.rho_vec);
        self.a.tr_mul_vec_acc(az, b_red);
        profile.add_spmv_col_elim(self.a.nnz());
        profile.add_vector(rhs_z.len() as f64);
        self.pcg(b_red, xtilde, r, pdir, sp, dvec, az, profile);
        // ν = ρ ∘ (A x̃ - rhs_z)
        self.a.mul_vec_into(xtilde, az);
        profile.add_spmv_mac(self.a.nnz());
        vector::prod_diff_into(nu, &self.rho_vec, az, rhs_z);
        profile.add_vector(2.0 * nu.len() as f64);
        Ok(())
    }

    fn update_rho(&mut self, rho_vec: &[f64], profile: &mut Profile) -> Result<()> {
        self.rho_vec.copy_from_slice(rho_vec);
        self.rebuild_preconditioner();
        profile.add_vector((self.a.nnz() + self.p.ncols()) as f64);
        Ok(())
    }

    fn set_tolerance(&mut self, tol: f64) {
        self.tol = tol;
    }

    fn reset(&mut self) {
        self.x_prev.fill(0.0);
        self.tol = self.tol0;
    }

    fn backend(&self) -> KktBackend {
        KktBackend::Indirect
    }

    fn clone_box(&self) -> Box<dyn KktSolver> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn problem_data() -> (CscMatrix, CscMatrix, f64, Vec<f64>) {
        let p = CscMatrix::from_dense(3, 3, &[4.0, 1.0, 0.0, 0.0, 3.0, 1.0, 0.0, 0.0, 5.0])
            .upper_triangle()
            .unwrap();
        let a = CscMatrix::from_dense(2, 3, &[1.0, 1.0, 0.0, 0.0, 1.0, 2.0]);
        (p, a, 1e-6, vec![0.4, 0.7])
    }

    /// Solves with the given right-hand side, returning `(x̃, ν)`.
    fn run(
        solver: &mut dyn KktSolver,
        ws: &mut SolveWorkspace,
        rhs_x: &[f64],
        rhs_z: &[f64],
        prof: &mut Profile,
    ) -> (Vec<f64>, Vec<f64>) {
        ws.rhs_x.copy_from_slice(rhs_x);
        ws.rhs_z.copy_from_slice(rhs_z);
        solver.solve(ws, prof).unwrap();
        (ws.xtilde.clone(), ws.nu.clone())
    }

    /// Checks that a backend's (x̃, ν) satisfies both KKT block equations.
    fn check_backend(solver: &mut dyn KktSolver, tol: f64) {
        let (p, a, sigma, rho) = problem_data();
        let mut ws = SolveWorkspace::new(3, 2);
        let mut prof = Profile::default();
        let (x, nu) = run(solver, &mut ws, &[1.0, -2.0, 0.5], &[0.3, -0.1], &mut prof);
        // Block 1: (P + σI) x̃ + Aᵀ ν = rhs_x
        let mut r1 = p.sym_upper_mul_vec(&x);
        for (r, &xi) in r1.iter_mut().zip(&x) {
            *r += sigma * xi;
        }
        a.tr_mul_vec_acc(&nu, &mut r1);
        for (got, want) in r1.iter().zip(&[1.0, -2.0, 0.5]) {
            assert!((got - want).abs() < tol, "block1: {got} vs {want}");
        }
        // Block 2: A x̃ - ν/ρ = rhs_z
        let ax = a.mul_vec(&x);
        let rhs_z = [0.3, -0.1];
        for i in 0..2 {
            let got = ax[i] - nu[i] / rho[i];
            assert!(
                (got - rhs_z[i]).abs() < tol,
                "block2: {got} vs {}",
                rhs_z[i]
            );
        }
    }

    #[test]
    fn direct_solves_kkt() {
        let (p, a, sigma, rho) = problem_data();
        let mut prof = Profile::default();
        let mut solver = DirectKkt::new(&p, &a, sigma, &rho, &mut prof).unwrap();
        assert_eq!(prof.factor_count, 1);
        check_backend(&mut solver, 1e-9);
    }

    #[test]
    fn indirect_solves_kkt() {
        let (p, a, sigma, rho) = problem_data();
        let mut solver = IndirectKkt::new(&p, &a, sigma, &rho, 1e-10, 1e-12, 500);
        check_backend(&mut solver, 1e-6);
    }

    #[test]
    fn backends_agree() {
        let (p, a, sigma, rho) = problem_data();
        let mut prof = Profile::default();
        let mut direct = DirectKkt::new(&p, &a, sigma, &rho, &mut prof).unwrap();
        let mut indirect = IndirectKkt::new(&p, &a, sigma, &rho, 1e-12, 1e-14, 1000);
        let mut ws = SolveWorkspace::new(3, 2);
        let rhs_x = [0.2, 0.4, -0.6];
        let rhs_z = [1.0, 1.0];
        let (x1, nu1) = run(&mut direct, &mut ws, &rhs_x, &rhs_z, &mut prof);
        let (x2, nu2) = run(&mut indirect, &mut ws, &rhs_x, &rhs_z, &mut prof);
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-7, "x mismatch: {u} vs {v}");
        }
        for (u, v) in nu1.iter().zip(&nu2) {
            assert!((u - v).abs() < 1e-6, "nu mismatch: {u} vs {v}");
        }
    }

    #[test]
    fn direct_rho_update_refactors() {
        let (p, a, sigma, rho) = problem_data();
        let mut prof = Profile::default();
        let mut solver = DirectKkt::new(&p, &a, sigma, &rho, &mut prof).unwrap();
        solver.update_rho(&[1.0, 1.0], &mut prof).unwrap();
        assert_eq!(prof.factor_count, 2);
        // The refactored system must reflect the new rho.
        let mut ws = SolveWorkspace::new(3, 2);
        let (x, nu) = run(
            &mut solver,
            &mut ws,
            &[0.0, 0.0, 0.0],
            &[1.0, 0.0],
            &mut prof,
        );
        let ax = a.mul_vec(&x);
        assert!((ax[0] - nu[0] / 1.0 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pcg_warm_start_cuts_iterations() {
        let (p, a, sigma, rho) = problem_data();
        let mut solver = IndirectKkt::new(&p, &a, sigma, &rho, 1e-10, 1e-12, 500);
        let mut ws = SolveWorkspace::new(3, 2);
        let rhs_x = [1.0, 1.0, 1.0];
        let rhs_z = [0.5, 0.5];
        let mut prof = Profile::default();
        run(&mut solver, &mut ws, &rhs_x, &rhs_z, &mut prof);
        let cold = prof.pcg_iters;
        let mut prof2 = Profile::default();
        run(&mut solver, &mut ws, &rhs_x, &rhs_z, &mut prof2);
        let warm = prof2.pcg_iters;
        assert!(
            warm <= 1,
            "warm-started identical solve should converge immediately, took {warm} (cold: {cold})"
        );
    }

    #[test]
    fn reset_clears_warm_start() {
        let (p, a, sigma, rho) = problem_data();
        let mut solver = IndirectKkt::new(&p, &a, sigma, &rho, 1e-10, 1e-12, 500);
        let mut ws = SolveWorkspace::new(3, 2);
        let mut prof = Profile::default();
        let (x1, _) = run(
            &mut solver,
            &mut ws,
            &[1.0, 1.0, 1.0],
            &[0.5, 0.5],
            &mut prof,
        );
        let cold = prof.pcg_iters;
        solver.reset();
        let mut prof2 = Profile::default();
        let (x2, _) = run(
            &mut solver,
            &mut ws,
            &[1.0, 1.0, 1.0],
            &[0.5, 0.5],
            &mut prof2,
        );
        assert_eq!(x1, x2, "reset must reproduce the cold solve bitwise");
        assert_eq!(prof2.pcg_iters, cold, "reset must clear the warm start");
    }

    #[test]
    fn clone_box_is_independent() {
        let (p, a, sigma, rho) = problem_data();
        let mut prof = Profile::default();
        let direct = DirectKkt::new(&p, &a, sigma, &rho, &mut prof).unwrap();
        let mut cloned = direct.clone_box();
        // Updating rho on the clone must not affect the original.
        cloned.update_rho(&[1.0, 1.0], &mut prof).unwrap();
        let mut orig: Box<dyn KktSolver> = Box::new(direct);
        let mut ws = SolveWorkspace::new(3, 2);
        let (x_orig, _) = run(orig.as_mut(), &mut ws, &[0.0; 3], &[1.0, 0.0], &mut prof);
        let (x_clone, _) = run(cloned.as_mut(), &mut ws, &[0.0; 3], &[1.0, 0.0], &mut prof);
        assert_ne!(x_orig, x_clone, "clone must own its factorization");
    }
}
