use std::error::Error;
use std::fmt;

use mib_sparse::SparseError;

/// Errors produced when setting up or running the QP solver.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QpError {
    /// The problem data is inconsistent (dimension mismatches, lower bound
    /// above upper bound, `P` not upper triangular, non-finite data...).
    InvalidProblem(String),
    /// A setting has an out-of-range value.
    InvalidSetting(String),
    /// The underlying sparse linear algebra failed.
    Sparse(SparseError),
    /// The KKT matrix could not be factored (should not occur for valid
    /// convex data since the KKT matrix is quasi-definite).
    KktFactorization(String),
    /// One or more [`BatchSolver`](crate::BatchSolver) worker threads
    /// panicked. The message lists the captured panic payloads; results
    /// from surviving problems are available through
    /// [`BatchSolver::solve_batch_partial`](crate::BatchSolver::solve_batch_partial).
    WorkerPanic(String),
}

impl fmt::Display for QpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QpError::InvalidProblem(msg) => write!(f, "invalid problem: {msg}"),
            QpError::InvalidSetting(msg) => write!(f, "invalid setting: {msg}"),
            QpError::Sparse(e) => write!(f, "sparse algebra error: {e}"),
            QpError::KktFactorization(msg) => {
                write!(f, "kkt factorization failed: {msg}")
            }
            QpError::WorkerPanic(msg) => {
                write!(f, "batch worker panicked: {msg}")
            }
        }
    }
}

impl Error for QpError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            QpError::Sparse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SparseError> for QpError {
    fn from(e: SparseError) -> Self {
        QpError::Sparse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = QpError::InvalidProblem("l > u at row 3".into());
        assert!(e.to_string().contains("row 3"));
        let e = QpError::from(SparseError::ZeroPivot(2));
        assert!(e.source().is_some());
    }
}
