//! The public [`Solver`] facade over the pluggable [`QpBackend`] family.
//!
//! [`Solver::new`] selects the backend named by
//! [`Settings::algorithm`](crate::Settings) — the OSQP-style
//! [`AdmmSolver`](crate::AdmmSolver) or the restarted primal-dual
//! [`PdqpSolver`](crate::PdqpSolver) — and forwards every call through the
//! trait, so callers (batch, serve, benches) are algorithm-agnostic. The
//! facade adds the validated [`Solver::warm_start_from`] entry point on
//! top of the trait's panicking `warm_start`.

use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Instant;

use crate::admm::AdmmSolver;
use crate::backend::{Algorithm, QpBackend};
use crate::pdqp::PdqpSolver;
use crate::workspace::SolveWorkspace;
use crate::{Problem, QpError, Result, Settings, SolveResult};

/// The QP solver: a thin facade over the algorithm backend selected by
/// [`Settings::algorithm`](crate::Settings).
///
/// A `Solver` owns a scaled copy of the problem, the backend's iterates
/// and a [`SolveWorkspace`] holding every scratch vector the iteration
/// needs; after [`Solver::new`] returns, a call to [`Solver::solve_into`]
/// performs **no heap allocation**. Repeated [`Solver::solve`] calls
/// warm-start from the previous solution, and the parametric update
/// methods ([`Solver::update_q`], [`Solver::update_bounds`]) support the
/// "millions of QPs with the same sparsity pattern" workflow the paper's
/// portfolio example describes without re-running setup.
#[derive(Debug)]
pub struct Solver {
    inner: Box<dyn QpBackend>,
}

impl Clone for Solver {
    fn clone(&self) -> Self {
        Solver {
            inner: self.inner.clone_box(),
        }
    }
}

impl Solver {
    /// Sets up the backend named by `settings.algorithm`: validates
    /// settings, equilibrates the problem and runs the backend's one-time
    /// setup (KKT factorization for ADMM, operator-norm estimation for
    /// PDQP).
    ///
    /// # Errors
    ///
    /// Returns setting/problem validation errors or
    /// [`QpError::KktFactorization`] if an initial factorization fails.
    pub fn new(problem: Problem, settings: Settings) -> Result<Self> {
        let inner: Box<dyn QpBackend> = match settings.algorithm {
            Algorithm::Admm => Box::new(AdmmSolver::new(problem, settings)?),
            Algorithm::Pdqp => Box::new(PdqpSolver::new(problem, settings)?),
        };
        Ok(Solver { inner })
    }

    /// Which algorithm this solver runs.
    pub fn algorithm(&self) -> Algorithm {
        self.inner.algorithm()
    }

    /// The solver settings.
    pub fn settings(&self) -> &Settings {
        self.inner.settings()
    }

    /// The original (unscaled) problem.
    pub fn problem(&self) -> &Problem {
        self.inner.problem()
    }

    /// The current base step size: `ρ` for the ADMM backend, the primal
    /// step `τ` for PDQP.
    pub fn rho(&self) -> f64 {
        self.inner.step_size()
    }

    /// The preallocated workspace (for inspection in tests and benches).
    pub fn workspace(&self) -> &SolveWorkspace {
        self.inner.workspace()
    }

    /// Warm-starts the iterates from an (unscaled) primal/dual guess.
    ///
    /// # Panics
    ///
    /// Panics if the lengths do not match the problem dimensions. For a
    /// non-panicking variant that validates a previous result, see
    /// [`Solver::warm_start_from`].
    pub fn warm_start(&mut self, x: &[f64], y: &[f64]) {
        self.inner.warm_start(x, y);
    }

    /// Warm-starts the iterates from a previous [`SolveResult`] of a
    /// same-dimension problem — the "serve the next request from where the
    /// last one converged" workflow of [`BatchSolver`](crate::BatchSolver)
    /// streams and the `mib-serve` runtime.
    ///
    /// # Errors
    ///
    /// Returns [`QpError::InvalidProblem`] when the result's dimensions do
    /// not match this solver's problem (e.g. a pooled result from a
    /// different-shaped tenant); the iterates are left untouched.
    pub fn warm_start_from(&mut self, previous: &SolveResult) -> Result<()> {
        let n = self.inner.problem().num_vars();
        let m = self.inner.problem().num_constraints();
        if previous.x.len() != n || previous.y.len() != m {
            return Err(QpError::InvalidProblem(format!(
                "warm start result has dimensions ({}, {}) but problem has ({n}, {m})",
                previous.x.len(),
                previous.y.len()
            )));
        }
        self.inner.warm_start(&previous.x, &previous.y);
        Ok(())
    }

    /// Installs (or clears) an external cancellation flag. The iteration
    /// polls the flag every [`Settings::check_interval`](crate::Settings)
    /// iterations and exits with
    /// [`Status::Cancelled`](crate::Status::Cancelled) once it reads
    /// `true`. The poll never touches the iterates, so installing a flag
    /// cannot change the answer of a run that completes.
    pub fn set_cancel_flag(&mut self, cancel: Option<Arc<AtomicBool>>) {
        self.inner.set_cancel_flag(cancel);
    }

    /// Installs (or clears) an absolute wall-clock deadline. Combined with
    /// [`Settings::time_limit`](crate::Settings) (whichever expires first
    /// wins); checked every `check_interval` iterations, yielding
    /// [`Status::TimedOut`](crate::Status::TimedOut).
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.inner.set_deadline(deadline);
    }

    /// Resets the solver to its post-setup state: zero iterates, initial
    /// step sizes, no warm-start memory. After `reset`, a solve reproduces
    /// the very first solve of a freshly constructed solver bitwise.
    /// [`BatchSolver`](crate::BatchSolver) relies on this to make parallel
    /// and sequential batch runs identical.
    ///
    /// The reset state is a pure function of the current problem data — a
    /// pooled solver that served other parameters first reaches bitwise
    /// the same state as a fresh clone of its template with the same
    /// updates applied. This invariant holds for every backend.
    pub fn reset(&mut self) {
        self.inner.reset();
    }

    /// Replaces the linear cost `q` (same dimensions), preserving scaling.
    ///
    /// # Errors
    ///
    /// Returns [`QpError::InvalidProblem`] on length mismatch or non-finite
    /// entries.
    pub fn update_q(&mut self, q: &[f64]) -> Result<()> {
        let _span = mib_trace::span_if(
            mib_trace::enabled(),
            "update_q",
            mib_trace::Category::Solver,
        );
        self.inner.update_q(q)
    }

    /// Replaces the bounds `l`, `u` (same dimensions), preserving scaling.
    ///
    /// # Errors
    ///
    /// Returns [`QpError::InvalidProblem`] if any `l[i] > u[i]` or lengths
    /// mismatch.
    pub fn update_bounds(&mut self, l: &[f64], u: &[f64]) -> Result<()> {
        let _span = mib_trace::span_if(
            mib_trace::enabled(),
            "update_bounds",
            mib_trace::Category::Solver,
        );
        self.inner.update_bounds(l, u)
    }

    /// Runs the iteration until convergence, infeasibility detection or
    /// the iteration limit. Repeated calls warm-start from the previous
    /// iterates.
    pub fn solve(&mut self) -> SolveResult {
        let mut result = SolveResult::default();
        self.solve_into(&mut result);
        result
    }

    /// Runs the iteration, writing the outcome into an existing
    /// [`SolveResult`]. When `result` comes from a previous solve of the
    /// same problem dimensions, this performs **zero heap allocations** on
    /// feasible problems — the property the repository's counting-allocator
    /// test pins down. (Infeasible exits clone the certificate vector.)
    pub fn solve_into(&mut self, result: &mut SolveResult) {
        self.inner.solve_into(result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KktBackend, Status};
    use mib_sparse::CscMatrix;
    use std::sync::atomic::{AtomicBool, Ordering};

    fn box_qp(backend: KktBackend) -> SolveResult {
        // minimize x0^2 + x1^2 - x0 - x1 s.t. 0 <= x <= 0.3
        // Unconstrained optimum (0.5, 0.5); clipped to (0.3, 0.3).
        let p = CscMatrix::from_dense(2, 2, &[2.0, 0.0, 0.0, 2.0]);
        let a = CscMatrix::identity(2);
        let problem = Problem::new(p, vec![-1.0, -1.0], a, vec![0.0; 2], vec![0.3; 2]).unwrap();
        let mut settings = Settings::with_backend(backend);
        settings.eps_abs = 1e-6;
        settings.eps_rel = 1e-6;
        Solver::new(problem, settings).unwrap().solve()
    }

    #[test]
    fn solves_box_qp_direct() {
        let r = box_qp(KktBackend::Direct);
        assert_eq!(r.status, Status::Solved);
        assert_eq!(r.algorithm, Algorithm::Admm);
        assert!((r.x[0] - 0.3).abs() < 1e-4, "x0 = {}", r.x[0]);
        assert!((r.x[1] - 0.3).abs() < 1e-4);
        // Active upper bounds => positive duals y = -(Px+q) = 1 - 2*0.3 = 0.4.
        assert!((r.y[0] - 0.4).abs() < 1e-3, "y0 = {}", r.y[0]);
    }

    #[test]
    fn solves_box_qp_indirect() {
        let r = box_qp(KktBackend::Indirect);
        assert_eq!(r.status, Status::Solved);
        assert!((r.x[0] - 0.3).abs() < 1e-4);
        assert!(r.profile.pcg_iters > 0, "indirect run must use PCG");
    }

    #[test]
    fn solves_box_qp_pdqp() {
        let p = CscMatrix::from_dense(2, 2, &[2.0, 0.0, 0.0, 2.0]);
        let a = CscMatrix::identity(2);
        let problem = Problem::new(p, vec![-1.0, -1.0], a, vec![0.0; 2], vec![0.3; 2]).unwrap();
        let settings = Settings {
            algorithm: Algorithm::Pdqp,
            max_iter: 200_000,
            ..Settings::default()
        };
        let mut solver = Solver::new(problem, settings).unwrap();
        assert_eq!(solver.algorithm(), Algorithm::Pdqp);
        let r = solver.solve();
        assert_eq!(r.status, Status::Solved);
        assert_eq!(r.algorithm, Algorithm::Pdqp);
        assert!((r.x[0] - 0.3).abs() < 1e-2, "x0 = {}", r.x[0]);
        assert!((r.x[1] - 0.3).abs() < 1e-2);
        assert!(r.profile.pcg_iters == 0, "PDQP never solves a KKT system");
    }

    #[test]
    fn pdqp_and_admm_agree_on_the_solution() {
        let p = CscMatrix::from_dense(3, 3, &[3.0, 1.0, 0.0, 0.0, 2.0, 0.5, 0.0, 0.0, 1.0])
            .upper_triangle()
            .unwrap();
        let a = CscMatrix::from_dense(2, 3, &[1.0, 1.0, 1.0, 1.0, -1.0, 0.0]);
        let problem =
            Problem::new(p, vec![-1.0, 0.5, 1.0], a, vec![1.0, -0.3], vec![1.0, 0.3]).unwrap();
        let tight = |algorithm| Settings {
            algorithm,
            eps_abs: 1e-6,
            eps_rel: 1e-6,
            max_iter: 500_000,
            ..Settings::default()
        };
        let ra = Solver::new(problem.clone(), tight(Algorithm::Admm))
            .unwrap()
            .solve();
        let rp = Solver::new(problem, tight(Algorithm::Pdqp))
            .unwrap()
            .solve();
        assert_eq!(ra.status, Status::Solved);
        assert_eq!(rp.status, Status::Solved, "pdqp prim {}", rp.prim_res);
        for (u, v) in ra.x.iter().zip(&rp.x) {
            assert!((u - v).abs() < 1e-3, "{u} vs {v}");
        }
        assert!((ra.obj_val - rp.obj_val).abs() < 1e-4);
    }

    #[test]
    fn equality_constrained_qp() {
        // minimize x0^2 + x1^2 s.t. x0 + x1 = 1 -> x = (0.5, 0.5).
        let p = CscMatrix::from_dense(2, 2, &[2.0, 0.0, 0.0, 2.0]);
        let a = CscMatrix::from_dense(1, 2, &[1.0, 1.0]);
        let problem = Problem::new(p, vec![0.0; 2], a, vec![1.0], vec![1.0]).unwrap();
        let settings = Settings {
            eps_abs: 1e-7,
            eps_rel: 1e-7,
            ..Settings::default()
        };
        let r = Solver::new(problem, settings).unwrap().solve();
        assert_eq!(r.status, Status::Solved);
        assert!((r.x[0] - 0.5).abs() < 1e-5);
        assert!((r.x[1] - 0.5).abs() < 1e-5);
        assert!((r.obj_val - 0.5).abs() < 1e-4);
    }

    #[test]
    fn pdqp_solves_equality_constrained_qp() {
        let p = CscMatrix::from_dense(2, 2, &[2.0, 0.0, 0.0, 2.0]);
        let a = CscMatrix::from_dense(1, 2, &[1.0, 1.0]);
        let problem = Problem::new(p, vec![0.0; 2], a, vec![1.0], vec![1.0]).unwrap();
        let settings = Settings {
            algorithm: Algorithm::Pdqp,
            max_iter: 500_000,
            ..Settings::default()
        };
        let r = Solver::new(problem, settings).unwrap().solve();
        assert_eq!(r.status, Status::Solved, "prim {}", r.prim_res);
        assert!((r.x[0] - 0.5).abs() < 1e-2);
        assert!((r.x[1] - 0.5).abs() < 1e-2);
    }

    #[test]
    fn detects_primal_infeasibility() {
        // x >= 1 and x <= 0 simultaneously.
        let p = CscMatrix::identity(1);
        let a = CscMatrix::from_dense(2, 1, &[1.0, 1.0]);
        let problem = Problem::new(p, vec![0.0], a, vec![1.0, -2e30], vec![2e30, 0.0]).unwrap();
        let r = Solver::new(problem, Settings::default()).unwrap().solve();
        assert_eq!(r.status, Status::PrimalInfeasible);
        assert!(!r.certificate.is_empty());
    }

    #[test]
    fn detects_dual_infeasibility() {
        // minimize x (linear, unbounded below on half line): P = 0, q = 1,
        // constraint x <= 0 only.
        let p = CscMatrix::zeros(1, 1);
        let a = CscMatrix::identity(1);
        let problem = Problem::new(p, vec![1.0], a, vec![-2e30], vec![0.0]).unwrap();
        let r = Solver::new(problem, Settings::default()).unwrap().solve();
        assert_eq!(r.status, Status::DualInfeasible);
    }

    #[test]
    fn warm_start_reduces_iterations() {
        let p = CscMatrix::from_dense(2, 2, &[4.0, 1.0, 0.0, 2.0])
            .upper_triangle()
            .unwrap();
        let a = CscMatrix::from_dense(3, 2, &[1.0, 1.0, 1.0, 0.0, 0.0, 1.0]);
        let problem = Problem::new(
            p,
            vec![1.0, 1.0],
            a,
            vec![1.0, 0.0, 0.0],
            vec![1.0, 0.7, 0.7],
        )
        .unwrap();
        let mut solver = Solver::new(problem, Settings::default()).unwrap();
        let r1 = solver.solve();
        assert_eq!(r1.status, Status::Solved);
        let r2 = solver.solve(); // warm from the solution
        assert!(r2.iterations <= r1.iterations);
    }

    #[test]
    fn update_q_resolves_parametrically() {
        let p = CscMatrix::from_dense(2, 2, &[2.0, 0.0, 0.0, 2.0]);
        let a = CscMatrix::identity(2);
        let problem = Problem::new(p, vec![-1.0, -1.0], a, vec![-10.0; 2], vec![10.0; 2]).unwrap();
        let settings = Settings {
            eps_abs: 1e-7,
            eps_rel: 1e-7,
            ..Settings::default()
        };
        let mut solver = Solver::new(problem, settings).unwrap();
        let r1 = solver.solve();
        assert!((r1.x[0] - 0.5).abs() < 1e-4);
        solver.update_q(&[-2.0, -2.0]).unwrap();
        let r2 = solver.solve();
        assert!(
            (r2.x[0] - 1.0).abs() < 1e-4,
            "x after q update: {}",
            r2.x[0]
        );
    }

    #[test]
    fn update_bounds_resolves() {
        let p = CscMatrix::from_dense(1, 1, &[2.0]);
        let a = CscMatrix::identity(1);
        let problem = Problem::new(p, vec![-2.0], a, vec![0.0], vec![0.4]).unwrap();
        let settings = Settings {
            eps_abs: 1e-7,
            eps_rel: 1e-7,
            ..Settings::default()
        };
        let mut solver = Solver::new(problem, settings).unwrap();
        let r1 = solver.solve();
        assert!((r1.x[0] - 0.4).abs() < 1e-4);
        solver.update_bounds(&[0.0], &[10.0]).unwrap();
        let r2 = solver.solve();
        assert!(
            (r2.x[0] - 1.0).abs() < 1e-4,
            "x after bound update: {}",
            r2.x[0]
        );
    }

    #[test]
    fn direct_and_indirect_agree() {
        let p = CscMatrix::from_dense(3, 3, &[3.0, 1.0, 0.0, 0.0, 2.0, 0.5, 0.0, 0.0, 1.0])
            .upper_triangle()
            .unwrap();
        let a = CscMatrix::from_dense(2, 3, &[1.0, 1.0, 1.0, 1.0, -1.0, 0.0]);
        let problem =
            Problem::new(p, vec![-1.0, 0.5, 1.0], a, vec![1.0, -0.3], vec![1.0, 0.3]).unwrap();
        let tight = |backend| {
            let mut s = Settings::with_backend(backend);
            s.eps_abs = 1e-7;
            s.eps_rel = 1e-7;
            s
        };
        let rd = Solver::new(problem.clone(), tight(KktBackend::Direct))
            .unwrap()
            .solve();
        let ri = Solver::new(problem, tight(KktBackend::Indirect))
            .unwrap()
            .solve();
        assert_eq!(rd.status, Status::Solved);
        assert_eq!(ri.status, Status::Solved);
        for (u, v) in rd.x.iter().zip(&ri.x) {
            assert!((u - v).abs() < 1e-4, "{u} vs {v}");
        }
        assert!((rd.obj_val - ri.obj_val).abs() < 1e-5);
    }

    #[test]
    fn profile_accumulates_work() {
        let r = box_qp(KktBackend::Direct);
        assert!(r.profile.ops.total() > 0.0);
        assert!(r.profile.factor_count >= 1);
        assert!(r.profile.ops.col_elim > 0.0);
        assert!(r.profile.ops.mac > 0.0);
        assert_eq!(r.iterations, r.profile.admm_iters.max(r.iterations));
    }

    #[test]
    fn scaling_disabled_still_solves() {
        let p = CscMatrix::from_dense(2, 2, &[2.0, 0.0, 0.0, 2.0]);
        let a = CscMatrix::identity(2);
        let problem = Problem::new(p, vec![-1.0, -1.0], a, vec![0.0; 2], vec![1.0; 2]).unwrap();
        let settings = Settings {
            scaling_iters: 0,
            ..Settings::default()
        };
        let r = Solver::new(problem, settings).unwrap().solve();
        assert_eq!(r.status, Status::Solved);
    }

    #[test]
    fn solve_into_reuses_result_buffers() {
        let p = CscMatrix::from_dense(2, 2, &[2.0, 0.0, 0.0, 2.0]);
        let a = CscMatrix::identity(2);
        let problem = Problem::new(p, vec![-1.0, -1.0], a, vec![0.0; 2], vec![0.3; 2]).unwrap();
        let mut solver = Solver::new(problem, Settings::default()).unwrap();
        let mut result = solver.solve();
        assert_eq!(result.status, Status::Solved);
        let x1 = result.x.clone();
        solver.reset();
        solver.solve_into(&mut result);
        assert_eq!(result.status, Status::Solved);
        assert_eq!(
            result.x, x1,
            "reset + solve_into must reproduce the first solve"
        );
    }

    #[test]
    fn reset_restores_cold_start_bitwise() {
        let p = CscMatrix::from_dense(2, 2, &[4.0, 1.0, 0.0, 2.0])
            .upper_triangle()
            .unwrap();
        let a = CscMatrix::from_dense(3, 2, &[1.0, 1.0, 1.0, 0.0, 0.0, 1.0]);
        let problem = Problem::new(
            p,
            vec![1.0, 1.0],
            a,
            vec![1.0, 0.0, 0.0],
            vec![1.0, 0.7, 0.7],
        )
        .unwrap();
        let mut solver = Solver::new(problem.clone(), Settings::default()).unwrap();
        let r1 = solver.solve();
        solver.solve(); // drift the iterates and possibly rho
        solver.reset();
        let r3 = solver.solve();
        assert_eq!(r1.x, r3.x, "reset must restore cold-start behavior exactly");
        assert_eq!(r1.iterations, r3.iterations);
    }

    #[test]
    fn cancellation_flag_stops_the_iteration() {
        let p = CscMatrix::from_dense(2, 2, &[2.0, 0.0, 0.0, 2.0]);
        let a = CscMatrix::identity(2);
        let problem = Problem::new(p, vec![-1.0, -1.0], a, vec![0.0; 2], vec![0.3; 2]).unwrap();
        let settings = Settings {
            check_interval: 1,
            ..Settings::default()
        };
        let mut solver = Solver::new(problem, settings).unwrap();
        let flag = Arc::new(AtomicBool::new(true));
        solver.set_cancel_flag(Some(flag.clone()));
        let r = solver.solve();
        assert_eq!(r.status, Status::Cancelled);
        assert_eq!(r.iterations, 0, "pre-cancelled run must not iterate");
        // Clearing the flag resumes normal behavior.
        flag.store(false, Ordering::Relaxed);
        solver.reset();
        let r = solver.solve();
        assert_eq!(r.status, Status::Solved);
    }

    #[test]
    fn pdqp_honors_cancellation_and_deadlines() {
        let p = CscMatrix::from_dense(2, 2, &[2.0, 0.0, 0.0, 2.0]);
        let a = CscMatrix::identity(2);
        let problem = Problem::new(p, vec![-1.0, -1.0], a, vec![0.0; 2], vec![0.3; 2]).unwrap();
        let settings = Settings {
            algorithm: Algorithm::Pdqp,
            check_interval: 1,
            max_iter: 200_000,
            ..Settings::default()
        };
        let mut solver = Solver::new(problem, settings).unwrap();
        let flag = Arc::new(AtomicBool::new(true));
        solver.set_cancel_flag(Some(flag.clone()));
        let r = solver.solve();
        assert_eq!(r.status, Status::Cancelled);
        assert_eq!(r.iterations, 0, "pre-cancelled run must not iterate");
        flag.store(false, Ordering::Relaxed);
        solver.set_cancel_flag(None);
        solver.set_deadline(Some(Instant::now()));
        solver.reset();
        assert_eq!(solver.solve().status, Status::TimedOut);
        solver.set_deadline(None);
        solver.reset();
        assert_eq!(solver.solve().status, Status::Solved);
    }

    #[test]
    fn expired_deadline_times_out() {
        let p = CscMatrix::from_dense(2, 2, &[2.0, 0.0, 0.0, 2.0]);
        let a = CscMatrix::identity(2);
        let problem = Problem::new(p, vec![-1.0, -1.0], a, vec![0.0; 2], vec![0.3; 2]).unwrap();
        let mut solver = Solver::new(problem, Settings::default()).unwrap();
        // A deadline of "now" is already unmeetable by the time the solve
        // performs its pre-loop check.
        solver.set_deadline(Some(Instant::now()));
        let r = solver.solve();
        assert_eq!(r.status, Status::TimedOut);
        solver.set_deadline(None);
        solver.reset();
        assert_eq!(solver.solve().status, Status::Solved);
    }

    #[test]
    fn time_limit_setting_times_out_long_runs() {
        // An infeasible-ish tight problem would still finish fast; instead
        // pin the limit to zero-ish via an already-expired external
        // deadline equivalent: a 1ns budget with per-iteration checks.
        let p = CscMatrix::from_dense(2, 2, &[2.0, 0.0, 0.0, 2.0]);
        let a = CscMatrix::identity(2);
        let problem = Problem::new(p, vec![-1.0, -1.0], a, vec![0.0; 2], vec![0.3; 2]).unwrap();
        let settings = Settings {
            time_limit: Some(std::time::Duration::from_nanos(1)),
            check_interval: 1,
            eps_abs: 1e-12,
            eps_rel: 1e-12,
            ..Settings::default()
        };
        let r = Solver::new(problem, settings).unwrap().solve();
        assert_eq!(r.status, Status::TimedOut);
        assert!(r.iterations <= 1, "must stop at the first check boundary");
    }

    #[test]
    fn interruption_checks_do_not_perturb_solved_runs() {
        let p = CscMatrix::from_dense(2, 2, &[2.0, 0.0, 0.0, 2.0]);
        let a = CscMatrix::identity(2);
        let problem = Problem::new(p, vec![-1.0, -1.0], a, vec![0.0; 2], vec![0.3; 2]).unwrap();
        let plain = Solver::new(problem.clone(), Settings::default())
            .unwrap()
            .solve();
        let settings = Settings {
            time_limit: Some(std::time::Duration::from_secs(5000)),
            check_interval: 1,
            ..Settings::default()
        };
        let mut guarded = Solver::new(problem, settings).unwrap();
        guarded.set_cancel_flag(Some(Arc::new(AtomicBool::new(false))));
        let r = guarded.solve();
        assert_eq!(r.status, Status::Solved);
        assert_eq!(r.x, plain.x, "polling must not change the trajectory");
        assert_eq!(r.iterations, plain.iterations);
    }

    #[test]
    fn warm_start_from_matches_manual_warm_start() {
        let p = CscMatrix::from_dense(2, 2, &[4.0, 1.0, 0.0, 2.0])
            .upper_triangle()
            .unwrap();
        let a = CscMatrix::from_dense(3, 2, &[1.0, 1.0, 1.0, 0.0, 0.0, 1.0]);
        let problem = Problem::new(
            p,
            vec![1.0, 1.0],
            a,
            vec![1.0, 0.0, 0.0],
            vec![1.0, 0.7, 0.7],
        )
        .unwrap();
        let mut s1 = Solver::new(problem.clone(), Settings::default()).unwrap();
        let first = s1.solve();
        assert_eq!(first.status, Status::Solved);

        let mut a1 = Solver::new(problem.clone(), Settings::default()).unwrap();
        a1.warm_start_from(&first).unwrap();
        let via_result = a1.solve();
        let mut a2 = Solver::new(problem, Settings::default()).unwrap();
        a2.warm_start(&first.x, &first.y);
        let via_slices = a2.solve();
        assert_eq!(via_result.x, via_slices.x);
        assert_eq!(via_result.iterations, via_slices.iterations);
        assert!(via_result.iterations <= first.iterations);
    }

    #[test]
    fn warm_start_from_rejects_wrong_dimensions() {
        let p = CscMatrix::from_dense(2, 2, &[2.0, 0.0, 0.0, 2.0]);
        let a = CscMatrix::identity(2);
        let problem = Problem::new(p, vec![-1.0, -1.0], a, vec![0.0; 2], vec![0.3; 2]).unwrap();
        let other = Problem::new(
            CscMatrix::identity(3),
            vec![0.0; 3],
            CscMatrix::identity(3),
            vec![-1.0; 3],
            vec![1.0; 3],
        )
        .unwrap();
        let foreign = Solver::new(other, Settings::default()).unwrap().solve();

        for algorithm in Algorithm::all() {
            let mut solver =
                Solver::new(problem.clone(), Settings::with_algorithm(algorithm)).unwrap();
            let err = solver.warm_start_from(&foreign).unwrap_err();
            assert!(
                matches!(err, QpError::InvalidProblem(_)),
                "{algorithm}: {err}"
            );
            // The rejected warm start must leave the solver untouched.
            let cold = Solver::new(problem.clone(), Settings::with_algorithm(algorithm))
                .unwrap()
                .solve();
            let after = solver.solve();
            assert_eq!(after.x, cold.x, "{algorithm}: iterates were perturbed");
            assert_eq!(after.iterations, cold.iterations);
        }
    }

    #[test]
    fn reset_after_classification_change_matches_fresh_clone() {
        // Template: row 1 is an inequality. The update turns it into an
        // equality; a pooled solver that already drifted rho must reach
        // bitwise the same reset state as a fresh clone of the template.
        let p = CscMatrix::from_dense(2, 2, &[2.0, 0.0, 0.0, 2.0]);
        let a = CscMatrix::from_dense(3, 2, &[1.0, 1.0, 1.0, 0.0, 0.0, 1.0]);
        let problem = Problem::new(
            p,
            vec![-1.0, 0.5],
            a,
            vec![-1.0, 0.0, 0.0],
            vec![1.0, 0.8, 0.8],
        )
        .unwrap();
        let template = Solver::new(problem, Settings::default()).unwrap();

        let apply = |s: &mut Solver| {
            s.update_q(&[-2.0, 0.1]).unwrap();
            s.update_bounds(&[-1.0, 0.4, 0.0], &[1.0, 0.4, 0.8])
                .unwrap();
            s.reset();
        };

        // Pooled path: solve something else first, then re-parameterize.
        let mut pooled = template.clone();
        pooled.solve();
        apply(&mut pooled);
        let via_pool = pooled.solve();

        // Reference path: fresh clone, same updates.
        let mut fresh = template.clone();
        apply(&mut fresh);
        let via_fresh = fresh.solve();

        assert_eq!(via_pool.x, via_fresh.x, "pooled reset must be bitwise");
        assert_eq!(via_pool.iterations, via_fresh.iterations);
        assert_eq!(via_pool.status, via_fresh.status);
    }

    #[test]
    fn cloned_solver_solves_independently() {
        let p = CscMatrix::from_dense(2, 2, &[2.0, 0.0, 0.0, 2.0]);
        let a = CscMatrix::identity(2);
        let problem = Problem::new(p, vec![-1.0, -1.0], a, vec![0.0; 2], vec![0.3; 2]).unwrap();
        let solver = Solver::new(problem, Settings::default()).unwrap();
        let mut c1 = solver.clone();
        let mut c2 = solver.clone();
        c2.update_q(&[-2.0, -2.0]).unwrap();
        let r1 = c1.solve();
        let r2 = c2.solve();
        assert_eq!(r1.status, Status::Solved);
        assert_eq!(r2.status, Status::Solved);
        assert!(r2.x[0] > r1.x[0] - 1e-9, "clones must not share state");
    }
}
