use std::time::Instant;

use mib_sparse::vector;

use crate::linsys::{DirectKkt, IndirectKkt, KktSolver};
use crate::profile::Profile;
use crate::scaling::{ruiz_equilibrate, Scaling};
use crate::{KktBackend, Problem, QpError, Result, Settings, SolveResult, Status, INFTY};

/// The ADMM QP solver (Algorithm 1 of the paper).
///
/// A `Solver` owns a scaled copy of the problem, the selected KKT backend
/// and the current iterates; repeated [`Solver::solve`] calls warm-start
/// from the previous solution, and the parametric update methods
/// ([`Solver::update_q`], [`Solver::update_bounds`]) support the
/// "millions of QPs with the same sparsity pattern" workflow the paper's
/// portfolio example describes without re-running setup.
#[derive(Debug)]
pub struct Solver {
    settings: Settings,
    /// Original (unscaled) problem, used for residuals and certificates.
    orig: Problem,
    // Scaled data.
    q: Vec<f64>,
    l: Vec<f64>,
    u: Vec<f64>,
    scaling: Scaling,
    rho: f64,
    rho_vec: Vec<f64>,
    rho_inv_vec: Vec<f64>,
    kkt: Box<dyn KktSolver>,
    // Scaled iterates.
    x: Vec<f64>,
    y: Vec<f64>,
    z: Vec<f64>,
    profile: Profile,
}

/// Residual snapshot used by termination and adaptive-ρ logic.
#[derive(Debug, Clone, Copy)]
struct Residuals {
    prim: f64,
    dual: f64,
    prim_norm: f64,
    dual_norm: f64,
}

impl Solver {
    /// Sets up the solver: validates settings, equilibrates the problem,
    /// builds the `ρ` vector and the KKT backend.
    ///
    /// # Errors
    ///
    /// Returns setting/problem validation errors or
    /// [`QpError::KktFactorization`] if the initial factorization fails.
    pub fn new(problem: Problem, settings: Settings) -> Result<Self> {
        settings.validate()?;
        let n = problem.num_vars();
        let m = problem.num_constraints();

        // Scale a copy of the data.
        let mut p = problem.p().clone();
        let mut q = problem.q().to_vec();
        let mut a = problem.a().clone();
        let mut l = problem.l().to_vec();
        let mut u = problem.u().to_vec();
        let scaling = if settings.scaling_iters > 0 {
            ruiz_equilibrate(&mut p, &mut q, &mut a, &mut l, &mut u, settings.scaling_iters)
        } else {
            Scaling::identity(n, m)
        };

        let (rho_vec, rho_inv_vec) = build_rho_vec(&settings, settings.rho, &l, &u);

        let mut profile = Profile::default();
        let kkt: Box<dyn KktSolver> = match settings.backend {
            KktBackend::Direct => Box::new(DirectKkt::new(
                &p,
                &a,
                settings.sigma,
                &rho_vec,
                &mut profile,
            )?),
            KktBackend::Indirect => Box::new(IndirectKkt::new(
                &p,
                &a,
                settings.sigma,
                &rho_vec,
                settings.eps_pcg_start,
                settings.eps_pcg_min,
                settings.max_pcg_iter,
            )),
        };

        // `p`/`a` move into nothing — the backends clone what they need; we
        // keep the scaled P/A inside the backend only, and original copies
        // in `orig`. q/l/u stay here because updates and projections use them.
        drop(p);
        drop(a);

        Ok(Solver {
            settings,
            orig: problem,
            q,
            l,
            u,
            scaling,
            rho: 0.1,
            rho_vec,
            rho_inv_vec,
            kkt,
            x: vec![0.0; n],
            y: vec![0.0; m],
            z: vec![0.0; m],
            profile,
        })
        .map(|mut s| {
            s.rho = s.settings.rho;
            s
        })
    }

    /// The solver settings.
    pub fn settings(&self) -> &Settings {
        &self.settings
    }

    /// The original (unscaled) problem.
    pub fn problem(&self) -> &Problem {
        &self.orig
    }

    /// The current base step size `ρ`.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Warm-starts the iterates from an (unscaled) primal/dual guess.
    ///
    /// # Panics
    ///
    /// Panics if the lengths do not match the problem dimensions.
    pub fn warm_start(&mut self, x: &[f64], y: &[f64]) {
        assert_eq!(x.len(), self.x.len(), "warm start x has wrong length");
        assert_eq!(y.len(), self.y.len(), "warm start y has wrong length");
        for (i, xs) in self.x.iter_mut().enumerate() {
            *xs = x[i] * self.scaling.dinv[i];
        }
        for (i, ys) in self.y.iter_mut().enumerate() {
            *ys = y[i] * self.scaling.c * self.scaling.einv[i];
        }
        // z = A x in the scaled space is re-established by the first
        // iteration; initialize with the projection of the current guess.
        let ax = self.orig.a().mul_vec(x);
        for (i, zs) in self.z.iter_mut().enumerate() {
            *zs = ax[i] * self.scaling.e[i];
        }
    }

    /// Replaces the linear cost `q` (same dimensions), preserving scaling.
    ///
    /// # Errors
    ///
    /// Returns [`QpError::InvalidProblem`] on length mismatch or non-finite
    /// entries.
    pub fn update_q(&mut self, q: &[f64]) -> Result<()> {
        if q.len() != self.q.len() {
            return Err(QpError::InvalidProblem(format!(
                "q has length {} but problem has {} variables",
                q.len(),
                self.q.len()
            )));
        }
        if q.iter().any(|v| !v.is_finite()) {
            return Err(QpError::InvalidProblem("q entries must be finite".into()));
        }
        let (p0, _q0, a0, l0, u0) = self.orig.clone().into_parts();
        self.orig = Problem::new(p0, q.to_vec(), a0, l0, u0)?;
        for (j, qs) in self.q.iter_mut().enumerate() {
            *qs = q[j] * self.scaling.c * self.scaling.d[j];
        }
        Ok(())
    }

    /// Replaces the bounds `l`, `u` (same dimensions), preserving scaling.
    ///
    /// # Errors
    ///
    /// Returns [`QpError::InvalidProblem`] if any `l[i] > u[i]` or lengths
    /// mismatch.
    pub fn update_bounds(&mut self, l: &[f64], u: &[f64]) -> Result<()> {
        if l.len() != self.l.len() || u.len() != self.u.len() {
            return Err(QpError::InvalidProblem("bound length mismatch".into()));
        }
        let (p0, q0, a0, _l0, _u0) = self.orig.clone().into_parts();
        self.orig = Problem::new(p0, q0, a0, l.to_vec(), u.to_vec())?;
        for i in 0..l.len() {
            self.l[i] = if l[i].abs() < INFTY { l[i] * self.scaling.e[i] } else { l[i] };
            self.u[i] = if u[i].abs() < INFTY { u[i] * self.scaling.e[i] } else { u[i] };
        }
        Ok(())
    }

    /// Runs the ADMM iteration until convergence, infeasibility detection
    /// or the iteration limit. Repeated calls warm-start from the previous
    /// iterates.
    pub fn solve(&mut self) -> SolveResult {
        let start = Instant::now();
        // Keep setup factorization work, reset per-solve counters.
        let setup_profile = self.profile;
        let mut prof = setup_profile;
        prof.admm_iters = 0;

        let n = self.x.len();
        let m = self.y.len();
        let s = self.settings.clone();
        let check_every = s.check_termination;
        // Round the adaptive interval up to a multiple of the termination
        // check so fresh residuals are always available.
        let adapt_every =
            s.adaptive_rho_interval.div_ceil(check_every).max(1) * check_every;

        let mut xtilde = vec![0.0; n];
        let mut nu = vec![0.0; m];
        let mut ztilde = vec![0.0; m];
        let mut rhs_x = vec![0.0; n];
        let mut rhs_z = vec![0.0; m];
        let mut delta_x = vec![0.0; n];
        let mut delta_y = vec![0.0; m];

        let mut status = Status::MaxIterations;
        let mut pcg_tol = s.eps_pcg_start;
        let mut final_res: Option<Residuals> = None;
        let mut certificate = Vec::new();
        let mut iterations = 0usize;

        for k in 1..=s.max_iter {
            iterations = k;
            // rhs = [σ xᵏ − q ; zᵏ − ρ⁻¹ yᵏ]
            for j in 0..n {
                rhs_x[j] = s.sigma * self.x[j] - self.q[j];
            }
            for i in 0..m {
                rhs_z[i] = self.z[i] - self.rho_inv_vec[i] * self.y[i];
            }
            prof.add_vector((2 * n + 2 * m) as f64);

            if self
                .kkt
                .solve(&rhs_x, &rhs_z, &mut xtilde, &mut nu, &mut prof)
                .is_err()
            {
                // Factorization failures cannot occur mid-run (pattern and
                // quasi-definiteness are fixed); treat defensively as a stall.
                break;
            }

            // z̃ = z + ρ⁻¹(ν − y)
            for i in 0..m {
                ztilde[i] = self.z[i] + self.rho_inv_vec[i] * (nu[i] - self.y[i]);
            }
            prof.add_vector(3.0 * m as f64);

            // x update (relaxed) and δx.
            for j in 0..n {
                let x_new = s.alpha * xtilde[j] + (1.0 - s.alpha) * self.x[j];
                delta_x[j] = x_new - self.x[j];
                self.x[j] = x_new;
            }
            prof.add_vector(4.0 * n as f64);

            // z, y updates and δy.
            for i in 0..m {
                let z_relaxed = s.alpha * ztilde[i] + (1.0 - s.alpha) * self.z[i];
                let w = z_relaxed + self.rho_inv_vec[i] * self.y[i];
                let z_new = w.max(self.l[i]).min(self.u[i]);
                let y_new = self.y[i] + self.rho_vec[i] * (z_relaxed - z_new);
                delta_y[i] = y_new - self.y[i];
                self.z[i] = z_new;
                self.y[i] = y_new;
            }
            prof.add_vector(9.0 * m as f64);

            let checking = k % check_every == 0 || k == s.max_iter;
            if checking {
                let res = self.compute_residuals(&mut prof);
                final_res = Some(res);
                let eps_prim = s.eps_abs + s.eps_rel * res.prim_norm;
                let eps_dual = s.eps_abs + s.eps_rel * res.dual_norm;
                if res.prim < eps_prim && res.dual < eps_dual {
                    status = Status::Solved;
                    break;
                }
                if let Some(cert) = self.check_primal_infeasible(&delta_y, &mut prof) {
                    status = Status::PrimalInfeasible;
                    certificate = cert;
                    break;
                }
                if let Some(cert) = self.check_dual_infeasible(&delta_x, &mut prof) {
                    status = Status::DualInfeasible;
                    certificate = cert;
                    break;
                }
                // Adaptive PCG tolerance: tighten as the ADMM residuals
                // fall, and halve unconditionally at every check so a
                // stalled outer loop (caused by inexact inner solves)
                // always escapes.
                if self.kkt.backend() == KktBackend::Indirect {
                    let target = 0.15
                        * (res.prim / res.prim_norm.max(1e-12)
                            * res.dual / res.dual_norm.max(1e-12))
                        .sqrt();
                    pcg_tol = (0.5 * pcg_tol).min(target).max(1e-9);
                    self.kkt.set_tolerance(pcg_tol);
                }
                if s.adaptive_rho && k % adapt_every == 0 {
                    self.maybe_update_rho(res, &mut prof);
                }
            }
            prof.admm_iters = k;
        }

        // Unscale the solution.
        let x_us = self.scaling.unscale_x(&self.x);
        let y_us = self.scaling.unscale_y(&self.y);
        let z_us = self.scaling.unscale_z(&self.z);
        let res = final_res.unwrap_or(Residuals {
            prim: f64::INFINITY,
            dual: f64::INFINITY,
            prim_norm: 1.0,
            dual_norm: 1.0,
        });
        let obj_val = self.orig.objective(&x_us);

        SolveResult {
            status,
            x: x_us,
            y: y_us,
            z: z_us,
            obj_val,
            prim_res: res.prim,
            dual_res: res.dual,
            iterations,
            profile: prof,
            solve_time: start.elapsed(),
            certificate,
        }
    }

    /// Computes unscaled residuals and their normalization terms.
    fn compute_residuals(&self, prof: &mut Profile) -> Residuals {
        let x_us = self.scaling.unscale_x(&self.x);
        let y_us = self.scaling.unscale_y(&self.y);
        let z_us = self.scaling.unscale_z(&self.z);
        let a = self.orig.a();
        let p = self.orig.p();

        let ax = a.mul_vec(&x_us);
        prof.add_spmv_mac(a.nnz());
        let prim = vector::norm_inf_diff(&ax, &z_us);
        let prim_norm = vector::norm_inf(&ax).max(vector::norm_inf(&z_us));

        let px = p.sym_upper_mul_vec(&x_us);
        prof.add_spmv_mac(2 * p.nnz());
        let aty = a.tr_mul_vec(&y_us);
        prof.add_spmv_col_elim(a.nnz());
        let mut dual = 0.0f64;
        for j in 0..x_us.len() {
            dual = dual.max((px[j] + self.orig.q()[j] + aty[j]).abs());
        }
        let dual_norm = vector::norm_inf(&px)
            .max(vector::norm_inf(&aty))
            .max(vector::norm_inf(self.orig.q()));
        prof.add_vector(4.0 * (x_us.len() + z_us.len()) as f64);

        Residuals { prim, dual, prim_norm, dual_norm }
    }

    /// Tests the primal infeasibility certificate on the unscaled `δy`.
    fn check_primal_infeasible(&self, delta_y: &[f64], prof: &mut Profile) -> Option<Vec<f64>> {
        let eps = self.settings.eps_prim_inf;
        // Unscale: δy = E δȳ / c.
        let dy: Vec<f64> = delta_y
            .iter()
            .enumerate()
            .map(|(i, &v)| v * self.scaling.e[i] * self.scaling.cinv)
            .collect();
        let norm = vector::norm_inf(&dy);
        if norm <= 0.0 {
            return None;
        }
        let a = self.orig.a();
        let at_dy = a.tr_mul_vec(&dy);
        prof.add_spmv_col_elim(a.nnz());
        if vector::norm_inf(&at_dy) > eps * norm {
            return None;
        }
        // Support function: uᵀ(δy)₊ + lᵀ(δy)₋ must be certifiably negative.
        // Infinite bounds (±1e30) make the sum astronomically positive when
        // the corresponding component has the wrong sign, failing the test
        // exactly as intended.
        let mut lhs = 0.0;
        for (i, &d) in dy.iter().enumerate() {
            if d > 0.0 {
                lhs += self.orig.u()[i] * d;
            } else if d < 0.0 {
                lhs += self.orig.l()[i] * d;
            }
        }
        prof.add_vector(2.0 * dy.len() as f64);
        if lhs <= -eps * norm {
            Some(dy)
        } else {
            None
        }
    }

    /// Tests the dual infeasibility certificate on the unscaled `δx`.
    fn check_dual_infeasible(&self, delta_x: &[f64], prof: &mut Profile) -> Option<Vec<f64>> {
        let eps = self.settings.eps_dual_inf;
        let dx: Vec<f64> = delta_x
            .iter()
            .enumerate()
            .map(|(j, &v)| v * self.scaling.d[j])
            .collect();
        let norm = vector::norm_inf(&dx);
        if norm <= 0.0 {
            return None;
        }
        let p = self.orig.p();
        let pdx = p.sym_upper_mul_vec(&dx);
        prof.add_spmv_mac(2 * p.nnz());
        if vector::norm_inf(&pdx) > eps * norm {
            return None;
        }
        if vector::dot(self.orig.q(), &dx) > -eps * norm {
            return None;
        }
        let a = self.orig.a();
        let adx = a.mul_vec(&dx);
        prof.add_spmv_mac(a.nnz());
        prof.add_vector(2.0 * dx.len() as f64);
        for (i, &v) in adx.iter().enumerate() {
            let u_inf = self.orig.u()[i] >= INFTY;
            let l_inf = self.orig.l()[i] <= -INFTY;
            let ok = match (l_inf, u_inf) {
                (true, true) => true,
                (false, true) => v >= -eps * norm,
                (true, false) => v <= eps * norm,
                (false, false) => v.abs() <= eps * norm,
            };
            if !ok {
                return None;
            }
        }
        Some(dx)
    }

    /// Applies the OSQP adaptive-ρ rule if the residual balance warrants it.
    fn maybe_update_rho(&mut self, res: Residuals, prof: &mut Profile) {
        let prim_rel = res.prim / res.prim_norm.max(1e-12);
        let dual_rel = res.dual / res.dual_norm.max(1e-12);
        if prim_rel <= 0.0 || dual_rel <= 0.0 {
            return;
        }
        let rho_new = (self.rho * (prim_rel / dual_rel).sqrt())
            .clamp(self.settings.rho_min, self.settings.rho_max);
        let tol = self.settings.adaptive_rho_tolerance;
        if rho_new > self.rho * tol || rho_new < self.rho / tol {
            self.rho = rho_new;
            let (rho_vec, rho_inv_vec) = build_rho_vec(&self.settings, rho_new, &self.l, &self.u);
            self.rho_vec = rho_vec;
            self.rho_inv_vec = rho_inv_vec;
            if self.kkt.update_rho(&self.rho_vec, prof).is_ok() {
                prof.rho_updates += 1;
            }
        }
    }
}

/// Builds the per-constraint step sizes: equality rows get
/// `ρ · rho_eq_scale`, loose rows get `rho_min`, everything else `ρ`.
fn build_rho_vec(settings: &Settings, rho: f64, l: &[f64], u: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let rho_vec: Vec<f64> = l
        .iter()
        .zip(u)
        .map(|(&lo, &hi)| {
            if lo <= -INFTY && hi >= INFTY {
                settings.rho_min
            } else if lo == hi {
                (rho * settings.rho_eq_scale).clamp(settings.rho_min, settings.rho_max)
            } else {
                rho
            }
        })
        .collect();
    let rho_inv_vec = vector::ew_reci(&rho_vec);
    (rho_vec, rho_inv_vec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mib_sparse::CscMatrix;

    fn box_qp(backend: KktBackend) -> SolveResult {
        // minimize x0^2 + x1^2 - x0 - x1 s.t. 0 <= x <= 0.3
        // Unconstrained optimum (0.5, 0.5); clipped to (0.3, 0.3).
        let p = CscMatrix::from_dense(2, 2, &[2.0, 0.0, 0.0, 2.0]);
        let a = CscMatrix::identity(2);
        let problem =
            Problem::new(p, vec![-1.0, -1.0], a, vec![0.0; 2], vec![0.3; 2]).unwrap();
        let mut settings = Settings::with_backend(backend);
        settings.eps_abs = 1e-6;
        settings.eps_rel = 1e-6;
        Solver::new(problem, settings).unwrap().solve()
    }

    #[test]
    fn solves_box_qp_direct() {
        let r = box_qp(KktBackend::Direct);
        assert_eq!(r.status, Status::Solved);
        assert!((r.x[0] - 0.3).abs() < 1e-4, "x0 = {}", r.x[0]);
        assert!((r.x[1] - 0.3).abs() < 1e-4);
        // Active upper bounds => positive duals y = -(Px+q) = 1 - 2*0.3 = 0.4.
        assert!((r.y[0] - 0.4).abs() < 1e-3, "y0 = {}", r.y[0]);
    }

    #[test]
    fn solves_box_qp_indirect() {
        let r = box_qp(KktBackend::Indirect);
        assert_eq!(r.status, Status::Solved);
        assert!((r.x[0] - 0.3).abs() < 1e-4);
        assert!(r.profile.pcg_iters > 0, "indirect run must use PCG");
    }

    #[test]
    fn equality_constrained_qp() {
        // minimize x0^2 + x1^2 s.t. x0 + x1 = 1 -> x = (0.5, 0.5).
        let p = CscMatrix::from_dense(2, 2, &[2.0, 0.0, 0.0, 2.0]);
        let a = CscMatrix::from_dense(1, 2, &[1.0, 1.0]);
        let problem = Problem::new(p, vec![0.0; 2], a, vec![1.0], vec![1.0]).unwrap();
        let mut settings = Settings::default();
        settings.eps_abs = 1e-7;
        settings.eps_rel = 1e-7;
        let r = Solver::new(problem, settings).unwrap().solve();
        assert_eq!(r.status, Status::Solved);
        assert!((r.x[0] - 0.5).abs() < 1e-5);
        assert!((r.x[1] - 0.5).abs() < 1e-5);
        assert!((r.obj_val - 0.5).abs() < 1e-4);
    }

    #[test]
    fn detects_primal_infeasibility() {
        // x >= 1 and x <= 0 simultaneously.
        let p = CscMatrix::identity(1);
        let a = CscMatrix::from_dense(2, 1, &[1.0, 1.0]);
        let problem =
            Problem::new(p, vec![0.0], a, vec![1.0, -2e30], vec![2e30, 0.0]).unwrap();
        let r = Solver::new(problem, Settings::default()).unwrap().solve();
        assert_eq!(r.status, Status::PrimalInfeasible);
        assert!(!r.certificate.is_empty());
    }

    #[test]
    fn detects_dual_infeasibility() {
        // minimize x (linear, unbounded below on half line): P = 0, q = 1,
        // constraint x <= 0 only.
        let p = CscMatrix::zeros(1, 1);
        let a = CscMatrix::identity(1);
        let problem = Problem::new(p, vec![1.0], a, vec![-2e30], vec![0.0]).unwrap();
        let r = Solver::new(problem, Settings::default()).unwrap().solve();
        assert_eq!(r.status, Status::DualInfeasible);
    }

    #[test]
    fn warm_start_reduces_iterations() {
        let p = CscMatrix::from_dense(2, 2, &[4.0, 1.0, 0.0, 2.0]).upper_triangle().unwrap();
        let a = CscMatrix::from_dense(3, 2, &[1.0, 1.0, 1.0, 0.0, 0.0, 1.0]);
        let problem = Problem::new(
            p,
            vec![1.0, 1.0],
            a,
            vec![1.0, 0.0, 0.0],
            vec![1.0, 0.7, 0.7],
        )
        .unwrap();
        let mut solver = Solver::new(problem, Settings::default()).unwrap();
        let r1 = solver.solve();
        assert_eq!(r1.status, Status::Solved);
        let r2 = solver.solve(); // warm from the solution
        assert!(r2.iterations <= r1.iterations);
    }

    #[test]
    fn update_q_resolves_parametrically() {
        let p = CscMatrix::from_dense(2, 2, &[2.0, 0.0, 0.0, 2.0]);
        let a = CscMatrix::identity(2);
        let problem =
            Problem::new(p, vec![-1.0, -1.0], a, vec![-10.0; 2], vec![10.0; 2]).unwrap();
        let mut settings = Settings::default();
        settings.eps_abs = 1e-7;
        settings.eps_rel = 1e-7;
        let mut solver = Solver::new(problem, settings).unwrap();
        let r1 = solver.solve();
        assert!((r1.x[0] - 0.5).abs() < 1e-4);
        solver.update_q(&[-2.0, -2.0]).unwrap();
        let r2 = solver.solve();
        assert!((r2.x[0] - 1.0).abs() < 1e-4, "x after q update: {}", r2.x[0]);
    }

    #[test]
    fn update_bounds_resolves() {
        let p = CscMatrix::from_dense(1, 1, &[2.0]);
        let a = CscMatrix::identity(1);
        let problem = Problem::new(p, vec![-2.0], a, vec![0.0], vec![0.4]).unwrap();
        let mut settings = Settings::default();
        settings.eps_abs = 1e-7;
        settings.eps_rel = 1e-7;
        let mut solver = Solver::new(problem, settings).unwrap();
        let r1 = solver.solve();
        assert!((r1.x[0] - 0.4).abs() < 1e-4);
        solver.update_bounds(&[0.0], &[10.0]).unwrap();
        let r2 = solver.solve();
        assert!((r2.x[0] - 1.0).abs() < 1e-4, "x after bound update: {}", r2.x[0]);
    }

    #[test]
    fn direct_and_indirect_agree() {
        let p = CscMatrix::from_dense(3, 3, &[3.0, 1.0, 0.0, 0.0, 2.0, 0.5, 0.0, 0.0, 1.0])
            .upper_triangle()
            .unwrap();
        let a = CscMatrix::from_dense(2, 3, &[1.0, 1.0, 1.0, 1.0, -1.0, 0.0]);
        let problem = Problem::new(
            p,
            vec![-1.0, 0.5, 1.0],
            a,
            vec![1.0, -0.3],
            vec![1.0, 0.3],
        )
        .unwrap();
        let tight = |backend| {
            let mut s = Settings::with_backend(backend);
            s.eps_abs = 1e-7;
            s.eps_rel = 1e-7;
            s
        };
        let rd = Solver::new(problem.clone(), tight(KktBackend::Direct)).unwrap().solve();
        let ri = Solver::new(problem, tight(KktBackend::Indirect)).unwrap().solve();
        assert_eq!(rd.status, Status::Solved);
        assert_eq!(ri.status, Status::Solved);
        for (u, v) in rd.x.iter().zip(&ri.x) {
            assert!((u - v).abs() < 1e-4, "{u} vs {v}");
        }
        assert!((rd.obj_val - ri.obj_val).abs() < 1e-5);
    }

    #[test]
    fn profile_accumulates_work() {
        let r = box_qp(KktBackend::Direct);
        assert!(r.profile.ops.total() > 0.0);
        assert!(r.profile.factor_count >= 1);
        assert!(r.profile.ops.col_elim > 0.0);
        assert!(r.profile.ops.mac > 0.0);
        assert_eq!(r.iterations, r.profile.admm_iters.max(r.iterations));
    }

    #[test]
    fn scaling_disabled_still_solves() {
        let p = CscMatrix::from_dense(2, 2, &[2.0, 0.0, 0.0, 2.0]);
        let a = CscMatrix::identity(2);
        let problem =
            Problem::new(p, vec![-1.0, -1.0], a, vec![0.0; 2], vec![1.0; 2]).unwrap();
        let mut settings = Settings::default();
        settings.scaling_iters = 0;
        let r = Solver::new(problem, settings).unwrap().solve();
        assert_eq!(r.status, Status::Solved);
    }
}
