//! Solution polishing.
//!
//! OSQP's optional post-processing step (Stellato et al. §5.2, an
//! extension beyond the paper's evaluated pipeline): after ADMM terminates
//! at moderate accuracy, guess the active set from the signs of the duals,
//! solve the reduced equality-constrained KKT system for that active set,
//! and keep the result if it improves the residuals — often turning a
//! 1e-3-accurate iterate into a near-machine-precision solution for one
//! extra factorization.

use mib_sparse::ldl::LdlSolver;
use mib_sparse::order::Ordering;
use mib_sparse::{vector, CscMatrix, TripletMatrix};

use crate::{Problem, Result, SolveResult};

/// Outcome of a polish attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolishStatus {
    /// The polished solution improved both residuals and was adopted.
    Improved,
    /// The polished solution did not improve the iterate; original kept.
    NoImprovement,
    /// The reduced KKT system could not be factored (degenerate active
    /// set); original kept.
    Failed,
}

/// Polishes a solved result in place.
///
/// Identifies the lower-/upper-active constraints from `y`, forms the
/// equality-constrained QP restricted to them,
///
/// ```text
/// [ P + δI   A_actᵀ ] [ x ]   [ -q      ]
/// [ A_act   -δI     ] [ ν ] = [ b_act   ]
/// ```
///
/// (with tiny regularization `δ` and one step of iterative refinement),
/// and adopts the candidate when it reduces `max(prim_res, dual_res)`.
///
/// # Errors
///
/// Propagates sparse-algebra structural errors only; numerical failure is
/// reported through [`PolishStatus`].
pub fn polish(problem: &Problem, result: &mut SolveResult) -> Result<PolishStatus> {
    let _polish_span = mib_trace::span("polish", mib_trace::Category::Solver);
    let n = problem.num_vars();
    let m = problem.num_constraints();
    let delta = 1e-7;

    // Active-set guess from the duals.
    let mut active: Vec<(usize, f64)> = Vec::new(); // (row, bound value)
    for i in 0..m {
        if result.y[i] < -1e-10 {
            active.push((i, problem.l()[i]));
        } else if result.y[i] > 1e-10 {
            active.push((i, problem.u()[i]));
        }
    }
    let ma = active.len();

    // Reduced KKT (upper triangle): [P + δI, A_actᵀ; ·, -δI].
    let dim = n + ma;
    let mut t = TripletMatrix::new(dim, dim);
    for (i, j, v) in problem.p().iter() {
        t.push(i, j, v)?;
    }
    for j in 0..n {
        t.push(j, j, delta)?;
    }
    // A_act rows as columns n..n+ma of the upper triangle.
    let a_csr = problem.a().to_csr();
    for (k, &(row, _)) in active.iter().enumerate() {
        for (j, v) in a_csr.row(row) {
            t.push(j, n + k, v)?;
        }
        t.push(n + k, n + k, -delta)?;
    }
    let kkt = CscMatrix::from_triplets(&t)?;

    let Ok(ldl) = LdlSolver::new(&kkt, Ordering::MinDegree) else {
        return Ok(PolishStatus::Failed);
    };

    // rhs = [-q; b_act]; one step of iterative refinement against the
    // unregularized system.
    let mut rhs = vec![0.0; dim];
    for (r, &qj) in rhs.iter_mut().zip(problem.q()) {
        *r = -qj;
    }
    for (k, &(_, bound)) in active.iter().enumerate() {
        rhs[n + k] = bound;
    }
    let mut sol = ldl.solve(&rhs);
    // Refinement: r = rhs - K0 sol (K0 without the δ regularization).
    let apply_k0 = |v: &[f64]| -> Vec<f64> {
        let mut out = vec![0.0; dim];
        let px = problem.p().sym_upper_mul_vec(&v[..n]);
        out[..n].copy_from_slice(&px);
        for (k, &(row, _)) in active.iter().enumerate() {
            let mut arow_x = 0.0;
            for (j, aij) in a_csr.row(row) {
                arow_x += aij * v[j];
                out[j] += aij * v[n + k];
            }
            out[n + k] = arow_x;
        }
        out
    };
    for _ in 0..2 {
        let k0s = apply_k0(&sol);
        let resid: Vec<f64> = rhs.iter().zip(&k0s).map(|(&b, &kx)| b - kx).collect();
        let corr = ldl.solve(&resid);
        for (s, c) in sol.iter_mut().zip(&corr) {
            *s += c;
        }
    }

    // Candidate solution.
    let x_new = sol[..n].to_vec();
    let mut y_new = vec![0.0; m];
    for (k, &(row, _)) in active.iter().enumerate() {
        y_new[row] = sol[n + k];
    }
    let z_new = problem.a().mul_vec(&x_new);

    // Compare residuals.
    let residuals = |x: &[f64], y: &[f64], z: &[f64]| -> f64 {
        let ax = problem.a().mul_vec(x);
        let prim = ax
            .iter()
            .zip(problem.l().iter().zip(problem.u()))
            .map(|(&v, (&lo, &hi))| (lo - v).max(v - hi).max(0.0))
            .fold(0.0f64, f64::max)
            .max(vector::norm_inf_diff(&ax, z));
        let mut grad = problem.p().sym_upper_mul_vec(x);
        for (g, &qj) in grad.iter_mut().zip(problem.q()) {
            *g += qj;
        }
        problem.a().tr_mul_vec_acc(y, &mut grad);
        prim.max(vector::norm_inf(&grad))
    };
    let old = residuals(&result.x, &result.y, &result.z);
    let new = residuals(&x_new, &y_new, &z_new);
    if !new.is_finite() || new >= old {
        return Ok(PolishStatus::NoImprovement);
    }
    result.x = x_new;
    result.y = y_new;
    result.z = z_new;
    result.prim_res = new;
    result.dual_res = new;
    result.obj_val = problem.objective(&result.x);
    Ok(PolishStatus::Improved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Settings, Solver, Status};

    fn box_problem() -> Problem {
        let p = CscMatrix::from_dense(2, 2, &[2.0, 0.0, 0.0, 2.0]);
        let a = CscMatrix::identity(2);
        Problem::new(p, vec![-1.0, -1.0], a, vec![0.0; 2], vec![0.3; 2]).unwrap()
    }

    #[test]
    fn polish_sharpens_a_loose_solve() {
        let problem = box_problem();
        // Deliberately loose tolerances.
        let settings = Settings {
            eps_abs: 1e-2,
            eps_rel: 1e-2,
            ..Settings::default()
        };
        let mut result = Solver::new(problem.clone(), settings).unwrap().solve();
        assert_eq!(result.status, Status::Solved);
        let before = (result.x[0] - 0.3).abs();
        let status = polish(&problem, &mut result).unwrap();
        assert_eq!(status, PolishStatus::Improved);
        let after = (result.x[0] - 0.3).abs();
        assert!(after < 1e-9, "polished x = {:?}", result.x);
        assert!(after < before);
        // Polished objective is the true optimum 2*(0.09) - 0.6 = -0.42... :
        // f(0.3,0.3) = 0.09+0.09 -0.3-0.3 = -0.42.
        assert!((result.obj_val + 0.42).abs() < 1e-9);
    }

    #[test]
    fn polish_keeps_already_tight_solutions() {
        let problem = box_problem();
        let settings = Settings {
            eps_abs: 1e-9,
            eps_rel: 1e-9,
            ..Settings::default()
        };
        let mut result = Solver::new(problem.clone(), settings).unwrap().solve();
        let x_before = result.x.clone();
        let status = polish(&problem, &mut result).unwrap();
        // Either it improves further or it keeps the iterate — both x's
        // must solve the problem.
        assert!(matches!(
            status,
            PolishStatus::Improved | PolishStatus::NoImprovement
        ));
        assert!((result.x[0] - x_before[0]).abs() < 1e-6);
    }

    #[test]
    fn polish_on_equality_constrained_problem() {
        // min x0^2 + x1^2 st x0 + x1 = 1.
        let p = CscMatrix::from_dense(2, 2, &[2.0, 0.0, 0.0, 2.0]);
        let a = CscMatrix::from_dense(1, 2, &[1.0, 1.0]);
        let problem = Problem::new(p, vec![0.0; 2], a, vec![1.0], vec![1.0]).unwrap();
        let settings = Settings {
            eps_abs: 1e-3,
            eps_rel: 1e-3,
            ..Settings::default()
        };
        let mut result = Solver::new(problem.clone(), settings).unwrap().solve();
        let status = polish(&problem, &mut result).unwrap();
        assert_eq!(status, PolishStatus::Improved);
        assert!((result.x[0] - 0.5).abs() < 1e-9);
        assert!((result.x[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn polish_benchmark_instance() {
        // A benchmark-shaped problem: polishing should never make things
        // worse and usually sharpens.
        let p = CscMatrix::from_dense(3, 3, &[3.0, 1.0, 0.0, 1.0, 2.0, 0.5, 0.0, 0.5, 1.0])
            .upper_triangle()
            .unwrap();
        let a = CscMatrix::from_dense(2, 3, &[1.0, 1.0, 1.0, 1.0, -1.0, 0.0]);
        let problem =
            Problem::new(p, vec![-1.0, 0.5, 1.0], a, vec![1.0, -0.3], vec![1.0, 0.3]).unwrap();
        let mut result = Solver::new(problem.clone(), Settings::default())
            .unwrap()
            .solve();
        let viol_before = problem.constraint_violation(&result.x);
        let status = polish(&problem, &mut result).unwrap();
        assert_ne!(status, PolishStatus::Failed);
        // Polishing only ever tightens the KKT residuals; in particular the
        // adopted (or kept) iterate must not be less feasible.
        assert!(problem.constraint_violation(&result.x) <= viol_before + 1e-9);
        if status == PolishStatus::Improved {
            assert!(problem.constraint_violation(&result.x) < 1e-8);
        }
    }
}
