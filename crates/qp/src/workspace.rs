//! Preallocated scratch buffers for the allocation-free solve pipeline.
//!
//! Every vector the ADMM iteration, the residual computation and the two
//! KKT backends need is owned by one [`SolveWorkspace`], sized once at
//! [`Solver::new`](crate::Solver::new). The iteration, KKT solve and
//! residual paths then borrow slices from it instead of allocating — the
//! invariant the zero-allocation test in `tests/zero_alloc.rs` enforces.
//!
//! The [`KktSolver`](crate::linsys::KktSolver) trait receives the whole
//! workspace: backends read the right-hand side from [`rhs_x`] /
//! [`rhs_z`], write the solution to [`xtilde`] / [`nu`], and are free to
//! use the scratch fields. Sharing one pool of buffers (rather than
//! per-backend fields) is what lets `DirectKkt` and `IndirectKkt` reuse
//! the same memory and keeps buffer sizing in a single place.
//!
//! [`rhs_x`]: SolveWorkspace::rhs_x
//! [`rhs_z`]: SolveWorkspace::rhs_z
//! [`xtilde`]: SolveWorkspace::xtilde
//! [`nu`]: SolveWorkspace::nu

/// Scratch buffers for one solver instance (`n` variables, `m`
/// constraints). All buffers are allocated up front; no method of this
/// type allocates after construction.
#[derive(Debug, Clone)]
pub struct SolveWorkspace {
    // --- KKT exchange buffers (iteration ⇄ backend) -----------------
    /// KKT right-hand side, first block (length `n`). Input to
    /// [`KktSolver::solve`](crate::linsys::KktSolver::solve).
    pub rhs_x: Vec<f64>,
    /// KKT right-hand side, second block (length `m`).
    pub rhs_z: Vec<f64>,
    /// KKT solution `x̃` (length `n`). Output of the backend.
    pub xtilde: Vec<f64>,
    /// KKT solution `ν` (length `m`). Output of the backend.
    pub nu: Vec<f64>,

    // --- ADMM iteration scratch -------------------------------------
    /// `z̃ = z + ρ⁻¹(ν − y)` (length `m`).
    pub ztilde: Vec<f64>,
    /// Relaxed constraint iterate `α z̃ + (1−α) z` (length `m`).
    pub z_relaxed: Vec<f64>,
    /// Per-iteration primal step `δx` (length `n`), input to the dual
    /// infeasibility certificate.
    pub delta_x: Vec<f64>,
    /// Per-iteration dual step `δy` (length `m`), input to the primal
    /// infeasibility certificate.
    pub delta_y: Vec<f64>,

    // --- Residual / termination scratch ------------------------------
    /// Unscaled primal iterate (length `n`).
    pub x_us: Vec<f64>,
    /// Unscaled dual iterate (length `m`).
    pub y_us: Vec<f64>,
    /// Unscaled constraint iterate (length `m`).
    pub z_us: Vec<f64>,
    /// `A x` in the original space (length `m`).
    pub ax: Vec<f64>,
    /// `P x` in the original space (length `n`).
    pub px: Vec<f64>,
    /// `Aᵀ y` in the original space (length `n`).
    pub aty: Vec<f64>,
    /// Unscaled candidate dual-infeasibility certificate `δx` (length `n`).
    pub cert_x: Vec<f64>,
    /// Unscaled candidate primal-infeasibility certificate `δy` (length `m`).
    pub cert_y: Vec<f64>,

    // --- Direct backend scratch --------------------------------------
    /// Stacked KKT right-hand side (length `n + m`).
    pub kkt_rhs: Vec<f64>,
    /// Permuted intermediate of the LDLᵀ solve (length `n + m`).
    pub kkt_work: Vec<f64>,
    /// Stacked KKT solution (length `n + m`).
    pub kkt_sol: Vec<f64>,

    // --- Indirect (PCG) backend scratch ------------------------------
    /// PCG residual (length `n`).
    pub r: Vec<f64>,
    /// PCG search direction (length `n`).
    pub pdir: Vec<f64>,
    /// `S · p` matrix–vector product (length `n`).
    pub sp: Vec<f64>,
    /// Preconditioned residual (length `n`).
    pub dvec: Vec<f64>,
    /// `A · v` intermediate of the reduced operator (length `m`).
    pub az: Vec<f64>,
    /// Reduced right-hand side `rhs_x + Aᵀ(ρ ∘ rhs_z)` (length `n`).
    pub b_red: Vec<f64>,
}

impl SolveWorkspace {
    /// Allocates all buffers for a problem with `n` variables and `m`
    /// constraints.
    pub fn new(n: usize, m: usize) -> Self {
        SolveWorkspace {
            rhs_x: vec![0.0; n],
            rhs_z: vec![0.0; m],
            xtilde: vec![0.0; n],
            nu: vec![0.0; m],
            ztilde: vec![0.0; m],
            z_relaxed: vec![0.0; m],
            delta_x: vec![0.0; n],
            delta_y: vec![0.0; m],
            x_us: vec![0.0; n],
            y_us: vec![0.0; m],
            z_us: vec![0.0; m],
            ax: vec![0.0; m],
            px: vec![0.0; n],
            aty: vec![0.0; n],
            cert_x: vec![0.0; n],
            cert_y: vec![0.0; m],
            kkt_rhs: vec![0.0; n + m],
            kkt_work: vec![0.0; n + m],
            kkt_sol: vec![0.0; n + m],
            r: vec![0.0; n],
            pdir: vec![0.0; n],
            sp: vec![0.0; n],
            dvec: vec![0.0; n],
            az: vec![0.0; m],
            b_red: vec![0.0; n],
        }
    }

    /// Number of primal variables the workspace is sized for.
    pub fn num_vars(&self) -> usize {
        self.rhs_x.len()
    }

    /// Number of constraints the workspace is sized for.
    pub fn num_constraints(&self) -> usize {
        self.rhs_z.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_consistent() {
        let ws = SolveWorkspace::new(5, 3);
        assert_eq!(ws.num_vars(), 5);
        assert_eq!(ws.num_constraints(), 3);
        assert_eq!(ws.kkt_rhs.len(), 8);
        assert_eq!(ws.az.len(), 3);
        assert_eq!(ws.b_red.len(), 5);
    }
}
