//! Structured solver telemetry recovered from an `mib-trace` recording.
//!
//! The solver emits per-iteration [`Event::Iteration`] records at every
//! termination-check boundary, [`Event::RhoUpdate`] records for accepted
//! adaptive-ρ rescalings, and phase spans (`scaling`, `symbolic`,
//! `factor`, `solve`, `admm_loop`, `refactor`, `polish`). [`SolveTrace`]
//! reassembles those raw records into the OSQP-style iteration log:
//!
//! ```
//! use mib_qp::{telemetry::SolveTrace, Problem, Settings, Solver};
//! use mib_sparse::CscMatrix;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let p = CscMatrix::from_dense(2, 2, &[4.0, 1.0, 0.0, 2.0]).upper_triangle()?;
//! let a = CscMatrix::from_dense(3, 2, &[1.0, 1.0, 1.0, 0.0, 0.0, 1.0]);
//! let problem = Problem::new(p, vec![1.0, 1.0], a,
//!     vec![1.0, 0.0, 0.0], vec![1.0, 0.7, 0.7])?;
//! mib_trace::enable();
//! let result = Solver::new(problem, Settings::default())?.solve();
//! mib_trace::disable();
//! let telemetry = SolveTrace::collect(&mib_trace::take());
//! let last = telemetry.last_iteration().expect("solver checked at least once");
//! assert_eq!(last.prim_res.to_bits(), result.prim_res.to_bits());
//! # Ok(())
//! # }
//! ```
//!
//! [`Event::Iteration`]: mib_trace::Event::Iteration
//! [`Event::RhoUpdate`]: mib_trace::Event::RhoUpdate

use mib_trace::{Category, Event, Trace};

/// One termination-check snapshot of the solver iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationRecord {
    /// Algorithm that produced the record (`"admm"`, `"pdqp"`).
    pub algo: &'static str,
    /// 1-based solver iteration index of the check.
    pub iter: u32,
    /// Unscaled primal residual (bitwise the value a terminating check
    /// reports in [`SolveResult::prim_res`](crate::SolveResult)).
    pub prim_res: f64,
    /// Unscaled dual residual.
    pub dual_res: f64,
    /// Base step size in effect at the check (`ρ` for ADMM, `τ` for PDQP).
    pub rho: f64,
    /// PCG iterations since the previous check (0 on the direct backend
    /// and for PDQP).
    pub pcg_iters: u32,
    /// Nanoseconds spent in the KKT backend since the previous check.
    pub kkt_ns: u64,
}

/// One accepted adaptive-ρ rescaling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RhoUpdateRecord {
    /// Iteration at which the update was applied.
    pub iter: u32,
    /// `ρ` before.
    pub rho_old: f64,
    /// `ρ` after.
    pub rho_new: f64,
}

/// One completed solver/KKT phase span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseRecord {
    /// Span name (`"scaling"`, `"symbolic"`, `"factor"`, `"solve"`,
    /// `"admm_loop"`, `"refactor"`, `"polish"`, ...).
    pub name: &'static str,
    /// Span category.
    pub category: Category,
    /// Wall time between the span's begin and end records.
    pub duration_ns: u64,
}

/// A solver-centric view of a drained [`Trace`]: the per-iteration log,
/// the ρ history, and the completed phase spans, in recording order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolveTrace {
    /// Per-termination-check iteration records.
    pub iterations: Vec<IterationRecord>,
    /// Accepted adaptive-ρ updates.
    pub rho_updates: Vec<RhoUpdateRecord>,
    /// Completed [`Category::Solver`]/[`Category::Kkt`] spans.
    pub phases: Vec<PhaseRecord>,
}

impl SolveTrace {
    /// Extracts the solver telemetry from a drained trace (all threads).
    /// Spans are matched per thread; a span left open when the trace was
    /// drained is omitted.
    pub fn collect(trace: &Trace) -> SolveTrace {
        let mut out = SolveTrace::default();
        for thread in &trace.threads {
            // (span id, name, category, begin timestamp)
            let mut open: Vec<(u64, &'static str, Category, u64)> = Vec::new();
            for record in &thread.records {
                match record.event {
                    Event::Iteration {
                        algo,
                        iter,
                        prim_res,
                        dual_res,
                        rho,
                        pcg_iters,
                        kkt_ns,
                    } => out.iterations.push(IterationRecord {
                        algo,
                        iter,
                        prim_res,
                        dual_res,
                        rho,
                        pcg_iters,
                        kkt_ns,
                    }),
                    Event::RhoUpdate {
                        iter,
                        rho_old,
                        rho_new,
                    } => out.rho_updates.push(RhoUpdateRecord {
                        iter,
                        rho_old,
                        rho_new,
                    }),
                    Event::Begin { name, cat }
                        if matches!(cat, Category::Solver | Category::Kkt) =>
                    {
                        open.push((record.span, name, cat, record.ts_ns));
                    }
                    Event::End { .. } => {
                        if let Some(pos) = open.iter().rposition(|&(id, ..)| id == record.span) {
                            let (_, name, category, begin_ts) = open.remove(pos);
                            out.phases.push(PhaseRecord {
                                name,
                                category,
                                duration_ns: record.ts_ns.saturating_sub(begin_ts),
                            });
                        }
                    }
                    _ => {}
                }
            }
        }
        out
    }

    /// The last iteration record — residuals of a finished solve's final
    /// termination check.
    pub fn last_iteration(&self) -> Option<&IterationRecord> {
        self.iterations.last()
    }

    /// Total PCG iterations across all recorded checks.
    pub fn total_pcg_iters(&self) -> u64 {
        self.iterations.iter().map(|r| u64::from(r.pcg_iters)).sum()
    }

    /// Total KKT backend time across all recorded checks.
    pub fn total_kkt_ns(&self) -> u64 {
        self.iterations.iter().map(|r| r.kkt_ns).sum()
    }

    /// Completed phases with the given name, in recording order.
    pub fn phases_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a PhaseRecord> {
        self.phases.iter().filter(move |p| p.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mib_trace::{Record, ThreadTrace};

    #[test]
    fn collect_reassembles_records() {
        let records = vec![
            Record {
                ts_ns: 10,
                span: 1,
                event: Event::Begin {
                    name: "solve",
                    cat: Category::Solver,
                },
            },
            Record {
                ts_ns: 12,
                span: 2,
                event: Event::Begin {
                    name: "admm_loop",
                    cat: Category::Solver,
                },
            },
            Record {
                ts_ns: 20,
                span: 2,
                event: Event::Iteration {
                    algo: "admm",
                    iter: 25,
                    prim_res: 0.5,
                    dual_res: 0.25,
                    rho: 0.1,
                    pcg_iters: 9,
                    kkt_ns: 700,
                },
            },
            Record {
                ts_ns: 21,
                span: 2,
                event: Event::RhoUpdate {
                    iter: 25,
                    rho_old: 0.1,
                    rho_new: 0.9,
                },
            },
            Record {
                ts_ns: 30,
                span: 2,
                event: Event::Iteration {
                    algo: "admm",
                    iter: 50,
                    prim_res: 5e-4,
                    dual_res: 2e-4,
                    rho: 0.9,
                    pcg_iters: 4,
                    kkt_ns: 300,
                },
            },
            Record {
                ts_ns: 40,
                span: 2,
                event: Event::End {
                    name: "admm_loop",
                    cat: Category::Solver,
                },
            },
            // `solve` left open: the trace was drained mid-span.
        ];
        let trace = Trace {
            threads: vec![ThreadTrace {
                tid: 1,
                name: "main".into(),
                records,
                dropped: 0,
            }],
        };
        let t = SolveTrace::collect(&trace);
        assert_eq!(t.iterations.len(), 2);
        assert_eq!(t.iterations[0].algo, "admm");
        assert_eq!(t.last_iteration().unwrap().iter, 50);
        assert_eq!(t.total_pcg_iters(), 13);
        assert_eq!(t.total_kkt_ns(), 1000);
        assert_eq!(t.rho_updates.len(), 1);
        assert_eq!(t.rho_updates[0].rho_new, 0.9);
        assert_eq!(t.phases.len(), 1);
        assert_eq!(t.phases[0].name, "admm_loop");
        assert_eq!(t.phases[0].duration_ns, 28);
        assert_eq!(t.phases_named("solve").count(), 0);
    }

    #[test]
    fn empty_trace_yields_empty_telemetry() {
        let t = SolveTrace::collect(&Trace::default());
        assert!(t.iterations.is_empty());
        assert!(t.last_iteration().is_none());
        assert_eq!(t.total_pcg_iters(), 0);
    }
}
