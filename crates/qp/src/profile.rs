//! FLOP accounting in terms of the paper's four primitive operations.
//!
//! Section II.E of the paper breaks the solver's core operation set into
//! four primitives and profiles 100 benchmark problems with them (Figure 3):
//!
//! * **MAC** — multiplication and accumulation (row-oriented products:
//!   `A·x`, symmetric `P·x`, the `Lᵀ` triangular solve),
//! * **permute** — vector permutation across register files (applying the
//!   fill-reducing permutation before/after the KKT solve),
//! * **column elimination** — column-oriented updates (the numeric LDLᵀ
//!   factorization, the `L` triangular solve, and `Aᵀ·y` products),
//! * **element-wise** — products, sums, reciprocals, projections, norms.
//!
//! The solver accumulates these counts exactly as it runs, so the Fig. 3
//! harness reads them off a finished solve.

use std::fmt;
use std::ops::{Add, AddAssign};

use mib_verify::Certificate;

/// FLOP totals attributed to the four primitive operations.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OpCounts {
    /// Multiply–accumulate flops (row-oriented).
    pub mac: f64,
    /// Vector elements moved across register files by permutations.
    pub permute: f64,
    /// Column-elimination flops (column-oriented updates).
    pub col_elim: f64,
    /// Element-wise flops (products, additions, comparisons, reciprocals).
    pub elementwise: f64,
}

impl OpCounts {
    /// Sum over all four primitives.
    pub fn total(&self) -> f64 {
        self.mac + self.permute + self.col_elim + self.elementwise
    }

    /// Fractional breakdown `(mac, permute, col_elim, elementwise)`;
    /// all zeros when the total is zero.
    pub fn fractions(&self) -> [f64; 4] {
        let t = self.total();
        if t == 0.0 {
            return [0.0; 4];
        }
        [
            self.mac / t,
            self.permute / t,
            self.col_elim / t,
            self.elementwise / t,
        ]
    }
}

impl Add for OpCounts {
    type Output = OpCounts;

    fn add(self, rhs: OpCounts) -> OpCounts {
        OpCounts {
            mac: self.mac + rhs.mac,
            permute: self.permute + rhs.permute,
            col_elim: self.col_elim + rhs.col_elim,
            elementwise: self.elementwise + rhs.elementwise,
        }
    }
}

impl AddAssign for OpCounts {
    fn add_assign(&mut self, rhs: OpCounts) {
        *self = *self + rhs;
    }
}

/// Full profile of one solver run: primitive totals plus a per-phase
/// breakdown and iteration statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Profile {
    /// FLOPs per primitive over the whole solve.
    pub ops: OpCounts,
    /// FLOPs spent in numeric LDLᵀ factorization (direct variant only).
    pub factor_flops: f64,
    /// FLOPs spent in triangular solves (direct variant only).
    pub trisolve_flops: f64,
    /// FLOPs spent in sparse matrix–vector products.
    pub spmv_flops: f64,
    /// FLOPs spent in dense vector operations.
    pub vector_flops: f64,
    /// Number of numeric (re)factorizations performed.
    pub factor_count: usize,
    /// Total PCG iterations across all KKT solves (indirect variant only).
    pub pcg_iters: usize,
    /// ADMM iterations executed.
    pub admm_iters: usize,
    /// Number of adaptive `ρ` updates applied.
    pub rho_updates: usize,
}

impl Profile {
    /// Records factorization work (column elimination).
    pub fn add_factor(&mut self, flops: f64) {
        self.ops.col_elim += flops;
        self.factor_flops += flops;
        self.factor_count += 1;
    }

    /// Records a triangular-solve pass: the `L` solve is column elimination,
    /// the `Lᵀ` solve is MAC, the `D` solve is element-wise, and the
    /// permutations move `2(n+m)` elements.
    pub fn add_triangular_solve(&mut self, l_nnz: usize, dim: usize) {
        let l = 2.0 * l_nnz as f64;
        self.ops.col_elim += l;
        self.ops.mac += l;
        self.ops.elementwise += dim as f64;
        self.ops.permute += 2.0 * dim as f64;
        self.trisolve_flops += 2.0 * l + dim as f64;
    }

    /// Records a row-oriented product (MAC): `flops = 2 * nnz`.
    pub fn add_spmv_mac(&mut self, nnz: usize) {
        let f = 2.0 * nnz as f64;
        self.ops.mac += f;
        self.spmv_flops += f;
    }

    /// Records a column-oriented product (`Aᵀ·y`, column elimination).
    pub fn add_spmv_col_elim(&mut self, nnz: usize) {
        let f = 2.0 * nnz as f64;
        self.ops.col_elim += f;
        self.spmv_flops += f;
    }

    /// Records `flops` of element-wise vector work.
    pub fn add_vector(&mut self, flops: f64) {
        self.ops.elementwise += flops;
        self.vector_flops += flops;
    }
}

/// Static-verification certification of the compiled programs backing a
/// solve: one [`Certificate`] per program (load, setup, iteration, PCG,
/// check), as produced by the `mib-verify` pass over the compiler's
/// schedules.
///
/// Kept separate from [`Profile`] (which is `Copy` and purely numeric):
/// certification is per-program structured data that only exists when a
/// solve was lowered for the MIB machine.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Certification {
    /// One certificate per verified program.
    pub certificates: Vec<Certificate>,
}

impl Certification {
    /// Whether every verified program was certified (and at least one
    /// program was actually verified).
    pub fn is_certified(&self) -> bool {
        !self.certificates.is_empty() && self.certificates.iter().all(Certificate::is_certified)
    }

    /// Total error-severity findings across all programs.
    pub fn errors(&self) -> usize {
        self.certificates.iter().map(|c| c.errors).sum()
    }

    /// Total warning-severity findings across all programs.
    pub fn warnings(&self) -> usize {
        self.certificates.iter().map(|c| c.warnings).sum()
    }

    /// Peak live register values over all programs and banks.
    pub fn peak_live(&self) -> usize {
        self.certificates
            .iter()
            .map(|c| c.peak_live)
            .max()
            .unwrap_or(0)
    }
}

impl fmt::Display for Certification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.certificates.is_empty() {
            return write!(f, "no programs verified");
        }
        for (i, c) in self.certificates.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_fractions() {
        let c = OpCounts {
            mac: 3.0,
            permute: 1.0,
            col_elim: 4.0,
            elementwise: 2.0,
        };
        assert_eq!(c.total(), 10.0);
        assert_eq!(c.fractions(), [0.3, 0.1, 0.4, 0.2]);
        assert_eq!(OpCounts::default().fractions(), [0.0; 4]);
    }

    #[test]
    fn zero_total_fractions_produce_no_nans() {
        // A freshly constructed profile (or a solve that did no work) must
        // report all-zero fractions, never NaN — reports divide by total().
        let zero = OpCounts::default();
        assert_eq!(zero.total(), 0.0);
        let fr = zero.fractions();
        assert_eq!(fr, [0.0; 4]);
        assert!(fr.iter().all(|f| f.is_finite()), "fractions must be finite");
        // Negative-zero components must behave identically.
        let negz = OpCounts {
            mac: -0.0,
            permute: -0.0,
            col_elim: -0.0,
            elementwise: -0.0,
        };
        let fr = negz.fractions();
        assert!(fr.iter().all(|f| !f.is_nan()), "got NaN from -0.0 totals");
        assert_eq!(fr, [0.0; 4]);
        // And the full-profile path that reports consume.
        let p = Profile::default();
        assert!(p.ops.fractions().iter().all(|f| f.is_finite()));
    }

    #[test]
    fn add_accumulates() {
        let a = OpCounts {
            mac: 1.0,
            ..OpCounts::default()
        };
        let b = OpCounts {
            col_elim: 2.0,
            ..OpCounts::default()
        };
        let mut c = a;
        c += b;
        assert_eq!(c.mac, 1.0);
        assert_eq!(c.col_elim, 2.0);
    }

    #[test]
    fn certification_aggregates_certificates() {
        let mut cert = Certification::default();
        assert!(!cert.is_certified(), "empty certification proves nothing");
        cert.certificates.push(Certificate {
            program: "load".into(),
            slots: 10,
            errors: 0,
            warnings: 1,
            infos: 0,
            peak_live: 5,
            bank_depth: 64,
            predicted_cycles: Some(15),
        });
        cert.certificates.push(Certificate {
            program: "iteration".into(),
            slots: 40,
            errors: 0,
            warnings: 0,
            infos: 1,
            peak_live: 9,
            bank_depth: 64,
            predicted_cycles: None,
        });
        assert!(cert.is_certified());
        assert_eq!(cert.errors(), 0);
        assert_eq!(cert.warnings(), 1);
        assert_eq!(cert.peak_live(), 9);
        assert!(cert.to_string().contains("iteration"));
        cert.certificates[0].errors = 2;
        assert!(!cert.is_certified());
        assert_eq!(cert.errors(), 2);
    }

    #[test]
    fn profile_phase_attribution() {
        let mut p = Profile::default();
        p.add_factor(100.0);
        assert_eq!(p.ops.col_elim, 100.0);
        assert_eq!(p.factor_count, 1);
        p.add_triangular_solve(10, 4);
        // L solve: 20 col_elim; Lt solve: 20 mac; D: 4 ew; permute 8.
        assert_eq!(p.ops.col_elim, 120.0);
        assert_eq!(p.ops.mac, 20.0);
        assert_eq!(p.ops.elementwise, 4.0);
        assert_eq!(p.ops.permute, 8.0);
        p.add_spmv_mac(7);
        assert_eq!(p.ops.mac, 34.0);
        p.add_spmv_col_elim(7);
        assert_eq!(p.ops.col_elim, 134.0);
        p.add_vector(5.0);
        assert_eq!(p.ops.elementwise, 9.0);
        assert_eq!(p.spmv_flops, 28.0);
    }
}
