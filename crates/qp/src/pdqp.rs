//! The restarted primal-dual ("PDQP") backend, behind [`QpBackend`].
//!
//! A restarted, averaged primal-dual hybrid gradient method for
//! `min ½xᵀPx + qᵀx  s.t.  l ≤ Ax ≤ u`, after Lu & Yang's first-order QP
//! solver. Each iteration is three sparse mat-vecs on the existing
//! `mib-sparse` `_into` kernels — **no factorization anywhere**:
//!
//! ```text
//! xᵏ⁺¹ = xᵏ − τ (P xᵏ + q + Aᵀ yᵏ)                 (primal gradient step)
//! w    = yᵏ + σ A (2 xᵏ⁺¹ − xᵏ)                    (dual extrapolated step)
//! yᵏ⁺¹ = w − σ Π_{[l,u]}(w / σ)                    (Moreau decomposition)
//! ```
//!
//! with Condat–Vũ step sizes `σ = ω/‖A‖`, `τ = 0.99/(‖P‖ + ω‖A‖)`
//! (`ω = 1`), the operator norms estimated once at setup by deterministic
//! power iteration. Iterates are averaged within a restart epoch; at every
//! termination-check boundary the better of {current, average} becomes the
//! restart candidate, and the method restarts from it when its normalized
//! KKT score has decayed by [`Settings::pdqp_restart_beta`] — the restart
//! scheme that gives the method its practical linear convergence.
//!
//! Step sizes depend only on `P` and `A`, never on `q`/`l`/`u`, so
//! parametric updates keep them fixed and `reset` is a pure function of
//! the current problem data — the pooled-solver bitwise-parity invariant
//! holds exactly as it does for ADMM. Infeasibility certificates are not
//! produced: on primal/dual infeasible inputs the method exits with
//! [`Status::MaxIterations`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use mib_sparse::{vector, CscMatrix};
use mib_trace::{Category as TraceCat, Event as TraceEvent};

use crate::backend::{Algorithm, QpBackend};
use crate::profile::Profile;
use crate::scaling::{ruiz_equilibrate, Scaling};
use crate::workspace::SolveWorkspace;
use crate::{Problem, QpError, Result, Settings, SolveResult, Status, INFTY};

/// Power-iteration budget for the setup-time operator-norm estimates.
const POWER_ITERS: usize = 64;
/// Relative convergence tolerance for the power iteration.
const POWER_TOL: f64 = 1e-9;
/// Safety margin on the norm estimates (power iteration converges from
/// below; overestimating a norm only shrinks the steps slightly).
const NORM_SAFETY: f64 = 1.05;

/// The restarted primal-dual first-order QP solver.
#[derive(Debug, Clone)]
pub struct PdqpSolver {
    settings: Settings,
    /// Original (unscaled) problem, used for residuals and the objective.
    orig: Problem,
    // Scaled data. Unlike ADMM there is no KKT backend holding the scaled
    // matrices, so the solver keeps them itself.
    p: CscMatrix,
    a: CscMatrix,
    q: Vec<f64>,
    l: Vec<f64>,
    u: Vec<f64>,
    scaling: Scaling,
    /// Primal step size `τ` (fixed; a pure function of `P` and `A`).
    tau: f64,
    /// Dual step size `σ` (fixed).
    sigma: f64,
    // Scaled iterates and restart-epoch averaging state.
    x: Vec<f64>,
    y: Vec<f64>,
    x_sum: Vec<f64>,
    y_sum: Vec<f64>,
    x_avg: Vec<f64>,
    y_avg: Vec<f64>,
    /// Iterations accumulated into the sums since the last restart.
    inner: usize,
    /// Normalized KKT score at the last restart (∞ before the first).
    last_restart_score: f64,
    ws: SolveWorkspace,
    profile: Profile,
    cancel: Option<Arc<AtomicBool>>,
    deadline: Option<Instant>,
}

/// Residual snapshot (same formulas as the ADMM backend, with
/// `z := Π_{[l,u]}(Ax)`).
#[derive(Debug, Clone, Copy)]
struct Residuals {
    prim: f64,
    dual: f64,
    prim_norm: f64,
    dual_norm: f64,
}

impl PdqpSolver {
    /// Sets up the solver: validates settings, equilibrates the problem
    /// and estimates the operator norms that fix the step sizes.
    ///
    /// # Errors
    ///
    /// Returns setting/problem validation errors.
    pub fn new(problem: Problem, settings: Settings) -> Result<Self> {
        settings.validate()?;
        let n = problem.num_vars();
        let m = problem.num_constraints();

        // Scale a copy of the data (identical to the ADMM setup path).
        let mut p = problem.p().clone();
        let mut q = problem.q().to_vec();
        let mut a = problem.a().clone();
        let mut l = problem.l().to_vec();
        let mut u = problem.u().to_vec();
        let tracing = mib_trace::enabled();
        let scaling = if settings.scaling_iters > 0 {
            let _scaling_span = mib_trace::span_if(tracing, "scaling", TraceCat::Solver);
            ruiz_equilibrate(
                &mut p,
                &mut q,
                &mut a,
                &mut l,
                &mut u,
                settings.scaling_iters,
            )
        } else {
            Scaling::identity(n, m)
        };

        let setup_span = mib_trace::span_if(tracing, "pdqp_setup", TraceCat::Solver);
        let norm_a = (operator_norm_a(&a, n, m) * NORM_SAFETY).max(1e-8);
        let norm_p = operator_norm_p(&p, n) * NORM_SAFETY;
        drop(setup_span);
        let omega = 1.0;
        let sigma = omega / norm_a;
        let tau = 0.99 / (norm_p + omega * norm_a);

        Ok(PdqpSolver {
            settings,
            orig: problem,
            p,
            a,
            q,
            l,
            u,
            scaling,
            tau,
            sigma,
            x: vec![0.0; n],
            y: vec![0.0; m],
            x_sum: vec![0.0; n],
            y_sum: vec![0.0; m],
            x_avg: vec![0.0; n],
            y_avg: vec![0.0; m],
            inner: 0,
            last_restart_score: f64::INFINITY,
            ws: SolveWorkspace::new(n, m),
            profile: Profile::default(),
            cancel: None,
            deadline: None,
        })
    }

    /// The fixed primal step size `τ`.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// The fixed dual step size `σ`.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Warm-starts the iterates from an (unscaled) primal/dual guess and
    /// opens a fresh restart epoch.
    ///
    /// # Panics
    ///
    /// Panics if the lengths do not match the problem dimensions.
    pub fn warm_start(&mut self, x: &[f64], y: &[f64]) {
        assert_eq!(x.len(), self.x.len(), "warm start x has wrong length");
        assert_eq!(y.len(), self.y.len(), "warm start y has wrong length");
        for (i, xs) in self.x.iter_mut().enumerate() {
            *xs = x[i] * self.scaling.dinv[i];
        }
        for (i, ys) in self.y.iter_mut().enumerate() {
            *ys = y[i] * self.scaling.c * self.scaling.einv[i];
        }
        self.x_sum.fill(0.0);
        self.y_sum.fill(0.0);
        self.inner = 0;
        self.last_restart_score = f64::INFINITY;
    }

    /// Resets the solver to its post-setup state: zero iterates, empty
    /// averaging sums, no restart memory. The step sizes are a pure
    /// function of `P`/`A` and never change, so after `reset` a solve
    /// reproduces the very first solve of a freshly constructed solver
    /// bitwise — the same pooled-solver invariant the ADMM backend keeps.
    pub fn reset(&mut self) {
        self.x.fill(0.0);
        self.y.fill(0.0);
        self.x_sum.fill(0.0);
        self.y_sum.fill(0.0);
        self.x_avg.fill(0.0);
        self.y_avg.fill(0.0);
        self.inner = 0;
        self.last_restart_score = f64::INFINITY;
    }

    /// Replaces the linear cost `q` (same dimensions), preserving scaling.
    ///
    /// # Errors
    ///
    /// Returns [`QpError::InvalidProblem`] on length mismatch or non-finite
    /// entries.
    pub fn update_q(&mut self, q: &[f64]) -> Result<()> {
        if q.len() != self.q.len() {
            return Err(QpError::InvalidProblem(format!(
                "q has length {} but problem has {} variables",
                q.len(),
                self.q.len()
            )));
        }
        if q.iter().any(|v| !v.is_finite()) {
            return Err(QpError::InvalidProblem("q entries must be finite".into()));
        }
        let (p0, _q0, a0, l0, u0) = self.orig.clone().into_parts();
        self.orig = Problem::new(p0, q.to_vec(), a0, l0, u0)?;
        for (j, qs) in self.q.iter_mut().enumerate() {
            *qs = q[j] * self.scaling.c * self.scaling.d[j];
        }
        Ok(())
    }

    /// Replaces the bounds `l`, `u` (same dimensions), preserving scaling.
    /// The step sizes do not depend on the bounds and stay fixed.
    ///
    /// # Errors
    ///
    /// Returns [`QpError::InvalidProblem`] if any `l[i] > u[i]` or lengths
    /// mismatch.
    pub fn update_bounds(&mut self, l: &[f64], u: &[f64]) -> Result<()> {
        if l.len() != self.l.len() || u.len() != self.u.len() {
            return Err(QpError::InvalidProblem("bound length mismatch".into()));
        }
        let (p0, q0, a0, _l0, _u0) = self.orig.clone().into_parts();
        self.orig = Problem::new(p0, q0, a0, l.to_vec(), u.to_vec())?;
        for i in 0..l.len() {
            self.l[i] = if l[i].abs() < INFTY {
                l[i] * self.scaling.e[i]
            } else {
                l[i]
            };
            self.u[i] = if u[i].abs() < INFTY {
                u[i] * self.scaling.e[i]
            } else {
                u[i]
            };
        }
        Ok(())
    }

    /// Runs the restarted PDHG iteration, writing the outcome into an
    /// existing [`SolveResult`]. Allocation-free when `result` comes from
    /// a previous solve of the same dimensions.
    pub fn solve_into(&mut self, result: &mut SolveResult) {
        let start = Instant::now();
        let tracing = mib_trace::enabled();
        // Opt-in per-segment kernel spans, hoisted like `tracing`.
        let ktrace = mib_trace::kernel_spans();
        // Per-iteration kernel detail is sampled at the kernel stride;
        // the default stride of 1 records every iteration exactly.
        let kstride = usize::try_from(mib_trace::kernel_span_stride()).unwrap_or(usize::MAX);
        let _solve_span = mib_trace::span_if(tracing, "solve", TraceCat::Solver);
        let mut prof = self.profile;
        prof.admm_iters = 0;

        let n = self.x.len();
        let m = self.y.len();
        let max_iter = self.settings.max_iter;
        let check_every = self.settings.check_termination;
        let beta = self.settings.pdqp_restart_beta;

        result.x.resize(n, 0.0);
        result.y.resize(m, 0.0);
        result.z.resize(m, 0.0);
        result.certificate.clear();

        let deadline = match (self.settings.time_limit.map(|d| start + d), self.deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let check_interval = self.settings.check_interval;

        let mut status = Status::MaxIterations;
        let mut final_res: Option<Residuals> = None;
        let mut iterations = 0usize;

        if let Some(s) = self.interruption(deadline) {
            status = s;
        }
        let loop_span = mib_trace::span_if(tracing, "pdqp_loop", TraceCat::Solver);
        for k in 1..=max_iter {
            if status != Status::MaxIterations {
                break;
            }
            iterations = k;
            self.step(ktrace && (k == 1 || k % kstride == 0), &mut prof);

            let checking = k % check_every == 0 || k == max_iter;
            if checking {
                // Average candidate for this restart epoch.
                let t = self.inner as f64;
                vector::div_scale_into(&mut self.x_avg, &self.x_sum, t);
                vector::div_scale_into(&mut self.y_avg, &self.y_sum, t);
                let res_cur = self.residuals_at(false, &mut prof);
                let res_avg = self.residuals_at(true, &mut prof);
                let (use_avg, res) = if self.score(&res_avg) < self.score(&res_cur) {
                    (true, res_avg)
                } else {
                    (false, res_cur)
                };
                final_res = Some(res);
                if tracing {
                    // As in the ADMM backend, `res` is exactly what a
                    // terminating check writes into the result, so the last
                    // Iteration event matches the returned residuals bitwise.
                    mib_trace::record_if(
                        true,
                        TraceEvent::Iteration {
                            algo: Algorithm::Pdqp.name(),
                            iter: u32::try_from(k).unwrap_or(u32::MAX),
                            prim_res: res.prim,
                            dual_res: res.dual,
                            rho: self.tau,
                            pcg_iters: 0,
                            kkt_ns: 0,
                        },
                    );
                }
                let sc = self.score(&res);
                if sc < 1.0 {
                    if use_avg {
                        self.x.copy_from_slice(&self.x_avg);
                        self.y.copy_from_slice(&self.y_avg);
                    }
                    status = Status::Solved;
                    break;
                }
                // Restart once the best candidate's score has decayed
                // enough relative to the last restart point.
                if sc <= beta * self.last_restart_score {
                    if use_avg {
                        self.x.copy_from_slice(&self.x_avg);
                        self.y.copy_from_slice(&self.y_avg);
                    }
                    self.x_sum.fill(0.0);
                    self.y_sum.fill(0.0);
                    self.inner = 0;
                    self.last_restart_score = sc;
                }
            }
            if k % check_interval == 0 {
                if let Some(s) = self.interruption(deadline) {
                    status = s;
                    break;
                }
            }
            prof.admm_iters = k;
        }
        drop(loop_span);

        // Unscale the solution directly into the result buffers; the slack
        // is defined as the projection of Ax onto the box.
        self.scaling.unscale_x_into(&self.x, &mut result.x);
        self.scaling.unscale_y_into(&self.y, &mut result.y);
        self.orig.a().mul_vec_into(&result.x, &mut self.ws.ax);
        vector::clamp_into(&mut result.z, &self.ws.ax, self.orig.l(), self.orig.u());
        let res = final_res.unwrap_or(Residuals {
            prim: f64::INFINITY,
            dual: f64::INFINITY,
            prim_norm: 1.0,
            dual_norm: 1.0,
        });
        self.orig
            .p()
            .sym_upper_mul_vec_into(&result.x, &mut self.ws.px);
        let obj_val =
            0.5 * vector::dot(&result.x, &self.ws.px) + vector::dot(self.orig.q(), &result.x);

        result.status = status;
        result.algorithm = Algorithm::Pdqp;
        result.obj_val = obj_val;
        result.prim_res = res.prim;
        result.dual_res = res.dual;
        result.iterations = iterations;
        result.profile = prof;
        result.solve_time = start.elapsed();
    }

    /// One PDHG iteration: primal gradient step, dual extrapolated step
    /// via Moreau decomposition, then epoch-average accumulation. Three
    /// sparse mat-vecs, all through preallocated workspace buffers.
    /// `ktrace` is the caller-hoisted [`mib_trace::kernel_spans`] flag.
    fn step(&mut self, ktrace: bool, prof: &mut Profile) {
        let ws = &mut self.ws;
        let n = self.x.len();
        let m = self.y.len();
        {
            // Gradient: P x + q + Aᵀ y, staged through px / aty, then the
            // primal step with extrapolation 2 x⁺ − x for the dual step.
            let _s = mib_trace::span_if(ktrace, "stage_gradient", TraceCat::Kernel);
            self.p.sym_upper_mul_vec_into(&self.x, &mut ws.px);
            prof.add_spmv_mac(2 * self.p.nnz());
            self.a.spmv_t_into(&self.y, &mut ws.aty);
            prof.add_spmv_col_elim(self.a.nnz());
            vector::grad_step_into(
                &mut ws.xtilde,
                &mut ws.rhs_x,
                &self.x,
                self.tau,
                &ws.px,
                &self.q,
                &ws.aty,
            );
        }
        {
            let _s = mib_trace::span_if(ktrace, "stage_dual", TraceCat::Kernel);
            self.a.mul_vec_into(&ws.rhs_x, &mut ws.ax);
            prof.add_spmv_mac(self.a.nnz());
            let sigma = self.sigma;
            vector::moreau_into(&mut self.y, &mut ws.ztilde, sigma, &ws.ax, &self.l, &self.u);
        }
        {
            let _s = mib_trace::span_if(ktrace, "stage_average", TraceCat::Kernel);
            self.x.copy_from_slice(&ws.xtilde);
            vector::add_assign(&mut self.x_sum, &self.x);
            vector::add_assign(&mut self.y_sum, &self.y);
        }
        self.inner += 1;
        prof.add_vector((5 * n + 6 * m) as f64);
    }

    /// Unscaled KKT residuals of the current iterate (`avg = false`) or
    /// the epoch average (`avg = true`), staged through the workspace.
    fn residuals_at(&mut self, avg: bool, prof: &mut Profile) -> Residuals {
        let ws = &mut self.ws;
        let (xs, ys) = if avg {
            (&self.x_avg[..], &self.y_avg[..])
        } else {
            (&self.x[..], &self.y[..])
        };
        self.scaling.unscale_x_into(xs, &mut ws.x_us);
        self.scaling.unscale_y_into(ys, &mut ws.y_us);
        let a = self.orig.a();
        let p = self.orig.p();

        a.mul_vec_into(&ws.x_us, &mut ws.ax);
        prof.add_spmv_mac(a.nnz());
        vector::clamp_into(&mut ws.z_us, &ws.ax, self.orig.l(), self.orig.u());
        let prim = vector::norm_inf_diff(&ws.ax, &ws.z_us);
        let prim_norm = vector::norm_inf(&ws.ax).max(vector::norm_inf(&ws.z_us));

        p.sym_upper_mul_vec_into(&ws.x_us, &mut ws.px);
        prof.add_spmv_mac(2 * p.nnz());
        a.spmv_t_into(&ws.y_us, &mut ws.aty);
        prof.add_spmv_col_elim(a.nnz());
        let dual = vector::norm_inf_sum3(&ws.px, self.orig.q(), &ws.aty);
        let dual_norm = vector::norm_inf(&ws.px)
            .max(vector::norm_inf(&ws.aty))
            .max(vector::norm_inf(self.orig.q()));
        prof.add_vector(4.0 * (ws.x_us.len() + ws.z_us.len()) as f64);

        Residuals {
            prim,
            dual,
            prim_norm,
            dual_norm,
        }
    }

    /// Normalized KKT score: `< 1` exactly when the ADMM termination test
    /// `prim < ε_abs + ε_rel·‖·‖ ∧ dual < ε_abs + ε_rel·‖·‖` passes.
    fn score(&self, res: &Residuals) -> f64 {
        let eps_prim = self.settings.eps_abs + self.settings.eps_rel * res.prim_norm;
        let eps_dual = self.settings.eps_abs + self.settings.eps_rel * res.dual_norm;
        (res.prim / eps_prim).max(res.dual / eps_dual)
    }

    /// Polls the external cancellation flag and the effective deadline.
    fn interruption(&self, deadline: Option<Instant>) -> Option<Status> {
        if self
            .cancel
            .as_ref()
            .is_some_and(|c| c.load(Ordering::Relaxed))
        {
            return Some(Status::Cancelled);
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return Some(Status::TimedOut);
        }
        None
    }
}

impl QpBackend for PdqpSolver {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Pdqp
    }

    fn settings(&self) -> &Settings {
        &self.settings
    }

    fn problem(&self) -> &Problem {
        &self.orig
    }

    fn workspace(&self) -> &SolveWorkspace {
        &self.ws
    }

    fn step_size(&self) -> f64 {
        self.tau
    }

    fn warm_start(&mut self, x: &[f64], y: &[f64]) {
        PdqpSolver::warm_start(self, x, y);
    }

    fn reset(&mut self) {
        PdqpSolver::reset(self);
    }

    fn update_q(&mut self, q: &[f64]) -> Result<()> {
        PdqpSolver::update_q(self, q)
    }

    fn update_bounds(&mut self, l: &[f64], u: &[f64]) -> Result<()> {
        PdqpSolver::update_bounds(self, l, u)
    }

    fn set_cancel_flag(&mut self, cancel: Option<Arc<AtomicBool>>) {
        self.cancel = cancel;
    }

    fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
    }

    fn solve_into(&mut self, result: &mut SolveResult) {
        PdqpSolver::solve_into(self, result);
    }

    fn clone_box(&self) -> Box<dyn QpBackend> {
        Box::new(self.clone())
    }
}

/// `‖A‖₂` by power iteration on `AᵀA` from a deterministic start vector.
/// Converges from below; callers apply the safety margin.
fn operator_norm_a(a: &CscMatrix, n: usize, m: usize) -> f64 {
    if n == 0 || m == 0 {
        return 0.0;
    }
    let mut v: Vec<f64> = (0..n).map(|j| 1.0 / (j as f64 + 1.0)).collect();
    let mut av = vec![0.0; m];
    let mut atav = vec![0.0; n];
    let mut lambda = 0.0f64;
    for _ in 0..POWER_ITERS {
        a.mul_vec_into(&v, &mut av);
        a.spmv_t_into(&av, &mut atav);
        let next = vector::norm2(&atav);
        if next <= 0.0 {
            return 0.0;
        }
        vector::div_scale_into(&mut v, &atav, next);
        let converged = (next - lambda).abs() <= POWER_TOL * next.max(1.0);
        lambda = next;
        if converged {
            break;
        }
    }
    lambda.sqrt()
}

/// `‖P‖₂` by power iteration on the symmetric (upper-stored) `P`.
fn operator_norm_p(p: &CscMatrix, n: usize) -> f64 {
    if n == 0 || p.nnz() == 0 {
        return 0.0;
    }
    let mut v: Vec<f64> = (0..n).map(|j| 1.0 / (j as f64 + 1.0)).collect();
    let mut pv = vec![0.0; n];
    let mut lambda = 0.0f64;
    for _ in 0..POWER_ITERS {
        p.sym_upper_mul_vec_into(&v, &mut pv);
        let next = vector::norm2(&pv);
        if next <= 0.0 {
            return 0.0;
        }
        vector::div_scale_into(&mut v, &pv, next);
        let converged = (next - lambda).abs() <= POWER_TOL * next.max(1.0);
        lambda = next;
        if converged {
            break;
        }
    }
    lambda
}

#[cfg(test)]
mod tests {
    use super::*;

    fn box_problem() -> Problem {
        // minimize x0^2 + x1^2 - x0 - x1 s.t. 0 <= x <= 0.3.
        let p = CscMatrix::from_dense(2, 2, &[2.0, 0.0, 0.0, 2.0]);
        let a = CscMatrix::identity(2);
        Problem::new(p, vec![-1.0, -1.0], a, vec![0.0; 2], vec![0.3; 2]).unwrap()
    }

    fn pdqp_settings() -> Settings {
        Settings {
            algorithm: Algorithm::Pdqp,
            max_iter: 200_000,
            ..Settings::default()
        }
    }

    #[test]
    fn step_sizes_satisfy_the_condat_vu_condition() {
        let solver = PdqpSolver::new(box_problem(), pdqp_settings()).unwrap();
        assert!(solver.tau() > 0.0 && solver.sigma() > 0.0);
        // For the scaled identity-ish data here the true norms are modest;
        // the estimates must keep 1/τ − σ‖A‖² ≥ ‖P‖ with slack.
        assert!(solver.tau() < 1.0);
    }

    #[test]
    fn power_iteration_matches_known_norms() {
        // A = diag(3, 1) as a 2x2: ‖A‖ = 3. P = diag(2, 2): ‖P‖ = 2.
        let a = CscMatrix::from_dense(2, 2, &[3.0, 0.0, 0.0, 1.0]);
        let na = operator_norm_a(&a, 2, 2);
        assert!((na - 3.0).abs() < 1e-6, "norm_a = {na}");
        let p = CscMatrix::from_dense(2, 2, &[2.0, 0.0, 0.0, 2.0])
            .upper_triangle()
            .unwrap();
        let np = operator_norm_p(&p, 2);
        assert!((np - 2.0).abs() < 1e-6, "norm_p = {np}");
    }

    #[test]
    fn solves_box_qp() {
        let mut solver = PdqpSolver::new(box_problem(), pdqp_settings()).unwrap();
        let mut result = SolveResult::default();
        solver.solve_into(&mut result);
        assert_eq!(result.status, Status::Solved, "prim {}", result.prim_res);
        assert_eq!(result.algorithm, Algorithm::Pdqp);
        assert!((result.x[0] - 0.3).abs() < 1e-2, "x0 = {}", result.x[0]);
        assert!((result.x[1] - 0.3).abs() < 1e-2);
    }

    #[test]
    fn reset_restores_cold_start_bitwise() {
        let mut solver = PdqpSolver::new(box_problem(), pdqp_settings()).unwrap();
        let mut r1 = SolveResult::default();
        solver.solve_into(&mut r1);
        let mut drift = SolveResult::default();
        solver.solve_into(&mut drift); // drift the iterates
        solver.reset();
        let mut r2 = SolveResult::default();
        solver.solve_into(&mut r2);
        assert_eq!(r1.x, r2.x, "reset must restore cold-start bitwise");
        assert_eq!(r1.iterations, r2.iterations);
    }

    #[test]
    fn update_q_resolves_parametrically() {
        let p = CscMatrix::from_dense(2, 2, &[2.0, 0.0, 0.0, 2.0]);
        let a = CscMatrix::identity(2);
        let problem = Problem::new(p, vec![-1.0, -1.0], a, vec![-10.0; 2], vec![10.0; 2]).unwrap();
        let mut solver = PdqpSolver::new(problem, pdqp_settings()).unwrap();
        let tau_before = solver.tau();
        let mut r1 = SolveResult::default();
        solver.solve_into(&mut r1);
        assert_eq!(r1.status, Status::Solved);
        assert!((r1.x[0] - 0.5).abs() < 1e-2);
        solver.update_q(&[-2.0, -2.0]).unwrap();
        solver.reset();
        let mut r2 = SolveResult::default();
        solver.solve_into(&mut r2);
        assert!(
            (r2.x[0] - 1.0).abs() < 1e-2,
            "x after q update: {}",
            r2.x[0]
        );
        assert_eq!(
            solver.tau().to_bits(),
            tau_before.to_bits(),
            "step sizes are a pure function of P/A"
        );
    }
}
