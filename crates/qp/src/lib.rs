//! An OSQP-style ADMM solver for convex quadratic programs.
//!
//! This crate reimplements, from scratch, the solver algorithm of the paper
//! (Stellato et al.'s OSQP, Algorithm 1) in both variants the Multi-Issue
//! Butterfly architecture accelerates:
//!
//! * **OSQP-direct** — the KKT linear system (2) is solved by a sparse
//!   LDLᵀ factorization with numeric-only refactorization on `ρ` updates
//!   ([`linsys::DirectKkt`]);
//! * **OSQP-indirect** — the KKT system is reduced to the positive-definite
//!   form `(P + σI + AᵀρA) x = b` and solved by Preconditioned Conjugate
//!   Gradient ([`linsys::IndirectKkt`], Algorithm 2 of the paper).
//!
//! The solver includes modified Ruiz equilibration, per-constraint step
//! sizes (`ρ` vector with equality-constraint boosting), adaptive `ρ`,
//! primal/dual infeasibility certificates, warm starting, and an exact FLOP
//! profiler that attributes work to the paper's four primitive operations
//! (MAC, vector permutation, column elimination, element-wise) — the data
//! behind Figure 3.
//!
//! # Example
//!
//! ```
//! use mib_qp::{Problem, Settings, Solver};
//! use mib_sparse::CscMatrix;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // minimize 1/2 x'Px + q'x  s.t. 1 <= x0 + x1 <= 1, 0 <= x <= 0.7
//! let p = CscMatrix::from_dense(2, 2, &[4.0, 1.0, 0.0, 2.0]).upper_triangle()?;
//! let a = CscMatrix::from_dense(3, 2, &[1.0, 1.0, 1.0, 0.0, 0.0, 1.0]);
//! let problem = Problem::new(p, vec![1.0, 1.0], a,
//!     vec![1.0, 0.0, 0.0], vec![1.0, 0.7, 0.7])?;
//! let result = Solver::new(problem, Settings::default())?.solve();
//! assert!(result.status.is_solved());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admm;
mod backend;
mod batch;
mod error;
pub mod kkt;
pub mod linsys;
mod pdqp;
pub mod polish;
mod problem;
pub mod profile;
pub mod scaling;
mod settings;
mod solver;
pub mod telemetry;
mod types;
mod workspace;

pub use admm::AdmmSolver;
pub use backend::{Algorithm, QpBackend, ALGORITHM_COUNT};
pub use batch::{BatchSolver, BatchUpdate};
pub use error::QpError;
pub use pdqp::PdqpSolver;
pub use problem::Problem;
pub use profile::Certification;
pub use settings::{KktBackend, Settings};
pub use solver::Solver;
pub use telemetry::SolveTrace;
pub use types::{SolveResult, Status};
pub use workspace::SolveWorkspace;

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, QpError>;

/// Value used to represent an absent bound (`+inf` / `-inf`).
///
/// Following OSQP, bounds with magnitude at or above this value are treated
/// as infinite by the scaling, projection and infeasibility logic.
pub const INFTY: f64 = 1e30;
