//! Routing within one network instruction: ownership-tracked path and
//! reduction-tree construction.
//!
//! The butterfly path between a source and destination lane is unique (the
//! XOR rule of Section III.C), so packing several transfers into one
//! instruction reduces to checking that no intermediate node must carry two
//! different values. [`RouteSpace`] tracks which *value group* owns each
//! node: transfers of the same group may share nodes (multicast fan-out and
//! reduction fan-in), different groups may not.

use mib_core::instruction::{NetInstruction, NodeMode};

/// Per-instruction node ownership. Row 0 is the multiplier stage, rows
/// `1..=stages` the adder stages.
#[derive(Debug, Clone)]
pub struct RouteSpace {
    width: usize,
    stages: usize,
    owner: Vec<Option<u32>>,
}

impl RouteSpace {
    /// Creates an empty route space for a width-`width` instruction.
    pub fn new(width: usize) -> Self {
        let stages = width.trailing_zeros() as usize;
        RouteSpace {
            width,
            stages,
            owner: vec![None; width * (stages + 1)],
        }
    }

    fn idx(&self, row: usize, lane: usize) -> usize {
        row * self.width + lane
    }

    /// Claims the multiplier node of `lane` for `group`. Returns `false`
    /// if another group holds it.
    pub fn try_claim_input(&mut self, lane: usize, group: u32) -> bool {
        let i = self.idx(0, lane);
        match self.owner[i] {
            None => {
                self.owner[i] = Some(group);
                true
            }
            Some(g) => g == group,
        }
    }

    /// Attempts to route `src -> dst` for `group`, configuring `inst` on
    /// success. Multicast reuse within the same group is allowed.
    pub fn try_route(
        &mut self,
        inst: &mut NetInstruction,
        group: u32,
        src: usize,
        dst: usize,
    ) -> bool {
        // First pass: feasibility.
        let mut lane = src;
        let mut plan: Vec<(usize, usize, NodeMode)> = Vec::with_capacity(self.stages);
        for s in 0..self.stages {
            let bit = 1usize << s;
            let cross = (src ^ dst) & bit != 0;
            let next = if cross { lane ^ bit } else { lane };
            let mode = if cross {
                NodeMode::Cross
            } else {
                NodeMode::Direct
            };
            let i = self.idx(s + 1, next);
            match self.owner[i] {
                None => {}
                // Shared prefix of a multicast: the mode must agree.
                Some(g) if g == group && inst.node(s, next) != mode => return false,
                Some(g) if g == group => {}
                Some(_) => return false,
            }
            plan.push((s, next, mode));
            lane = next;
        }
        // Second pass: claim.
        for &(s, next, mode) in &plan {
            let i = self.idx(s + 1, next);
            self.owner[i] = Some(group);
            if inst.node(s, next) == NodeMode::Idle {
                inst.set_node(s, next, mode);
            }
        }
        true
    }

    /// Attempts to build a reduction tree from `sources` to `dst` for
    /// `group`, configuring `inst` (with `Sum` at collision nodes) on
    /// success. All nodes must be unowned.
    pub fn try_reduce(
        &mut self,
        inst: &mut NetInstruction,
        group: u32,
        sources: &[usize],
        dst: usize,
    ) -> bool {
        let mut live: Vec<usize> = sources.to_vec();
        live.sort_unstable();
        live.dedup();
        if live.len() != sources.len() {
            return false; // duplicate sources are a builder bug upstream
        }
        let mut plan: Vec<(usize, usize, NodeMode)> = Vec::new();
        for s in 0..self.stages {
            let bit = 1usize << s;
            let mut next: Vec<usize> = live.iter().map(|&l| (l & !bit) | (dst & bit)).collect();
            next.sort_unstable();
            next.dedup();
            for &t in &next {
                let from_direct = live.binary_search(&t).is_ok();
                let from_cross = live.binary_search(&(t ^ bit)).is_ok();
                let mode = match (from_direct, from_cross) {
                    (true, true) => NodeMode::Sum,
                    (true, false) => NodeMode::Direct,
                    (false, true) => NodeMode::Cross,
                    (false, false) => unreachable!("reduction target with no live input"),
                };
                if self.owner[self.idx(s + 1, t)].is_some() {
                    return false;
                }
                plan.push((s, t, mode));
            }
            live = next;
        }
        for &(s, t, mode) in &plan {
            let i = self.idx(s + 1, t);
            self.owner[i] = Some(group);
            if mode == NodeMode::Sum {
                inst.set_node_sum(s, t);
            } else {
                inst.set_node(s, t, mode);
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_routes_pack_together() {
        let mut inst = NetInstruction::nop(8);
        let mut rs = RouteSpace::new(8);
        assert!(rs.try_route(&mut inst, 0, 0, 5));
        assert!(rs.try_route(&mut inst, 1, 1, 4));
        // 0->5 path: stage0 cross (lane 1), stage1 direct (1), stage2 cross (5).
        assert_eq!(inst.node(0, 1), NodeMode::Cross);
    }

    #[test]
    fn conflicting_routes_rejected_without_side_effects() {
        let mut inst = NetInstruction::nop(8);
        let mut rs = RouteSpace::new(8);
        assert!(rs.try_route(&mut inst, 0, 0, 2));
        let before = inst.clone();
        // 6 -> 2 needs the same final node (2, 2).
        assert!(!rs.try_route(&mut inst, 1, 6, 2));
        assert_eq!(
            inst, before,
            "failed attempt must not mutate the instruction"
        );
    }

    #[test]
    fn multicast_same_group_shares_prefix() {
        let mut inst = NetInstruction::nop(8);
        let mut rs = RouteSpace::new(8);
        assert!(rs.try_claim_input(2, 7));
        for dst in 0..8 {
            assert!(rs.try_route(&mut inst, 7, 2, dst), "dst {dst}");
        }
    }

    #[test]
    fn reduce_claims_whole_tree() {
        let mut inst = NetInstruction::nop(8);
        let mut rs = RouteSpace::new(8);
        assert!(rs.try_reduce(&mut inst, 0, &[0, 1, 2, 3], 0));
        assert_eq!(inst.node(0, 0), NodeMode::Sum);
        assert_eq!(inst.node(1, 0), NodeMode::Sum);
        // Another reduce overlapping the tree must fail.
        assert!(!rs.try_reduce(&mut inst, 1, &[4, 5], 0));
        // A disjoint reduce into lane 7 must succeed (4..8 subtree).
        assert!(rs.try_reduce(&mut inst, 1, &[4, 5, 6, 7], 7));
    }

    #[test]
    fn input_claims_respect_groups() {
        let mut rs = RouteSpace::new(8);
        assert!(rs.try_claim_input(3, 0));
        assert!(rs.try_claim_input(3, 0));
        assert!(!rs.try_claim_input(3, 1));
    }
}
