//! Logical instruction streams with automatic dependency tracking.
//!
//! A [`KernelBuilder`] collects network instructions in *algorithm order*
//! and derives, for each one, the set of earlier instructions it must wait
//! for and by how many cycles:
//!
//! * **read-after-write** (and read-modify-write after write): the full
//!   pipeline latency — the paper's data hazards (Section IV.A),
//! * **write-after-write**: one cycle (in-order commit),
//! * **write-after-read**: zero cycles (reads happen at issue, writes land
//!   `latency` later).
//!
//! The per-lane broadcast latch is tracked like a register location.
//! The resulting [`Kernel`] is the input of the first-fit scheduler.

use std::collections::HashMap;

use mib_core::instruction::{NetInstruction, WriteMode};

/// A logical network instruction plus its dependencies and HBM words.
#[derive(Debug, Clone, PartialEq)]
pub struct LogicalInstr {
    /// The network configuration.
    pub inst: NetInstruction,
    /// `(producer index, minimum slot distance)` pairs.
    pub deps: Vec<(usize, u64)>,
    /// HBM words consumed, tagged by sort key: `lane` for input-stage
    /// words, `width + lane` for output-multiplier words (the machine
    /// consumes a slot's input-phase words in lane order first, then the
    /// output-multiplier words in lane order).
    pub stream: Vec<(usize, f64)>,
}

/// A finished logical instruction stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// Human-readable kernel name (e.g. `"A_multiply"`).
    pub name: String,
    /// Machine width the kernel was built for.
    pub width: usize,
    /// The logical instructions in algorithm order.
    pub instrs: Vec<LogicalInstr>,
}

impl Kernel {
    /// Total logical instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the kernel is empty.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Concatenates another kernel after this one, shifting its dependency
    /// indices. The combined kernel preserves both dependency structures;
    /// cross-kernel hazards are still tracked because indices are local —
    /// callers that need cross-kernel dependencies should build through one
    /// [`KernelBuilder`] instead.
    pub fn concat(mut self, other: Kernel) -> Kernel {
        assert_eq!(self.width, other.width, "kernel width mismatch");
        let offset = self.instrs.len();
        for mut li in other.instrs {
            for d in &mut li.deps {
                d.0 += offset;
            }
            self.instrs.push(li);
        }
        self
    }
}

/// Sentinel address used to key latch locations in the dependency maps.
const LATCH_ADDR: usize = usize::MAX;

/// Builds a [`Kernel`], deriving dependencies from each instruction's
/// register and latch accesses.
#[derive(Debug, Clone)]
pub struct KernelBuilder {
    name: String,
    width: usize,
    latency: u64,
    instrs: Vec<LogicalInstr>,
    last_write: HashMap<(usize, usize), usize>,
    readers: HashMap<(usize, usize), Vec<usize>>,
}

impl KernelBuilder {
    /// Starts a kernel for a width-`width` machine with the given pipeline
    /// latency (use [`mib_core::MibConfig::latency`]).
    pub fn new(name: impl Into<String>, width: usize, latency: u64) -> Self {
        KernelBuilder {
            name: name.into(),
            width,
            latency,
            instrs: Vec::new(),
            last_write: HashMap::new(),
            readers: HashMap::new(),
        }
    }

    /// Machine width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of instructions so far.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether no instruction has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Appends an instruction, computing its dependencies. `stream` holds
    /// the HBM words the instruction consumes, tagged by lane.
    ///
    /// Returns the logical index of the instruction.
    ///
    /// # Panics
    ///
    /// Panics if the instruction width differs from the kernel width.
    pub fn push(&mut self, inst: NetInstruction, stream: Vec<(usize, f64)>) -> usize {
        assert_eq!(inst.width(), self.width, "instruction width mismatch");
        let id = self.instrs.len();
        let mut deps: HashMap<usize, u64> = HashMap::new();
        let mut add_dep = |deps: &mut HashMap<usize, u64>, producer: usize, delay: u64| {
            let e = deps.entry(producer).or_insert(0);
            *e = (*e).max(delay);
        };

        // Reads (multiplier stage, at issue time).
        for (lane, input) in inst.inputs().iter().enumerate() {
            let Some(src) = input else { continue };
            if let Some(addr) = src.reg_addr() {
                self.note_read((lane, addr), id, &mut deps, &mut add_dep);
            }
            if src.uses_latch() {
                self.note_read((lane, LATCH_ADDR), id, &mut deps, &mut add_dep);
            }
        }
        // Writes (writeback stage).
        for (lane, write) in inst.writes().iter().enumerate() {
            let Some(w) = write else { continue };
            let loc = if w.mode == WriteMode::Latch {
                (lane, LATCH_ADDR)
            } else {
                (lane, w.addr)
            };
            self.note_write(loc, id, w.mode.is_rmw(), &mut deps, &mut add_dep);
        }

        let mut deps: Vec<(usize, u64)> = deps.into_iter().collect();
        deps.sort_unstable();
        self.instrs.push(LogicalInstr { inst, deps, stream });
        id
    }

    fn note_read(
        &mut self,
        loc: (usize, usize),
        id: usize,
        deps: &mut HashMap<usize, u64>,
        add_dep: &mut impl FnMut(&mut HashMap<usize, u64>, usize, u64),
    ) {
        if let Some(&w) = self.last_write.get(&loc) {
            add_dep(deps, w, self.latency);
        }
        self.readers.entry(loc).or_default().push(id);
    }

    fn note_write(
        &mut self,
        loc: (usize, usize),
        id: usize,
        rmw: bool,
        deps: &mut HashMap<usize, u64>,
        add_dep: &mut impl FnMut(&mut HashMap<usize, u64>, usize, u64),
    ) {
        if let Some(&w) = self.last_write.get(&loc) {
            // A read-modify-write must wait for the previous value; a plain
            // store only needs commit ordering.
            add_dep(deps, w, if rmw { self.latency } else { 1 });
        }
        if let Some(readers) = self.readers.remove(&loc) {
            for r in readers {
                if r != id {
                    add_dep(deps, r, 0);
                }
            }
        }
        self.last_write.insert(loc, id);
    }

    /// Marks a location as externally written **after** all instructions so
    /// far (e.g. the boundary between two phases built by different
    /// builders); subsequent readers will not be reordered before `id`.
    pub fn barrier_loc(&mut self, bank: usize, addr: usize, id: usize) {
        self.last_write.insert((bank, addr), id);
    }

    /// Finishes the kernel.
    pub fn finish(self) -> Kernel {
        Kernel {
            name: self.name,
            width: self.width,
            instrs: self.instrs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mib_core::instruction::{LaneSource, LaneWrite, WriteMode};

    fn store(width: usize, lane: usize, from_addr: usize, to_addr: usize) -> NetInstruction {
        let mut i = NetInstruction::nop(width);
        i.set_input(lane, LaneSource::Reg { addr: from_addr });
        i.route(lane, lane);
        i.set_write(
            lane,
            LaneWrite {
                addr: to_addr,
                mode: WriteMode::Store,
            },
        );
        i
    }

    #[test]
    fn raw_dependency_has_full_latency() {
        let mut b = KernelBuilder::new("t", 8, 5);
        let p = b.push(store(8, 0, 0, 1), vec![]);
        let c = b.push(store(8, 0, 1, 2), vec![]); // reads what p wrote
        let k = b.finish();
        assert_eq!(k.instrs[c].deps, vec![(p, 5)]);
        assert!(k.instrs[p].deps.is_empty());
    }

    #[test]
    fn waw_is_one_cycle_and_war_is_zero() {
        let mut b = KernelBuilder::new("t", 8, 5);
        let w1 = b.push(store(8, 0, 9, 1), vec![]);
        let r = b.push(store(8, 0, 1, 3), vec![]); // reads (0,1)
        let w2 = b.push(store(8, 0, 9, 1), vec![]); // overwrites (0,1)
        let k = b.finish();
        // w2 depends on w1 with delay 1 (WAW) and on r with delay 0 (WAR).
        assert!(k.instrs[w2].deps.contains(&(w1, 1)));
        assert!(k.instrs[w2].deps.contains(&(r, 0)));
    }

    #[test]
    fn rmw_write_waits_full_latency() {
        let mut b = KernelBuilder::new("t", 8, 5);
        let w1 = b.push(store(8, 2, 0, 7), vec![]);
        let mut acc = NetInstruction::nop(8);
        acc.set_input(2, LaneSource::Reg { addr: 0 });
        acc.route(2, 2);
        acc.set_write(
            2,
            LaneWrite {
                addr: 7,
                mode: WriteMode::Add,
            },
        );
        let a = b.push(acc, vec![]);
        let k = b.finish();
        assert!(k.instrs[a].deps.contains(&(w1, 5)));
    }

    #[test]
    fn latch_tracked_as_location() {
        let mut b = KernelBuilder::new("t", 8, 5);
        let mut bcast = NetInstruction::nop(8);
        bcast.set_input(1, LaneSource::Reg { addr: 0 });
        bcast.route(1, 3);
        bcast.set_write(
            3,
            LaneWrite {
                addr: 0,
                mode: WriteMode::Latch,
            },
        );
        let p = b.push(bcast, vec![]);
        let mut use_latch = NetInstruction::nop(8);
        use_latch.set_input(
            3,
            LaneSource::RegTimesLatch {
                addr: 2,
                negate: false,
            },
        );
        use_latch.route(3, 3);
        use_latch.set_write(
            3,
            LaneWrite {
                addr: 4,
                mode: WriteMode::Store,
            },
        );
        let c = b.push(use_latch, vec![]);
        let k = b.finish();
        assert!(k.instrs[c].deps.contains(&(p, 5)));
    }

    #[test]
    fn independent_instructions_have_no_deps() {
        let mut b = KernelBuilder::new("t", 8, 5);
        b.push(store(8, 0, 0, 1), vec![]);
        let i2 = b.push(store(8, 1, 0, 1), vec![]); // different bank
        let k = b.finish();
        assert!(k.instrs[i2].deps.is_empty());
    }

    #[test]
    fn concat_shifts_indices() {
        let mut b1 = KernelBuilder::new("a", 8, 5);
        b1.push(store(8, 0, 0, 1), vec![]);
        let mut b2 = KernelBuilder::new("b", 8, 5);
        let p = b2.push(store(8, 0, 0, 1), vec![]);
        let c = b2.push(store(8, 0, 1, 2), vec![]);
        let k = b1.finish().concat(b2.finish());
        assert_eq!(k.len(), 3);
        assert_eq!(k.instrs[1 + c].deps, vec![(1 + p, 5)]);
    }
}
