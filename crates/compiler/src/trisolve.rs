//! Triangular-solve kernels over a register-resident LDLᵀ factor.
//!
//! The direct KKT solve is `x ← Lᵀ \ (D⁻¹ (L \ x))` (Listing 1's
//! `L_solve`, `D_solve`, `Lt_solve` schedules):
//!
//! * **`L` solve** uses the **column elimination** primitive (equations
//!   (8)–(12) of the paper): after `x_j` is final, broadcast it into the
//!   latches of the lanes holding column `j`'s entries (Fig. 6b) and
//!   scatter-subtract the products `L(r,j)·x_j` into `x_r`.
//! * **`D` solve** is an element-wise product with the precomputed
//!   reciprocal diagonal.
//! * **`Lᵀ` solve** uses the **MAC** primitive (equation (7)): for column
//!   `j` (descending), the products `L(r,j)·x_r` reduce through the MAC
//!   tree into `x_j`.
//!
//! The factor values live in the register files at a [`FactorLayout`]:
//! entry `L(r, j)` in bank `r mod C` (so elimination products form in the
//! lane that owns `x_r`), written there either by the on-machine
//! factorization kernel ([`crate::factor`]) or by preloading.

use mib_core::instruction::{InstrKind, LaneSource, LaneWrite, NetInstruction, OutMul, WriteMode};
use mib_core::machine::Machine;
use mib_sparse::ldl::LdlFactor;

use crate::kernel::KernelBuilder;
use crate::layout::{Allocator, Layout};
use crate::route::RouteSpace;

/// Register-file placement of an LDLᵀ factor.
#[derive(Debug, Clone)]
pub struct FactorLayout {
    width: usize,
    /// Address of the L value stored at CSC position `p` (bank is
    /// `row_ind[p] % width`).
    l_addr: Vec<usize>,
    /// Layout of the diagonal `D`.
    d: Layout,
    /// Layout of the reciprocal diagonal `D⁻¹`.
    dinv: Layout,
}

impl FactorLayout {
    /// Plans storage for a factor with the given structure.
    pub fn plan(l_col_ptr: &[usize], l_row_ind: &[usize], n: usize, alloc: &mut Allocator) -> Self {
        let width = alloc.width();
        let mut per_bank = vec![0usize; width];
        let mut l_addr = Vec::with_capacity(l_row_ind.len());
        let base = {
            // Count first to reserve a contiguous region.
            let mut counts = vec![0usize; width];
            for &r in l_row_ind {
                counts[r % width] += 1;
            }
            let rows = counts.iter().copied().max().unwrap_or(0);
            alloc.alloc_rows(rows)
        };
        let _ = l_col_ptr;
        for &r in l_row_ind {
            let bank = r % width;
            l_addr.push(base + per_bank[bank]);
            per_bank[bank] += 1;
        }
        let d = alloc.alloc(n);
        let dinv = alloc.alloc(n);
        FactorLayout {
            width,
            l_addr,
            d,
            dinv,
        }
    }

    /// Machine width this layout was planned for.
    pub fn width(&self) -> usize {
        self.width
    }

    /// `(bank, addr)` of the L value at CSC position `p` with row `r`.
    pub fn l_loc(&self, p: usize, row: usize) -> (usize, usize) {
        (row % self.width, self.l_addr[p])
    }

    /// Layout of the diagonal `D`.
    pub fn d(&self) -> Layout {
        self.d
    }

    /// Layout of the reciprocal diagonal `D⁻¹`.
    pub fn dinv(&self) -> Layout {
        self.dinv
    }

    /// Writes a numeric factor's values into a machine's register files
    /// (used when the factor was computed off-machine).
    pub fn preload(&self, f: &LdlFactor, m: &mut Machine) {
        for (p, (&r, &v)) in f.l_row_ind().iter().zip(f.l_values()).enumerate() {
            let (bank, addr) = self.l_loc(p, r);
            m.regs_mut()
                .write(bank, addr, v)
                .expect("factor layout fits bank depth");
        }
        for (k, &dk) in f.d().iter().enumerate() {
            m.regs_mut()
                .write(self.d.bank(k), self.d.addr(k), dk)
                .expect("factor layout fits bank depth");
            m.regs_mut()
                .write(self.dinv.bank(k), self.dinv.addr(k), 1.0 / dk)
                .expect("factor layout fits bank depth");
        }
    }

    /// Reads the L values back from a machine (verification of the
    /// on-machine factorization).
    pub fn read_l(&self, row_ind: &[usize], m: &Machine) -> Vec<f64> {
        row_ind
            .iter()
            .enumerate()
            .map(|(p, &r)| {
                let (bank, addr) = self.l_loc(p, r);
                m.regs()
                    .read(bank, addr)
                    .expect("factor layout fits bank depth")
            })
            .collect()
    }
}

/// Emits the `L_solve` kernel: in-place `x ← L⁻¹ x` (unit lower L).
pub fn lsolve(b: &mut KernelBuilder, fl: &FactorLayout, f: &LdlFactor, x: Layout) {
    assert_eq!(x.len, f.n(), "x layout does not match factor dimension");
    let width = b.width();
    let col_ptr = f.l_col_ptr();
    let row_ind = f.l_row_ind();
    for j in 0..f.n() {
        let range = col_ptr[j]..col_ptr[j + 1];
        if range.is_empty() {
            continue;
        }
        // Broadcast final x_j into target lanes' latches.
        let mut targets: Vec<usize> = row_ind[range.clone()].iter().map(|&r| r % width).collect();
        targets.sort_unstable();
        targets.dedup();
        let (sj, aj) = x.loc(j);
        let mut bcast = NetInstruction::nop(width);
        bcast.kind = InstrKind::Broadcast;
        bcast.set_input(sj, LaneSource::Reg { addr: aj });
        let mut rs = RouteSpace::new(width);
        rs.try_claim_input(sj, 0);
        for &t in &targets {
            assert!(rs.try_route(&mut bcast, 0, sj, t));
            bcast.set_write(
                t,
                LaneWrite {
                    addr: 0,
                    mode: WriteMode::Latch,
                },
            );
        }
        b.push(bcast, vec![]);
        // Elimination chunks: x_r -= L(r,j) * x_j.
        let mut idx = range.start;
        while idx < range.end {
            let mut used = vec![false; width];
            let mut inst = NetInstruction::nop(width);
            inst.kind = InstrKind::ColElim;
            while idx < range.end {
                let r = row_ind[idx];
                let lane = r % width;
                if used[lane] {
                    break;
                }
                used[lane] = true;
                inst.set_input(
                    lane,
                    LaneSource::RegTimesLatch {
                        addr: fl.l_addr[idx],
                        negate: true,
                    },
                );
                inst.route(lane, lane);
                inst.set_write(
                    lane,
                    LaneWrite {
                        addr: x.addr(r),
                        mode: WriteMode::Add,
                    },
                );
                idx += 1;
            }
            b.push(inst, vec![]);
        }
    }
}

/// Emits the `D_solve` kernel: `x ← D⁻¹ x` element-wise.
pub fn dsolve(b: &mut KernelBuilder, fl: &FactorLayout, x: Layout) {
    crate::elementwise::ew_prod(b, x, fl.dinv, x, WriteMode::Store);
}

/// Emits the `Lt_solve` kernel: in-place `x ← L⁻ᵀ x` (unit upper `Lᵀ`),
/// row-oriented MAC substitution.
pub fn ltsolve(b: &mut KernelBuilder, fl: &FactorLayout, f: &LdlFactor, x: Layout) {
    assert_eq!(x.len, f.n(), "x layout does not match factor dimension");
    let width = b.width();
    let col_ptr = f.l_col_ptr();
    let row_ind = f.l_row_ind();
    for j in (0..f.n()).rev() {
        let range = col_ptr[j]..col_ptr[j + 1];
        if range.is_empty() {
            continue;
        }
        let dst = x.bank(j);
        let mut idx = range.start;
        while idx < range.end {
            // Latch a chunk of x_r values, then reduce -L(r,j)*x_r into x_j.
            let mut used = vec![false; width];
            let mut latch = NetInstruction::nop(width);
            latch.kind = InstrKind::Elementwise;
            let mut macs: Vec<(usize, usize)> = Vec::new(); // (lane, l position)
            while idx < range.end {
                let r = row_ind[idx];
                let lane = r % width;
                if used[lane] {
                    break;
                }
                used[lane] = true;
                latch.set_input(lane, LaneSource::Reg { addr: x.addr(r) });
                latch.route(lane, lane);
                latch.set_write(
                    lane,
                    LaneWrite {
                        addr: 0,
                        mode: WriteMode::Latch,
                    },
                );
                macs.push((lane, idx));
                idx += 1;
            }
            b.push(latch, vec![]);
            let mut mac = NetInstruction::nop(width);
            mac.kind = InstrKind::Mac;
            let mut rs = RouteSpace::new(width);
            let lanes: Vec<usize> = macs.iter().map(|&(l, _)| l).collect();
            for &(lane, p) in &macs {
                mac.set_input(
                    lane,
                    LaneSource::RegTimesLatch {
                        addr: fl.l_addr[p],
                        negate: true,
                    },
                );
                rs.try_claim_input(lane, 0);
            }
            assert!(rs.try_reduce(&mut mac, 0, &lanes, dst));
            mac.set_write(
                dst,
                LaneWrite {
                    addr: x.addr(j),
                    mode: WriteMode::Add,
                },
            );
            b.push(mac, vec![]);
        }
    }
}

/// Streamed-L `L_solve`: identical mathematics to [`lsolve`] but with the
/// factor values arriving from HBM through the **output multipliers** —
/// one network instruction per column chunk (`x_j` fans out through the
/// butterfly and multiplies the streamed `-L(r,j)` at each target lane).
/// This halves the elimination-tree critical path relative to the
/// latch-based variant and is what the lowered ADMM iteration uses; the
/// factorization step writes `L` back to HBM for it.
pub fn lsolve_streamed(b: &mut KernelBuilder, f: &LdlFactor, x: Layout) {
    assert_eq!(x.len, f.n(), "x layout does not match factor dimension");
    let width = b.width();
    let col_ptr = f.l_col_ptr();
    let row_ind = f.l_row_ind();
    let values = f.l_values();
    for j in 0..f.n() {
        let range = col_ptr[j]..col_ptr[j + 1];
        if range.is_empty() {
            continue;
        }
        let (sj, aj) = x.loc(j);
        let mut idx = range.start;
        while idx < range.end {
            let mut used = vec![false; width];
            let mut inst = NetInstruction::nop(width);
            inst.kind = InstrKind::ColElim;
            inst.set_input(sj, LaneSource::Reg { addr: aj });
            let mut rs = RouteSpace::new(width);
            rs.try_claim_input(sj, 0);
            let mut stream = Vec::new();
            while idx < range.end {
                let r = row_ind[idx];
                let lane = r % width;
                if used[lane] {
                    break;
                }
                assert!(rs.try_route(&mut inst, 0, sj, lane));
                used[lane] = true;
                inst.set_out_mul(lane, OutMul::MulStream { negate: true });
                inst.set_write(
                    lane,
                    LaneWrite {
                        addr: x.addr(r),
                        mode: WriteMode::Add,
                    },
                );
                stream.push((width + lane, values[idx]));
                idx += 1;
            }
            b.push(inst, stream);
        }
    }
}

/// Streamed `D_solve`: `x ← D⁻¹x` with the reciprocal diagonal arriving
/// from HBM at the input multipliers.
pub fn dsolve_streamed(b: &mut KernelBuilder, f: &LdlFactor, x: Layout) {
    assert_eq!(x.len, f.n(), "x layout does not match factor dimension");
    let width = b.width();
    let n = f.n();
    for start in (0..n).step_by(width) {
        let mut inst = NetInstruction::nop(width);
        inst.kind = InstrKind::Elementwise;
        let mut stream = Vec::new();
        for e in start..(start + width).min(n) {
            let lane = x.bank(e);
            inst.set_input(
                lane,
                LaneSource::RegTimesStream {
                    addr: x.addr(e),
                    negate: false,
                },
            );
            inst.route(lane, lane);
            inst.set_write(
                lane,
                LaneWrite {
                    addr: x.addr(e),
                    mode: WriteMode::Store,
                },
            );
            stream.push((lane, 1.0 / f.d()[e]));
        }
        b.push(inst, stream);
    }
}

/// Streamed-L `Lt_solve`: row-oriented MAC substitution with the factor
/// values at the **input multipliers** (`x_r` from registers times the
/// streamed `-L(r,j)` reduce into `x_j`) — one instruction per chunk.
pub fn ltsolve_streamed(b: &mut KernelBuilder, f: &LdlFactor, x: Layout) {
    assert_eq!(x.len, f.n(), "x layout does not match factor dimension");
    let width = b.width();
    let col_ptr = f.l_col_ptr();
    let row_ind = f.l_row_ind();
    let values = f.l_values();
    for j in (0..f.n()).rev() {
        let range = col_ptr[j]..col_ptr[j + 1];
        if range.is_empty() {
            continue;
        }
        let dst = x.bank(j);
        let mut idx = range.start;
        while idx < range.end {
            let mut used = vec![false; width];
            let mut inst = NetInstruction::nop(width);
            inst.kind = InstrKind::Mac;
            let mut rs = RouteSpace::new(width);
            let mut lanes = Vec::new();
            let mut stream = Vec::new();
            while idx < range.end {
                let r = row_ind[idx];
                let lane = r % width;
                if used[lane] {
                    break;
                }
                used[lane] = true;
                inst.set_input(
                    lane,
                    LaneSource::RegTimesStream {
                        addr: x.addr(r),
                        negate: true,
                    },
                );
                rs.try_claim_input(lane, 0);
                lanes.push(lane);
                stream.push((lane, values[idx]));
                idx += 1;
            }
            assert!(rs.try_reduce(&mut inst, 0, &lanes, dst));
            inst.set_write(
                dst,
                LaneWrite {
                    addr: x.addr(j),
                    mode: WriteMode::Add,
                },
            );
            b.push(inst, stream);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elementwise::load_vec;
    use crate::schedule::{schedule, ScheduleOptions};
    use mib_core::hbm::HbmStream;
    use mib_core::machine::HazardPolicy;
    use mib_core::MibConfig;
    use mib_sparse::ldl::LdlSymbolic;
    use mib_sparse::CscMatrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn cfg() -> MibConfig {
        MibConfig {
            width: 8,
            bank_depth: 4096,
            clock_hz: 1e6,
        }
    }

    /// Random sparse SPD matrix (diagonally dominant), upper triangle.
    fn spd(n: usize, seed: u64) -> CscMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        for i in 0..n {
            rows.push(i);
            cols.push(i);
            vals.push(10.0 + rng.gen::<f64>());
            for j in (i + 1)..n {
                if rng.gen::<f64>() < 0.2 {
                    rows.push(i);
                    cols.push(j);
                    vals.push(rng.gen_range(-1.0..1.0));
                }
            }
        }
        CscMatrix::from_triplet_parts(n, n, &rows, &cols, &vals).unwrap()
    }

    #[test]
    fn full_ldl_solve_on_machine_matches_reference() {
        let n = 20;
        let a = spd(n, 42);
        let sym = LdlSymbolic::new(&a).unwrap();
        let f = sym.factor(&a).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let bvec: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();

        let c = cfg();
        let mut alloc = Allocator::new(c.width);
        let fl = FactorLayout::plan(f.l_col_ptr(), f.l_row_ind(), n, &mut alloc);
        let x = alloc.alloc(n);
        let mut b = KernelBuilder::new("solve", c.width, c.latency());
        load_vec(&mut b, x, &bvec);
        lsolve(&mut b, &fl, &f, x);
        dsolve(&mut b, &fl, x);
        ltsolve(&mut b, &fl, &f, x);
        let s = schedule(&b.finish(), ScheduleOptions::default());

        let mut m = Machine::new(c);
        fl.preload(&f, &mut m);
        let mut hbm = HbmStream::new(s.hbm.clone());
        m.run(&s.program, &mut hbm, HazardPolicy::Strict).unwrap();

        let got: Vec<f64> = (0..n)
            .map(|e| m.regs().read(x.bank(e), x.addr(e)).unwrap())
            .collect();
        let want = f.solve(&bvec);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-9, "solve mismatch: {g} vs {w}");
        }
        // And the solution satisfies A x = b.
        let ax = a.sym_upper_mul_vec(&got);
        for (u, v) in ax.iter().zip(&bvec) {
            assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn lsolve_only_matches_reference() {
        let n = 12;
        let a = spd(n, 3);
        let f = LdlSymbolic::new(&a).unwrap().factor(&a).unwrap();
        let bvec: Vec<f64> = (0..n).map(|i| (i as f64) - 4.0).collect();
        let c = cfg();
        let mut alloc = Allocator::new(c.width);
        let fl = FactorLayout::plan(f.l_col_ptr(), f.l_row_ind(), n, &mut alloc);
        let x = alloc.alloc(n);
        let mut b = KernelBuilder::new("lsolve", c.width, c.latency());
        load_vec(&mut b, x, &bvec);
        lsolve(&mut b, &fl, &f, x);
        let s = schedule(&b.finish(), ScheduleOptions::default());
        let mut m = Machine::new(c);
        fl.preload(&f, &mut m);
        m.run(
            &s.program,
            &mut HbmStream::new(s.hbm.clone()),
            HazardPolicy::Strict,
        )
        .unwrap();
        let mut want = bvec.clone();
        f.l_solve(&mut want);
        for (e, &w) in want.iter().enumerate() {
            let g = m.regs().read(x.bank(e), x.addr(e)).unwrap();
            assert!((g - w).abs() < 1e-10, "lane {e}: {g} vs {w}");
        }
    }

    #[test]
    fn factor_layout_is_injective() {
        let a = spd(25, 9);
        let f = LdlSymbolic::new(&a).unwrap().factor(&a).unwrap();
        let mut alloc = Allocator::new(8);
        let fl = FactorLayout::plan(f.l_col_ptr(), f.l_row_ind(), 25, &mut alloc);
        let mut seen = std::collections::HashSet::new();
        for (p, &r) in f.l_row_ind().iter().enumerate() {
            assert!(
                seen.insert(fl.l_loc(p, r)),
                "duplicate location for position {p}"
            );
        }
    }
}
