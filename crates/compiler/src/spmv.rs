//! Sparse matrix–vector multiplication kernels.
//!
//! Two generators, matching Section IV.B of the paper ("the multiplication
//! of A is performed with the MAC primitive instruction and Aᵀ is performed
//! with column elimination instruction"):
//!
//! * [`mac_spmv`] — row-oriented `y = A·x`: each row's nonzeros stream from
//!   HBM in CSR order, multiply register-resident `x` elements, and reduce
//!   through the MAC tree to the row's destination bank. Rows with more
//!   nonzeros than routable lanes split into chunks that accumulate through
//!   the writeback port. When an operand's home bank is already taken
//!   inside a chunk, the generator either starts a new chunk or (with
//!   prefetching enabled) emits a bank-to-bank **prefetch copy** that the
//!   first-fit scheduler hides in an earlier slot — the structural-hazard
//!   resolution of Section IV.A.
//! * [`col_spmv`] — column-oriented `y = Aᵀ·w`: for each row `i` of `A`,
//!   `w_i` fans out through the butterfly (Fig. 6b), each target lane's
//!   output multiplier scales it by the streamed matrix value, and the
//!   accumulating writeback folds the products into `y`.

use std::collections::HashMap;

use mib_core::instruction::{InstrKind, LaneSource, LaneWrite, NetInstruction, OutMul, WriteMode};
use mib_sparse::{CscMatrix, CsrMatrix};

use crate::kernel::KernelBuilder;
use crate::layout::{Allocator, Layout};
use crate::route::RouteSpace;

/// Options for the MAC generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpmvOptions {
    /// Resolve intra-chunk bank conflicts with prefetch copies instead of
    /// starting a new chunk (Section IV.A). Ablation knob.
    pub prefetch: bool,
}

impl Default for SpmvOptions {
    fn default() -> Self {
        SpmvOptions { prefetch: true }
    }
}

/// Builds `y = A·x` (or `y += A·x` when `accumulate`) with the MAC
/// primitive. `a` is the matrix in CSR form; `x` and `y` are cyclic
/// register layouts.
///
/// # Panics
///
/// Panics if layout lengths do not match the matrix shape.
pub fn mac_spmv(
    b: &mut KernelBuilder,
    alloc: &mut Allocator,
    a: &CsrMatrix,
    x: Layout,
    y: Layout,
    accumulate: bool,
    opts: SpmvOptions,
) {
    assert_eq!(x.len, a.ncols(), "x layout does not match A columns");
    assert_eq!(y.len, a.nrows(), "y layout does not match A rows");
    let width = b.width();
    // Copies of x elements made by prefetch instructions: x index -> extra
    // locations.
    let mut copies: HashMap<usize, Vec<(usize, usize)>> = HashMap::new();

    for r in 0..a.nrows() {
        let entries: Vec<(usize, f64)> = a.row(r).collect();
        if entries.is_empty() {
            if !accumulate {
                // y_r = 0.
                let (lane, addr) = y.loc(r);
                let mut inst = NetInstruction::nop(width);
                inst.kind = InstrKind::Elementwise;
                inst.set_input(lane, LaneSource::RegTimesImm { addr: 0, imm: 0.0 });
                inst.route(lane, lane);
                inst.set_write(
                    lane,
                    LaneWrite {
                        addr,
                        mode: WriteMode::Store,
                    },
                );
                b.push(inst, vec![]);
            }
            continue;
        }
        let dst_lane = y.bank(r);
        let mut first_chunk = true;
        let mut idx = 0usize;
        while idx < entries.len() {
            // Greedily fill one chunk with operands on distinct lanes.
            let mut used: Vec<Option<usize>> = vec![None; width]; // lane -> addr
            let mut chunk: Vec<(usize, usize, f64)> = Vec::new(); // (lane, addr, matval)
            while idx < entries.len() && chunk.len() < width {
                let (j, v) = entries[idx];
                let home = x.loc(j);
                let mut placed = None;
                if used[home.0].is_none() {
                    placed = Some(home);
                } else if let Some(locs) = copies.get(&j) {
                    placed = locs.iter().copied().find(|&(bank, _)| used[bank].is_none());
                }
                if placed.is_none() && opts.prefetch {
                    // Prefetch x_j into a free lane.
                    if let Some(free) = (0..width).find(|&l| used[l].is_none()) {
                        let scratch = alloc.alloc_rows(1);
                        let mut pf = NetInstruction::nop(width);
                        pf.kind = InstrKind::Prefetch;
                        pf.set_input(home.0, LaneSource::Reg { addr: home.1 });
                        pf.route(home.0, free);
                        pf.set_write(
                            free,
                            LaneWrite {
                                addr: scratch,
                                mode: WriteMode::Store,
                            },
                        );
                        b.push(pf, vec![]);
                        copies.entry(j).or_default().push((free, scratch));
                        placed = Some((free, scratch));
                    }
                }
                match placed {
                    Some((lane, addr)) => {
                        used[lane] = Some(addr);
                        chunk.push((lane, addr, v));
                        idx += 1;
                    }
                    None => break, // chunk full for this bank pattern
                }
            }
            debug_assert!(!chunk.is_empty(), "chunk must make progress");
            // Emit the MAC instruction: multiply and reduce to dst_lane.
            let mut inst = NetInstruction::nop(width);
            inst.kind = InstrKind::Mac;
            let mut rs = RouteSpace::new(width);
            let mut stream = Vec::with_capacity(chunk.len());
            let lanes: Vec<usize> = chunk.iter().map(|&(l, _, _)| l).collect();
            for &(lane, addr, v) in &chunk {
                inst.set_input(
                    lane,
                    LaneSource::RegTimesStream {
                        addr,
                        negate: false,
                    },
                );
                assert!(rs.try_claim_input(lane, 0));
                stream.push((lane, v));
            }
            assert!(
                rs.try_reduce(&mut inst, 0, &lanes, dst_lane),
                "single reduction tree is always routable"
            );
            let mode = if first_chunk && !accumulate {
                WriteMode::Store
            } else {
                WriteMode::Add
            };
            inst.set_write(
                dst_lane,
                LaneWrite {
                    addr: y.addr(r),
                    mode,
                },
            );
            b.push(inst, stream);
            first_chunk = false;
        }
    }
}

/// Builds `y = Aᵀ·w` (or `y += Aᵀ·w` when `accumulate`) with the column
/// elimination primitive: `w_i` fans out through the butterfly to the
/// lanes owning the target `y` elements (Fig. 6b), the **output
/// multiplier** of each target lane scales it by the streamed matrix
/// value, and the accumulating writeback folds it into `y` — one network
/// instruction per chunk of distinct target banks.
///
/// `a` is in CSR form (rows of `A`); `w` has length `nrows`, `y` length
/// `ncols`.
///
/// # Panics
///
/// Panics if layout lengths do not match the matrix shape.
pub fn col_spmv(
    b: &mut KernelBuilder,
    alloc: &mut Allocator,
    a: &CsrMatrix,
    w: Layout,
    y: Layout,
    accumulate: bool,
) {
    assert_eq!(w.len, a.nrows(), "w layout does not match A rows");
    assert_eq!(y.len, a.ncols(), "y layout does not match A columns");
    let width = b.width();
    if !accumulate {
        crate::elementwise::zero(b, y);
    }
    // High-degree y elements would serialize on the accumulating writeback
    // (one RMW per pipeline latency); give them rotating partial slots that
    // are tree-folded afterwards.
    const PARTIALS: usize = 8;
    let mut degree = vec![0usize; a.ncols()];
    for i in 0..a.nrows() {
        for (j, _) in a.row(i) {
            degree[j] += 1;
        }
    }
    // j -> (partial base addr, touches so far).
    let mut partials: std::collections::HashMap<usize, (usize, usize)> =
        std::collections::HashMap::new();
    for (j, &d) in degree.iter().enumerate() {
        if d > PARTIALS {
            let base = alloc.alloc_rows(PARTIALS);
            partials.insert(j, (base, 0));
            // Zero this column's partial slots.
            let lane = y.bank(j);
            for p in 0..PARTIALS {
                let mut z = NetInstruction::nop(width);
                z.kind = InstrKind::Elementwise;
                z.set_input(lane, LaneSource::RegTimesImm { addr: 0, imm: 0.0 });
                z.route(lane, lane);
                z.set_write(
                    lane,
                    LaneWrite {
                        addr: base + p,
                        mode: WriteMode::Store,
                    },
                );
                b.push(z, vec![]);
            }
        }
    }
    for i in 0..a.nrows() {
        let entries: Vec<(usize, f64)> = a.row(i).collect();
        if entries.is_empty() {
            continue;
        }
        let (src_lane, src_addr) = w.loc(i);
        let mut idx = 0usize;
        while idx < entries.len() {
            let mut used = vec![false; width];
            let mut inst = NetInstruction::nop(width);
            inst.kind = InstrKind::ColElim;
            inst.set_input(src_lane, LaneSource::Reg { addr: src_addr });
            let mut rs = RouteSpace::new(width);
            rs.try_claim_input(src_lane, 0);
            let mut stream = Vec::new();
            while idx < entries.len() {
                let (j, v) = entries[idx];
                let lane = y.bank(j);
                if used[lane] {
                    break;
                }
                assert!(
                    rs.try_route(&mut inst, 0, src_lane, lane),
                    "multicast is always routable"
                );
                used[lane] = true;
                let addr = match partials.get_mut(&j) {
                    Some((base, touches)) => {
                        let slot = *base + *touches % PARTIALS;
                        *touches += 1;
                        slot
                    }
                    None => y.addr(j),
                };
                inst.set_out_mul(lane, OutMul::MulStream { negate: false });
                inst.set_write(
                    lane,
                    LaneWrite {
                        addr,
                        mode: WriteMode::Add,
                    },
                );
                // Output-phase stream key: width + lane (consumed after all
                // input-phase words of the issue slot).
                stream.push((width + lane, v));
                idx += 1;
            }
            b.push(inst, stream);
        }
    }
    // Fold the partial slots into y (binary tree over addresses; folds of
    // different columns pack into shared slots when their lanes differ).
    let mut fold_cols: Vec<(usize, usize)> =
        partials.iter().map(|(&j, &(b0, _))| (j, b0)).collect();
    fold_cols.sort_unstable();
    for (j, base) in fold_cols {
        let lane = y.bank(j);
        let mut span = PARTIALS;
        while span > 1 {
            span /= 2;
            for p in 0..span {
                let mut inst = NetInstruction::nop(width);
                inst.kind = InstrKind::ColElim;
                inst.set_input(
                    lane,
                    LaneSource::Reg {
                        addr: base + p + span,
                    },
                );
                inst.route(lane, lane);
                inst.set_write(
                    lane,
                    LaneWrite {
                        addr: base + p,
                        mode: WriteMode::Add,
                    },
                );
                b.push(inst, vec![]);
            }
        }
        let mut fin = NetInstruction::nop(width);
        fin.kind = InstrKind::ColElim;
        fin.set_input(lane, LaneSource::Reg { addr: base });
        fin.route(lane, lane);
        fin.set_write(
            lane,
            LaneWrite {
                addr: y.addr(j),
                mode: WriteMode::Add,
            },
        );
        b.push(fin, vec![]);
    }
}

/// Expands an upper-triangle-stored symmetric matrix into its full form —
/// used to run the MAC generator over the objective matrix `P`.
pub fn symmetrize_upper(upper: &CscMatrix) -> CscMatrix {
    let n = upper.ncols();
    let mut rows = Vec::with_capacity(2 * upper.nnz());
    let mut cols = Vec::with_capacity(2 * upper.nnz());
    let mut vals = Vec::with_capacity(2 * upper.nnz());
    for (i, j, v) in upper.iter() {
        rows.push(i);
        cols.push(j);
        vals.push(v);
        if i != j {
            rows.push(j);
            cols.push(i);
            vals.push(v);
        }
    }
    CscMatrix::from_triplet_parts(n, n, &rows, &cols, &vals)
        .expect("mirroring preserves csc invariants")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elementwise::load_vec;
    use crate::schedule::{schedule, Schedule, ScheduleOptions};
    use mib_core::hbm::HbmStream;
    use mib_core::machine::{HazardPolicy, Machine};
    use mib_core::MibConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn cfg() -> MibConfig {
        MibConfig {
            width: 8,
            bank_depth: 4096,
            clock_hz: 1e6,
        }
    }

    fn run_schedule(s: &Schedule) -> Machine {
        let mut m = Machine::new(cfg());
        let mut hbm = HbmStream::new(s.hbm.clone());
        m.run(&s.program, &mut hbm, HazardPolicy::Strict)
            .expect("scheduled kernel must be hazard-free");
        m
    }

    fn read_layout(m: &Machine, v: Layout) -> Vec<f64> {
        (0..v.len)
            .map(|e| m.regs().read(v.bank(e), v.addr(e)).unwrap())
            .collect()
    }

    fn random_sparse(nrows: usize, ncols: usize, density: f64, seed: u64) -> CscMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        for i in 0..nrows {
            for j in 0..ncols {
                if rng.gen::<f64>() < density {
                    rows.push(i);
                    cols.push(j);
                    vals.push(rng.gen_range(-2.0..2.0));
                }
            }
        }
        CscMatrix::from_triplet_parts(nrows, ncols, &rows, &cols, &vals).unwrap()
    }

    fn check_mac(a: &CscMatrix, seed: u64, prefetch: bool) {
        let c = cfg();
        let mut rng = StdRng::seed_from_u64(seed);
        let xv: Vec<f64> = (0..a.ncols()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut b = KernelBuilder::new("spmv", c.width, c.latency());
        let mut alloc = Allocator::new(c.width);
        let x = alloc.alloc(a.ncols());
        let y = alloc.alloc(a.nrows());
        load_vec(&mut b, x, &xv);
        mac_spmv(
            &mut b,
            &mut alloc,
            &a.to_csr(),
            x,
            y,
            false,
            SpmvOptions { prefetch },
        );
        let s = schedule(&b.finish(), ScheduleOptions::default());
        let m = run_schedule(&s);
        let got = read_layout(&m, y);
        let want = a.mul_vec(&xv);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-12, "mac mismatch: {g} vs {w}");
        }
    }

    #[test]
    fn mac_matches_reference_with_prefetch() {
        let a = random_sparse(20, 17, 0.3, 1);
        check_mac(&a, 2, true);
    }

    #[test]
    fn mac_matches_reference_without_prefetch() {
        let a = random_sparse(20, 17, 0.3, 3);
        check_mac(&a, 4, false);
    }

    #[test]
    fn mac_handles_dense_rows_and_empty_rows() {
        // One dense row (forces chunking), one empty row.
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        for j in 0..30 {
            rows.push(0);
            cols.push(j);
            vals.push(1.0 + j as f64);
        }
        rows.push(2);
        cols.push(5);
        vals.push(-3.0);
        let a = CscMatrix::from_triplet_parts(3, 30, &rows, &cols, &vals).unwrap();
        check_mac(&a, 5, true);
    }

    #[test]
    fn col_spmv_matches_reference() {
        let a = random_sparse(19, 23, 0.25, 7);
        let c = cfg();
        let mut rng = StdRng::seed_from_u64(8);
        let wv: Vec<f64> = (0..a.nrows()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut b = KernelBuilder::new("at_mul", c.width, c.latency());
        let mut alloc = Allocator::new(c.width);
        let w = alloc.alloc(a.nrows());
        let y = alloc.alloc(a.ncols());
        load_vec(&mut b, w, &wv);
        col_spmv(&mut b, &mut alloc, &a.to_csr(), w, y, false);
        let s = schedule(&b.finish(), ScheduleOptions::default());
        let m = run_schedule(&s);
        let got = read_layout(&m, y);
        let want = a.tr_mul_vec(&wv);
        for (g, wnt) in got.iter().zip(&want) {
            assert!((g - wnt).abs() < 1e-12, "col spmv mismatch: {g} vs {wnt}");
        }
    }

    #[test]
    fn symmetric_product_via_symmetrize() {
        let upper = {
            let full = random_sparse(12, 12, 0.3, 9);
            // Make symmetric by taking upper triangle.
            full.upper_triangle().unwrap()
        };
        let full = symmetrize_upper(&upper);
        let xv: Vec<f64> = (0..12).map(|i| (i as f64) / 3.0 - 2.0).collect();
        let want = upper.sym_upper_mul_vec(&xv);
        assert_eq!(full.mul_vec(&xv), want);
        check_mac(&full, 10, true);
    }

    #[test]
    fn multi_issue_beats_single_issue_on_spmv() {
        let a = random_sparse(40, 40, 0.1, 11);
        let c = cfg();
        let mut b = KernelBuilder::new("spmv", c.width, c.latency());
        let mut alloc = Allocator::new(c.width);
        let x = alloc.alloc(40);
        let y = alloc.alloc(40);
        load_vec(&mut b, x, &vec![1.0; 40]);
        mac_spmv(
            &mut b,
            &mut alloc,
            &a.to_csr(),
            x,
            y,
            false,
            SpmvOptions::default(),
        );
        let k = b.finish();
        let multi = schedule(&k, ScheduleOptions::default());
        let single = schedule(
            &k,
            ScheduleOptions {
                multi_issue: false,
                ..ScheduleOptions::default()
            },
        );
        assert!(
            multi.slots() * 2 < single.slots(),
            "multi-issue {} vs single-issue {}",
            multi.slots(),
            single.slots()
        );
        // Both must execute correctly.
        let m1 = run_schedule(&multi);
        let m2 = run_schedule(&single);
        assert_eq!(read_layout(&m1, y), read_layout(&m2, y));
    }
}
