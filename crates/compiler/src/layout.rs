//! Register-file data layouts.
//!
//! The compiler distributes every vector cyclically over the `C` banks:
//! element `e` lives in bank `e mod C` at address `base + e div C`. This is
//! the distribution the paper's input alignment network establishes
//! (Section III.A) — it makes contiguous `load_vec` streams trivially
//! alignable and spreads random accesses evenly.

/// A cyclic layout of a length-`len` vector over `width` banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// First address used in each bank.
    pub base: usize,
    /// Vector length.
    pub len: usize,
    /// Number of banks (`C`).
    pub width: usize,
}

impl Layout {
    /// Bank holding element `e`.
    pub fn bank(&self, e: usize) -> usize {
        debug_assert!(e < self.len);
        e % self.width
    }

    /// Address of element `e` within its bank.
    pub fn addr(&self, e: usize) -> usize {
        debug_assert!(e < self.len);
        self.base + e / self.width
    }

    /// `(bank, addr)` of element `e`.
    pub fn loc(&self, e: usize) -> (usize, usize) {
        (self.bank(e), self.addr(e))
    }

    /// Rows of register space occupied (addresses `base..base+rows`).
    pub fn rows(&self) -> usize {
        self.len.div_ceil(self.width)
    }
}

/// Bump allocator for register-file address space, shared by all vectors of
/// one compiled problem.
#[derive(Debug, Clone)]
pub struct Allocator {
    width: usize,
    next: usize,
}

impl Allocator {
    /// Creates an allocator for a machine of the given width.
    pub fn new(width: usize) -> Self {
        Allocator { width, next: 0 }
    }

    /// Allocates a cyclic layout for a vector of length `len`.
    pub fn alloc(&mut self, len: usize) -> Layout {
        let layout = Layout {
            base: self.next,
            len,
            width: self.width,
        };
        self.next += len.div_ceil(self.width).max(1);
        layout
    }

    /// Allocates `rows` raw rows (one address across every bank), returning
    /// the base address — used for scratch pads with custom indexing.
    pub fn alloc_rows(&mut self, rows: usize) -> usize {
        let base = self.next;
        self.next += rows;
        base
    }

    /// Machine width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Addresses used so far (per bank).
    pub fn used(&self) -> usize {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cyclic_mapping() {
        let l = Layout {
            base: 4,
            len: 10,
            width: 4,
        };
        assert_eq!(l.loc(0), (0, 4));
        assert_eq!(l.loc(5), (1, 5));
        assert_eq!(l.loc(9), (1, 6));
        assert_eq!(l.rows(), 3);
    }

    #[test]
    fn allocator_never_overlaps() {
        let mut a = Allocator::new(8);
        let v1 = a.alloc(8);
        let v2 = a.alloc(9);
        let v3 = a.alloc(1);
        assert_eq!(v1.base, 0);
        assert_eq!(v2.base, 1);
        assert_eq!(v3.base, 3);
        assert_eq!(a.used(), 4);
        let r = a.alloc_rows(2);
        assert_eq!(r, 4);
        assert_eq!(a.used(), 6);
    }

    #[test]
    fn zero_length_vector_takes_one_row() {
        let mut a = Allocator::new(4);
        let v = a.alloc(0);
        let w = a.alloc(4);
        assert_ne!(v.base, w.base);
    }
}
