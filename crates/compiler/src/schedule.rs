//! First-fit multi-issue scheduling (Section IV.B of the paper).
//!
//! Every logical instruction is encoded as a hardware-occupancy footprint
//! (one bit per network node, `C·(log₂C + 1)` bits) plus per-lane register
//! port usage. Scheduling is bin packing: walk the instructions in their
//! initial (algorithm) order; place each into the **first** issue slot that
//! is at or after its dependency-ready slot and whose already-packed
//! occupancy does not collide. Dependency-ready slots encode the pipeline
//! data hazards (RAW = full latency), so the packed program is hazard-free
//! by construction — the machine's strict verification mode re-checks this.
//!
//! With `multi_issue` disabled the scheduler reproduces the paper's
//! "before reordering" baseline (Figure 8, top left): one instruction per
//! slot in program order, with empty slots inserted to satisfy data
//! hazards.

use mib_core::instruction::NetInstruction;

use crate::kernel::Kernel;

/// Options controlling the scheduler — the knobs of the Fig. 8 ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleOptions {
    /// Pack independent instructions into shared slots (first-fit). When
    /// `false`, instructions stay in order, one per slot, with nop padding
    /// for data hazards.
    pub multi_issue: bool,
    /// Cap on how far past the ready slot first-fit probes before giving up
    /// and appending a fresh slot (bounds compile time on dense programs).
    pub probe_limit: usize,
}

impl Default for ScheduleOptions {
    fn default() -> Self {
        ScheduleOptions {
            multi_issue: true,
            probe_limit: 4096,
        }
    }
}

/// A scheduled program: one (possibly merged) network instruction per issue
/// slot, plus the HBM stream laid out in consumption order.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Issue slots (nop slots included).
    pub program: Vec<NetInstruction>,
    /// HBM words in exactly the order the machine consumes them.
    pub hbm: Vec<f64>,
    /// Issue slot assigned to each logical instruction.
    pub slot_of: Vec<usize>,
    /// Number of logical instructions packed.
    pub logical_count: usize,
    /// How many instructions exhausted the first-fit probe limit and were
    /// placed in force-appended fresh slots. Nonzero means packing quality
    /// degraded (the verifier reports it as a warning); correctness is
    /// unaffected.
    pub forced_appends: usize,
}

impl Schedule {
    /// Issue slots used (the paper's "total execution clock cycles" metric
    /// for Fig. 8, before adding pipeline drain).
    pub fn slots(&self) -> usize {
        self.program.len()
    }

    /// Non-empty issue slots.
    pub fn busy_slots(&self) -> usize {
        self.program.iter().filter(|i| !i.is_nop()).count()
    }
}

struct SlotState {
    inst: NetInstruction,
    footprint: Vec<bool>,
    /// Write-port usage per lane (footprint covers read ports via the
    /// multiplier row).
    write_lanes: Vec<bool>,
    /// `(lane, word)` pairs for HBM stream reassembly.
    stream: Vec<(usize, f64)>,
}

/// Runs the scheduler over a kernel.
pub fn schedule(kernel: &Kernel, opts: ScheduleOptions) -> Schedule {
    let width = kernel.width;
    let mut slots: Vec<SlotState> = Vec::new();
    let mut slot_of: Vec<usize> = Vec::with_capacity(kernel.instrs.len());
    let mut forced_appends = 0usize;

    for li in &kernel.instrs {
        // Dependency-ready slot.
        let mut ready: u64 = 0;
        for &(dep, delay) in &li.deps {
            ready = ready.max(slot_of[dep] as u64 + delay);
        }
        let mut t = ready as usize;
        if !opts.multi_issue {
            // Sequential: strictly after the previous instruction.
            if let Some(&prev) = slot_of.last() {
                t = t.max(prev + 1);
            }
            while slots.len() <= t {
                slots.push(empty_slot(width));
            }
            debug_assert!(slots[t].inst.is_nop());
            place(&mut slots[t], li);
            slot_of.push(t);
            continue;
        }
        // First-fit probe.
        let fp = li.inst.footprint();
        let wl: Vec<bool> = li.inst.writes().iter().map(Option::is_some).collect();
        let mut probes = 0usize;
        loop {
            if t >= slots.len() {
                while slots.len() <= t {
                    slots.push(empty_slot(width));
                }
                place(&mut slots[t], li);
                break;
            }
            if fits(&slots[t], &fp, &wl) {
                place(&mut slots[t], li);
                break;
            }
            t += 1;
            probes += 1;
            if probes > opts.probe_limit {
                // Append beyond the end.
                forced_appends += 1;
                t = slots.len();
            }
        }
        slot_of.push(t);
    }

    // Assemble the final program and the HBM stream. Within a slot, the
    // machine consumes stream words in lane order.
    let mut program = Vec::with_capacity(slots.len());
    let mut hbm = Vec::new();
    for slot in &mut slots {
        let mut by_lane = std::mem::take(&mut slot.stream);
        by_lane.sort_by_key(|&(lane, _)| lane);
        hbm.extend(by_lane.iter().map(|&(_, w)| w));
        program.push(slot.inst.clone());
    }
    Schedule {
        program,
        hbm,
        slot_of,
        logical_count: kernel.instrs.len(),
        forced_appends,
    }
}

fn empty_slot(width: usize) -> SlotState {
    let inst = NetInstruction::nop(width);
    let footprint = inst.footprint();
    SlotState {
        inst,
        footprint,
        write_lanes: vec![false; width],
        stream: Vec::new(),
    }
}

fn fits(slot: &SlotState, fp: &[bool], wl: &[bool]) -> bool {
    if slot.footprint.iter().zip(fp).any(|(a, b)| *a && *b) {
        return false;
    }
    if slot.write_lanes.iter().zip(wl).any(|(a, b)| *a && *b) {
        return false;
    }
    true
}

fn place(slot: &mut SlotState, li: &crate::kernel::LogicalInstr) {
    slot.inst = slot
        .inst
        .try_merge(&li.inst)
        .expect("fits() guaranteed mergeability");
    for (i, b) in li.inst.footprint().into_iter().enumerate() {
        if b {
            slot.footprint[i] = true;
        }
    }
    for (lane, w) in li.inst.writes().iter().enumerate() {
        if w.is_some() {
            slot.write_lanes[lane] = true;
        }
    }
    for &(lane, word) in &li.stream {
        slot.stream.push((lane, word));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelBuilder;
    use mib_core::instruction::{LaneSource, LaneWrite, WriteMode};

    fn mov(width: usize, lane: usize, from: usize, to: usize) -> NetInstruction {
        let mut i = NetInstruction::nop(width);
        i.set_input(lane, LaneSource::Reg { addr: from });
        i.route(lane, lane);
        i.set_write(
            lane,
            LaneWrite {
                addr: to,
                mode: WriteMode::Store,
            },
        );
        i
    }

    #[test]
    fn independent_instructions_share_a_slot() {
        let mut b = KernelBuilder::new("t", 8, 5);
        for lane in 0..8 {
            b.push(mov(8, lane, 0, 1), vec![]);
        }
        let s = schedule(&b.finish(), ScheduleOptions::default());
        assert_eq!(
            s.slots(),
            1,
            "8 disjoint single-lane moves pack into one slot"
        );
        assert!(s.slot_of.iter().all(|&t| t == 0));
    }

    #[test]
    fn single_issue_keeps_them_apart() {
        let mut b = KernelBuilder::new("t", 8, 5);
        for lane in 0..8 {
            b.push(mov(8, lane, 0, 1), vec![]);
        }
        let s = schedule(
            &b.finish(),
            ScheduleOptions {
                multi_issue: false,
                ..ScheduleOptions::default()
            },
        );
        assert_eq!(s.slots(), 8);
    }

    #[test]
    fn raw_dependency_spaces_by_latency() {
        let mut b = KernelBuilder::new("t", 8, 5);
        b.push(mov(8, 0, 0, 1), vec![]);
        b.push(mov(8, 0, 1, 2), vec![]); // reads (0,1)
        let s = schedule(&b.finish(), ScheduleOptions::default());
        assert_eq!(s.slot_of[1] - s.slot_of[0], 5);
        assert_eq!(s.slots(), 6);
        // The gap slots are nops.
        assert_eq!(s.busy_slots(), 2);
    }

    #[test]
    fn independent_work_fills_hazard_gaps() {
        let mut b = KernelBuilder::new("t", 8, 5);
        b.push(mov(8, 0, 0, 1), vec![]);
        b.push(mov(8, 0, 1, 2), vec![]); // dependent chain on lane 0
        for lane in 1..6 {
            b.push(mov(8, lane, 0, 1), vec![]); // independent
        }
        let s = schedule(&b.finish(), ScheduleOptions::default());
        // Independent moves land in slot 0 alongside the first instruction.
        for i in 2..7 {
            assert_eq!(s.slot_of[i], 0, "instruction {i}");
        }
        assert_eq!(s.slots(), 6);
    }

    #[test]
    fn stream_words_follow_slot_lane_order() {
        let mut b = KernelBuilder::new("t", 8, 5);
        // Two stream loads pushed in reverse lane order; merged into one
        // slot, the machine consumes lane 1 before lane 5... i.e. sorted.
        let mut i1 = NetInstruction::nop(8);
        i1.set_input(5, LaneSource::Stream);
        i1.route(5, 5);
        i1.set_write(
            5,
            LaneWrite {
                addr: 0,
                mode: WriteMode::Store,
            },
        );
        b.push(i1, vec![(5, 55.0)]);
        let mut i2 = NetInstruction::nop(8);
        i2.set_input(1, LaneSource::Stream);
        i2.route(1, 1);
        i2.set_write(
            1,
            LaneWrite {
                addr: 0,
                mode: WriteMode::Store,
            },
        );
        b.push(i2, vec![(1, 11.0)]);
        let s = schedule(&b.finish(), ScheduleOptions::default());
        assert_eq!(s.slots(), 1);
        assert_eq!(s.hbm, vec![11.0, 55.0]);
    }

    #[test]
    fn exhausted_probe_limit_forces_appends_and_counts_them() {
        let mut b = KernelBuilder::new("t", 8, 5);
        // Three writers of the same destination (0,1): WAW chains them one
        // cycle apart, and with probe_limit 0 every occupied probe slot
        // forces an append instead of probing further.
        b.push(mov(8, 0, 2, 1), vec![]);
        b.push(mov(8, 0, 3, 1), vec![]);
        b.push(mov(8, 0, 4, 1), vec![]);
        // Plus an independent lane-0 reader that collides with slot 0.
        b.push(mov(8, 0, 5, 6), vec![]);
        let kernel = b.finish();
        let tight = schedule(
            &kernel,
            ScheduleOptions {
                probe_limit: 0,
                ..ScheduleOptions::default()
            },
        );
        let loose = schedule(&kernel, ScheduleOptions::default());
        assert_eq!(loose.forced_appends, 0);
        assert!(
            tight.forced_appends > 0,
            "probe_limit 0 must force appends on collisions"
        );
        // Forced appends degrade packing, never correctness: each logical
        // instruction still owns a collision-free slot at or after its
        // dependency-ready slot.
        assert!(tight.slots() >= loose.slots());
        for (i, li) in kernel.instrs.iter().enumerate() {
            for &(p, delay) in &li.deps {
                assert!(
                    tight.slot_of[i] as u64 >= tight.slot_of[p] as u64 + delay,
                    "instruction {i} violates its dependency on {p}"
                );
            }
        }
    }

    #[test]
    fn multi_issue_never_reorders_conflicting_writes() {
        let mut b = KernelBuilder::new("t", 8, 5);
        let w1 = b.push(mov(8, 0, 2, 1), vec![]);
        let w2 = b.push(mov(8, 0, 3, 1), vec![]); // same destination (0,1)
        let s = schedule(&b.finish(), ScheduleOptions::default());
        assert!(s.slot_of[w2] > s.slot_of[w1]);
    }
}
