//! Compiled-program cache for parametric re-solves.
//!
//! The MIB programs emitted by [`crate::lower`] are *pattern-specific but
//! value-generic*: the setup / iteration / PCG / check schedules depend on
//! the sparsity patterns of `P` and `A` (plus the matrix values they stream
//! from HBM), the machine configuration, and the handful of settings that
//! shape the algorithm (`σ`, `α`, the per-constraint `ρ` classification).
//! The only program whose contents change when just the **vectors** `q`,
//! `l`, `u` change is the one-time *load* program.
//!
//! [`ProgramCache`] exploits this for the paper's target workload —
//! "millions of QPs with the same sparsity pattern": the first solve of a
//! pattern pays the full lowering cost (symbolic KKT analysis, fill-reducing
//! ordering, elimination tree, instruction scheduling); every subsequent
//! same-pattern solve clones the cached schedules and regenerates only the
//! cheap load program via [`crate::lower::build_load_schedule`].
//!
//! # What counts as "the same pattern"
//!
//! The cache key covers everything that influences the non-load programs:
//!
//! * the dimensions and the full structure **and values** of `P` and `A`
//!   (matrix values stream through the setup/iteration HBM feeds, so a
//!   value change there requires a recompile),
//! * the KKT backend and the machine configuration,
//! * `σ` and `α`, which are baked into instruction immediates,
//! * the per-constraint `ρ` vector, which is derived from the *bound
//!   classification* (loose / equality / inequality) — so bounds may vary
//!   freely across cache hits as long as no constraint changes class.
//!
//! Only `q`, `l`, `u` may differ on a hit — exactly the parameters a
//! [`mib_qp::BatchSolver`] stream varies.

use std::collections::HashMap;

use mib_core::MibConfig;
use mib_qp::{Problem, QpError, Settings};
use mib_sparse::CscMatrix;

use crate::lower::{build_load_schedule, lower, rho_vec_for, LoweredQp};

/// Caches [`LoweredQp`] programs keyed by sparsity pattern (and the other
/// program-shaping inputs; see the module docs) so parametric re-solves
/// skip recompilation.
#[derive(Debug, Default)]
pub struct ProgramCache {
    entries: HashMap<Vec<u64>, LoweredQp>,
    hits: u64,
    misses: u64,
}

impl ProgramCache {
    /// An empty cache.
    pub fn new() -> Self {
        ProgramCache::default()
    }

    /// Compiles `problem` for the MIB machine, reusing cached schedules
    /// when an equivalent problem (same patterns, matrix values, backend,
    /// configuration and `ρ` classification) was lowered before.
    ///
    /// On a hit, only the value-dependent load program is rebuilt; the
    /// setup, iteration, PCG and check schedules are cloned from the cache.
    /// On a miss the full [`lower`] runs and the result is cached.
    ///
    /// # Errors
    ///
    /// Same contract as [`lower`]: invalid settings or a failed symbolic
    /// KKT analysis.
    pub fn lower_cached(
        &mut self,
        problem: &Problem,
        settings: &Settings,
        config: MibConfig,
    ) -> Result<LoweredQp, QpError> {
        settings.validate()?;
        let key = cache_key(problem, settings, config);
        if let Some(cached) = self.entries.get(&key) {
            self.hits += 1;
            let mut lowered = cached.clone();
            lowered.load = build_load_schedule(problem, settings, config);
            crate::verify::maybe_verify_refreshed_load(&lowered.load, &config);
            return Ok(lowered);
        }
        let lowered = lower(problem, settings, config)?;
        self.misses += 1;
        self.entries.insert(key, lowered.clone());
        Ok(lowered)
    }

    /// Number of lowering requests served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of lowering requests that ran the full compiler.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of distinct compiled patterns currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no compiled programs.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops all cached programs and resets the hit/miss counters.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.hits = 0;
        self.misses = 0;
    }
}

/// Builds the canonical key stream for a lowering request.
///
/// The key is the data itself (length-prefixed sections, floats as IEEE-754
/// bits), not a digest, so distinct inputs can never collide.
fn cache_key(problem: &Problem, settings: &Settings, config: MibConfig) -> Vec<u64> {
    let mut key = Vec::new();
    key.push(problem.num_vars() as u64);
    key.push(problem.num_constraints() as u64);
    push_matrix(&mut key, problem.p());
    push_matrix(&mut key, problem.a());
    key.push(settings.backend as u64);
    key.push(settings.sigma.to_bits());
    key.push(settings.alpha.to_bits());
    let rho_vec = rho_vec_for(problem, settings);
    key.push(rho_vec.len() as u64);
    key.extend(rho_vec.iter().map(|r| r.to_bits()));
    key.push(config.width as u64);
    key.push(config.bank_depth as u64);
    key.push(config.clock_hz.to_bits());
    key
}

fn push_matrix(key: &mut Vec<u64>, m: &CscMatrix) {
    key.push(m.col_ptr().len() as u64);
    key.extend(m.col_ptr().iter().map(|&p| p as u64));
    key.push(m.row_ind().len() as u64);
    key.extend(m.row_ind().iter().map(|&i| i as u64));
    key.extend(m.values().iter().map(|v| v.to_bits()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use mib_core::hbm::HbmStream;
    use mib_core::machine::{HazardPolicy, Machine};
    use mib_qp::KktBackend;

    fn config() -> MibConfig {
        MibConfig {
            width: 8,
            bank_depth: 1 << 14,
            clock_hz: 1e6,
        }
    }

    fn problem_with(q: Vec<f64>, u_cap: f64) -> Problem {
        let p = CscMatrix::from_dense(2, 2, &[4.0, 1.0, 0.0, 2.0])
            .upper_triangle()
            .unwrap();
        let a = CscMatrix::from_dense(3, 2, &[1.0, 1.0, 1.0, 0.0, 0.0, 1.0]);
        Problem::new(p, q, a, vec![1.0, 0.0, 0.0], vec![1.0, u_cap, u_cap]).unwrap()
    }

    #[test]
    fn same_pattern_new_values_hits() {
        let mut cache = ProgramCache::new();
        let settings = Settings::default();
        let first = cache
            .lower_cached(&problem_with(vec![1.0, 1.0], 0.7), &settings, config())
            .unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 1));

        // New q and new (same-class) bounds: must be a hit.
        let second = cache
            .lower_cached(&problem_with(vec![-2.0, 0.5], 0.9), &settings, config())
            .unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);

        // Non-load schedules are reused verbatim; the load program carries
        // the new vector values.
        assert_eq!(first.setup.hbm, second.setup.hbm);
        assert_eq!(first.iteration.hbm, second.iteration.hbm);
        assert_eq!(first.iteration_cycles(), second.iteration_cycles());
        assert_eq!(first.load.program.len(), second.load.program.len());
        assert_ne!(
            first.load.hbm, second.load.hbm,
            "load must reflect the new q/u"
        );
    }

    #[test]
    fn cached_load_matches_fresh_lowering_exactly() {
        let mut cache = ProgramCache::new();
        let settings = Settings::default();
        cache
            .lower_cached(&problem_with(vec![1.0, 1.0], 0.7), &settings, config())
            .unwrap();
        let p2 = problem_with(vec![-1.0, 2.0], 0.8);
        let cached = cache.lower_cached(&p2, &settings, config()).unwrap();
        let fresh = lower(&p2, &settings, config()).unwrap();
        // Bitwise identity of every program: a cache hit must be
        // indistinguishable from a fresh lowering.
        assert_eq!(cached.load.program, fresh.load.program);
        assert_eq!(cached.load.hbm, fresh.load.hbm);
        assert_eq!(cached.setup.program, fresh.setup.program);
        assert_eq!(cached.setup.hbm, fresh.setup.hbm);
        assert_eq!(cached.iteration.program, fresh.iteration.program);
        assert_eq!(cached.iteration.hbm, fresh.iteration.hbm);
        assert_eq!(cached.check.program, fresh.check.program);
        assert_eq!(cached.check.hbm, fresh.check.hbm);
    }

    #[test]
    fn cache_hit_programs_verify_clean() {
        let mut cache = ProgramCache::new();
        let settings = Settings::default();
        cache
            .lower_cached(&problem_with(vec![1.0, 1.0], 0.7), &settings, config())
            .unwrap();
        let lowered = cache
            .lower_cached(&problem_with(vec![0.25, -3.0], 0.65), &settings, config())
            .unwrap();
        assert_eq!(cache.hits(), 1);
        for (name, s) in [
            ("load", &lowered.load),
            ("setup", &lowered.setup),
            ("iteration", &lowered.iteration),
            ("check", &lowered.check),
        ] {
            let report = crate::verify::verify_schedule(name, s, &lowered.config);
            assert!(report.is_certified(), "{report}");
        }
        let cert = crate::verify::certify_lowered(&lowered);
        assert!(cert.is_certified(), "{cert}");
    }

    #[test]
    fn changed_pattern_misses() {
        let mut cache = ProgramCache::new();
        let settings = Settings::default();
        cache
            .lower_cached(&problem_with(vec![1.0, 1.0], 0.7), &settings, config())
            .unwrap();
        // Different A pattern (extra nonzero).
        let p = CscMatrix::from_dense(2, 2, &[4.0, 1.0, 0.0, 2.0])
            .upper_triangle()
            .unwrap();
        let a = CscMatrix::from_dense(3, 2, &[1.0, 1.0, 0.5, 1.0, 0.0, 1.0]);
        let other = Problem::new(
            p,
            vec![1.0, 1.0],
            a,
            vec![1.0, 0.0, 0.0],
            vec![1.0, 0.7, 0.7],
        )
        .unwrap();
        cache.lower_cached(&other, &settings, config()).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn changed_matrix_values_miss() {
        let mut cache = ProgramCache::new();
        let settings = Settings::default();
        cache
            .lower_cached(&problem_with(vec![1.0, 1.0], 0.7), &settings, config())
            .unwrap();
        // Same pattern, different P values: setup/iteration streams change,
        // so this must recompile.
        let p = CscMatrix::from_dense(2, 2, &[5.0, 1.0, 0.0, 2.0])
            .upper_triangle()
            .unwrap();
        let a = CscMatrix::from_dense(3, 2, &[1.0, 1.0, 1.0, 0.0, 0.0, 1.0]);
        let other = Problem::new(
            p,
            vec![1.0, 1.0],
            a,
            vec![1.0, 0.0, 0.0],
            vec![1.0, 0.7, 0.7],
        )
        .unwrap();
        cache.lower_cached(&other, &settings, config()).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
    }

    #[test]
    fn changed_rho_classification_misses() {
        let mut cache = ProgramCache::new();
        let settings = Settings::default();
        cache
            .lower_cached(&problem_with(vec![1.0, 1.0], 0.7), &settings, config())
            .unwrap();
        // Turning the inequality rows into equalities changes the rho
        // vector, hence the KKT values streamed by setup — full recompile.
        let p = CscMatrix::from_dense(2, 2, &[4.0, 1.0, 0.0, 2.0])
            .upper_triangle()
            .unwrap();
        let a = CscMatrix::from_dense(3, 2, &[1.0, 1.0, 1.0, 0.0, 0.0, 1.0]);
        let eq = Problem::new(
            p,
            vec![1.0, 1.0],
            a,
            vec![1.0, 0.3, 0.3],
            vec![1.0, 0.3, 0.3],
        )
        .unwrap();
        cache.lower_cached(&eq, &settings, config()).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
    }

    #[test]
    fn indirect_hit_refreshes_preconditioner_load() {
        let mut cache = ProgramCache::new();
        let settings = Settings::with_backend(KktBackend::Indirect);
        cache
            .lower_cached(&problem_with(vec![1.0, 1.0], 0.7), &settings, config())
            .unwrap();
        let p2 = problem_with(vec![0.5, -0.5], 0.7);
        let cached = cache.lower_cached(&p2, &settings, config()).unwrap();
        assert_eq!(cache.hits(), 1);
        let fresh = lower(&p2, &settings, config()).unwrap();
        assert_eq!(cached.load.hbm, fresh.load.hbm);
        assert_eq!(cached.pcg_iteration.hbm, fresh.pcg_iteration.hbm);
    }

    #[test]
    fn cached_programs_execute_hazard_free() {
        let mut cache = ProgramCache::new();
        let settings = Settings::default();
        cache
            .lower_cached(&problem_with(vec![1.0, 1.0], 0.7), &settings, config())
            .unwrap();
        let lowered = cache
            .lower_cached(&problem_with(vec![-1.0, 0.3], 0.6), &settings, config())
            .unwrap();
        let mut m = Machine::new(lowered.config);
        for s in [
            &lowered.load,
            &lowered.setup,
            &lowered.iteration,
            &lowered.check,
        ] {
            let mut hbm = HbmStream::new(s.hbm.clone());
            m.run(&s.program, &mut hbm, HazardPolicy::Strict)
                .expect("cache-refreshed programs must be hazard-free");
        }
    }

    #[test]
    fn clear_resets_counters() {
        let mut cache = ProgramCache::new();
        let settings = Settings::default();
        cache
            .lower_cached(&problem_with(vec![1.0, 1.0], 0.7), &settings, config())
            .unwrap();
        cache
            .lower_cached(&problem_with(vec![2.0, 2.0], 0.7), &settings, config())
            .unwrap();
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 1, 1));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
    }
}
