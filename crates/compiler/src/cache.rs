//! Compiled-program cache for parametric re-solves.
//!
//! The MIB programs emitted by [`crate::lower`] are *pattern-specific but
//! value-generic*: the setup / iteration / PCG / check schedules depend on
//! the sparsity patterns of `P` and `A` (plus the matrix values they stream
//! from HBM), the machine configuration, and the handful of settings that
//! shape the algorithm (`σ`, `α`, the per-constraint `ρ` classification).
//! The only program whose contents change when just the **vectors** `q`,
//! `l`, `u` change is the one-time *load* program.
//!
//! [`ProgramCache`] exploits this for the paper's target workload —
//! "millions of QPs with the same sparsity pattern": the first solve of a
//! pattern pays the full lowering cost (symbolic KKT analysis, fill-reducing
//! ordering, elimination tree, instruction scheduling); every subsequent
//! same-pattern solve clones the cached schedules and regenerates only the
//! cheap load program via [`crate::lower::build_load_schedule`].
//!
//! # What counts as "the same pattern"
//!
//! The cache key covers everything that influences the non-load programs:
//!
//! * the dimensions and the full structure **and values** of `P` and `A`
//!   (matrix values stream through the setup/iteration HBM feeds, so a
//!   value change there requires a recompile),
//! * the KKT backend and the machine configuration,
//! * `σ` and `α`, which are baked into instruction immediates,
//! * the per-constraint `ρ` vector, which is derived from the *bound
//!   classification* (loose / equality / inequality) — so bounds may vary
//!   freely across cache hits as long as no constraint changes class.
//!
//! Only `q`, `l`, `u` may differ on a hit — exactly the parameters a
//! [`mib_qp::BatchSolver`] stream varies.

use std::collections::HashMap;

use mib_core::MibConfig;
use mib_qp::{Problem, QpError, Settings};
use mib_sparse::CscMatrix;

use crate::lower::{build_load_schedule, lower, rho_vec_for, LoweredQp};

/// Point-in-time counters of a [`ProgramCache`] (see
/// [`ProgramCache::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lowering requests served from the cache.
    pub hits: u64,
    /// Lowering requests that ran the full compiler.
    pub misses: u64,
    /// Entries dropped by the LRU capacity bound.
    pub evictions: u64,
    /// Estimated bytes held by the resident entries (keys + programs +
    /// HBM streams + slot maps).
    pub resident_bytes: usize,
}

/// One resident compiled program plus its LRU bookkeeping.
#[derive(Debug)]
struct CacheEntry {
    lowered: LoweredQp,
    /// Monotonic use tick; the smallest tick is the eviction victim.
    last_used: u64,
    /// Estimated size, accounted into [`CacheStats::resident_bytes`].
    bytes: usize,
}

/// Caches [`LoweredQp`] programs keyed by sparsity pattern (and the other
/// program-shaping inputs; see the module docs) so parametric re-solves
/// skip recompilation. The cache can be bounded
/// ([`ProgramCache::with_capacity`]); when full, the least-recently-used
/// compiled pattern is evicted. Eviction only ever costs a recompile — a
/// re-lowered pattern is bitwise identical to the evicted one.
#[derive(Debug)]
pub struct ProgramCache {
    entries: HashMap<Vec<u64>, CacheEntry>,
    /// Maximum resident entries; `usize::MAX` means unbounded.
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl Default for ProgramCache {
    fn default() -> Self {
        ProgramCache {
            entries: HashMap::new(),
            capacity: usize::MAX,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }
}

impl ProgramCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        ProgramCache::default()
    }

    /// An empty cache holding at most `max_entries` compiled patterns,
    /// evicting the least recently used beyond that.
    ///
    /// # Panics
    ///
    /// Panics if `max_entries` is zero — a cache that can hold nothing
    /// would silently recompile every request.
    pub fn with_capacity(max_entries: usize) -> Self {
        assert!(max_entries > 0, "cache capacity must be at least 1");
        ProgramCache {
            capacity: max_entries,
            ..ProgramCache::default()
        }
    }

    /// Changes the capacity bound, evicting LRU entries immediately if the
    /// new bound is tighter than the current population.
    ///
    /// # Panics
    ///
    /// Panics if `max_entries` is zero.
    pub fn set_capacity(&mut self, max_entries: usize) {
        assert!(max_entries > 0, "cache capacity must be at least 1");
        self.capacity = max_entries;
        self.evict_to_capacity();
    }

    /// The configured capacity bound (`usize::MAX` when unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Compiles `problem` for the MIB machine, reusing cached schedules
    /// when an equivalent problem (same patterns, matrix values, backend,
    /// configuration and `ρ` classification) was lowered before.
    ///
    /// On a hit, only the value-dependent load program is rebuilt; the
    /// setup, iteration, PCG and check schedules are cloned from the cache.
    /// On a miss the full [`lower`] runs and the result is cached,
    /// evicting the least-recently-used pattern if the cache is full.
    ///
    /// # Errors
    ///
    /// Same contract as [`lower`]: invalid settings or a failed symbolic
    /// KKT analysis.
    pub fn lower_cached(
        &mut self,
        problem: &Problem,
        settings: &Settings,
        config: MibConfig,
    ) -> Result<LoweredQp, QpError> {
        settings.validate()?;
        let tracing = mib_trace::enabled();
        let key = cache_key(problem, settings, config);
        self.tick += 1;
        if let Some(entry) = self.entries.get_mut(&key) {
            self.hits += 1;
            mib_trace::record_if(
                tracing,
                mib_trace::Event::CacheAccess {
                    name: "program_cache",
                    hit: true,
                },
            );
            entry.last_used = self.tick;
            let mut lowered = entry.lowered.clone();
            lowered.load = build_load_schedule(problem, settings, config);
            crate::verify::maybe_verify_refreshed_load(&lowered.load, &config);
            return Ok(lowered);
        }
        let lowered = lower(problem, settings, config)?;
        self.misses += 1;
        mib_trace::record_if(
            tracing,
            mib_trace::Event::CacheAccess {
                name: "program_cache",
                hit: false,
            },
        );
        let bytes = entry_bytes(&key, &lowered);
        self.entries.insert(
            key,
            CacheEntry {
                lowered: lowered.clone(),
                last_used: self.tick,
                bytes,
            },
        );
        self.evict_to_capacity();
        Ok(lowered)
    }

    /// Drops least-recently-used entries until the population fits the
    /// capacity bound.
    fn evict_to_capacity(&mut self) {
        while self.entries.len() > self.capacity {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("non-empty: len > capacity >= 1");
            self.entries.remove(&victim);
            self.evictions += 1;
        }
    }

    /// Number of lowering requests served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of lowering requests that ran the full compiler.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of entries dropped by the LRU capacity bound.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Counters plus the estimated resident footprint, for metrics export
    /// (the `mib-serve` runtime surfaces these per pattern shard).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            resident_bytes: self.entries.values().map(|e| e.bytes).sum(),
        }
    }

    /// Number of distinct compiled patterns currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no compiled programs.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops all cached programs and resets every counter.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.hits = 0;
        self.misses = 0;
        self.evictions = 0;
        self.tick = 0;
    }
}

/// Estimated heap footprint of one cache entry: the key stream plus every
/// schedule's program, HBM stream and slot map. An estimate (container
/// headers and padding are ignored), but proportional to the real cost.
fn entry_bytes(key: &[u64], lowered: &LoweredQp) -> usize {
    let schedule = |s: &crate::schedule::Schedule| {
        std::mem::size_of_val(s.program.as_slice())
            + std::mem::size_of_val(s.hbm.as_slice())
            + std::mem::size_of_val(s.slot_of.as_slice())
    };
    key.len() * 8
        + [
            &lowered.load,
            &lowered.setup,
            &lowered.iteration,
            &lowered.pcg_iteration,
            &lowered.check,
        ]
        .into_iter()
        .map(schedule)
        .sum::<usize>()
}

/// Builds the canonical key stream for a lowering request.
///
/// The key is the data itself (length-prefixed sections, floats as IEEE-754
/// bits), not a digest, so distinct inputs can never collide.
fn cache_key(problem: &Problem, settings: &Settings, config: MibConfig) -> Vec<u64> {
    let mut key = Vec::new();
    key.push(problem.num_vars() as u64);
    key.push(problem.num_constraints() as u64);
    push_matrix(&mut key, problem.p());
    push_matrix(&mut key, problem.a());
    key.push(settings.backend as u64);
    key.push(settings.sigma.to_bits());
    key.push(settings.alpha.to_bits());
    let rho_vec = rho_vec_for(problem, settings);
    key.push(rho_vec.len() as u64);
    key.extend(rho_vec.iter().map(|r| r.to_bits()));
    key.push(config.width as u64);
    key.push(config.bank_depth as u64);
    key.push(config.clock_hz.to_bits());
    key
}

fn push_matrix(key: &mut Vec<u64>, m: &CscMatrix) {
    key.push(m.col_ptr().len() as u64);
    key.extend(m.col_ptr().iter().map(|&p| p as u64));
    key.push(m.row_ind().len() as u64);
    key.extend(m.row_ind().iter().map(|&i| i as u64));
    key.extend(m.values().iter().map(|v| v.to_bits()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use mib_core::hbm::HbmStream;
    use mib_core::machine::{HazardPolicy, Machine};
    use mib_qp::KktBackend;

    fn config() -> MibConfig {
        MibConfig {
            width: 8,
            bank_depth: 1 << 14,
            clock_hz: 1e6,
        }
    }

    fn problem_with(q: Vec<f64>, u_cap: f64) -> Problem {
        let p = CscMatrix::from_dense(2, 2, &[4.0, 1.0, 0.0, 2.0])
            .upper_triangle()
            .unwrap();
        let a = CscMatrix::from_dense(3, 2, &[1.0, 1.0, 1.0, 0.0, 0.0, 1.0]);
        Problem::new(p, q, a, vec![1.0, 0.0, 0.0], vec![1.0, u_cap, u_cap]).unwrap()
    }

    #[test]
    fn same_pattern_new_values_hits() {
        let mut cache = ProgramCache::new();
        let settings = Settings::default();
        let first = cache
            .lower_cached(&problem_with(vec![1.0, 1.0], 0.7), &settings, config())
            .unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 1));

        // New q and new (same-class) bounds: must be a hit.
        let second = cache
            .lower_cached(&problem_with(vec![-2.0, 0.5], 0.9), &settings, config())
            .unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);

        // Non-load schedules are reused verbatim; the load program carries
        // the new vector values.
        assert_eq!(first.setup.hbm, second.setup.hbm);
        assert_eq!(first.iteration.hbm, second.iteration.hbm);
        assert_eq!(first.iteration_cycles(), second.iteration_cycles());
        assert_eq!(first.load.program.len(), second.load.program.len());
        assert_ne!(
            first.load.hbm, second.load.hbm,
            "load must reflect the new q/u"
        );
    }

    #[test]
    fn cached_load_matches_fresh_lowering_exactly() {
        let mut cache = ProgramCache::new();
        let settings = Settings::default();
        cache
            .lower_cached(&problem_with(vec![1.0, 1.0], 0.7), &settings, config())
            .unwrap();
        let p2 = problem_with(vec![-1.0, 2.0], 0.8);
        let cached = cache.lower_cached(&p2, &settings, config()).unwrap();
        let fresh = lower(&p2, &settings, config()).unwrap();
        // Bitwise identity of every program: a cache hit must be
        // indistinguishable from a fresh lowering.
        assert_eq!(cached.load.program, fresh.load.program);
        assert_eq!(cached.load.hbm, fresh.load.hbm);
        assert_eq!(cached.setup.program, fresh.setup.program);
        assert_eq!(cached.setup.hbm, fresh.setup.hbm);
        assert_eq!(cached.iteration.program, fresh.iteration.program);
        assert_eq!(cached.iteration.hbm, fresh.iteration.hbm);
        assert_eq!(cached.check.program, fresh.check.program);
        assert_eq!(cached.check.hbm, fresh.check.hbm);
    }

    #[test]
    fn cache_hit_programs_verify_clean() {
        let mut cache = ProgramCache::new();
        let settings = Settings::default();
        cache
            .lower_cached(&problem_with(vec![1.0, 1.0], 0.7), &settings, config())
            .unwrap();
        let lowered = cache
            .lower_cached(&problem_with(vec![0.25, -3.0], 0.65), &settings, config())
            .unwrap();
        assert_eq!(cache.hits(), 1);
        for (name, s) in [
            ("load", &lowered.load),
            ("setup", &lowered.setup),
            ("iteration", &lowered.iteration),
            ("check", &lowered.check),
        ] {
            let report = crate::verify::verify_schedule(name, s, &lowered.config);
            assert!(report.is_certified(), "{report}");
        }
        let cert = crate::verify::certify_lowered(&lowered);
        assert!(cert.is_certified(), "{cert}");
    }

    #[test]
    fn changed_pattern_misses() {
        let mut cache = ProgramCache::new();
        let settings = Settings::default();
        cache
            .lower_cached(&problem_with(vec![1.0, 1.0], 0.7), &settings, config())
            .unwrap();
        // Different A pattern (extra nonzero).
        let p = CscMatrix::from_dense(2, 2, &[4.0, 1.0, 0.0, 2.0])
            .upper_triangle()
            .unwrap();
        let a = CscMatrix::from_dense(3, 2, &[1.0, 1.0, 0.5, 1.0, 0.0, 1.0]);
        let other = Problem::new(
            p,
            vec![1.0, 1.0],
            a,
            vec![1.0, 0.0, 0.0],
            vec![1.0, 0.7, 0.7],
        )
        .unwrap();
        cache.lower_cached(&other, &settings, config()).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn changed_matrix_values_miss() {
        let mut cache = ProgramCache::new();
        let settings = Settings::default();
        cache
            .lower_cached(&problem_with(vec![1.0, 1.0], 0.7), &settings, config())
            .unwrap();
        // Same pattern, different P values: setup/iteration streams change,
        // so this must recompile.
        let p = CscMatrix::from_dense(2, 2, &[5.0, 1.0, 0.0, 2.0])
            .upper_triangle()
            .unwrap();
        let a = CscMatrix::from_dense(3, 2, &[1.0, 1.0, 1.0, 0.0, 0.0, 1.0]);
        let other = Problem::new(
            p,
            vec![1.0, 1.0],
            a,
            vec![1.0, 0.0, 0.0],
            vec![1.0, 0.7, 0.7],
        )
        .unwrap();
        cache.lower_cached(&other, &settings, config()).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
    }

    #[test]
    fn changed_rho_classification_misses() {
        let mut cache = ProgramCache::new();
        let settings = Settings::default();
        cache
            .lower_cached(&problem_with(vec![1.0, 1.0], 0.7), &settings, config())
            .unwrap();
        // Turning the inequality rows into equalities changes the rho
        // vector, hence the KKT values streamed by setup — full recompile.
        let p = CscMatrix::from_dense(2, 2, &[4.0, 1.0, 0.0, 2.0])
            .upper_triangle()
            .unwrap();
        let a = CscMatrix::from_dense(3, 2, &[1.0, 1.0, 1.0, 0.0, 0.0, 1.0]);
        let eq = Problem::new(
            p,
            vec![1.0, 1.0],
            a,
            vec![1.0, 0.3, 0.3],
            vec![1.0, 0.3, 0.3],
        )
        .unwrap();
        cache.lower_cached(&eq, &settings, config()).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
    }

    #[test]
    fn indirect_hit_refreshes_preconditioner_load() {
        let mut cache = ProgramCache::new();
        let settings = Settings::with_backend(KktBackend::Indirect);
        cache
            .lower_cached(&problem_with(vec![1.0, 1.0], 0.7), &settings, config())
            .unwrap();
        let p2 = problem_with(vec![0.5, -0.5], 0.7);
        let cached = cache.lower_cached(&p2, &settings, config()).unwrap();
        assert_eq!(cache.hits(), 1);
        let fresh = lower(&p2, &settings, config()).unwrap();
        assert_eq!(cached.load.hbm, fresh.load.hbm);
        assert_eq!(cached.pcg_iteration.hbm, fresh.pcg_iteration.hbm);
    }

    #[test]
    fn cached_programs_execute_hazard_free() {
        let mut cache = ProgramCache::new();
        let settings = Settings::default();
        cache
            .lower_cached(&problem_with(vec![1.0, 1.0], 0.7), &settings, config())
            .unwrap();
        let lowered = cache
            .lower_cached(&problem_with(vec![-1.0, 0.3], 0.6), &settings, config())
            .unwrap();
        let mut m = Machine::new(lowered.config);
        for s in [
            &lowered.load,
            &lowered.setup,
            &lowered.iteration,
            &lowered.check,
        ] {
            let mut hbm = HbmStream::new(s.hbm.clone());
            m.run(&s.program, &mut hbm, HazardPolicy::Strict)
                .expect("cache-refreshed programs must be hazard-free");
        }
    }

    /// A structurally distinct problem family: `variant` scales the P
    /// values, so each variant is its own cache key.
    fn problem_variant(variant: usize) -> Problem {
        let s = 1.0 + variant as f64;
        let p = CscMatrix::from_dense(2, 2, &[4.0 * s, s, 0.0, 2.0 * s])
            .upper_triangle()
            .unwrap();
        let a = CscMatrix::from_dense(3, 2, &[1.0, 1.0, 1.0, 0.0, 0.0, 1.0]);
        Problem::new(
            p,
            vec![1.0, 1.0],
            a,
            vec![1.0, 0.0, 0.0],
            vec![1.0, 0.7, 0.7],
        )
        .unwrap()
    }

    #[test]
    fn lru_eviction_respects_capacity_and_recency() {
        let mut cache = ProgramCache::with_capacity(2);
        let settings = Settings::default();
        for v in 0..2 {
            cache
                .lower_cached(&problem_variant(v), &settings, config())
                .unwrap();
        }
        // Touch variant 0 so variant 1 becomes the LRU victim.
        cache
            .lower_cached(&problem_variant(0), &settings, config())
            .unwrap();
        assert_eq!(cache.hits(), 1);
        // Insert variant 2: evicts variant 1.
        cache
            .lower_cached(&problem_variant(2), &settings, config())
            .unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        // Variant 0 is still resident; variant 1 must recompile.
        cache
            .lower_cached(&problem_variant(0), &settings, config())
            .unwrap();
        assert_eq!(cache.hits(), 2);
        cache
            .lower_cached(&problem_variant(1), &settings, config())
            .unwrap();
        let stats = cache.stats();
        assert_eq!(stats.misses, 4, "variant 1 was evicted and recompiled");
        assert_eq!(stats.evictions, 2);
        assert!(stats.resident_bytes > 0);
    }

    #[test]
    fn eviction_preserves_bitwise_fresh_vs_cached_invariant() {
        // Capacity 1: inserting B evicts A; re-lowering A after eviction
        // and hitting B's entry must both match fresh lowerings bitwise —
        // eviction can cost a recompile but never change a program.
        let mut cache = ProgramCache::with_capacity(1);
        let settings = Settings::default();
        cache
            .lower_cached(&problem_with(vec![1.0, 1.0], 0.7), &settings, config())
            .unwrap();
        cache
            .lower_cached(&problem_variant(5), &settings, config())
            .unwrap();
        assert_eq!(cache.evictions(), 1);

        // Hit on the resident entry (same pattern as variant 5, new q).
        let mut hit_problem = problem_variant(5);
        {
            let (p0, _q0, a0, l0, u0) = hit_problem.into_parts();
            hit_problem = Problem::new(p0, vec![-0.5, 2.0], a0, l0, u0).unwrap();
        }
        let cached = cache
            .lower_cached(&hit_problem, &settings, config())
            .unwrap();
        assert_eq!(cache.hits(), 1);
        let fresh = lower(&hit_problem, &settings, config()).unwrap();
        assert_eq!(cached.load.program, fresh.load.program);
        assert_eq!(cached.load.hbm, fresh.load.hbm);
        assert_eq!(cached.setup.program, fresh.setup.program);
        assert_eq!(cached.iteration.program, fresh.iteration.program);
        assert_eq!(cached.iteration.hbm, fresh.iteration.hbm);
        assert_eq!(cached.check.program, fresh.check.program);

        // The evicted pattern recompiles to a bitwise-identical program.
        let evicted = problem_with(vec![1.0, 1.0], 0.7);
        let relowered = cache.lower_cached(&evicted, &settings, config()).unwrap();
        assert_eq!(cache.evictions(), 2, "capacity 1: the hit entry is evicted");
        let fresh = lower(&evicted, &settings, config()).unwrap();
        assert_eq!(relowered.load.program, fresh.load.program);
        assert_eq!(relowered.load.hbm, fresh.load.hbm);
        assert_eq!(relowered.setup.program, fresh.setup.program);
        assert_eq!(relowered.setup.hbm, fresh.setup.hbm);
        assert_eq!(relowered.iteration.program, fresh.iteration.program);
        assert_eq!(relowered.iteration.hbm, fresh.iteration.hbm);
        assert_eq!(relowered.check.program, fresh.check.program);
        assert_eq!(relowered.check.hbm, fresh.check.hbm);
    }

    #[test]
    fn set_capacity_evicts_immediately() {
        let mut cache = ProgramCache::new();
        let settings = Settings::default();
        for v in 0..4 {
            cache
                .lower_cached(&problem_variant(v), &settings, config())
                .unwrap();
        }
        assert_eq!(cache.len(), 4);
        let before = cache.stats().resident_bytes;
        cache.set_capacity(2);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 2);
        assert!(cache.stats().resident_bytes < before);
    }

    #[test]
    fn clear_resets_counters() {
        let mut cache = ProgramCache::new();
        let settings = Settings::default();
        cache
            .lower_cached(&problem_with(vec![1.0, 1.0], 0.7), &settings, config())
            .unwrap();
        cache
            .lower_cached(&problem_with(vec![2.0, 2.0], 0.7), &settings, config())
            .unwrap();
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 1, 1));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
    }
}
