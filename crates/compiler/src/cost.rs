//! The compiler's certified cost oracle: exact cycle costs for compiled
//! schedules, without simulation.
//!
//! [`static_cost`] wraps `mib-verify`'s exact timing predictor
//! ([`mib_verify::timing::predict`]) and critical-path extractor for the
//! compiler's own [`Schedule`] type. The prediction is **not** a model:
//! it is provably equal to what `Machine::run_with_timeline` measures
//! (the differential test suite pins cycle counts and bucket-by-bucket
//! attribution across every benchmark program), at a fraction of the
//! simulation cost because no functional state is computed. This is the
//! trusted signal a schedule autotuner can search against: comparing two
//! candidate schedules costs two predictions, not two simulations.
//!
//! The oracle is load-bearing in the pipeline today: [`checked_schedule`]
//! cross-checks every certified schedule against it (a certified schedule
//! must predict strict acceptance with zero stalls), `certify_lowered`'s
//! certificates carry the predicted cycles, and the lowering's
//! `ScheduleQuality` trace events record them for offline analysis.
//!
//! [`checked_schedule`]: crate::verify::checked_schedule

use mib_core::machine::HazardPolicy;
use mib_core::MibConfig;
use mib_verify::{critical_path, timing};

use crate::schedule::Schedule;

/// Exact static cost of a schedule, as the machine would measure it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticCost {
    /// Total execution cycles (issue + stalls + pipeline drain) —
    /// bitwise equal to `ExecStats::cycles` of a real run.
    pub cycles: u64,
    /// Issue slots (one per instruction).
    pub slots: u64,
    /// Hazard-stall cycles (always 0 for a schedule the compiler
    /// certifies — the packer spaces dependences by the full latency).
    pub stall_cycles: u64,
    /// Cycles of the critical dependence chain's program (the same
    /// total, decomposed along the chain of tight dependences).
    pub critical_path_cycles: u64,
    /// Number of tight dependence hops bounding the schedule — what a
    /// rescheduler would need to restructure to go faster.
    pub critical_path_hops: usize,
}

/// Predicts the exact cost of a schedule under the strict hazard policy
/// (the policy certified schedules run under).
///
/// Returns `None` when the machine would reject the program — a width,
/// address, stream or hazard fault. Compiled schedules never hit this
/// path ([`crate::verify::checked_schedule`] asserts so); callers probing
/// *candidate* schedules use the `None` as a rejection verdict.
pub fn static_cost(s: &Schedule, config: &MibConfig) -> Option<StaticCost> {
    let t = timing::predict(&s.program, s.hbm.len(), config, HazardPolicy::Strict).ok()?;
    let cp = critical_path::critical_path(&s.program, config);
    Some(StaticCost {
        cycles: t.stats.cycles,
        slots: t.stats.slots,
        stall_cycles: t.stats.stall_cycles,
        critical_path_cycles: cp.cycles,
        critical_path_hops: cp.hops.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelBuilder;
    use crate::schedule::{schedule, ScheduleOptions};
    use mib_core::hbm::HbmStream;
    use mib_core::instruction::{LaneSource, LaneWrite, NetInstruction, WriteMode};
    use mib_core::machine::Machine;

    fn config() -> MibConfig {
        MibConfig {
            width: 8,
            bank_depth: 64,
            clock_hz: 1e6,
        }
    }

    fn mov(lane: usize, from: usize, to: usize) -> NetInstruction {
        let mut i = NetInstruction::nop(8);
        i.set_input(lane, LaneSource::Reg { addr: from });
        i.route(lane, lane);
        i.set_write(
            lane,
            LaneWrite {
                addr: to,
                mode: WriteMode::Store,
            },
        );
        i
    }

    #[test]
    fn cost_matches_machine_on_a_compiled_schedule() {
        let cfg = config();
        let mut b = KernelBuilder::new("chain", 8, cfg.latency());
        b.push(mov(0, 0, 1), vec![]);
        b.push(mov(0, 1, 2), vec![]);
        b.push(mov(3, 0, 1), vec![]);
        let s = schedule(&b.finish(), ScheduleOptions::default());
        let cost = static_cost(&s, &cfg).expect("compiled schedule is runnable");
        let stats = Machine::new(cfg)
            .run(
                &s.program,
                &mut HbmStream::new(s.hbm.clone()),
                HazardPolicy::Strict,
            )
            .unwrap();
        assert_eq!(cost.cycles, stats.cycles);
        assert_eq!(cost.slots, stats.slots);
        assert_eq!(cost.stall_cycles, 0);
        assert_eq!(cost.critical_path_cycles, cost.cycles);
    }

    #[test]
    fn rejected_program_has_no_cost() {
        let cfg = config();
        // Back-to-back RAW: strict execution rejects, so there is no cost.
        let s = Schedule {
            program: vec![mov(0, 0, 1), mov(0, 1, 2)],
            hbm: Vec::new(),
            slot_of: vec![0, 1],
            logical_count: 2,
            forced_appends: 0,
        };
        assert!(static_cost(&s, &cfg).is_none());
    }

    #[test]
    fn empty_schedule_costs_zero() {
        let cfg = config();
        let s = schedule(
            &KernelBuilder::new("empty", 8, cfg.latency()).finish(),
            ScheduleOptions::default(),
        );
        let cost = static_cost(&s, &cfg).unwrap();
        assert_eq!(cost.cycles, 0);
        assert_eq!(cost.slots, 0);
        assert_eq!(cost.critical_path_hops, 0);
    }
}
