//! Compiler-side verification: the `mib-verify` static pass over compiled
//! schedules, plus a kernel-aware **packing cross-check** that only the
//! compiler can run (it needs the logical instruction stream).
//!
//! Program-level verification ([`verify_schedule`]) proves the published
//! slots are something the machine's strict execution accepts. The packing
//! cross-check ([`verify_packing`]) additionally proves the scheduler
//! *placed* instructions legally: every dependency distance is respected,
//! the logical instructions of each slot re-merge without collisions, and
//! the re-merged slots and re-assembled HBM stream are bitwise identical
//! to what [`crate::schedule::schedule`] published.
//!
//! The lowering pipeline calls [`checked_schedule`] instead of the raw
//! scheduler: in debug builds (or when the `MIB_VERIFY` environment
//! variable is set) every schedule is verified immediately after packing,
//! and the program cache re-verifies the value-refreshed load program on
//! every hit.

use mib_core::instruction::NetInstruction;
use mib_core::MibConfig;
use mib_qp::profile::Certification;
use mib_verify::{DiagKind, Diagnostic, Report};

use crate::kernel::Kernel;
use crate::lower::LoweredQp;
use crate::schedule::{schedule, Schedule, ScheduleOptions};

/// Statically verifies a compiled schedule, folding in the scheduler's
/// forced-append count as a warning.
pub fn verify_schedule(name: &str, s: &Schedule, config: &MibConfig) -> Report {
    let mut report = mib_verify::verify_program(name, &s.program, s.hbm.len(), config);
    if s.forced_appends > 0 {
        report
            .diagnostics
            .push(Diagnostic::global(DiagKind::ForcedAppends {
                count: s.forced_appends,
            }));
    }
    report
}

/// Cross-checks a schedule against the kernel it was packed from:
///
/// 1. every logical instruction sits at or after its dependency-ready slot,
/// 2. the logical instructions assigned to each slot merge collision-free,
/// 3. the re-merged slots equal the published program bitwise,
/// 4. the re-assembled HBM stream equals the published stream.
///
/// Returns the findings (all error severity); empty means the packing is
/// provably faithful.
pub fn verify_packing(kernel: &Kernel, s: &Schedule) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if s.slot_of.len() != kernel.instrs.len() {
        diags.push(Diagnostic::global(DiagKind::PackingSlotMismatch));
        return diags;
    }

    // 1. Dependency distances.
    for (c, li) in kernel.instrs.iter().enumerate() {
        let slot_c = s.slot_of[c] as u64;
        for &(p, delay) in &li.deps {
            let slot_p = s.slot_of[p] as u64;
            let actual = slot_c.saturating_sub(slot_p);
            if slot_c < slot_p + delay {
                diags.push(
                    Diagnostic::at_slot(
                        s.slot_of[c],
                        DiagKind::PackingDependency {
                            logical: c,
                            producer: p,
                            required: delay,
                            actual,
                        },
                    )
                    .with_logical(c),
                );
            }
        }
    }

    // 2. Re-merge each slot's logical instructions, re-assemble the stream.
    let mut rebuilt: Vec<NetInstruction> = s
        .program
        .iter()
        .map(|_| NetInstruction::nop(kernel.width))
        .collect();
    let mut streams: Vec<Vec<(usize, f64)>> = vec![Vec::new(); s.program.len()];
    for (idx, li) in kernel.instrs.iter().enumerate() {
        let t = s.slot_of[idx];
        if t >= rebuilt.len() {
            diags.push(Diagnostic::global(DiagKind::PackingSlotMismatch).with_logical(idx));
            continue;
        }
        match rebuilt[t].try_merge(&li.inst) {
            Ok(merged) => rebuilt[t] = merged,
            Err(e) => diags.push(
                Diagnostic::at_slot(
                    t,
                    DiagKind::PackingCollision {
                        logical: idx,
                        detail: e.to_string(),
                    },
                )
                .with_logical(idx),
            ),
        }
        streams[t].extend_from_slice(&li.stream);
    }

    // 3. Slot equality (skip slots already reported as collisions — their
    // rebuild is incomplete by construction).
    let collided: Vec<usize> = diags
        .iter()
        .filter(|d| matches!(d.kind, DiagKind::PackingCollision { .. }))
        .filter_map(|d| d.slot)
        .collect();
    for (t, (got, want)) in rebuilt.iter().zip(&s.program).enumerate() {
        if got != want && !collided.contains(&t) {
            diags.push(Diagnostic::at_slot(t, DiagKind::PackingSlotMismatch));
        }
    }

    // 4. Stream equality: within a slot the machine consumes words in the
    // kernel's lane-order sort keys, slots in issue order.
    let mut hbm = Vec::with_capacity(s.hbm.len());
    for slot_stream in &mut streams {
        slot_stream.sort_by_key(|&(lane, _)| lane);
        hbm.extend(slot_stream.iter().map(|&(_, w)| w));
    }
    if hbm.len() != s.hbm.len() {
        diags.push(Diagnostic::global(DiagKind::PackingStreamMismatch {
            word: hbm.len().min(s.hbm.len()),
        }));
    } else if let Some(word) = hbm
        .iter()
        .zip(&s.hbm)
        .position(|(a, b)| a.to_bits() != b.to_bits())
    {
        diags.push(Diagnostic::global(DiagKind::PackingStreamMismatch { word }));
    }

    diags
}

/// Full verification of a kernel's schedule: program-level analysis plus
/// the packing cross-check, as one report.
pub fn verify_kernel_schedule(kernel: &Kernel, s: &Schedule, config: &MibConfig) -> Report {
    let mut report = verify_schedule(&kernel.name, s, config);
    report.diagnostics.extend(verify_packing(kernel, s));
    report
}

/// Whether schedule-time verification is active: always in debug builds,
/// and opt-in via the `MIB_VERIFY` environment variable elsewhere.
pub fn verification_enabled() -> bool {
    cfg!(debug_assertions) || std::env::var_os("MIB_VERIFY").is_some()
}

/// Schedules a kernel and — when [`verification_enabled`] — immediately
/// verifies the result, program-level and packing-level.
///
/// # Panics
///
/// Panics with the full report if verification finds an error-severity
/// defect: a schedule the machine would reject must never leave the
/// compiler silently.
pub fn checked_schedule(kernel: &Kernel, opts: ScheduleOptions, config: &MibConfig) -> Schedule {
    let s = schedule(kernel, opts);
    if verification_enabled() {
        let report = verify_kernel_schedule(kernel, &s, config);
        assert!(
            report.is_certified(),
            "compiler produced an uncertifiable schedule:\n{report}"
        );
        // Cross-check against the cost oracle: a certified schedule must
        // predict strict acceptance, stall-free, and the report's timing
        // must agree with the oracle's (they run the same predictor
        // through two call paths).
        let cost = crate::cost::static_cost(&s, config)
            .expect("certified schedule must have a static cost");
        assert_eq!(
            cost.stall_cycles, 0,
            "certified schedule predicts stalls: {cost:?}"
        );
        let timing = report.timing.expect("certified schedule has timing");
        assert_eq!(
            cost.cycles, timing.predicted_cycles,
            "cost oracle and verifier timing disagree"
        );
    }
    s
}

/// Re-verifies a cache-refreshed load schedule (program-level only — the
/// cache does not retain the kernel).
pub(crate) fn maybe_verify_refreshed_load(s: &Schedule, config: &MibConfig) {
    if verification_enabled() {
        let report = verify_schedule("load(cache-hit)", s, config);
        assert!(
            report.is_certified(),
            "cache-refreshed load schedule failed verification:\n{report}"
        );
    }
}

/// Verifies every program of a lowered QP and packages the result as the
/// solver-facing [`Certification`]. Empty programs (e.g. the direct
/// variant's PCG slot) are skipped.
pub fn certify_lowered(lowered: &LoweredQp) -> Certification {
    let programs = [
        ("load", &lowered.load),
        ("setup", &lowered.setup),
        ("iteration", &lowered.iteration),
        ("pcg", &lowered.pcg_iteration),
        ("check", &lowered.check),
    ];
    Certification {
        certificates: programs
            .into_iter()
            .filter(|(_, s)| !s.program.is_empty())
            .map(|(name, s)| verify_schedule(name, s, &lowered.config).certificate())
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelBuilder;
    use mib_core::instruction::{LaneSource, LaneWrite, WriteMode};
    use mib_verify::Severity;

    fn config() -> MibConfig {
        MibConfig {
            width: 8,
            bank_depth: 64,
            clock_hz: 1e6,
        }
    }

    fn mov(lane: usize, from: usize, to: usize) -> NetInstruction {
        let mut i = NetInstruction::nop(8);
        i.set_input(lane, LaneSource::Reg { addr: from });
        i.route(lane, lane);
        i.set_write(
            lane,
            LaneWrite {
                addr: to,
                mode: WriteMode::Store,
            },
        );
        i
    }

    fn chain_kernel() -> Kernel {
        let mut b = KernelBuilder::new("chain", 8, config().latency());
        b.push(mov(0, 0, 1), vec![]);
        b.push(mov(0, 1, 2), vec![]); // RAW on (0,1)
        b.push(mov(3, 0, 1), vec![]); // independent
        b.finish()
    }

    #[test]
    fn faithful_packing_passes_cross_check() {
        let kernel = chain_kernel();
        let s = schedule(&kernel, ScheduleOptions::default());
        assert!(verify_packing(&kernel, &s).is_empty());
        let report = verify_kernel_schedule(&kernel, &s, &config());
        assert!(report.is_certified(), "{report}");
    }

    #[test]
    fn shrunk_dependency_gap_is_caught() {
        let kernel = chain_kernel();
        let mut s = schedule(&kernel, ScheduleOptions::default());
        // Move the consumer one slot after its producer: both the packing
        // cross-check and the program-level dataflow must object.
        let producer_slot = s.slot_of[0];
        let old_slot = s.slot_of[1];
        let inst = s.program[old_slot].clone();
        s.program[old_slot] = NetInstruction::nop(8);
        s.program[producer_slot + 1] = inst;
        s.slot_of[1] = producer_slot + 1;
        let diags = verify_packing(&kernel, &s);
        assert!(diags
            .iter()
            .any(|d| matches!(d.kind, DiagKind::PackingDependency { logical: 1, .. })));
        let report = verify_kernel_schedule(&kernel, &s, &config());
        assert!(!report.is_certified());
        assert!(report
            .errors()
            .any(|d| matches!(d.kind, DiagKind::HazardRead { .. })));
    }

    #[test]
    fn corrupted_slot_is_caught() {
        let kernel = chain_kernel();
        let mut s = schedule(&kernel, ScheduleOptions::default());
        // Tamper with a published slot without telling slot_of.
        let t = s.slot_of[2];
        s.program[t] = s.program[t].try_merge(&mov(5, 0, 1)).unwrap();
        let diags = verify_packing(&kernel, &s);
        assert!(diags
            .iter()
            .any(|d| matches!(d.kind, DiagKind::PackingSlotMismatch)));
    }

    #[test]
    fn colliding_placement_is_caught() {
        // Two moves on the same lane cannot share a slot; force slot_of to
        // claim they do and the re-merge must report the port collision.
        let mut b = KernelBuilder::new("collide", 8, config().latency());
        b.push(mov(0, 0, 1), vec![]);
        b.push(mov(0, 5, 6), vec![]); // same lane as logical 0
        let kernel = b.finish();
        let mut s = schedule(&kernel, ScheduleOptions::default());
        s.slot_of = vec![0, 0];
        s.program = vec![s.program[0].clone()];
        let diags = verify_packing(&kernel, &s);
        assert!(
            diags
                .iter()
                .any(|d| matches!(d.kind, DiagKind::PackingCollision { logical: 1, .. })),
            "{diags:?}"
        );
    }

    #[test]
    fn dropped_stream_word_is_caught() {
        let mut b = KernelBuilder::new("stream", 8, config().latency());
        let mut i = NetInstruction::nop(8);
        i.set_input(2, LaneSource::Stream);
        i.route(2, 2);
        i.set_write(
            2,
            LaneWrite {
                addr: 0,
                mode: WriteMode::Store,
            },
        );
        b.push(i, vec![(2, 7.5)]);
        let kernel = b.finish();
        let mut s = schedule(&kernel, ScheduleOptions::default());
        s.hbm.pop();
        let diags = verify_packing(&kernel, &s);
        assert!(diags
            .iter()
            .any(|d| matches!(d.kind, DiagKind::PackingStreamMismatch { .. })));
        // Program-level verification independently flags the underflow.
        let report = verify_schedule("stream", &s, &config());
        assert!(report
            .errors()
            .any(|d| matches!(d.kind, DiagKind::StreamUnderflow { .. })));
    }

    #[test]
    fn forced_appends_surface_as_warning() {
        let mut b = KernelBuilder::new("tight", 8, config().latency());
        b.push(mov(0, 2, 1), vec![]);
        b.push(mov(0, 3, 1), vec![]);
        b.push(mov(0, 4, 1), vec![]);
        b.push(mov(0, 5, 6), vec![]);
        let kernel = b.finish();
        let s = schedule(
            &kernel,
            ScheduleOptions {
                probe_limit: 0,
                ..ScheduleOptions::default()
            },
        );
        assert!(s.forced_appends > 0);
        let report = verify_kernel_schedule(&kernel, &s, &config());
        // Degraded packing is still collision-free and hazard-free.
        assert!(report.is_certified(), "{report}");
        assert!(report
            .diagnostics
            .iter()
            .any(|d| matches!(d.kind, DiagKind::ForcedAppends { count } if count > 0)));
        assert!(report.count(Severity::Warning) >= 1);
    }

    #[test]
    fn checked_schedule_accepts_compiler_output() {
        let kernel = chain_kernel();
        let s = checked_schedule(&kernel, ScheduleOptions::default(), &config());
        assert_eq!(s.logical_count, 3);
    }
}
