//! Element-wise kernel builders: the vector half of the top-level ISA
//! (`axpby`, `ew_prod`, `select_min`/`select_max` projections, `norm_inf`,
//! `load_vec`).
//!
//! Every builder appends logical instructions to a shared
//! [`KernelBuilder`], so dependencies against earlier kernels (e.g. a
//! triangular solve that produced the vector being scaled) are tracked
//! automatically.

use mib_core::instruction::{InstrKind, LaneSource, LaneWrite, NetInstruction, WriteMode};

use crate::kernel::KernelBuilder;
use crate::layout::Layout;

/// Splits `0..len` into chunks whose elements map to distinct lanes under a
/// cyclic layout: simply consecutive runs of `width`.
fn chunks(len: usize, width: usize) -> impl Iterator<Item = std::ops::Range<usize>> {
    (0..len.div_ceil(width)).map(move |c| {
        let start = c * width;
        start..((c + 1) * width).min(len)
    })
}

/// Writes zeros over a layout.
pub fn zero(b: &mut KernelBuilder, v: Layout) {
    let width = b.width();
    for range in chunks(v.len, width) {
        let mut inst = NetInstruction::nop(width);
        inst.kind = InstrKind::Elementwise;
        for e in range {
            let (lane, addr) = v.loc(e);
            inst.set_input(lane, LaneSource::RegTimesImm { addr: 0, imm: 0.0 });
            inst.route(lane, lane);
            inst.set_write(
                lane,
                LaneWrite {
                    addr,
                    mode: WriteMode::Store,
                },
            );
        }
        b.push(inst, vec![]);
    }
}

/// Streams `values` from HBM into the layout (`load_vec`).
///
/// # Panics
///
/// Panics if `values.len() != v.len`.
pub fn load_vec(b: &mut KernelBuilder, v: Layout, values: &[f64]) {
    assert_eq!(values.len(), v.len, "load_vec length mismatch");
    let width = b.width();
    for range in chunks(v.len, width) {
        let mut inst = NetInstruction::nop(width);
        inst.kind = InstrKind::Elementwise;
        let mut stream = Vec::new();
        for e in range {
            let (lane, addr) = v.loc(e);
            inst.set_input(lane, LaneSource::Stream);
            inst.route(lane, lane);
            inst.set_write(
                lane,
                LaneWrite {
                    addr,
                    mode: WriteMode::Store,
                },
            );
            stream.push((lane, values[e]));
        }
        b.push(inst, stream);
    }
}

/// Reads a layout and discards the values (`write_vec` — the result words
/// leave on the HBM write port, which the functional model does not
/// represent; the cycle cost is what matters).
pub fn write_vec(b: &mut KernelBuilder, v: Layout) {
    let width = b.width();
    for range in chunks(v.len, width) {
        let mut inst = NetInstruction::nop(width);
        inst.kind = InstrKind::Elementwise;
        for e in range {
            let (lane, addr) = v.loc(e);
            inst.set_input(lane, LaneSource::Reg { addr });
            inst.route(lane, lane);
        }
        b.push(inst, vec![]);
    }
}

/// `dst = s * src` (or `dst += s * src` with [`WriteMode::Add`]).
///
/// `src` and `dst` must have the same length (banks align automatically
/// under cyclic layouts).
pub fn scale(b: &mut KernelBuilder, src: Layout, dst: Layout, s: f64, mode: WriteMode) {
    assert_eq!(src.len, dst.len, "scale length mismatch");
    let width = b.width();
    for range in chunks(src.len, width) {
        let mut inst = NetInstruction::nop(width);
        inst.kind = InstrKind::Elementwise;
        for e in range {
            let lane = src.bank(e);
            inst.set_input(
                lane,
                LaneSource::RegTimesImm {
                    addr: src.addr(e),
                    imm: s,
                },
            );
            inst.route(lane, lane);
            inst.set_write(
                lane,
                LaneWrite {
                    addr: dst.addr(e),
                    mode,
                },
            );
        }
        b.push(inst, vec![]);
    }
}

/// `dst = x .* y` via the broadcast-latch path: one instruction latches a
/// chunk of `y`, the next multiplies the matching chunk of `x` against the
/// latches (`ew_prod`).
pub fn ew_prod(b: &mut KernelBuilder, x: Layout, y: Layout, dst: Layout, mode: WriteMode) {
    assert_eq!(x.len, y.len, "ew_prod length mismatch");
    assert_eq!(x.len, dst.len, "ew_prod length mismatch");
    let width = b.width();
    for range in chunks(x.len, width) {
        let mut latch = NetInstruction::nop(width);
        latch.kind = InstrKind::Elementwise;
        for e in range.clone() {
            let lane = y.bank(e);
            latch.set_input(lane, LaneSource::Reg { addr: y.addr(e) });
            latch.route(lane, lane);
            latch.set_write(
                lane,
                LaneWrite {
                    addr: 0,
                    mode: WriteMode::Latch,
                },
            );
        }
        b.push(latch, vec![]);
        let mut mul = NetInstruction::nop(width);
        mul.kind = InstrKind::Elementwise;
        for e in range {
            let lane = x.bank(e);
            mul.set_input(
                lane,
                LaneSource::RegTimesLatch {
                    addr: x.addr(e),
                    negate: false,
                },
            );
            mul.route(lane, lane);
            mul.set_write(
                lane,
                LaneWrite {
                    addr: dst.addr(e),
                    mode,
                },
            );
        }
        b.push(mul, vec![]);
    }
}

/// Box projection `dst = min(max(x, l), u)` — `select_max` then
/// `select_min` against register-resident bound vectors.
pub fn clip(b: &mut KernelBuilder, x: Layout, l: Layout, u: Layout, dst: Layout) {
    assert_eq!(x.len, l.len, "clip length mismatch");
    assert_eq!(x.len, u.len, "clip length mismatch");
    assert_eq!(x.len, dst.len, "clip length mismatch");
    let width = b.width();
    // Pass 1: dst = x.
    scale(b, x, dst, 1.0, WriteMode::Store);
    // Pass 2: dst = max(dst, l). Pass 3: dst = min(dst, u).
    for (bounds, mode) in [(l, WriteMode::Max), (u, WriteMode::Min)] {
        for range in chunks(x.len, width) {
            let mut inst = NetInstruction::nop(width);
            inst.kind = InstrKind::Elementwise;
            for e in range {
                let lane = bounds.bank(e);
                inst.set_input(
                    lane,
                    LaneSource::Reg {
                        addr: bounds.addr(e),
                    },
                );
                inst.route(lane, lane);
                inst.set_write(
                    lane,
                    LaneWrite {
                        addr: dst.addr(e),
                        mode,
                    },
                );
            }
            b.push(inst, vec![]);
        }
    }
}

/// Number of interleaved partial-maximum rows used by [`norm_inf`]; chosen
/// to cover the pipeline latency so the reduction streams at full rate.
const NORM_PARTIALS: usize = 8;

/// `result = ‖x‖∞` (the `norm_inf` reduction), leaving the scalar at
/// `(bank 0, result_addr)`. Uses `NORM_PARTIALS` scratch rows starting at
/// `scratch_base`.
pub fn norm_inf(b: &mut KernelBuilder, x: Layout, scratch_base: usize, result_addr: usize) {
    let width = b.width();
    // Zero the partial rows and the result.
    for row in 0..NORM_PARTIALS {
        let mut inst = NetInstruction::nop(width);
        inst.kind = InstrKind::Elementwise;
        for lane in 0..width {
            inst.set_input(lane, LaneSource::RegTimesImm { addr: 0, imm: 0.0 });
            inst.route(lane, lane);
            inst.set_write(
                lane,
                LaneWrite {
                    addr: scratch_base + row,
                    mode: WriteMode::Store,
                },
            );
        }
        b.push(inst, vec![]);
    }
    // Accumulate |x| into rotating partial rows.
    for (c, range) in chunks(x.len, width).enumerate() {
        let row = scratch_base + c % NORM_PARTIALS;
        let mut inst = NetInstruction::nop(width);
        inst.kind = InstrKind::Elementwise;
        for e in range {
            let lane = x.bank(e);
            inst.set_input(lane, LaneSource::Reg { addr: x.addr(e) });
            inst.route(lane, lane);
            inst.set_write(
                lane,
                LaneWrite {
                    addr: row,
                    mode: WriteMode::MaxAbs,
                },
            );
        }
        b.push(inst, vec![]);
    }
    // Fold the partial rows into row 0 with a binary tree over addresses
    // (each pass is one full-width instruction; passes are latency-spaced).
    let mut span = NORM_PARTIALS;
    while span > 1 {
        span /= 2;
        for row in 0..span {
            let mut inst = NetInstruction::nop(width);
            inst.kind = InstrKind::Elementwise;
            for lane in 0..width {
                inst.set_input(
                    lane,
                    LaneSource::Reg {
                        addr: scratch_base + row + span,
                    },
                );
                inst.route(lane, lane);
                inst.set_write(
                    lane,
                    LaneWrite {
                        addr: scratch_base + row,
                        mode: WriteMode::MaxAbs,
                    },
                );
            }
            b.push(inst, vec![]);
        }
    }
    // Cross-lane fold into (0, result_addr): binary tree over lanes — the
    // upper half routes to the lower half and max-combines, log₂C passes.
    let mut bit = width;
    while bit > 1 {
        bit /= 2;
        let mut inst = NetInstruction::nop(width);
        inst.kind = InstrKind::Elementwise;
        for lo in 0..bit {
            let hi = lo + bit;
            inst.set_input(hi, LaneSource::Reg { addr: scratch_base });
            inst.route(hi, lo);
            inst.set_write(
                lo,
                LaneWrite {
                    addr: scratch_base,
                    mode: WriteMode::MaxAbs,
                },
            );
        }
        b.push(inst, vec![]);
    }
    let mut fin = NetInstruction::nop(width);
    fin.kind = InstrKind::Elementwise;
    fin.set_input(0, LaneSource::Reg { addr: scratch_base });
    fin.route(0, 0);
    fin.set_write(
        0,
        LaneWrite {
            addr: result_addr,
            mode: WriteMode::Store,
        },
    );
    b.push(fin, vec![]);
}

/// Sum-reduces a vector into the scalar at `(bank 0, result_addr)` using
/// the MAC tree (each chunk reduces through the network in one
/// instruction; partial sums rotate over `NORM_PARTIALS` scratch slots to
/// hide the accumulator latency). Used for dot products in the PCG kernel.
pub fn sum_reduce(b: &mut KernelBuilder, x: Layout, scratch_base: usize, result_addr: usize) {
    use crate::route::RouteSpace;
    let width = b.width();
    let partial_lanes = NORM_PARTIALS.min(width);
    // Zero the partial slots (one scratch row, spread across lanes).
    let mut zero_inst = NetInstruction::nop(width);
    zero_inst.kind = InstrKind::Elementwise;
    for lane in 0..partial_lanes {
        zero_inst.set_input(lane, LaneSource::RegTimesImm { addr: 0, imm: 0.0 });
        zero_inst.route(lane, lane);
        zero_inst.set_write(
            lane,
            LaneWrite {
                addr: scratch_base,
                mode: WriteMode::Store,
            },
        );
    }
    b.push(zero_inst, vec![]);
    // Each chunk reduces through the MAC tree into a rotating partial lane
    // (the rotation hides the accumulator latency).
    for (c, range) in chunks(x.len, width).enumerate() {
        let dst = c % partial_lanes;
        let mut inst = NetInstruction::nop(width);
        inst.kind = InstrKind::Mac;
        let mut rs = RouteSpace::new(width);
        let lanes: Vec<usize> = range.clone().map(|e| x.bank(e)).collect();
        for e in range {
            let lane = x.bank(e);
            inst.set_input(lane, LaneSource::Reg { addr: x.addr(e) });
            rs.try_claim_input(lane, 0);
        }
        assert!(rs.try_reduce(&mut inst, 0, &lanes, dst));
        inst.set_write(
            dst,
            LaneWrite {
                addr: scratch_base,
                mode: WriteMode::Add,
            },
        );
        b.push(inst, vec![]);
    }
    // Binary-tree fold across the partial lanes.
    let mut bit = partial_lanes;
    while bit > 1 {
        bit /= 2;
        let mut inst = NetInstruction::nop(width);
        inst.kind = InstrKind::Elementwise;
        for lo in 0..bit {
            let hi = lo + bit;
            inst.set_input(hi, LaneSource::Reg { addr: scratch_base });
            inst.route(hi, lo);
            inst.set_write(
                lo,
                LaneWrite {
                    addr: scratch_base,
                    mode: WriteMode::Add,
                },
            );
        }
        b.push(inst, vec![]);
    }
    let mut fin = NetInstruction::nop(width);
    fin.kind = InstrKind::Elementwise;
    fin.set_input(0, LaneSource::Reg { addr: scratch_base });
    fin.route(0, 0);
    fin.set_write(
        0,
        LaneWrite {
            addr: result_addr,
            mode: WriteMode::Store,
        },
    );
    b.push(fin, vec![]);
}

/// Broadcasts the scalar at `(bank, addr)` into the latches of every lane.
pub fn broadcast_scalar(b: &mut KernelBuilder, bank: usize, addr: usize) {
    use crate::route::RouteSpace;
    let width = b.width();
    let mut inst = NetInstruction::nop(width);
    inst.kind = InstrKind::Broadcast;
    inst.set_input(bank, LaneSource::Reg { addr });
    let mut rs = RouteSpace::new(width);
    rs.try_claim_input(bank, 0);
    for t in 0..width {
        assert!(rs.try_route(&mut inst, 0, bank, t));
        inst.set_write(
            t,
            LaneWrite {
                addr: 0,
                mode: WriteMode::Latch,
            },
        );
    }
    b.push(inst, vec![]);
}

/// `dst ⟵op⟵ latch * src` element-wise, where every lane's latch holds the
/// same runtime scalar (loaded by [`broadcast_scalar`]).
pub fn scale_by_latch(
    b: &mut KernelBuilder,
    src: Layout,
    dst: Layout,
    negate: bool,
    mode: WriteMode,
) {
    assert_eq!(src.len, dst.len, "scale_by_latch length mismatch");
    let width = b.width();
    for range in chunks(src.len, width) {
        let mut inst = NetInstruction::nop(width);
        inst.kind = InstrKind::Elementwise;
        for e in range {
            let lane = src.bank(e);
            inst.set_input(
                lane,
                LaneSource::RegTimesLatch {
                    addr: src.addr(e),
                    negate,
                },
            );
            inst.route(lane, lane);
            inst.set_write(
                lane,
                LaneWrite {
                    addr: dst.addr(e),
                    mode,
                },
            );
        }
        b.push(inst, vec![]);
    }
}

/// Stores the reciprocal of the scalar at `src` into `dst` (same bank).
pub fn scalar_recip(b: &mut KernelBuilder, bank: usize, src: usize, dst: usize) {
    let width = b.width();
    let mut inst = NetInstruction::nop(width);
    inst.kind = InstrKind::Elementwise;
    inst.set_input(bank, LaneSource::Reg { addr: src });
    inst.route(bank, bank);
    inst.set_write(
        bank,
        LaneWrite {
            addr: dst,
            mode: WriteMode::StoreRecip,
        },
    );
    b.push(inst, vec![]);
}

/// `dst = a * b` for two scalars in the same bank: latches `a`, multiplies
/// by `b`.
pub fn scalar_mul(b: &mut KernelBuilder, bank: usize, a_addr: usize, b_addr: usize, dst: usize) {
    let width = b.width();
    let mut latch = NetInstruction::nop(width);
    latch.kind = InstrKind::Elementwise;
    latch.set_input(bank, LaneSource::Reg { addr: a_addr });
    latch.route(bank, bank);
    latch.set_write(
        bank,
        LaneWrite {
            addr: 0,
            mode: WriteMode::Latch,
        },
    );
    b.push(latch, vec![]);
    let mut mul = NetInstruction::nop(width);
    mul.kind = InstrKind::Elementwise;
    mul.set_input(
        bank,
        LaneSource::RegTimesLatch {
            addr: b_addr,
            negate: false,
        },
    );
    mul.route(bank, bank);
    mul.set_write(
        bank,
        LaneWrite {
            addr: dst,
            mode: WriteMode::Store,
        },
    );
    b.push(mul, vec![]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Allocator;
    use crate::schedule::{schedule, ScheduleOptions};
    use mib_core::hbm::HbmStream;
    use mib_core::machine::{HazardPolicy, Machine};
    use mib_core::MibConfig;

    fn run(b: KernelBuilder) -> Machine {
        run_with(
            b,
            Machine::new(MibConfig {
                width: 8,
                bank_depth: 256,
                clock_hz: 1e6,
            }),
        )
    }

    fn run_with(b: KernelBuilder, mut m: Machine) -> Machine {
        let k = b.finish();
        let s = schedule(&k, ScheduleOptions::default());
        let mut hbm = HbmStream::new(s.hbm.clone());
        m.run(&s.program, &mut hbm, HazardPolicy::Strict)
            .expect("scheduled kernel must be hazard-free");
        m
    }

    fn read_layout(m: &Machine, v: Layout) -> Vec<f64> {
        (0..v.len)
            .map(|e| m.regs().read(v.bank(e), v.addr(e)).unwrap())
            .collect()
    }

    fn builder() -> (KernelBuilder, Allocator) {
        let cfg = MibConfig {
            width: 8,
            bank_depth: 256,
            clock_hz: 1e6,
        };
        (KernelBuilder::new("t", 8, cfg.latency()), Allocator::new(8))
    }

    #[test]
    fn load_and_scale() {
        let (mut b, mut a) = builder();
        let v = a.alloc(10);
        let w = a.alloc(10);
        let data: Vec<f64> = (0..10).map(|i| i as f64).collect();
        load_vec(&mut b, v, &data);
        scale(&mut b, v, w, 2.5, WriteMode::Store);
        let m = run(b);
        assert_eq!(
            read_layout(&m, w),
            data.iter().map(|x| x * 2.5).collect::<Vec<_>>()
        );
    }

    #[test]
    fn axpby_via_two_scales() {
        let (mut b, mut a) = builder();
        let x = a.alloc(9);
        let y = a.alloc(9);
        let z = a.alloc(9);
        load_vec(&mut b, x, &[1.0; 9]);
        load_vec(&mut b, y, &[2.0; 9]);
        scale(&mut b, x, z, 3.0, WriteMode::Store);
        scale(&mut b, y, z, 0.5, WriteMode::Add);
        let m = run(b);
        assert_eq!(read_layout(&m, z), vec![4.0; 9]);
    }

    #[test]
    fn elementwise_product() {
        let (mut b, mut a) = builder();
        let x = a.alloc(11);
        let y = a.alloc(11);
        let z = a.alloc(11);
        let xv: Vec<f64> = (0..11).map(|i| i as f64).collect();
        let yv: Vec<f64> = (0..11).map(|i| (i as f64) - 5.0).collect();
        load_vec(&mut b, x, &xv);
        load_vec(&mut b, y, &yv);
        ew_prod(&mut b, x, y, z, WriteMode::Store);
        let m = run(b);
        let expect: Vec<f64> = xv.iter().zip(&yv).map(|(a, b)| a * b).collect();
        assert_eq!(read_layout(&m, z), expect);
    }

    #[test]
    fn clip_projects_onto_box() {
        let (mut b, mut a) = builder();
        let x = a.alloc(5);
        let l = a.alloc(5);
        let u = a.alloc(5);
        let z = a.alloc(5);
        load_vec(&mut b, x, &[-3.0, 0.5, 2.0, 1.0, -0.1]);
        load_vec(&mut b, l, &[0.0, 0.0, 0.0, 0.0, 0.0]);
        load_vec(&mut b, u, &[1.0, 1.0, 1.0, 1.0, 1.0]);
        clip(&mut b, x, l, u, z);
        let m = run(b);
        assert_eq!(read_layout(&m, z), vec![0.0, 0.5, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn norm_inf_reduces_correctly() {
        let (mut b, mut a) = builder();
        let x = a.alloc(37);
        let scratch = a.alloc_rows(NORM_PARTIALS);
        let result = a.alloc_rows(1);
        let data: Vec<f64> = (0..37).map(|i| ((i * 7) % 23) as f64 - 11.0).collect();
        load_vec(&mut b, x, &data);
        norm_inf(&mut b, x, scratch, result);
        let m = run(b);
        let expect = data.iter().fold(0.0f64, |acc, v| acc.max(v.abs()));
        assert_eq!(m.regs().read(0, result).unwrap(), expect);
    }

    #[test]
    fn sum_reduce_matches_sum() {
        let (mut b, mut a) = builder();
        let x = a.alloc(29);
        let scratch = a.alloc_rows(NORM_PARTIALS);
        let result = a.alloc_rows(1);
        let data: Vec<f64> = (0..29).map(|i| (i as f64) * 0.25 - 3.0).collect();
        load_vec(&mut b, x, &data);
        sum_reduce(&mut b, x, scratch, result);
        let m = run(b);
        let expect: f64 = data.iter().sum();
        let got = m.regs().read(0, result).unwrap();
        assert!((got - expect).abs() < 1e-12, "{got} vs {expect}");
    }

    #[test]
    fn scalar_broadcast_and_scale() {
        let (mut b, mut a) = builder();
        let x = a.alloc(10);
        let y = a.alloc(10);
        let s = a.alloc_rows(1);
        load_vec(&mut b, x, &[2.0; 10]);
        // Write 3.0 into the scalar slot via a stream load of length 1.
        let sl = Layout {
            base: s,
            len: 1,
            width: 8,
        };
        load_vec(&mut b, sl, &[3.0]);
        broadcast_scalar(&mut b, 0, s);
        scale_by_latch(&mut b, x, y, false, WriteMode::Store);
        let m = run(b);
        assert_eq!(read_layout(&m, y), vec![6.0; 10]);
    }

    #[test]
    fn scalar_recip_and_mul() {
        let (mut b, mut a) = builder();
        let s = a.alloc_rows(4);
        let sl = Layout {
            base: s,
            len: 2,
            width: 8,
        };
        // Two scalars... cyclic layout puts them in banks 0 and 1; use two
        // single-element loads into bank 0 instead.
        let _ = sl;
        load_vec(
            &mut b,
            Layout {
                base: s,
                len: 1,
                width: 8,
            },
            &[4.0],
        );
        load_vec(
            &mut b,
            Layout {
                base: s + 1,
                len: 1,
                width: 8,
            },
            &[10.0],
        );
        scalar_recip(&mut b, 0, s, s + 2); // 1/4
        scalar_mul(&mut b, 0, s + 2, s + 1, s + 3); // 10 * 0.25
        let m = run(b);
        assert_eq!(m.regs().read(0, s + 2).unwrap(), 0.25);
        assert_eq!(m.regs().read(0, s + 3).unwrap(), 2.5);
    }

    #[test]
    fn zero_clears_layout() {
        let (mut b, mut a) = builder();
        let x = a.alloc(12);
        load_vec(&mut b, x, &[9.0; 12]);
        zero(&mut b, x);
        let m = run(b);
        assert_eq!(read_layout(&m, x), vec![0.0; 12]);
    }

    #[test]
    fn write_vec_costs_cycles_without_mutating() {
        let (mut b, mut a) = builder();
        let x = a.alloc(8);
        load_vec(&mut b, x, &[1.0; 8]);
        let before_len = b.len();
        write_vec(&mut b, x);
        assert!(b.len() > before_len);
        let m = run(b);
        assert_eq!(read_layout(&m, x), vec![1.0; 8]);
    }
}
