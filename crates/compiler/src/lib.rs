//! The MIB compiler stack (Sections III.D and IV of the paper).
//!
//! The compiler accepts the solver algorithm (as kernels over matrices and
//! vectors) together with the **sparsity patterns** of the problem matrices,
//! and emits network-instruction programs for the Multi-Issue Butterfly
//! machine:
//!
//! 1. **Kernel builders** generate one logical network instruction stream
//!    per primitive operation —
//!    [`spmv`] (MAC row products and column-elimination `Aᵀ` products),
//!    [`permute`] (butterfly-routable permutation partitions),
//!    [`trisolve`] (`L`/`D`/`Lᵀ` solves), [`factor`] (elimination-tree-
//!    ordered numeric LDLᵀ) and [`elementwise`] (`axpby`, products,
//!    projections, `norm_inf`).
//! 2. Each logical instruction records its **data dependencies**
//!    automatically (read-after-write with full pipeline latency,
//!    write-after-read/write ordering) via the [`kernel::KernelBuilder`].
//! 3. The [`schedule`] module packs logical instructions into issue slots
//!    with the **first-fit** algorithm of Section IV.B: an instruction goes
//!    into the earliest dependency-feasible slot whose hardware-occupancy
//!    footprint does not collide — multiple short instructions issue
//!    together, and prefetch copies fill otherwise-empty slots.
//! 4. [`lower`] assembles whole OSQP iterations (direct and indirect) into
//!    scheduled programs and a per-solve cycle model.
//! 5. [`cache::ProgramCache`] memoizes compiled programs by sparsity
//!    pattern: parametric re-solves (new `q`, `l`, `u` over a fixed
//!    structure) clone the cached schedules and regenerate only the cheap
//!    value-dependent load program.
//!
//! Scheduled programs are *verified*: executing them on the
//! [`mib_core::machine::Machine`] in strict hazard mode must reproduce the
//! reference `mib-sparse` results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod cost;
pub mod elementwise;
pub mod factor;
pub mod kernel;
pub mod layout;
pub mod lower;
pub mod permute;
pub mod route;
pub mod schedule;
pub mod spmv;
pub mod trisolve;
pub mod verify;

pub use cache::{CacheStats, ProgramCache};
pub use cost::{static_cost, StaticCost};
pub use kernel::{Kernel, KernelBuilder, LogicalInstr};
pub use layout::{Allocator, Layout};
pub use schedule::{schedule, Schedule, ScheduleOptions};
pub use verify::{certify_lowered, checked_schedule, verify_kernel_schedule, verify_schedule};
