//! Vector permutation kernels.
//!
//! A butterfly realizes only those permutations whose transfers use
//! node-disjoint paths; general permutations split into several passes.
//! The generator packs transfers into open instructions first-fit: each
//! `(source element → destination slot)` transfer claims its unique path
//! through a [`RouteSpace`]; when no open instruction can take it, a new
//! one opens. The `permutate` / `inverse_permutate` schedules of Listing 1
//! are built this way from the fill-reducing permutation of the direct KKT
//! solver.

use mib_core::instruction::{InstrKind, LaneSource, LaneWrite, NetInstruction, WriteMode};
use mib_sparse::Permutation;

use crate::kernel::KernelBuilder;
use crate::layout::Layout;
use crate::route::RouteSpace;

/// One open instruction being packed.
struct OpenInstr {
    inst: NetInstruction,
    rs: RouteSpace,
    /// Which source element currently owns each input lane (multicast key).
    input_owner: Vec<Option<usize>>,
    write_used: Vec<bool>,
}

impl OpenInstr {
    fn new(width: usize) -> Self {
        let mut inst = NetInstruction::nop(width);
        inst.kind = InstrKind::Permute;
        OpenInstr {
            inst,
            rs: RouteSpace::new(width),
            input_owner: vec![None; width],
            write_used: vec![false; width],
        }
    }

    /// Attempts to pack the transfer `src element e (at src_loc) -> dst_loc`.
    fn try_add(&mut self, elem: usize, src_loc: (usize, usize), dst_loc: (usize, usize)) -> bool {
        let (sb, sa) = src_loc;
        let (db, da) = dst_loc;
        if self.write_used[db] {
            return false;
        }
        match self.input_owner[sb] {
            None => {}
            Some(e) if e == elem => {}
            Some(_) => return false,
        }
        if !self.rs.try_claim_input(sb, elem as u32) {
            return false;
        }
        if !self.rs.try_route(&mut self.inst, elem as u32, sb, db) {
            return false;
        }
        if self.input_owner[sb].is_none() {
            self.inst.set_input(sb, LaneSource::Reg { addr: sa });
            self.input_owner[sb] = Some(elem);
        }
        self.inst.set_write(
            db,
            LaneWrite {
                addr: da,
                mode: WriteMode::Store,
            },
        );
        self.write_used[db] = true;
        true
    }
}

/// Emits a gather permutation: `dst[k] = src[perm[k]]`.
///
/// # Panics
///
/// Panics if layout lengths do not match the permutation length.
pub fn permute(b: &mut KernelBuilder, src: Layout, dst: Layout, perm: &Permutation) {
    assert_eq!(src.len, perm.len(), "src layout does not match permutation");
    assert_eq!(dst.len, perm.len(), "dst layout does not match permutation");
    let width = b.width();
    let mut open: Vec<OpenInstr> = Vec::new();
    for k in 0..perm.len() {
        let e = perm.perm()[k];
        let src_loc = src.loc(e);
        let dst_loc = dst.loc(k);
        let mut placed = false;
        for oi in &mut open {
            if oi.try_add(e, src_loc, dst_loc) {
                placed = true;
                break;
            }
        }
        if !placed {
            let mut oi = OpenInstr::new(width);
            assert!(
                oi.try_add(e, src_loc, dst_loc),
                "single transfer always fits an empty instruction"
            );
            open.push(oi);
        }
    }
    for oi in open {
        b.push(oi.inst, vec![]);
    }
}

/// Emits the inverse (scatter) permutation: `dst[perm[k]] = src[k]`.
pub fn permute_inverse(b: &mut KernelBuilder, src: Layout, dst: Layout, perm: &Permutation) {
    permute(b, src, dst, &perm.inverse());
}

/// A single register-to-register transfer `(src_loc, dst_loc)`, each
/// location expressed as `(bank, row)`.
pub type Transfer = ((usize, usize), (usize, usize));

/// Emits an arbitrary set of register-to-register transfers
/// `(src_loc → dst_loc)`. Transfers sharing a source location multicast
/// from one read; destinations must be distinct. Used for the KKT
/// `permutate` / `inverse_permutate` steps, which move between *pairs* of
/// vectors (`[rhs_x; rhs_z] ↔` the stacked KKT vector).
///
/// # Panics
///
/// Panics if two transfers share a destination.
pub fn permute_locs(b: &mut KernelBuilder, transfers: &[Transfer]) {
    let _route_span = mib_trace::span("route", mib_trace::Category::Compiler);
    let width = b.width();
    {
        let mut seen = std::collections::HashSet::new();
        for &(_, dst) in transfers {
            assert!(seen.insert(dst), "duplicate destination {dst:?}");
        }
    }
    // Multicast key: index of the first transfer using each source.
    let mut src_key = std::collections::HashMap::new();
    let mut open: Vec<OpenInstr> = Vec::new();
    for (t, &(src, dst)) in transfers.iter().enumerate() {
        let key = *src_key.entry(src).or_insert(t);
        let mut placed = false;
        for oi in &mut open {
            if oi.try_add(key, src, dst) {
                placed = true;
                break;
            }
        }
        if !placed {
            let mut oi = OpenInstr::new(width);
            assert!(oi.try_add(key, src, dst));
            open.push(oi);
        }
    }
    for oi in open {
        b.push(oi.inst, vec![]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elementwise::load_vec;
    use crate::layout::Allocator;
    use crate::schedule::{schedule, ScheduleOptions};
    use mib_core::hbm::HbmStream;
    use mib_core::machine::{HazardPolicy, Machine};
    use mib_core::MibConfig;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    fn run_permutation(n: usize, perm: &Permutation, seed: u64) {
        let c = MibConfig {
            width: 8,
            bank_depth: 1024,
            clock_hz: 1e6,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..n).map(|i| i as f64 + 0.5).collect();
        let _ = &mut rng;
        let mut alloc = Allocator::new(c.width);
        let src = alloc.alloc(n);
        let dst = alloc.alloc(n);
        let mut b = KernelBuilder::new("perm", c.width, c.latency());
        load_vec(&mut b, src, &data);
        permute(&mut b, src, dst, perm);
        let s = schedule(&b.finish(), ScheduleOptions::default());
        let mut m = Machine::new(c);
        m.run(
            &s.program,
            &mut HbmStream::new(s.hbm.clone()),
            HazardPolicy::Strict,
        )
        .unwrap();
        let got: Vec<f64> = (0..n)
            .map(|k| m.regs().read(dst.bank(k), dst.addr(k)).unwrap())
            .collect();
        let want = perm.apply(&data);
        assert_eq!(got, want);
    }

    #[test]
    fn identity_permutation() {
        run_permutation(13, &Permutation::identity(13), 1);
    }

    #[test]
    fn reversal_permutation() {
        let n = 16;
        let p = Permutation::from_vec((0..n).rev().collect()).unwrap();
        run_permutation(n, &p, 2);
    }

    #[test]
    fn random_permutations() {
        let mut rng = StdRng::seed_from_u64(99);
        for n in [8usize, 15, 24, 40] {
            let mut v: Vec<usize> = (0..n).collect();
            v.shuffle(&mut rng);
            let p = Permutation::from_vec(v).unwrap();
            run_permutation(n, &p, n as u64);
        }
    }

    #[test]
    fn scatter_inverts_gather() {
        let c = MibConfig {
            width: 8,
            bank_depth: 1024,
            clock_hz: 1e6,
        };
        let n = 21;
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..n).collect();
        v.shuffle(&mut rng);
        let p = Permutation::from_vec(v).unwrap();
        let data: Vec<f64> = (0..n).map(|i| (i * i) as f64).collect();
        let mut alloc = Allocator::new(c.width);
        let a0 = alloc.alloc(n);
        let a1 = alloc.alloc(n);
        let a2 = alloc.alloc(n);
        let mut b = KernelBuilder::new("perm", c.width, c.latency());
        load_vec(&mut b, a0, &data);
        permute(&mut b, a0, a1, &p);
        permute_inverse(&mut b, a1, a2, &p);
        let s = schedule(&b.finish(), ScheduleOptions::default());
        let mut m = Machine::new(c);
        m.run(
            &s.program,
            &mut HbmStream::new(s.hbm.clone()),
            HazardPolicy::Strict,
        )
        .unwrap();
        let got: Vec<f64> = (0..n)
            .map(|k| m.regs().read(a2.bank(k), a2.addr(k)).unwrap())
            .collect();
        assert_eq!(got, data);
    }
}
