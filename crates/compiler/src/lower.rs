//! Lowering of complete OSQP iterations onto the MIB machine.
//!
//! [`lower`] compiles a QP (its sparsity patterns, step sizes and solver
//! settings) into the set of scheduled programs the machine replays while
//! solving (Listing 1 of the paper):
//!
//! * a **load** program that streams the problem vectors into the register
//!   files (run once),
//! * for OSQP-direct, a **setup** program — the on-machine numeric LDLᵀ
//!   factorization of the permuted KKT matrix (replayed on every adaptive-ρ
//!   refactorization with a fresh value stream),
//! * an **iteration** program — one full ADMM step: right-hand side,
//!   `permutate → L_solve → D_solve → Lt_solve → inverse_permutate` (direct)
//!   or the PCG outer step (indirect), relaxation, projection and dual
//!   update,
//! * for OSQP-indirect, a **PCG iteration** program (Algorithm 2's loop
//!   body: one application of `S` plus the vector recurrences),
//! * a **check** program computing the primal/dual residual norms.
//!
//! The programs are *pattern-specific but value-generic*: matrix values
//! stream from HBM, so parameterized re-solves replay the same schedules.
//! The direct iteration program is functionally exact and is verified
//! against the reference solver in the integration tests; together with
//! iteration counts from the reference run it yields the cycle-accurate
//! runtime model behind the paper's Figure 10.

use mib_core::instruction::WriteMode;
use mib_core::MibConfig;
use mib_qp::kkt::KktMatrix;
use mib_qp::{KktBackend, Problem, QpError, Settings, INFTY};
use mib_sparse::ldl::LdlSymbolic;
use mib_sparse::order::{self, Ordering};
use mib_sparse::CsrMatrix;

use crate::elementwise as ew;
use crate::factor::{factor_kernel, plan_factor_exact};
use crate::kernel::{Kernel, KernelBuilder};
use crate::layout::{Allocator, Layout};
use crate::permute::permute_locs;
use crate::schedule::{Schedule, ScheduleOptions};
use crate::spmv::{col_spmv, mac_spmv, symmetrize_upper, SpmvOptions};
use crate::trisolve::{dsolve_streamed, lsolve_streamed, ltsolve_streamed};
use crate::verify::checked_schedule;

/// A QP lowered to MIB programs plus the cycle model.
#[derive(Debug, Clone)]
pub struct LoweredQp {
    /// Machine configuration the programs were compiled for.
    pub config: MibConfig,
    /// Which algorithm variant was lowered.
    pub backend: KktBackend,
    /// One-time data load program.
    pub load: Schedule,
    /// Factorization program (empty for the indirect variant).
    pub setup: Schedule,
    /// One ADMM iteration (excluding inner PCG iterations).
    pub iteration: Schedule,
    /// One PCG iteration (indirect variant only; empty otherwise).
    pub pcg_iteration: Schedule,
    /// Residual computation program.
    pub check: Schedule,
}

impl LoweredQp {
    fn cycles_of(&self, s: &Schedule) -> u64 {
        if s.program.is_empty() {
            0
        } else {
            s.program.len() as u64 + self.config.latency()
        }
    }

    /// Cycles of the one-time load.
    pub fn load_cycles(&self) -> u64 {
        self.cycles_of(&self.load)
    }

    /// Cycles of one numeric (re)factorization.
    pub fn setup_cycles(&self) -> u64 {
        self.cycles_of(&self.setup)
    }

    /// Cycles of one ADMM iteration (outer part).
    pub fn iteration_cycles(&self) -> u64 {
        self.cycles_of(&self.iteration)
    }

    /// Cycles of one PCG iteration.
    pub fn pcg_cycles(&self) -> u64 {
        self.cycles_of(&self.pcg_iteration)
    }

    /// Cycles of one residual check.
    pub fn check_cycles(&self) -> u64 {
        self.cycles_of(&self.check)
    }

    /// Total solve cycles for a run with the given statistics (taken from
    /// the reference solver, whose iterate trajectory is identical).
    ///
    /// `factor_count` counts numeric factorizations (the initial one plus
    /// one per adaptive-ρ update); it is ignored by the indirect variant.
    pub fn total_cycles(
        &self,
        admm_iters: usize,
        pcg_iters: usize,
        checks: usize,
        factor_count: usize,
    ) -> u64 {
        let mut c = self.load_cycles();
        c += self.setup_cycles() * factor_count as u64;
        c += self.iteration_cycles() * admm_iters as u64;
        c += self.pcg_cycles() * pcg_iters as u64;
        c += self.check_cycles() * checks as u64;
        c
    }

    /// Wall-clock seconds for [`LoweredQp::total_cycles`] at the configured
    /// clock — fully deterministic, which is the source of the paper's
    /// near-zero runtime jitter.
    pub fn total_seconds(
        &self,
        admm_iters: usize,
        pcg_iters: usize,
        checks: usize,
        factor_count: usize,
    ) -> f64 {
        self.config.cycles_to_seconds(self.total_cycles(
            admm_iters,
            pcg_iters,
            checks,
            factor_count,
        ))
    }
}

/// Per-constraint step sizes, mirroring the reference solver's rule.
pub(crate) fn rho_vec_for(problem: &Problem, settings: &Settings) -> Vec<f64> {
    problem
        .l()
        .iter()
        .zip(problem.u())
        .map(|(&lo, &hi)| {
            if lo <= -INFTY && hi >= INFTY {
                settings.rho_min
            } else if lo == hi {
                (settings.rho * settings.rho_eq_scale).clamp(settings.rho_min, settings.rho_max)
            } else {
                settings.rho
            }
        })
        .collect()
}

/// Compiles a problem for the MIB machine.
///
/// # Errors
///
/// Returns [`QpError`] variants for invalid settings or a failed symbolic
/// KKT analysis.
pub fn lower(
    problem: &Problem,
    settings: &Settings,
    config: MibConfig,
) -> Result<LoweredQp, QpError> {
    let _lower_span = mib_trace::span("lower", mib_trace::Category::Compiler);
    settings.validate()?;
    match settings.backend {
        KktBackend::Direct => lower_direct(problem, settings, config),
        KktBackend::Indirect => lower_indirect(problem, settings, config),
    }
}

/// Schedules one named kernel under a compiler-category `schedule` span and
/// emits the packing-quality event (issue slots vs logical instructions,
/// forced appends, statically predicted cycles) that trace reports
/// aggregate per program.
fn traced_schedule(name: &'static str, kernel: &Kernel, config: &MibConfig) -> Schedule {
    let tracing = mib_trace::enabled();
    let _span = mib_trace::span_if(tracing, "schedule", mib_trace::Category::Compiler);
    let s = checked_schedule(kernel, ScheduleOptions::default(), config);
    if tracing {
        let predicted = crate::cost::static_cost(&s, config).map_or(0, |c| c.cycles);
        mib_trace::record(mib_trace::Event::ScheduleQuality {
            name,
            slots: u32::try_from(s.slots()).unwrap_or(u32::MAX),
            logical: u32::try_from(s.logical_count).unwrap_or(u32::MAX),
            forced_appends: u32::try_from(s.forced_appends).unwrap_or(u32::MAX),
            predicted_cycles: u32::try_from(predicted).unwrap_or(u32::MAX),
        });
    }
    s
}

struct CommonState {
    q: Layout,
    l: Layout,
    u: Layout,
    rho: Layout,
    rho_inv: Layout,
    x: Layout,
    y: Layout,
    z: Layout,
    xtilde: Layout,
    nu: Layout,
    ztilde: Layout,
    zr: Layout,
    t_n: Layout,
    t_m: Layout,
    t_m2: Layout,
    t_n2: Layout,
    norm_scratch: usize,
    prim_res: usize,
    dual_res: usize,
}

fn alloc_common(alloc: &mut Allocator, n: usize, m: usize) -> CommonState {
    CommonState {
        q: alloc.alloc(n),
        l: alloc.alloc(m),
        u: alloc.alloc(m),
        rho: alloc.alloc(m),
        rho_inv: alloc.alloc(m),
        x: alloc.alloc(n),
        y: alloc.alloc(m),
        z: alloc.alloc(m),
        xtilde: alloc.alloc(n),
        nu: alloc.alloc(m),
        ztilde: alloc.alloc(m),
        zr: alloc.alloc(m),
        t_n: alloc.alloc(n),
        t_m: alloc.alloc(m),
        t_m2: alloc.alloc(m),
        t_n2: alloc.alloc(n),
        norm_scratch: alloc.alloc_rows(8),
        prim_res: alloc.alloc_rows(1),
        dual_res: alloc.alloc_rows(1),
    }
}

/// Register-file layouts for the indirect variant's PCG state.
///
/// Allocated immediately after [`alloc_common`] so the addresses are a
/// deterministic function of `(n, m, width)` — the property that lets the
/// program cache regenerate a load schedule without re-running the full
/// lowering.
struct PcgLayouts {
    b_vec: Layout,
    r: Layout,
    pdir: Layout,
    dvec: Layout,
    sp: Layout,
    az: Layout,
    precond: Layout,
    scalars: usize,
}

fn alloc_pcg(alloc: &mut Allocator, n: usize, m: usize) -> PcgLayouts {
    PcgLayouts {
        b_vec: alloc.alloc(n), // reduced rhs
        r: alloc.alloc(n),
        pdir: alloc.alloc(n),
        dvec: alloc.alloc(n),
        sp: alloc.alloc(n),
        az: alloc.alloc(m),
        precond: alloc.alloc(n),
        scalars: alloc.alloc_rows(8), // rd, psp, lambda, mu, rd_new, recip...
    }
}

/// Jacobi preconditioner values `1 / (diag(P) + σ + Σᵢ ρᵢ Aᵢⱼ²)`.
fn jacobi_precond_values(problem: &Problem, sigma: f64, rho_vec: &[f64]) -> Vec<f64> {
    let n = problem.num_vars();
    let mut diag = vec![sigma; n];
    for (j, d) in diag.iter_mut().enumerate() {
        *d += problem.p().get(j, j);
    }
    for (i, j, v) in problem.a().iter() {
        diag[j] += rho_vec[i] * v * v;
    }
    diag.iter()
        .map(|&d| if d > 0.0 { 1.0 / d } else { 1.0 })
        .collect()
}

/// Builds the (value-dependent) one-time load program on a fresh allocator.
///
/// This is the only schedule whose *instruction stream data* depends on the
/// vector values `q`, `l`, `u` (and through `ρ` classification, the bounds).
/// The register addresses it targets are deterministic given the problem
/// dimensions and machine width, so [`crate::cache::ProgramCache`] calls
/// this to refresh a cached [`LoweredQp`] for new parameter values without
/// re-running symbolic analysis or rescheduling the iteration programs.
pub(crate) fn build_load_schedule(
    problem: &Problem,
    settings: &Settings,
    config: MibConfig,
) -> Schedule {
    let n = problem.num_vars();
    let m = problem.num_constraints();
    let rho_vec = rho_vec_for(problem, settings);
    let mut alloc = Allocator::new(config.width);
    let st = alloc_common(&mut alloc, n, m);
    let mut lb = KernelBuilder::new("load", config.width, config.latency());
    build_load(&mut lb, &st, problem, &rho_vec);
    if settings.backend == KktBackend::Indirect {
        let pcg = alloc_pcg(&mut alloc, n, m);
        let minv = jacobi_precond_values(problem, settings.sigma, &rho_vec);
        ew::load_vec(&mut lb, pcg.precond, &minv);
    }
    traced_schedule("load", &lb.finish(), &config)
}

/// Emits the one-time load of problem vectors (bounds are clamped to a
/// large-but-finite magnitude so the machine's arithmetic stays clean).
fn build_load(b: &mut KernelBuilder, st: &CommonState, problem: &Problem, rho_vec: &[f64]) {
    let clamp = |v: f64| v.clamp(-INFTY, INFTY);
    ew::load_vec(b, st.q, problem.q());
    ew::load_vec(
        b,
        st.l,
        &problem.l().iter().map(|&v| clamp(v)).collect::<Vec<_>>(),
    );
    ew::load_vec(
        b,
        st.u,
        &problem.u().iter().map(|&v| clamp(v)).collect::<Vec<_>>(),
    );
    ew::load_vec(b, st.rho, rho_vec);
    ew::load_vec(
        b,
        st.rho_inv,
        &rho_vec.iter().map(|&r| 1.0 / r).collect::<Vec<_>>(),
    );
    ew::zero(b, st.x);
    ew::zero(b, st.y);
    ew::zero(b, st.z);
}

/// Emits the ADMM right-hand side: `t_n = σx − q`, `t_m = z − ρ⁻¹∘y`.
fn build_rhs(b: &mut KernelBuilder, st: &CommonState, sigma: f64) {
    ew::scale(b, st.x, st.t_n, sigma, WriteMode::Store);
    ew::scale(b, st.q, st.t_n, -1.0, WriteMode::Add);
    ew::ew_prod(b, st.y, st.rho_inv, st.t_m, WriteMode::Store);
    ew::scale(b, st.t_m, st.t_m, -1.0, WriteMode::Store);
    ew::scale(b, st.z, st.t_m, 1.0, WriteMode::Add);
}

/// Emits the post-KKT updates: relaxation, projection, dual step
/// (steps 4–7 of Algorithm 1).
fn build_updates(b: &mut KernelBuilder, st: &CommonState, alpha: f64) {
    // ztilde = z + ρ⁻¹ ∘ (ν − y)
    ew::scale(b, st.nu, st.t_m, 1.0, WriteMode::Store);
    ew::scale(b, st.y, st.t_m, -1.0, WriteMode::Add);
    ew::ew_prod(b, st.t_m, st.rho_inv, st.t_m, WriteMode::Store);
    ew::scale(b, st.z, st.ztilde, 1.0, WriteMode::Store);
    ew::scale(b, st.t_m, st.ztilde, 1.0, WriteMode::Add);
    // zr = α·ztilde + (1−α)·z
    ew::scale(b, st.ztilde, st.zr, alpha, WriteMode::Store);
    ew::scale(b, st.z, st.zr, 1.0 - alpha, WriteMode::Add);
    // x = α·xtilde + (1−α)·x
    ew::scale(b, st.x, st.x, 1.0 - alpha, WriteMode::Store);
    ew::scale(b, st.xtilde, st.x, alpha, WriteMode::Add);
    // w (t_m) = zr + ρ⁻¹ ∘ y ; z = Π(w)
    ew::ew_prod(b, st.y, st.rho_inv, st.t_m, WriteMode::Store);
    ew::scale(b, st.zr, st.t_m, 1.0, WriteMode::Add);
    ew::clip(b, st.t_m, st.l, st.u, st.z);
    // y += ρ ∘ (zr − z)
    ew::scale(b, st.zr, st.t_m, 1.0, WriteMode::Store);
    ew::scale(b, st.z, st.t_m, -1.0, WriteMode::Add);
    ew::ew_prod(b, st.t_m, st.rho, st.t_m, WriteMode::Store);
    ew::scale(b, st.t_m, st.y, 1.0, WriteMode::Add);
}

/// Emits the residual computation: `prim = ‖Ax − z‖∞`,
/// `dual = ‖Px + q + Aᵀy‖∞`.
fn build_check(
    b: &mut KernelBuilder,
    alloc: &mut Allocator,
    st: &CommonState,
    a_csr: &CsrMatrix,
    p_full: &CsrMatrix,
) {
    mac_spmv(
        b,
        alloc,
        a_csr,
        st.x,
        st.t_m2,
        false,
        SpmvOptions::default(),
    );
    ew::scale(b, st.z, st.t_m2, -1.0, WriteMode::Add);
    ew::norm_inf(b, st.t_m2, st.norm_scratch, st.prim_res);
    mac_spmv(
        b,
        alloc,
        p_full,
        st.x,
        st.t_n2,
        false,
        SpmvOptions::default(),
    );
    ew::scale(b, st.q, st.t_n2, 1.0, WriteMode::Add);
    col_spmv(b, alloc, a_csr, st.y, st.t_n2, true);
    ew::norm_inf(b, st.t_n2, st.norm_scratch, st.dual_res);
}

fn lower_direct(
    problem: &Problem,
    settings: &Settings,
    config: MibConfig,
) -> Result<LoweredQp, QpError> {
    let n = problem.num_vars();
    let m = problem.num_constraints();
    let rho_vec = rho_vec_for(problem, settings);
    let mut alloc = Allocator::new(config.width);
    let st = alloc_common(&mut alloc, n, m);
    let a_csr = problem.a().to_csr();
    let p_full = symmetrize_upper(problem.p()).to_csr();

    // KKT analysis (same path as the reference direct backend).
    let (perm, permuted, sym) = {
        let _analyze = mib_trace::span("analyze", mib_trace::Category::Compiler);
        let kkt = KktMatrix::assemble(problem.p(), problem.a(), settings.sigma, &rho_vec)?;
        let perm = order::compute(kkt.matrix(), Ordering::MinDegree)?;
        let permuted = perm.sym_perm_upper(kkt.matrix())?;
        let sym = LdlSymbolic::new(&permuted)?;
        (perm, permuted, sym)
    };

    let (fl, y_scratch) = plan_factor_exact(&permuted, &sym, &mut alloc);
    let v = alloc.alloc(n + m);

    // Load program (shared with the cache's value-refresh path).
    let load = build_load_schedule(problem, settings, config);

    // Setup: on-machine numeric factorization.
    let mut fb = KernelBuilder::new("factor", config.width, config.latency());
    factor_kernel(&mut fb, &permuted, &sym, &fl, y_scratch);
    let setup = traced_schedule("setup", &fb.finish(), &config);

    // Iteration program.
    let mut ib = KernelBuilder::new("iteration", config.width, config.latency());
    build_rhs(&mut ib, &st, settings.sigma);
    // permutate: v[p] = rhs[perm[p]] where rhs = [t_n; t_m].
    let rhs_loc = |idx: usize| {
        if idx < n {
            st.t_n.loc(idx)
        } else {
            st.t_m.loc(idx - n)
        }
    };
    let gather: Vec<((usize, usize), (usize, usize))> = (0..n + m)
        .map(|p| (rhs_loc(perm.perm()[p]), v.loc(p)))
        .collect();
    permute_locs(&mut ib, &gather);
    // Reference factor object for structure-driven solve generation: the
    // triangular-solve generators need L's pattern; values live on-machine.
    let f_struct = sym
        .factor(&permuted)
        .map_err(|e| QpError::KktFactorization(e.to_string()))?;
    lsolve_streamed(&mut ib, &f_struct, v);
    dsolve_streamed(&mut ib, &f_struct, v);
    ltsolve_streamed(&mut ib, &f_struct, v);
    // inverse_permutate: xtilde[j] = v[inv[j]], nu[i] = v[inv[n + i]].
    let out_loc = |idx: usize| {
        if idx < n {
            st.xtilde.loc(idx)
        } else {
            st.nu.loc(idx - n)
        }
    };
    let scatter: Vec<((usize, usize), (usize, usize))> = (0..n + m)
        .map(|orig| (v.loc(perm.inv()[orig]), out_loc(orig)))
        .collect();
    permute_locs(&mut ib, &scatter);
    build_updates(&mut ib, &st, settings.alpha);
    let iteration = traced_schedule("iteration", &ib.finish(), &config);

    // Check program.
    let mut cb = KernelBuilder::new("check", config.width, config.latency());
    build_check(&mut cb, &mut alloc, &st, &a_csr, &p_full);
    let check = traced_schedule("check", &cb.finish(), &config);

    Ok(LoweredQp {
        config,
        backend: KktBackend::Direct,
        load,
        setup,
        iteration,
        pcg_iteration: checked_schedule(
            &KernelBuilder::new("empty", config.width, config.latency()).finish(),
            ScheduleOptions::default(),
            &config,
        ),
        check,
    })
}

fn lower_indirect(
    problem: &Problem,
    settings: &Settings,
    config: MibConfig,
) -> Result<LoweredQp, QpError> {
    let n = problem.num_vars();
    let m = problem.num_constraints();
    let mut alloc = Allocator::new(config.width);
    let st = alloc_common(&mut alloc, n, m);
    let a_csr = problem.a().to_csr();
    let p_full = symmetrize_upper(problem.p()).to_csr();

    // PCG state vectors (allocation order shared with the load builder).
    let PcgLayouts {
        b_vec,
        r,
        pdir,
        dvec,
        sp,
        az,
        precond,
        scalars,
    } = alloc_pcg(&mut alloc, n, m);

    // Load program, including the Jacobi preconditioner values
    // (diag(P) + sigma + sum rho_i A_ij^2).
    let load = build_load_schedule(problem, settings, config);

    // Iteration (outer) program: rhs, reduced rhs, nu recovery, updates.
    let mut ib = KernelBuilder::new("iteration", config.width, config.latency());
    build_rhs(&mut ib, &st, settings.sigma);
    // b = t_n + Aᵀ(ρ ∘ t_m)
    ew::scale(&mut ib, st.t_n, b_vec, 1.0, WriteMode::Store);
    ew::ew_prod(&mut ib, st.t_m, st.rho, st.t_m2, WriteMode::Store);
    col_spmv(&mut ib, &mut alloc, &a_csr, st.t_m2, b_vec, true);
    // PCG initialization: r = S·xtilde − b (one S application), d = M⁻¹r,
    // p = −d, rd = rᵀd.
    apply_s(
        &mut ib,
        &mut alloc,
        &st,
        &a_csr,
        &p_full,
        settings.sigma,
        st.xtilde,
        r,
        az,
    );
    ew::scale(&mut ib, b_vec, r, -1.0, WriteMode::Add);
    ew::ew_prod(&mut ib, r, precond, dvec, WriteMode::Store);
    ew::scale(&mut ib, dvec, pdir, -1.0, WriteMode::Store);
    ew::ew_prod(&mut ib, r, dvec, st.t_n2, WriteMode::Store);
    ew::sum_reduce(&mut ib, st.t_n2, st.norm_scratch, scalars);
    // After the PCG loop (modelled separately), xtilde holds the solution:
    // ν = ρ ∘ (A·xtilde − t_m).
    mac_spmv(
        &mut ib,
        &mut alloc,
        &a_csr,
        st.xtilde,
        st.t_m2,
        false,
        SpmvOptions::default(),
    );
    ew::scale(&mut ib, st.t_m, st.t_m2, -1.0, WriteMode::Add);
    ew::ew_prod(&mut ib, st.t_m2, st.rho, st.nu, WriteMode::Store);
    build_updates(&mut ib, &st, settings.alpha);
    let iteration = traced_schedule("iteration", &ib.finish(), &config);

    // PCG iteration program (Algorithm 2, lines 3-9).
    let mut pb = KernelBuilder::new("pcg", config.width, config.latency());
    apply_s(
        &mut pb,
        &mut alloc,
        &st,
        &a_csr,
        &p_full,
        settings.sigma,
        pdir,
        sp,
        az,
    );
    // psp = pᵀ(Sp)
    ew::ew_prod(&mut pb, pdir, sp, st.t_n2, WriteMode::Store);
    ew::sum_reduce(&mut pb, st.t_n2, st.norm_scratch, scalars + 1);
    // lambda = rd / psp
    ew::scalar_recip(&mut pb, 0, scalars + 1, scalars + 2);
    ew::scalar_mul(&mut pb, 0, scalars, scalars + 2, scalars + 3);
    // x += λ p ; r += λ Sp
    ew::broadcast_scalar(&mut pb, 0, scalars + 3);
    ew::scale_by_latch(&mut pb, pdir, st.xtilde, false, WriteMode::Add);
    ew::scale_by_latch(&mut pb, sp, r, false, WriteMode::Add);
    // d = M⁻¹ r ; rd_new = rᵀd ; mu = rd_new / rd
    ew::ew_prod(&mut pb, r, precond, dvec, WriteMode::Store);
    ew::ew_prod(&mut pb, r, dvec, st.t_n2, WriteMode::Store);
    ew::sum_reduce(&mut pb, st.t_n2, st.norm_scratch, scalars + 4);
    ew::scalar_recip(&mut pb, 0, scalars, scalars + 5);
    ew::scalar_mul(&mut pb, 0, scalars + 4, scalars + 5, scalars + 6);
    // p = mu·p − d ; rd = rd_new
    ew::broadcast_scalar(&mut pb, 0, scalars + 6);
    ew::scale_by_latch(&mut pb, pdir, pdir, false, WriteMode::Store);
    ew::scale(&mut pb, dvec, pdir, -1.0, WriteMode::Add);
    ew::scale(
        &mut pb,
        Layout {
            base: scalars + 4,
            len: 1,
            width: config.width,
        },
        Layout {
            base: scalars,
            len: 1,
            width: config.width,
        },
        1.0,
        WriteMode::Store,
    );
    let pcg_iteration = traced_schedule("pcg", &pb.finish(), &config);

    let mut cb = KernelBuilder::new("check", config.width, config.latency());
    build_check(&mut cb, &mut alloc, &st, &a_csr, &p_full);
    let check = traced_schedule("check", &cb.finish(), &config);

    Ok(LoweredQp {
        config,
        backend: KktBackend::Indirect,
        load,
        setup: checked_schedule(
            &KernelBuilder::new("empty", config.width, config.latency()).finish(),
            ScheduleOptions::default(),
            &config,
        ),
        iteration,
        pcg_iteration,
        check,
    })
}

/// Emits `out = S·v = (P + σI + Aᵀ diag(ρ) A) v` without forming `S`
/// (Section II.D: "S should never be explicitly computed").
#[allow(clippy::too_many_arguments)]
fn apply_s(
    b: &mut KernelBuilder,
    alloc: &mut Allocator,
    st: &CommonState,
    a_csr: &CsrMatrix,
    p_full: &CsrMatrix,
    sigma: f64,
    v: Layout,
    out: Layout,
    az: Layout,
) {
    mac_spmv(b, alloc, p_full, v, out, false, SpmvOptions::default());
    ew::scale(b, v, out, sigma, WriteMode::Add);
    mac_spmv(b, alloc, a_csr, v, az, false, SpmvOptions::default());
    ew::ew_prod(b, az, st.rho, az, WriteMode::Store);
    col_spmv(b, alloc, a_csr, az, out, true);
}

#[cfg(test)]
mod tests {
    use super::*;
    use mib_core::hbm::HbmStream;
    use mib_core::machine::{HazardPolicy, Machine};
    use mib_sparse::CscMatrix;

    fn small_problem() -> Problem {
        let p = CscMatrix::from_dense(2, 2, &[4.0, 1.0, 0.0, 2.0])
            .upper_triangle()
            .unwrap();
        let a = CscMatrix::from_dense(3, 2, &[1.0, 1.0, 1.0, 0.0, 0.0, 1.0]);
        Problem::new(
            p,
            vec![1.0, 1.0],
            a,
            vec![1.0, 0.0, 0.0],
            vec![1.0, 0.7, 0.7],
        )
        .unwrap()
    }

    fn tiny_config() -> MibConfig {
        MibConfig {
            width: 8,
            bank_depth: 1 << 14,
            clock_hz: 1e6,
        }
    }

    #[test]
    fn direct_lowering_produces_all_programs() {
        let problem = small_problem();
        let lowered = lower(&problem, &Settings::default(), tiny_config()).unwrap();
        assert!(lowered.load_cycles() > 0);
        assert!(lowered.setup_cycles() > 0);
        assert!(lowered.iteration_cycles() > 0);
        assert!(lowered.check_cycles() > 0);
        assert_eq!(lowered.pcg_cycles(), 0);
        let total = lowered.total_cycles(100, 0, 4, 1);
        assert!(total > lowered.iteration_cycles() * 100);
    }

    #[test]
    fn indirect_lowering_produces_pcg_program() {
        let problem = small_problem();
        let settings = Settings::with_backend(KktBackend::Indirect);
        let lowered = lower(&problem, &settings, tiny_config()).unwrap();
        assert_eq!(lowered.setup_cycles(), 0);
        assert!(lowered.pcg_cycles() > 0);
        assert!(lowered.iteration_cycles() > 0);
    }

    #[test]
    fn direct_programs_execute_hazard_free() {
        let problem = small_problem();
        let lowered = lower(&problem, &Settings::default(), tiny_config()).unwrap();
        let mut m = Machine::new(lowered.config);
        for s in [
            &lowered.load,
            &lowered.setup,
            &lowered.iteration,
            &lowered.check,
        ] {
            let mut hbm = HbmStream::new(s.hbm.clone());
            m.run(&s.program, &mut hbm, HazardPolicy::Strict)
                .expect("lowered programs must be hazard-free");
        }
    }

    #[test]
    fn indirect_programs_execute_hazard_free() {
        let problem = small_problem();
        let settings = Settings::with_backend(KktBackend::Indirect);
        let lowered = lower(&problem, &settings, tiny_config()).unwrap();
        let mut m = Machine::new(lowered.config);
        for s in [
            &lowered.load,
            &lowered.iteration,
            &lowered.pcg_iteration,
            &lowered.check,
        ] {
            let mut hbm = HbmStream::new(s.hbm.clone());
            m.run(&s.program, &mut hbm, HazardPolicy::Strict)
                .expect("lowered programs must be hazard-free");
        }
    }

    /// The critical end-to-end functional test: replaying the direct
    /// iteration program must reproduce the reference ADMM iterates.
    #[test]
    fn direct_iteration_matches_reference_admm() {
        let problem = small_problem();
        // Match the lowered program's modelling assumptions: no scaling,
        // no adaptive rho.
        let settings = Settings {
            scaling_iters: 0,
            adaptive_rho: false,
            eps_abs: 1e-9,
            eps_rel: 1e-9,
            ..Settings::default()
        };
        let lowered = lower(&problem, &settings, tiny_config()).unwrap();

        let mut m = Machine::new(lowered.config);
        let run = |m: &mut Machine, s: &Schedule| {
            let mut hbm = HbmStream::new(s.hbm.clone());
            m.run(&s.program, &mut hbm, HazardPolicy::Strict).unwrap();
        };
        run(&mut m, &lowered.load);
        run(&mut m, &lowered.setup);
        for _ in 0..200 {
            run(&mut m, &lowered.iteration);
        }
        // Reference solution of this QP: x = (0.3, 0.7) from the OSQP
        // paper's example... compute via the reference solver instead.
        let reference = mib_qp::Solver::new(problem.clone(), settings)
            .unwrap()
            .solve();
        assert!(reference.status.is_solved());
        // Read x from the machine.
        let n = problem.num_vars();
        let mut alloc = Allocator::new(lowered.config.width);
        let st = alloc_common(&mut alloc, n, problem.num_constraints());
        let got: Vec<f64> = (0..n)
            .map(|e| m.regs().read(st.x.bank(e), st.x.addr(e)).unwrap())
            .collect();
        for (g, w) in got.iter().zip(&reference.x) {
            assert!(
                (g - w).abs() < 1e-3,
                "on-machine ADMM diverged from reference: {got:?} vs {:?}",
                reference.x
            );
        }
    }
}
