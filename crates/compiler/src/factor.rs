//! On-machine numeric LDLᵀ factorization (the `OSQP-direct` refactorization
//! kernel, Section IV.C of the paper).
//!
//! The kernel streams the (permuted) KKT matrix's upper triangle from HBM
//! column by column and executes the up-looking row algorithm of equation
//! (5) entirely with network instructions:
//!
//! * the sparse right-hand side of each row's triangular solve accumulates
//!   in a scratch vector `y` (cyclic layout),
//! * each pattern column `i` contributes a *column elimination* group —
//!   latch `D⁻¹ᵢ`, form `L(k,i) = yᵢ·D⁻¹ᵢ`, broadcast `yᵢ` (Fig. 6b) and
//!   scatter-subtract `L(r,i)·yᵢ` into `y`,
//! * pivots finish with a reciprocal writeback (`StoreRecip`) so the `D`
//!   solve can run as an element-wise product.
//!
//! The **elimination tree** defines the dependency structure: column `k`
//! can start only after its pattern columns finished, which the dependency
//! tracker discovers naturally through register reuse. The initial
//! instruction order processes rows ascending (a topological order of the
//! etree); the first-fit scheduler then interleaves independent subtrees —
//! exactly the reordering the paper's Figure 8 illustrates.

use mib_core::instruction::{InstrKind, LaneSource, LaneWrite, NetInstruction, WriteMode};
use mib_sparse::ldl::LdlSymbolic;
use mib_sparse::CscMatrix;

use crate::kernel::KernelBuilder;
use crate::layout::{Allocator, Layout};
use crate::route::RouteSpace;
use crate::trisolve::FactorLayout;

/// Emits the numeric factorization kernel for the (permuted, upper
/// triangle) matrix `a` with symbolic analysis `sym`, writing `L`, `D` and
/// `D⁻¹` into `fl`. `y` is a scratch layout of length `n` that must start
/// (and is left) all-zero.
///
/// The matrix *values* stream from HBM; the sparsity *pattern* is compiled
/// into the instruction stream — re-running the kernel with different
/// values (a `ρ` update) re-factors without recompilation, matching the
/// paper's numeric-refactor-only behaviour.
///
/// # Panics
///
/// Panics if layout sizes disagree with the matrix dimension.
pub fn factor_kernel(
    b: &mut KernelBuilder,
    a: &CscMatrix,
    sym: &LdlSymbolic,
    fl: &FactorLayout,
    y: Layout,
) {
    let n = sym.n();
    assert_eq!(a.ncols(), n, "matrix does not match symbolic analysis");
    assert_eq!(y.len, n, "scratch layout must have length n");
    let width = b.width();
    let l_col_ptr = {
        // Recover column pointers from the elimination-tree column counts.
        let mut ptr = vec![0usize; n + 1];
        for (i, &c) in sym.etree().col_counts().iter().enumerate() {
            ptr[i + 1] = ptr[i] + c;
        }
        ptr
    };
    // Row index of every L position, rebuilt as rows are processed (the
    // same replay the reference numeric factorization performs).
    let mut l_rows = vec![0usize; l_col_ptr[n]];
    let mut fill = vec![0usize; n];
    let d = fl.d();
    let dinv = fl.dinv();

    for k in 0..n {
        // ---- Load phase: scatter column k of A into y (and D[k]). ----
        let entries: Vec<(usize, f64)> = a.col(k).collect();
        let mut idx = 0usize;
        let mut saw_diag = false;
        while idx < entries.len() {
            let mut used = vec![false; width];
            let mut inst = NetInstruction::nop(width);
            inst.kind = InstrKind::Elementwise;
            let mut stream = Vec::new();
            while idx < entries.len() {
                let (i, v) = entries[idx];
                let (lane, addr) = if i == k {
                    saw_diag = true;
                    (d.bank(k), d.addr(k))
                } else {
                    (y.bank(i), y.addr(i))
                };
                if used[lane] {
                    break;
                }
                used[lane] = true;
                inst.set_input(lane, LaneSource::Stream);
                inst.route(lane, lane);
                inst.set_write(
                    lane,
                    LaneWrite {
                        addr,
                        mode: WriteMode::Store,
                    },
                );
                stream.push((lane, v));
                idx += 1;
            }
            b.push(inst, stream);
        }
        assert!(
            saw_diag,
            "kkt matrix must have an explicit diagonal at column {k}"
        );

        // ---- Elimination phase over the row pattern. ----
        let pattern = sym.etree().row_pattern(a, k);
        for &i in &pattern {
            let lane_i = y.bank(i);
            let lane_k = (k) % width;
            // (1) Latch D⁻¹ᵢ at lane i.
            let mut l1 = NetInstruction::nop(width);
            l1.kind = InstrKind::Broadcast;
            l1.set_input(dinv.bank(i), LaneSource::Reg { addr: dinv.addr(i) });
            l1.route(dinv.bank(i), lane_i);
            l1.set_write(
                lane_i,
                LaneWrite {
                    addr: 0,
                    mode: WriteMode::Latch,
                },
            );
            b.push(l1, vec![]);
            // (2) L(k, i) = yᵢ · D⁻¹ᵢ, stored at the next free slot of
            // column i (bank k % C).
            let p_ki = l_col_ptr[i] + fill[i];
            l_rows[p_ki] = k;
            let (bank_ki, addr_ki) = fl.l_loc(p_ki, k);
            debug_assert_eq!(bank_ki, lane_k);
            let mut l2 = NetInstruction::nop(width);
            l2.kind = InstrKind::ColElim;
            l2.set_input(
                lane_i,
                LaneSource::RegTimesLatch {
                    addr: y.addr(i),
                    negate: false,
                },
            );
            l2.route(lane_i, lane_k);
            l2.set_write(
                lane_k,
                LaneWrite {
                    addr: addr_ki,
                    mode: WriteMode::Store,
                },
            );
            b.push(l2, vec![]);
            // (3) Broadcast yᵢ into the latches of the update lanes and the
            // pivot lane.
            let update_rows = &l_rows[l_col_ptr[i]..p_ki];
            let mut targets: Vec<usize> = update_rows.iter().map(|&r| r % width).collect();
            targets.push(lane_k);
            targets.sort_unstable();
            targets.dedup();
            let mut l3 = NetInstruction::nop(width);
            l3.kind = InstrKind::Broadcast;
            l3.set_input(lane_i, LaneSource::Reg { addr: y.addr(i) });
            let mut rs = RouteSpace::new(width);
            rs.try_claim_input(lane_i, 0);
            for &t in &targets {
                assert!(rs.try_route(&mut l3, 0, lane_i, t));
                l3.set_write(
                    t,
                    LaneWrite {
                        addr: 0,
                        mode: WriteMode::Latch,
                    },
                );
            }
            b.push(l3, vec![]);
            // (4) Updates: y_r -= L(r, i) · yᵢ, chunked by lane.
            let mut uidx = 0usize;
            while uidx < update_rows.len() {
                let mut used = vec![false; width];
                let mut upd = NetInstruction::nop(width);
                upd.kind = InstrKind::ColElim;
                while uidx < update_rows.len() {
                    let r = update_rows[uidx];
                    let lane = r % width;
                    if used[lane] {
                        break;
                    }
                    used[lane] = true;
                    let p = l_col_ptr[i] + uidx;
                    upd.set_input(
                        lane,
                        LaneSource::RegTimesLatch {
                            addr: fl.l_loc(p, r).1,
                            negate: true,
                        },
                    );
                    upd.route(lane, lane);
                    upd.set_write(
                        lane,
                        LaneWrite {
                            addr: y.addr(r),
                            mode: WriteMode::Add,
                        },
                    );
                    uidx += 1;
                }
                b.push(upd, vec![]);
            }
            // (5) D[k] -= yᵢ · L(k, i).
            let mut l5 = NetInstruction::nop(width);
            l5.kind = InstrKind::ColElim;
            l5.set_input(
                lane_k,
                LaneSource::RegTimesLatch {
                    addr: addr_ki,
                    negate: true,
                },
            );
            l5.route(lane_k, lane_k);
            l5.set_write(
                lane_k,
                LaneWrite {
                    addr: d.addr(k),
                    mode: WriteMode::Add,
                },
            );
            b.push(l5, vec![]);
            // (6) Clear yᵢ for the next row (preserves the all-zero scratch
            // invariant).
            let mut l6 = NetInstruction::nop(width);
            l6.kind = InstrKind::Elementwise;
            l6.set_input(lane_i, LaneSource::RegTimesImm { addr: 0, imm: 0.0 });
            l6.route(lane_i, lane_i);
            l6.set_write(
                lane_i,
                LaneWrite {
                    addr: y.addr(i),
                    mode: WriteMode::Store,
                },
            );
            b.push(l6, vec![]);
            fill[i] += 1;
        }
        // ---- Pivot reciprocal. ----
        let lane_k = k % width;
        let mut rec = NetInstruction::nop(width);
        rec.kind = InstrKind::Elementwise;
        rec.set_input(lane_k, LaneSource::Reg { addr: d.addr(k) });
        rec.route(lane_k, dinv.bank(k));
        rec.set_write(
            dinv.bank(k),
            LaneWrite {
                addr: dinv.addr(k),
                mode: WriteMode::StoreRecip,
            },
        );
        b.push(rec, vec![]);
    }
    debug_assert_eq!(
        fill,
        sym.etree().col_counts().to_vec(),
        "on-machine fill must match symbolic counts"
    );
}

/// Exact planner: replays the row patterns of `a` to place every L entry in
/// the bank of its true row. Use this together with [`factor_kernel`].
pub fn plan_factor_exact(
    a: &CscMatrix,
    sym: &LdlSymbolic,
    alloc: &mut Allocator,
) -> (FactorLayout, Layout) {
    let n = sym.n();
    let mut l_col_ptr = vec![0usize; n + 1];
    for (i, &c) in sym.etree().col_counts().iter().enumerate() {
        l_col_ptr[i + 1] = l_col_ptr[i] + c;
    }
    let mut l_rows = vec![0usize; l_col_ptr[n]];
    let mut fill = vec![0usize; n];
    for k in 0..n {
        for i in sym.etree().row_pattern(a, k) {
            l_rows[l_col_ptr[i] + fill[i]] = k;
            fill[i] += 1;
        }
    }
    let fl = FactorLayout::plan(&l_col_ptr, &l_rows, n, alloc);
    let y = alloc.alloc(n);
    (fl, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{schedule, ScheduleOptions};
    use mib_core::hbm::HbmStream;
    use mib_core::machine::{HazardPolicy, Machine};
    use mib_core::MibConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn cfg() -> MibConfig {
        MibConfig {
            width: 8,
            bank_depth: 8192,
            clock_hz: 1e6,
        }
    }

    fn spd(n: usize, density: f64, seed: u64) -> CscMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        for i in 0..n {
            rows.push(i);
            cols.push(i);
            vals.push(12.0 + rng.gen::<f64>());
            for j in (i + 1)..n {
                if rng.gen::<f64>() < density {
                    rows.push(i);
                    cols.push(j);
                    vals.push(rng.gen_range(-1.0..1.0));
                }
            }
        }
        CscMatrix::from_triplet_parts(n, n, &rows, &cols, &vals).unwrap()
    }

    #[test]
    fn on_machine_factorization_matches_reference() {
        let n = 18;
        let a = spd(n, 0.25, 21);
        let sym = LdlSymbolic::new(&a).unwrap();
        let reference = sym.factor(&a).unwrap();

        let c = cfg();
        let mut alloc = Allocator::new(c.width);
        let (fl, y) = plan_factor_exact(&a, &sym, &mut alloc);
        let mut b = KernelBuilder::new("factor", c.width, c.latency());
        factor_kernel(&mut b, &a, &sym, &fl, y);
        let s = schedule(&b.finish(), ScheduleOptions::default());

        let mut m = Machine::new(c);
        let mut hbm = HbmStream::new(s.hbm.clone());
        m.run(&s.program, &mut hbm, HazardPolicy::Strict).unwrap();

        // L values must match.
        let got_l = fl.read_l(reference.l_row_ind(), &m);
        for (p, (g, w)) in got_l.iter().zip(reference.l_values()).enumerate() {
            assert!((g - w).abs() < 1e-10, "L[{p}]: {g} vs {w}");
        }
        // D and D⁻¹ must match.
        for k in 0..n {
            let dk = m.regs().read(fl.d().bank(k), fl.d().addr(k)).unwrap();
            let dik = m.regs().read(fl.dinv().bank(k), fl.dinv().addr(k)).unwrap();
            assert!((dk - reference.d()[k]).abs() < 1e-10, "D[{k}]: {dk}");
            assert!((dik - 1.0 / reference.d()[k]).abs() < 1e-10, "Dinv[{k}]");
        }
        // The scratch vector is left all-zero (invariant for re-running).
        for e in 0..n {
            assert_eq!(m.regs().read(y.bank(e), y.addr(e)).unwrap(), 0.0);
        }
    }

    #[test]
    fn refactor_streams_new_values_through_same_program() {
        let n = 12;
        let a = spd(n, 0.3, 5);
        let sym = LdlSymbolic::new(&a).unwrap();
        let c = cfg();
        let mut alloc = Allocator::new(c.width);
        let (fl, y) = plan_factor_exact(&a, &sym, &mut alloc);
        let mut b = KernelBuilder::new("factor", c.width, c.latency());
        factor_kernel(&mut b, &a, &sym, &fl, y);
        let s = schedule(&b.finish(), ScheduleOptions::default());

        // Second matrix: same pattern, scaled values (a rho update).
        let a2 = a.map_values(|v| v * 1.7);
        let ref2 = sym.factor(&a2).unwrap();
        // The HBM stream is the only thing that changes: rebuild it by
        // re-emitting the kernel against a2 (the schedule is identical).
        let mut b2 = KernelBuilder::new("factor", c.width, c.latency());
        let mut alloc2 = Allocator::new(c.width);
        let (_fl2, y2) = plan_factor_exact(&a2, &sym, &mut alloc2);
        factor_kernel(&mut b2, &a2, &sym, &fl, y2);
        let s2 = schedule(&b2.finish(), ScheduleOptions::default());
        assert_eq!(
            s.program.len(),
            s2.program.len(),
            "same pattern, same schedule"
        );

        let mut m = Machine::new(c);
        m.run(
            &s2.program,
            &mut HbmStream::new(s2.hbm.clone()),
            HazardPolicy::Strict,
        )
        .unwrap();
        let got_l = fl.read_l(ref2.l_row_ind(), &m);
        for (g, w) in got_l.iter().zip(ref2.l_values()) {
            assert!((g - w).abs() < 1e-10);
        }
    }

    #[test]
    fn multi_issue_compresses_factorization() {
        let n = 24;
        let a = spd(n, 0.15, 33);
        let sym = LdlSymbolic::new(&a).unwrap();
        let c = cfg();
        let mut alloc = Allocator::new(c.width);
        let (fl, y) = plan_factor_exact(&a, &sym, &mut alloc);
        let mut b = KernelBuilder::new("factor", c.width, c.latency());
        factor_kernel(&mut b, &a, &sym, &fl, y);
        let k = b.finish();
        let multi = schedule(&k, ScheduleOptions::default());
        let single = schedule(
            &k,
            ScheduleOptions {
                multi_issue: false,
                ..ScheduleOptions::default()
            },
        );
        assert!(
            multi.slots() < single.slots(),
            "multi-issue {} vs single {}",
            multi.slots(),
            single.slots()
        );
    }
}
