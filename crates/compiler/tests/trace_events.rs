//! Enabled-mode tracing tests for the compiler: lowering emits compiler
//! spans and per-program `ScheduleQuality` events, and the program cache
//! emits `CacheAccess` hit/miss events.
//!
//! Lives in its own integration-test binary: the mib-trace enable flag is
//! process-global, and cargo runs test binaries sequentially, so enabling
//! tracing here cannot perturb the unit tests. The single `#[test]` keeps
//! the binary's own tests from racing each other.

use mib_compiler::cache::ProgramCache;
use mib_compiler::lower::lower;
use mib_core::MibConfig;
use mib_qp::{Problem, Settings};
use mib_sparse::CscMatrix;
use mib_trace::{Category, Event};

fn small_problem(q0: f64) -> Problem {
    let p = CscMatrix::from_dense(2, 2, &[4.0, 1.0, 0.0, 2.0])
        .upper_triangle()
        .unwrap();
    let a = CscMatrix::from_dense(3, 2, &[1.0, 1.0, 1.0, 0.0, 0.0, 1.0]);
    Problem::new(
        p,
        vec![q0, 1.0],
        a,
        vec![1.0, 0.0, 0.0],
        vec![1.0, 0.7, 0.7],
    )
    .unwrap()
}

fn config() -> MibConfig {
    MibConfig {
        width: 8,
        bank_depth: 1 << 14,
        clock_hz: 1e6,
    }
}

#[test]
fn lowering_and_cache_emit_compiler_telemetry() {
    mib_trace::clear();
    mib_trace::enable();
    let lowered = lower(&small_problem(1.0), &Settings::default(), config()).unwrap();
    let mut cache = ProgramCache::new();
    cache
        .lower_cached(&small_problem(1.0), &Settings::default(), config())
        .unwrap();
    cache
        .lower_cached(&small_problem(-2.0), &Settings::default(), config())
        .unwrap();
    mib_trace::disable();
    let trace = mib_trace::take();

    // One ScheduleQuality event per scheduled program, with the slot count
    // matching the schedule the caller got back. The direct pipeline
    // compiles load/setup/iteration/check (twice: plain lower + cache
    // miss), and the cache hit regenerates one more load.
    let quality: Vec<(&str, u32, u32, u32, u32)> = trace
        .records()
        .filter_map(|r| match r.event {
            Event::ScheduleQuality {
                name,
                slots,
                logical,
                forced_appends,
                predicted_cycles,
            } => Some((name, slots, logical, forced_appends, predicted_cycles)),
            _ => None,
        })
        .collect();
    for program in ["load", "setup", "iteration", "check"] {
        assert!(
            quality.iter().filter(|(n, ..)| *n == program).count() >= 2,
            "missing ScheduleQuality events for {program}: {quality:?}"
        );
    }
    assert_eq!(
        quality.iter().filter(|(n, ..)| *n == "load").count(),
        3,
        "two full lowerings plus one cache-hit load refresh"
    );
    let (_, slots, logical, forced, predicted) = *quality
        .iter()
        .find(|(n, ..)| *n == "iteration")
        .expect("iteration program scheduled");
    assert_eq!(slots as usize, lowered.iteration.slots());
    assert_eq!(logical as usize, lowered.iteration.logical_count);
    assert_eq!(forced as usize, lowered.iteration.forced_appends);
    let cost = mib_compiler::static_cost(&lowered.iteration, &config())
        .expect("certified schedule has a static cost");
    assert_eq!(
        u64::from(predicted),
        cost.cycles,
        "trace event carries the oracle's cycles"
    );

    // Cache accesses: miss for the first pattern, hit for the re-solve.
    let accesses: Vec<bool> = trace
        .records()
        .filter_map(|r| match r.event {
            Event::CacheAccess {
                name: "program_cache",
                hit,
            } => Some(hit),
            _ => None,
        })
        .collect();
    assert_eq!(accesses, vec![false, true]);

    // Compiler spans: every lowering opens `lower`, the direct pipeline
    // opens `analyze`, and each scheduled program opens `schedule`.
    let begins = |name: &str| {
        trace
            .records()
            .filter(
                |r| matches!(r.event, Event::Begin { name: n, cat } if n == name && cat == Category::Compiler),
            )
            .count()
    };
    assert_eq!(begins("lower"), 2, "plain lower + cache miss");
    assert_eq!(begins("analyze"), 2);
    assert_eq!(begins("schedule"), quality.len());
    assert_eq!(trace.dropped(), 0);
}
