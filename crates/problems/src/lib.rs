//! Benchmark problem generators for the five application domains the paper
//! evaluates (Section II.E / Figure 3): portfolio optimization, Lasso,
//! Huber fitting, model predictive control (MPC) and support vector
//! machines (SVM) — the OSQP benchmark suite [38] — plus random QPs.
//!
//! Each generator reduces its domain problem to the standard form
//! `min ½xᵀPx + qᵀx  s.t.  l ≤ Ax ≤ u`, preserving the domain's canonical
//! block sparsity structure (the "inherent structures of specific
//! application domains … preserved as sparsity patterns", Section I):
//! the portfolio constraint matrix is the half-arrow of Figure 2, MPC is
//! block-banded along the horizon, and the regression/classification
//! domains are tall data-matrix blocks with identity couplings.
//!
//! Each [`Domain`] has a 20-instance suite of growing size (parameterized
//! by total nonzeros, like the paper's benchmark), generated
//! deterministically from fixed seeds. Instance sizes are scaled to
//! simulator-friendly dimensions — see DESIGN.md §1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generators;
mod mpc;

pub use generators::{huber, lasso, portfolio, random_qp, svm};
pub use mpc::{mpc, MpcInstance};

use mib_qp::Problem;

/// The five benchmark application domains of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Risk-adjusted portfolio optimization (equation (4) of the paper).
    Portfolio,
    /// ℓ₁-regularized least squares.
    Lasso,
    /// Robust (Huber-loss) regression.
    Huber,
    /// Linear model predictive control.
    Mpc,
    /// Support vector machine training (hinge loss).
    Svm,
}

impl Domain {
    /// All five domains in the paper's order.
    pub fn all() -> [Domain; 5] {
        [
            Domain::Portfolio,
            Domain::Lasso,
            Domain::Huber,
            Domain::Mpc,
            Domain::Svm,
        ]
    }

    /// Lowercase domain name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Domain::Portfolio => "portfolio",
            Domain::Lasso => "lasso",
            Domain::Huber => "huber",
            Domain::Mpc => "mpc",
            Domain::Svm => "svm",
        }
    }
}

impl std::fmt::Display for Domain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One benchmark instance: a generated problem plus its provenance.
#[derive(Debug, Clone)]
pub struct BenchmarkInstance {
    /// Source domain.
    pub domain: Domain,
    /// Index within the 20-instance suite (0 = smallest).
    pub index: usize,
    /// Human-readable size parameters.
    pub params: String,
    /// The standard-form problem.
    pub problem: Problem,
}

/// Number of instances per domain (as in the paper's suite).
pub const INSTANCES_PER_DOMAIN: usize = 20;

/// Generates instance `index` (0..20) of a domain's suite.
///
/// # Panics
///
/// Panics if `index >= INSTANCES_PER_DOMAIN`.
pub fn instance(domain: Domain, index: usize) -> BenchmarkInstance {
    assert!(
        index < INSTANCES_PER_DOMAIN,
        "suite has {INSTANCES_PER_DOMAIN} instances"
    );
    let seed = 1000 * (domain as u64 + 1) + index as u64;
    // Geometric size growth across the suite.
    let scale = |lo: f64, hi: f64| -> usize {
        let t = index as f64 / (INSTANCES_PER_DOMAIN - 1) as f64;
        (lo * (hi / lo).powf(t)).round() as usize
    };
    let (problem, params) = match domain {
        Domain::Portfolio => {
            let n = scale(20.0, 360.0);
            let k = (n / 10).max(2);
            (portfolio(n, k, seed), format!("n={n} k={k}"))
        }
        Domain::Lasso => {
            let n = scale(8.0, 120.0);
            let m = 3 * n;
            (lasso(n, m, seed), format!("n={n} m={m}"))
        }
        Domain::Huber => {
            let n = scale(8.0, 100.0);
            let m = 3 * n;
            (huber(n, m, seed), format!("n={n} m={m}"))
        }
        Domain::Mpc => {
            let nx = scale(3.0, 24.0);
            let nu = (nx / 2).max(1);
            let horizon = 10;
            (
                mpc(nx, nu, horizon, seed).problem,
                format!("nx={nx} nu={nu} T={horizon}"),
            )
        }
        Domain::Svm => {
            let n = scale(10.0, 140.0);
            let m = 2 * n;
            (svm(n, m, seed), format!("n={n} m={m}"))
        }
    };
    BenchmarkInstance {
        domain,
        index,
        params,
        problem,
    }
}

/// The full 20-instance suite for one domain.
pub fn suite(domain: Domain) -> Vec<BenchmarkInstance> {
    (0..INSTANCES_PER_DOMAIN)
        .map(|i| instance(domain, i))
        .collect()
}

/// The full 100-problem benchmark (5 domains × 20 instances).
pub fn full_suite() -> Vec<BenchmarkInstance> {
    Domain::all().into_iter().flat_map(suite).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_instance_is_valid_and_deterministic() {
        for domain in Domain::all() {
            for index in [0, 7, INSTANCES_PER_DOMAIN - 1] {
                let a = instance(domain, index);
                let b = instance(domain, index);
                assert_eq!(a.problem, b.problem, "{domain} {index} not deterministic");
                assert!(a.problem.num_vars() > 0);
                assert!(a.problem.num_constraints() > 0);
            }
        }
    }

    #[test]
    fn suites_grow_in_nnz() {
        for domain in Domain::all() {
            let s = suite(domain);
            assert_eq!(s.len(), INSTANCES_PER_DOMAIN);
            let first = s.first().unwrap().problem.total_nnz();
            let last = s.last().unwrap().problem.total_nnz();
            assert!(
                last > 4 * first,
                "{domain}: nnz {first} -> {last} does not grow enough"
            );
        }
    }

    #[test]
    fn full_suite_has_100_problems() {
        assert_eq!(full_suite().len(), 100);
    }
}
