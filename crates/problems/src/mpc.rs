//! Model predictive control problem generator.
//!
//! The paper motivates MPC as the latency-critical domain ("applying Model
//! Predictive Control to systems with millisecond-scale sampling periods …
//! requires solving a QP after each sensor sample"). The generator builds
//! the standard condensed-free (sparse) MPC QP over a random controllable
//! linear system:
//!
//! ```text
//! min  Σₖ xₖᵀQxₖ + uₖᵀRuₖ + x_TᵀQ_T x_T
//! s.t. x₀ = x_init,  x_{k+1} = Ad·xₖ + Bd·uₖ,
//!      x_min ≤ xₖ ≤ x_max,  u_min ≤ uₖ ≤ u_max
//! ```
//!
//! The constraint matrix is block-banded along the horizon — the MPC
//! sparsity pattern of Figure 3. [`MpcInstance`] keeps the dynamics so the
//! closed-loop example can re-solve with updated initial states via
//! bound updates only (the parametric workflow the architecture amortizes
//! its compile time over).

use mib_qp::{Problem, INFTY};
use mib_sparse::{CscMatrix, TripletMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated MPC instance: the QP plus the underlying system data.
#[derive(Debug, Clone)]
pub struct MpcInstance {
    /// The standard-form QP.
    pub problem: Problem,
    /// Discrete-time state matrix (`nx × nx`, dense row-major).
    pub a_dyn: Vec<f64>,
    /// Discrete-time input matrix (`nx × nu`, dense row-major).
    pub b_dyn: Vec<f64>,
    /// State dimension.
    pub nx: usize,
    /// Input dimension.
    pub nu: usize,
    /// Horizon length `T`.
    pub horizon: usize,
    /// Initial state used in the generated bounds.
    pub x_init: Vec<f64>,
}

impl MpcInstance {
    /// Total decision variables: `(T+1)·nx + T·nu`.
    pub fn num_vars(&self) -> usize {
        (self.horizon + 1) * self.nx + self.horizon * self.nu
    }

    /// Produces updated `(l, u)` bound vectors for a new initial state —
    /// the only data that changes between closed-loop solves.
    pub fn bounds_for(&self, x_init: &[f64]) -> (Vec<f64>, Vec<f64>) {
        assert_eq!(x_init.len(), self.nx, "x_init has wrong dimension");
        let (mut l, mut u) = (self.problem.l().to_vec(), self.problem.u().to_vec());
        // The first nx equality rows encode -x0 = -x_init.
        for (i, &v) in x_init.iter().enumerate() {
            l[i] = -v;
            u[i] = -v;
        }
        (l, u)
    }

    /// Simulates one step of the true system: `x⁺ = Ad·x + Bd·u`.
    pub fn step(&self, x: &[f64], u: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.nx];
        for (i, oi) in out.iter_mut().enumerate() {
            for (aij, xj) in self.a_dyn[i * self.nx..(i + 1) * self.nx].iter().zip(x) {
                *oi += aij * xj;
            }
            for (bij, uj) in self.b_dyn[i * self.nu..(i + 1) * self.nu].iter().zip(u) {
                *oi += bij * uj;
            }
        }
        out
    }

    /// Extracts the first control move `u₀` from a QP solution vector.
    pub fn first_input<'a>(&self, x_sol: &'a [f64]) -> &'a [f64] {
        let off = (self.horizon + 1) * self.nx;
        &x_sol[off..off + self.nu]
    }
}

/// Generates an MPC instance with `nx` states, `nu` inputs and horizon `t`.
pub fn mpc(nx: usize, nu: usize, t: usize, seed: u64) -> MpcInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    // Random marginally-stable dynamics: A = I + 0.1·N, sparse-ish N.
    let mut a_dyn = vec![0.0; nx * nx];
    for i in 0..nx {
        a_dyn[i * nx + i] = 1.0;
        for j in 0..nx {
            if rng.gen::<f64>() < 0.4 {
                a_dyn[i * nx + j] += 0.1 * rng.gen_range(-1.0..1.0);
            }
        }
    }
    let mut b_dyn = vec![0.0; nx * nu];
    for v in &mut b_dyn {
        if rng.gen::<f64>() < 0.6 {
            *v = rng.gen_range(-1.0..1.0);
        }
    }
    let x_init: Vec<f64> = (0..nx).map(|_| rng.gen_range(-0.5..0.5)).collect();

    let n_state = (t + 1) * nx;
    let n_input = t * nu;
    let nv = n_state + n_input;

    // Objective: Q = I, R = 0.1·I, Q_T = 5·I (stage costs doubled into P).
    let mut p = TripletMatrix::new(nv, nv);
    for k in 0..=t {
        let w = if k == t { 10.0 } else { 2.0 };
        for i in 0..nx {
            p.push(k * nx + i, k * nx + i, w).expect("in bounds");
        }
    }
    for k in 0..t {
        for i in 0..nu {
            let idx = n_state + k * nu + i;
            p.push(idx, idx, 0.2).expect("in bounds");
        }
    }
    let p = CscMatrix::from_triplets(&p).expect("valid triplets");
    let q = vec![0.0; nv];

    // Equality block: row block 0: -x0 = -x_init; block k+1:
    // Ad·xₖ + Bd·uₖ − x_{k+1} = 0.
    let m_eq = (t + 1) * nx;
    let m_ineq = nv; // box on every state and input
    let mut a = TripletMatrix::new(m_eq + m_ineq, nv);
    for i in 0..nx {
        a.push(i, i, -1.0).expect("in bounds");
    }
    for k in 0..t {
        let row0 = (k + 1) * nx;
        for i in 0..nx {
            for j in 0..nx {
                let v = a_dyn[i * nx + j];
                if v != 0.0 {
                    a.push(row0 + i, k * nx + j, v).expect("in bounds");
                }
            }
            for j in 0..nu {
                let v = b_dyn[i * nu + j];
                if v != 0.0 {
                    a.push(row0 + i, n_state + k * nu + j, v)
                        .expect("in bounds");
                }
            }
            a.push(row0 + i, (k + 1) * nx + i, -1.0).expect("in bounds");
        }
    }
    for v in 0..nv {
        a.push(m_eq + v, v, 1.0).expect("in bounds");
    }
    let a = CscMatrix::from_triplets(&a).expect("valid triplets");

    let mut l = Vec::with_capacity(m_eq + m_ineq);
    let mut u = Vec::with_capacity(m_eq + m_ineq);
    for &v in &x_init {
        l.push(-v);
        u.push(-v);
    }
    for _ in nx..m_eq {
        l.push(0.0);
        u.push(0.0);
    }
    // State box ±4 (finite but slack), input box ±1 (the binding ones).
    for _ in 0..n_state {
        l.push(-4.0);
        u.push(4.0);
    }
    for _ in 0..n_input {
        l.push(-1.0);
        u.push(1.0);
    }
    // Mark unused capacity of INFTY for clarity in tests.
    let _ = INFTY;

    let problem = Problem::new(p.upper_triangle().expect("square"), q, a, l, u)
        .expect("mpc problem is valid");
    MpcInstance {
        problem,
        a_dyn,
        b_dyn,
        nx,
        nu,
        horizon: t,
        x_init,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mib_qp::{Settings, Solver};

    #[test]
    fn mpc_solves_and_respects_dynamics() {
        let inst = mpc(4, 2, 8, 5);
        let settings = Settings {
            eps_abs: 1e-5,
            eps_rel: 1e-5,
            max_iter: 20_000,
            ..Settings::default()
        };
        let r = Solver::new(inst.problem.clone(), settings).unwrap().solve();
        assert!(r.status.is_solved());
        // The first state block equals x_init.
        for i in 0..inst.nx {
            assert!(
                (r.x[i] - inst.x_init[i]).abs() < 1e-3,
                "x0[{i}] = {} vs {}",
                r.x[i],
                inst.x_init[i]
            );
        }
        // Dynamics hold along the horizon.
        for k in 0..inst.horizon {
            let xk = &r.x[k * inst.nx..(k + 1) * inst.nx];
            let uk_off = (inst.horizon + 1) * inst.nx + k * inst.nu;
            let uk = &r.x[uk_off..uk_off + inst.nu];
            let pred = inst.step(xk, uk);
            let xk1 = &r.x[(k + 1) * inst.nx..(k + 2) * inst.nx];
            for i in 0..inst.nx {
                assert!(
                    (pred[i] - xk1[i]).abs() < 1e-2,
                    "dynamics violated at k={k}"
                );
            }
        }
        // Inputs respect the box.
        let u0 = inst.first_input(&r.x);
        for &v in u0 {
            assert!(v.abs() <= 1.0 + 1e-4);
        }
    }

    #[test]
    fn bounds_update_moves_initial_state() {
        let inst = mpc(3, 1, 5, 9);
        let new_x = vec![0.2, -0.1, 0.3];
        let (l, u) = inst.bounds_for(&new_x);
        for i in 0..3 {
            assert_eq!(l[i], -new_x[i]);
            assert_eq!(u[i], -new_x[i]);
        }
        assert_eq!(l.len(), inst.problem.num_constraints());
    }

    #[test]
    fn pattern_is_block_banded() {
        let inst = mpc(3, 1, 6, 2);
        // Every equality-row entry's column lies within two blocks of its
        // row block (banded structure along the horizon).
        let nx = inst.nx;
        for (i, j, _) in inst.problem.a().iter() {
            if i < (inst.horizon + 1) * nx {
                let row_block = i / nx;
                if j < (inst.horizon + 1) * nx {
                    let col_block = j / nx;
                    assert!(
                        col_block + 1 >= row_block && col_block <= row_block,
                        "entry ({i},{j}) outside band"
                    );
                }
            }
        }
    }
}
