//! Standard-form reductions for the non-MPC domains.

use mib_qp::{Problem, INFTY};
use mib_sparse::{block_diag, hstack, vstack, CscMatrix, TripletMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random sparse matrix with the given density, entries `N(0,1)`-ish
/// (uniform on [-1, 1] scaled).
fn sprandn(rng: &mut StdRng, nrows: usize, ncols: usize, density: f64) -> CscMatrix {
    let mut t = TripletMatrix::new(nrows, ncols);
    for i in 0..nrows {
        for j in 0..ncols {
            if rng.gen::<f64>() < density {
                t.push(i, j, rng.gen_range(-1.0..1.0)).expect("in bounds");
            }
        }
    }
    CscMatrix::from_triplets(&t).expect("valid triplets")
}

/// A generic random QP: `P = MMᵀ + αI` (positive definite), random sparse
/// `A`, bounds `l ≤ Ax ≤ u` with `l < u`.
pub fn random_qp(n: usize, m: usize, density: f64, seed: u64) -> Problem {
    let mut rng = StdRng::seed_from_u64(seed);
    let msqrt = sprandn(&mut rng, n, n, density);
    // P = M Mᵀ + 0.1 I, upper triangle (dense gram at generator scale).
    let md = msqrt.to_dense();
    let mut t = TripletMatrix::new(n, n);
    for i in 0..n {
        for j in i..n {
            let mut acc = if i == j { 0.1 } else { 0.0 };
            for k in 0..n {
                acc += md[i * n + k] * md[j * n + k];
            }
            if acc != 0.0 {
                t.push(i, j, acc).expect("in bounds");
            }
        }
    }
    let p = CscMatrix::from_triplets(&t).expect("valid triplets");
    let a = sprandn(&mut rng, m, n, density.max(2.0 / n as f64));
    let q: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let (l, u): (Vec<f64>, Vec<f64>) = (0..m)
        .map(|_| {
            let c = rng.gen_range(-1.0..1.0);
            let w = rng.gen_range(0.1..1.0);
            (c - w, c + w)
        })
        .unzip();
    Problem::new(p, q, a, l, u).expect("generated problem is valid")
}

/// Portfolio optimization (equation (4) of the paper): `n` assets, `k`
/// factors. Variables `(x, y)` with `y = Fᵀx`; the constraint matrix is
/// the half-arrow pattern of Figure 2.
pub fn portfolio(n: usize, k: usize, seed: u64) -> Problem {
    let mut rng = StdRng::seed_from_u64(seed);
    let gamma = 1.0;
    // Objective: xᵀDx + yᵀy - γ⁻¹μᵀx with D diagonal asset-specific risk.
    let d_diag: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0f64).sqrt()).collect();
    // P = 2·blkdiag(D, I_k) (standard form has the 1/2 factor).
    let p_x = CscMatrix::from_diag(&d_diag.iter().map(|&v| 2.0 * v).collect::<Vec<_>>());
    let p_y = CscMatrix::from_diag(&vec![2.0; k]);
    let p = block_diag(&[&p_x, &p_y]).expect("diag blocks");
    let mu: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut q: Vec<f64> = mu.iter().map(|&m| -m / gamma).collect();
    q.extend(std::iter::repeat_n(0.0, k));
    // Factor loading matrix F (n × k), density 0.5.
    let f = sprandn(&mut rng, n, k, 0.5);
    // A = [ 1ᵀ  0 ]          (budget)
    //     [ Fᵀ -I ]          (factor model)
    //     [ I   0 ]          (long-only box)
    let ones = CscMatrix::from_dense(1, n, &vec![1.0; n]);
    let zeros_1k = CscMatrix::zeros(1, k);
    let ft = f.transpose();
    let neg_i = CscMatrix::from_diag(&vec![-1.0; k]);
    let eye_n = CscMatrix::identity(n);
    let zeros_nk = CscMatrix::zeros(n, k);
    let row1 = hstack(&[&ones, &zeros_1k]).expect("shapes");
    let row2 = hstack(&[&ft, &neg_i]).expect("shapes");
    let row3 = hstack(&[&eye_n, &zeros_nk]).expect("shapes");
    let a = vstack(&[&row1, &row2, &row3]).expect("shapes");
    let mut l = vec![1.0];
    l.extend(std::iter::repeat_n(0.0, k));
    l.extend(std::iter::repeat_n(0.0, n));
    let mut u = vec![1.0];
    u.extend(std::iter::repeat_n(0.0, k));
    u.extend(std::iter::repeat_n(1.0, n));
    Problem::new(p.upper_triangle().expect("square"), q, a, l, u)
        .expect("portfolio problem is valid")
}

/// Lasso: `min ‖Ad·x − b‖² + λ‖x‖₁` with `n` features and `m` samples.
/// Variables `(x, y, t)`: `y = Ad·x − b`, `−t ≤ x ≤ t`.
pub fn lasso(n: usize, m: usize, seed: u64) -> Problem {
    let mut rng = StdRng::seed_from_u64(seed);
    let ad = sprandn(&mut rng, m, n, 0.25);
    // Ground-truth sparse model and noisy observations.
    let x_true: Vec<f64> = (0..n)
        .map(|_| {
            if rng.gen::<f64>() < 0.5 {
                0.0
            } else {
                rng.gen_range(-1.0..1.0)
            }
        })
        .collect();
    let mut b = ad.mul_vec(&x_true);
    for v in &mut b {
        *v += 0.01 * rng.gen_range(-1.0..1.0);
    }
    let lambda = {
        // λ = (1/5)‖Adᵀb‖∞, the OSQP benchmark's choice.
        let atb = ad.tr_mul_vec(&b);
        0.2 * atb.iter().fold(0.0f64, |acc, v| acc.max(v.abs()))
    };
    // P = blkdiag(0_n, 2I_m, 0_n); q = [0; 0; λ1].
    let p = block_diag(&[
        &CscMatrix::zeros(n, n),
        &CscMatrix::from_diag(&vec![2.0; m]),
        &CscMatrix::zeros(n, n),
    ])
    .expect("diag blocks");
    let mut q = vec![0.0; n + m];
    q.extend(std::iter::repeat_n(lambda, n));
    // A = [ Ad -I  0 ]   l/u = b (equality)
    //     [ I   0 -I ]   -inf .. 0   (x - t <= 0)
    //     [ I   0  I ]   0 .. +inf   (x + t >= 0)
    let eye_n = CscMatrix::identity(n);
    let neg_eye_n = CscMatrix::from_diag(&vec![-1.0; n]);
    let neg_eye_m = CscMatrix::from_diag(&vec![-1.0; m]);
    let row1 = hstack(&[&ad, &neg_eye_m, &CscMatrix::zeros(m, n)]).expect("shapes");
    let row2 = hstack(&[&eye_n, &CscMatrix::zeros(n, m), &neg_eye_n]).expect("shapes");
    let row3 = hstack(&[&eye_n, &CscMatrix::zeros(n, m), &eye_n]).expect("shapes");
    let a = vstack(&[&row1, &row2, &row3]).expect("shapes");
    let mut l = b.clone();
    l.extend(std::iter::repeat_n(-2.0 * INFTY, n));
    l.extend(std::iter::repeat_n(0.0, n));
    let mut u = b;
    u.extend(std::iter::repeat_n(0.0, n));
    u.extend(std::iter::repeat_n(2.0 * INFTY, n));
    Problem::new(p.upper_triangle().expect("square"), q, a, l, u).expect("lasso problem is valid")
}

/// Huber fitting: `min Σ huber_M(aᵢᵀx − bᵢ)`. Variables `(x, u, r, s)`
/// with `Ad·x − u − r + s = b`, `r, s ≥ 0`:
/// `min uᵀu + 2M·1ᵀ(r + s)`.
pub fn huber(n: usize, m: usize, seed: u64) -> Problem {
    let mut rng = StdRng::seed_from_u64(seed);
    let ad = sprandn(&mut rng, m, n, 0.25);
    let x_true: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut b = ad.mul_vec(&x_true);
    // Corrupt a fraction of measurements with large outliers (the scenario
    // Huber loss exists for).
    for v in &mut b {
        *v += 0.01 * rng.gen_range(-1.0..1.0);
        if rng.gen::<f64>() < 0.05 {
            *v += rng.gen_range(-5.0..5.0);
        }
    }
    let m_huber = 1.0;
    let nv = n + m + m + m;
    // P = blkdiag(0_n, 2I_m, 0_m, 0_m).
    let p = block_diag(&[
        &CscMatrix::zeros(n, n),
        &CscMatrix::from_diag(&vec![2.0; m]),
        &CscMatrix::zeros(2 * m, 2 * m),
    ])
    .expect("diag blocks");
    let mut q = vec![0.0; n + m];
    q.extend(std::iter::repeat_n(2.0 * m_huber, 2 * m));
    debug_assert_eq!(q.len(), nv);
    // A = [ Ad -I -I  I ]  = b (equality)
    //     [ 0   0  I  0 ]  r >= 0
    //     [ 0   0  0  I ]  s >= 0
    let eye_m = CscMatrix::identity(m);
    let neg_eye_m = CscMatrix::from_diag(&vec![-1.0; m]);
    let row1 = hstack(&[&ad, &neg_eye_m, &neg_eye_m, &eye_m]).expect("shapes");
    let row2 = hstack(&[
        &CscMatrix::zeros(m, n),
        &CscMatrix::zeros(m, m),
        &eye_m,
        &CscMatrix::zeros(m, m),
    ])
    .expect("shapes");
    let row3 = hstack(&[
        &CscMatrix::zeros(m, n),
        &CscMatrix::zeros(m, m),
        &CscMatrix::zeros(m, m),
        &eye_m,
    ])
    .expect("shapes");
    let a = vstack(&[&row1, &row2, &row3]).expect("shapes");
    let mut l = b.clone();
    l.extend(std::iter::repeat_n(0.0, 2 * m));
    let mut u = b;
    u.extend(std::iter::repeat_n(2.0 * INFTY, 2 * m));
    Problem::new(p.upper_triangle().expect("square"), q, a, l, u).expect("huber problem is valid")
}

/// SVM training: `min xᵀx + γ·1ᵀt` s.t. `t ≥ 0`, `t ≥ 1 − diag(b)·Ad·x`
/// — hinge loss on `m` samples with `n` features. Samples form two
/// linearly-shifted clusters with labels ±1.
pub fn svm(n: usize, m: usize, seed: u64) -> Problem {
    let mut rng = StdRng::seed_from_u64(seed);
    // Features: two clusters around ±0.5 per coordinate, sparse.
    let mut t = TripletMatrix::new(m, n);
    let mut labels = Vec::with_capacity(m);
    for i in 0..m {
        let label = if i < m / 2 { 1.0 } else { -1.0 };
        labels.push(label);
        for j in 0..n {
            if rng.gen::<f64>() < 0.3 {
                let center = 0.5 * label;
                t.push(i, j, center + rng.gen_range(-1.0..1.0))
                    .expect("in bounds");
            }
        }
    }
    let ad = CscMatrix::from_triplets(&t).expect("valid triplets");
    let gamma = 1.0;
    // Variables (x, t): P = blkdiag(2I_n, 0_m), q = [0; γ1].
    let p = block_diag(&[
        &CscMatrix::from_diag(&vec![2.0; n]),
        &CscMatrix::zeros(m, m),
    ])
    .expect("diag blocks");
    let mut q = vec![0.0; n];
    q.extend(std::iter::repeat_n(gamma, m));
    // A = [ diag(b)·Ad  I ]   >= 1
    //     [ 0           I ]   >= 0
    let mut bad = ad.clone();
    bad.scale_rows(&labels);
    let eye_m = CscMatrix::identity(m);
    let row1 = hstack(&[&bad, &eye_m]).expect("shapes");
    let row2 = hstack(&[&CscMatrix::zeros(m, n), &eye_m]).expect("shapes");
    let a = vstack(&[&row1, &row2]).expect("shapes");
    let mut l = vec![1.0; m];
    l.extend(std::iter::repeat_n(0.0, m));
    let u = vec![2.0 * INFTY; 2 * m];
    Problem::new(p.upper_triangle().expect("square"), q, a, l, u).expect("svm problem is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mib_qp::{KktBackend, Settings, Solver};

    fn solves(problem: Problem, backend: KktBackend) {
        let mut settings = Settings::with_backend(backend);
        settings.max_iter = 10_000;
        let r = Solver::new(problem, settings).unwrap().solve();
        assert!(r.status.is_solved(), "status: {}", r.status);
    }

    #[test]
    fn portfolio_solves_and_budget_holds() {
        let pr = portfolio(30, 4, 7);
        let settings = Settings {
            eps_abs: 1e-5,
            eps_rel: 1e-5,
            ..Settings::default()
        };
        let r = Solver::new(pr.clone(), settings).unwrap().solve();
        assert!(r.status.is_solved());
        // Budget: weights of the first n variables sum to 1.
        let n_assets = 30;
        let total: f64 = r.x[..n_assets].iter().sum();
        assert!((total - 1.0).abs() < 1e-2, "budget sum {total}");
        // Long-only.
        for &w in &r.x[..n_assets] {
            assert!(w > -1e-3, "short position {w}");
        }
    }

    #[test]
    fn portfolio_has_half_arrow_pattern() {
        let pr = portfolio(40, 4, 3);
        // First row of A is the dense budget row.
        let a = pr.a();
        let first_row_nnz = a.iter().filter(|&(i, _, _)| i == 0).count();
        assert_eq!(first_row_nnz, 40);
        // Bottom block is diagonal (identity).
        let m = a.nrows();
        for (i, j, v) in a.iter() {
            if i >= m - 40 {
                assert_eq!(j, i - (m - 40));
                assert_eq!(v, 1.0);
            }
        }
    }

    #[test]
    fn lasso_recovers_sparse_signal_shape() {
        let pr = lasso(10, 30, 11);
        solves(pr, KktBackend::Direct);
    }

    #[test]
    fn huber_solves_both_backends() {
        let pr = huber(8, 24, 13);
        solves(pr.clone(), KktBackend::Direct);
        solves(pr, KktBackend::Indirect);
    }

    #[test]
    fn svm_solves_and_separates() {
        let pr = svm(12, 24, 17);
        let settings = Settings {
            max_iter: 10_000,
            ..Settings::default()
        };
        let r = Solver::new(pr.clone(), settings).unwrap().solve();
        assert!(r.status.is_solved());
        // Slack variables are nonnegative at optimum.
        let n = 12;
        for &t in &r.x[n..] {
            assert!(t > -1e-3);
        }
    }

    #[test]
    fn random_qp_solves() {
        let pr = random_qp(15, 10, 0.3, 19);
        solves(pr.clone(), KktBackend::Direct);
        solves(pr, KktBackend::Indirect);
    }

    #[test]
    fn lasso_objective_is_regularized_ls() {
        // The QP objective at the optimum equals ||Ad x - b||^2 + λ||x||_1
        // up to solver tolerance — checked structurally: y-part of solution
        // equals Ad x - b.
        let n = 6;
        let m = 18;
        let pr = lasso(n, m, 23);
        let settings = Settings {
            eps_abs: 1e-6,
            eps_rel: 1e-6,
            max_iter: 20_000,
            ..Settings::default()
        };
        let r = Solver::new(pr.clone(), settings).unwrap().solve();
        assert!(r.status.is_solved());
        // Equality rows: first m rows enforce Ad x - y = b.
        let viol = pr.constraint_violation(&r.x);
        assert!(viol < 1e-3, "constraint violation {viol}");
    }
}
