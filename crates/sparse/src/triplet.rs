use crate::{Result, SparseError};

/// A sparse matrix in coordinate (COO / triplet) form.
///
/// Triplet form is the natural interchange format when assembling a matrix
/// entry by entry — problem generators and the KKT assembly code build
/// matrices this way and then convert once to [`CscMatrix`](crate::CscMatrix)
/// for computation. Duplicate entries are allowed and are summed during
/// conversion, matching the convention of CSparse and SciPy.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TripletMatrix {
    nrows: usize,
    ncols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
}

impl TripletMatrix {
    /// Creates an empty triplet matrix with the given dimensions.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        TripletMatrix {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Creates an empty triplet matrix with room for `cap` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        TripletMatrix {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries (including duplicates and explicit zeros).
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Appends the entry `(row, col, val)`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] if the indices do not fit
    /// the matrix dimensions.
    pub fn push(&mut self, row: usize, col: usize, val: f64) -> Result<()> {
        if row >= self.nrows || col >= self.ncols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(val);
        Ok(())
    }

    /// Iterates over the stored `(row, col, value)` entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.rows
            .iter()
            .zip(&self.cols)
            .zip(&self.vals)
            .map(|((&r, &c), &v)| (r, c, v))
    }

    /// Borrowed views of the row index, column index and value arrays.
    pub fn parts(&self) -> (&[usize], &[usize], &[f64]) {
        (&self.rows, &self.cols, &self.vals)
    }
}

impl Extend<(usize, usize, f64)> for TripletMatrix {
    /// Extends the matrix with entries, **panicking** on out-of-bounds
    /// indices (use [`TripletMatrix::push`] for fallible insertion).
    fn extend<I: IntoIterator<Item = (usize, usize, f64)>>(&mut self, iter: I) {
        for (r, c, v) in iter {
            self.push(r, c, v).expect("triplet entry out of bounds");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_iter_round_trip() {
        let mut t = TripletMatrix::new(3, 2);
        t.push(0, 0, 1.0).unwrap();
        t.push(2, 1, -2.5).unwrap();
        assert_eq!(t.nnz(), 2);
        let entries: Vec<_> = t.iter().collect();
        assert_eq!(entries, vec![(0, 0, 1.0), (2, 1, -2.5)]);
    }

    #[test]
    fn push_out_of_bounds_is_rejected() {
        let mut t = TripletMatrix::new(2, 2);
        assert!(matches!(
            t.push(2, 0, 1.0),
            Err(SparseError::IndexOutOfBounds { row: 2, .. })
        ));
        assert!(t.push(1, 2, 1.0).is_err());
        assert_eq!(t.nnz(), 0);
    }

    #[test]
    fn extend_collects_entries() {
        let mut t = TripletMatrix::new(2, 2);
        t.extend(vec![(0, 1, 2.0), (1, 0, 3.0)]);
        assert_eq!(t.nnz(), 2);
    }
}
