use crate::{CscMatrix, Result, SparseError};

/// A permutation of `0..n`, stored together with its inverse.
///
/// The convention follows CSparse: `perm[new] = old`, i.e. applying the
/// permutation to a vector gathers `out[k] = x[perm[k]]`. The inverse
/// satisfies `inv[perm[k]] == k`.
///
/// Permutations appear throughout the stack: fill-reducing orderings permute
/// the KKT matrix before factorization, and the MIB machine realizes the
/// same permutations as butterfly network programs (the `permutate` /
/// `inverse_permutate` schedules in Listing 1 of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    perm: Vec<usize>,
    inv: Vec<usize>,
}

impl Permutation {
    /// The identity permutation on `0..n`.
    pub fn identity(n: usize) -> Self {
        let perm: Vec<usize> = (0..n).collect();
        Permutation {
            inv: perm.clone(),
            perm,
        }
    }

    /// Builds a permutation from `perm` where `perm[new] = old`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidPermutation`] if `perm` is not a
    /// bijection on `0..perm.len()`.
    pub fn from_vec(perm: Vec<usize>) -> Result<Self> {
        let n = perm.len();
        let mut inv = vec![usize::MAX; n];
        for (new, &old) in perm.iter().enumerate() {
            if old >= n {
                return Err(SparseError::InvalidPermutation(format!(
                    "entry {old} out of range for length {n}"
                )));
            }
            if inv[old] != usize::MAX {
                return Err(SparseError::InvalidPermutation(format!(
                    "duplicate entry {old}"
                )));
            }
            inv[old] = new;
        }
        Ok(Permutation { perm, inv })
    }

    /// Length of the permuted index set.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// Returns `true` for the permutation of the empty set.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// The forward map: `perm()[new] = old`.
    pub fn perm(&self) -> &[usize] {
        &self.perm
    }

    /// The inverse map: `inv()[old] = new`.
    pub fn inv(&self) -> &[usize] {
        &self.inv
    }

    /// Gathers a vector: `out[k] = x[perm[k]]`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.len()`.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; x.len()];
        self.apply_into(x, &mut out);
        out
    }

    /// Gathers a vector into a caller-provided buffer:
    /// `out[k] = x[perm[k]]`. The allocation-free form of
    /// [`Permutation::apply`]; `out` must not alias `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.len()` or `out.len() != self.len()`.
    pub fn apply_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.len(), "permutation length mismatch");
        assert_eq!(out.len(), self.len(), "permutation length mismatch");
        for (o, &old) in out.iter_mut().zip(&self.perm) {
            *o = x[old];
        }
    }

    /// Scatters a vector: `out[perm[k]] = x[k]` (the inverse gather).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.len()`.
    pub fn apply_inv(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; x.len()];
        self.apply_inv_into(x, &mut out);
        out
    }

    /// Scatters a vector into a caller-provided buffer:
    /// `out[perm[k]] = x[k]`. The allocation-free form of
    /// [`Permutation::apply_inv`]; `out` must not alias `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.len()` or `out.len() != self.len()`.
    pub fn apply_inv_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.len(), "permutation length mismatch");
        assert_eq!(out.len(), self.len(), "permutation length mismatch");
        for (k, &old) in self.perm.iter().enumerate() {
            out[old] = x[k];
        }
    }

    /// Returns the inverse permutation as a new [`Permutation`].
    pub fn inverse(&self) -> Permutation {
        Permutation {
            perm: self.inv.clone(),
            inv: self.perm.clone(),
        }
    }

    /// Composes two permutations: applying the result is equivalent to
    /// applying `self` first, then `other`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn then(&self, other: &Permutation) -> Permutation {
        assert_eq!(self.len(), other.len(), "permutation length mismatch");
        // (other ∘ self)[new] = self.perm[other.perm[new]]
        let perm: Vec<usize> = other.perm.iter().map(|&mid| self.perm[mid]).collect();
        Permutation::from_vec(perm).expect("composition of bijections is a bijection")
    }

    /// Symmetric permutation of a symmetric matrix stored by its **upper
    /// triangle**: computes the upper triangle of `P A Pᵀ` where `P` is this
    /// permutation (new row `k` is old row `perm[k]`).
    ///
    /// This is what the direct KKT solver applies before LDLᵀ factorization,
    /// and what the MIB `permutate` network schedules realize on vectors.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotSquare`] if `a` is rectangular, or
    /// [`SparseError::DimensionMismatch`] if sizes disagree.
    pub fn sym_perm_upper(&self, a: &CscMatrix) -> Result<CscMatrix> {
        if a.nrows() != a.ncols() {
            return Err(SparseError::NotSquare {
                nrows: a.nrows(),
                ncols: a.ncols(),
            });
        }
        if a.nrows() != self.len() {
            return Err(SparseError::DimensionMismatch {
                op: "sym_perm_upper",
                lhs: (a.nrows(), a.ncols()),
                rhs: (self.len(), self.len()),
            });
        }
        let n = a.nrows();
        let mut rows = Vec::with_capacity(a.nnz());
        let mut cols = Vec::with_capacity(a.nnz());
        let mut vals = Vec::with_capacity(a.nnz());
        for (i, j, v) in a.iter() {
            debug_assert!(i <= j, "input must be upper triangular");
            let i2 = self.inv[i];
            let j2 = self.inv[j];
            let (r, c) = if i2 <= j2 { (i2, j2) } else { (j2, i2) };
            rows.push(r);
            cols.push(c);
            vals.push(v);
        }
        CscMatrix::from_triplet_parts(n, n, &rows, &cols, &vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates() {
        assert!(Permutation::from_vec(vec![0, 2, 1]).is_ok());
        assert!(Permutation::from_vec(vec![0, 0, 1]).is_err());
        assert!(Permutation::from_vec(vec![0, 3, 1]).is_err());
    }

    #[test]
    fn apply_and_inverse_round_trip() {
        let p = Permutation::from_vec(vec![2, 0, 1]).unwrap();
        let x = [10.0, 20.0, 30.0];
        let y = p.apply(&x);
        assert_eq!(y, vec![30.0, 10.0, 20.0]);
        assert_eq!(p.apply_inv(&y), x.to_vec());
        assert_eq!(p.inverse().apply(&y), x.to_vec());
    }

    #[test]
    fn inv_is_consistent() {
        let p = Permutation::from_vec(vec![3, 1, 0, 2]).unwrap();
        for k in 0..4 {
            assert_eq!(p.inv()[p.perm()[k]], k);
        }
    }

    #[test]
    fn composition_applies_in_order() {
        let p = Permutation::from_vec(vec![1, 2, 0]).unwrap();
        let q = Permutation::from_vec(vec![2, 1, 0]).unwrap();
        let x = [1.0, 2.0, 3.0];
        let both = p.then(&q);
        assert_eq!(both.apply(&x), q.apply(&p.apply(&x)));
    }

    #[test]
    fn sym_perm_matches_dense_computation() {
        // Full symmetric matrix:
        // [ 4 1 0 ]
        // [ 1 5 2 ]
        // [ 0 2 6 ]
        let upper = CscMatrix::from_dense(3, 3, &[4.0, 1.0, 0.0, 0.0, 5.0, 2.0, 0.0, 0.0, 6.0]);
        let p = Permutation::from_vec(vec![2, 0, 1]).unwrap();
        let b = p.sym_perm_upper(&upper).unwrap();
        // New index k corresponds to old index perm[k]: B[k,l] = A[perm[k], perm[l]].
        let full = |m: &CscMatrix, i: usize, j: usize| {
            if i <= j {
                m.get(i, j)
            } else {
                m.get(j, i)
            }
        };
        for k in 0..3 {
            for l in k..3 {
                assert_eq!(
                    b.get(k, l),
                    full(
                        &upper,
                        p.perm()[k].min(p.perm()[l]),
                        p.perm()[k].max(p.perm()[l])
                    )
                );
            }
        }
    }
}
