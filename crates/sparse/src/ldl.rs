//! Sparse LDLᵀ factorization with separate symbolic and numeric phases.
//!
//! This is the factorization the OSQP-direct variant uses for the KKT system
//! (Section II.C of the paper): an *up-looking* algorithm that grows `L` row
//! by row, following equation (5). The symbolic phase analyses the sparsity
//! pattern once (elimination tree + column counts + the full pattern of `L`);
//! the numeric phase recomputes values only — exactly the split OSQP exploits
//! when the step size `ρ` changes and the KKT matrix "needs to be numerically
//! refactored again (but not symbolically refactored)".
//!
//! The KKT matrix is quasi-definite, so `D` carries both signs; any exactly
//! zero pivot aborts with [`SparseError::ZeroPivot`].

use crate::etree::EliminationTree;
use crate::{CscMatrix, Permutation, Result, SparseError};

/// Symbolic LDLᵀ analysis of a symmetric matrix (upper triangle storage).
///
/// Holds everything that depends only on the sparsity pattern: the
/// elimination tree, the column pointers of `L` and scratch sizing. One
/// `LdlSymbolic` can numerically factor any matrix with the same pattern.
#[derive(Debug, Clone)]
pub struct LdlSymbolic {
    n: usize,
    etree: EliminationTree,
    /// Column pointers of the strictly-lower-triangular `L` (length `n+1`).
    l_col_ptr: Vec<usize>,
}

impl LdlSymbolic {
    /// Analyses the pattern of `a` (square, upper triangle).
    ///
    /// # Errors
    ///
    /// Propagates [`SparseError::NotSquare`] / [`SparseError::InvalidStructure`]
    /// from elimination-tree construction.
    pub fn new(a: &CscMatrix) -> Result<Self> {
        let etree = EliminationTree::from_upper(a)?;
        let n = a.ncols();
        let mut l_col_ptr = vec![0usize; n + 1];
        for i in 0..n {
            l_col_ptr[i + 1] = l_col_ptr[i] + etree.col_counts()[i];
        }
        Ok(LdlSymbolic {
            n,
            etree,
            l_col_ptr,
        })
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The elimination tree computed during analysis.
    pub fn etree(&self) -> &EliminationTree {
        &self.etree
    }

    /// Number of strictly-below-diagonal nonzeros of `L`.
    pub fn l_nnz(&self) -> usize {
        self.l_col_ptr[self.n]
    }

    /// Runs the numeric factorization of `a`, which must have the same
    /// pattern used for analysis.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ZeroPivot`] if an exactly zero pivot arises.
    pub fn factor(&self, a: &CscMatrix) -> Result<LdlFactor> {
        let mut f = LdlFactor::new_uninit(self);
        self.refactor(a, &mut f)?;
        Ok(f)
    }

    /// Re-runs the numeric factorization into an existing factor, reusing
    /// all allocations. `a` must have the pattern used for analysis.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ZeroPivot`] on an exactly zero pivot, and
    /// [`SparseError::DimensionMismatch`] if `a` has the wrong size.
    pub fn refactor(&self, a: &CscMatrix, f: &mut LdlFactor) -> Result<()> {
        let n = self.n;
        if a.ncols() != n || a.nrows() != n {
            return Err(SparseError::DimensionMismatch {
                op: "ldl refactor",
                lhs: (n, n),
                rhs: a.shape(),
            });
        }
        let parent = self.etree.parent();

        // Version-tagged workspace: mark[i] == k means "visited for row k".
        let mark = &mut f.work_mark;
        mark.fill(usize::MAX);
        let y = &mut f.work_y;
        y.fill(0.0);
        let pattern = &mut f.work_pattern;
        // fill[i]: number of entries written so far to column i of L.
        let fill = &mut f.work_fill;
        fill.fill(0);
        let mut flops = 0u64;
        let path = crate::simd::dispatch_path();

        for k in 0..n {
            // Scatter column k of A (upper triangle) into the accumulator and
            // collect the elimination reach of row k.
            pattern.clear();
            let mut d_kk = 0.0;
            for (i, v) in a.col(k) {
                if i == k {
                    d_kk = v;
                    continue;
                }
                y[i] = v;
                // Walk i -> parent -> ... -> k, collecting unvisited nodes.
                let mut node = i;
                while node != k && mark[node] != k {
                    pattern.push(node);
                    mark[node] = k;
                    node = parent[node];
                    debug_assert!(node != crate::etree::NO_PARENT, "etree path must reach k");
                }
            }
            // Ascending order is a topological order of the within-pattern
            // dependencies (an L(r, i) dependency implies r is an ancestor
            // of i, and ancestors have larger indices).
            pattern.sort_unstable();

            // Sparse forward substitution: solve L11 * (D11 * l_k) = a_k.
            for &i in pattern.iter() {
                let yi = y[i];
                y[i] = 0.0;
                let col_start = self.l_col_ptr[i];
                // `y -= l * yi` as `y += l * (-yi)`: IEEE negation is
                // exact, so this is bitwise identical to the subtract loop.
                let r = col_start..col_start + fill[i];
                crate::simd::scatter_axpy(path, y, &f.l_row_ind[r.clone()], &f.l_values[r], -yi);
                let di = f.d[i];
                // di == 0 cannot happen: rows < k already produced valid pivots.
                let l_ki = yi / di;
                d_kk -= yi * l_ki;
                let dst = col_start + fill[i];
                f.l_row_ind[dst] = k;
                f.l_values[dst] = l_ki;
                // 2 flops per scatter-update entry, plus the division and
                // the two-flop diagonal update.
                flops += 2 * fill[i] as u64 + 3;
                fill[i] += 1;
            }
            if d_kk == 0.0 {
                return Err(SparseError::ZeroPivot(k));
            }
            f.d[k] = d_kk;
            f.dinv[k] = 1.0 / d_kk;
        }
        f.flops = flops;
        // Allocation-free on purpose: this runs inside the solver's
        // zero-allocation adaptive-rho refactorization path even in builds
        // with debug assertions enabled.
        debug_assert!(
            (0..n).all(|i| fill[i] == self.etree.col_counts()[i]),
            "numeric fill must match symbolic column counts"
        );
        Ok(())
    }
}

/// A numeric LDLᵀ factorization: `P A Pᵀ = L D Lᵀ` with `L` unit lower
/// triangular (the unit diagonal is implicit) and `D` diagonal.
#[derive(Debug, Clone)]
pub struct LdlFactor {
    n: usize,
    l_col_ptr: Vec<usize>,
    l_row_ind: Vec<usize>,
    l_values: Vec<f64>,
    d: Vec<f64>,
    dinv: Vec<f64>,
    flops: u64,
    // Reusable numeric workspaces (sized once at allocation).
    work_mark: Vec<usize>,
    work_y: Vec<f64>,
    work_pattern: Vec<usize>,
    work_fill: Vec<usize>,
}

impl LdlFactor {
    fn new_uninit(sym: &LdlSymbolic) -> Self {
        let n = sym.n;
        let nnz = sym.l_nnz();
        LdlFactor {
            n,
            l_col_ptr: sym.l_col_ptr.clone(),
            l_row_ind: vec![0; nnz],
            l_values: vec![0.0; nnz],
            d: vec![0.0; n],
            dinv: vec![0.0; n],
            flops: 0,
            work_mark: vec![usize::MAX; n],
            work_y: vec![0.0; n],
            work_pattern: Vec::with_capacity(n),
            work_fill: vec![0; n],
        }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The diagonal factor `D`.
    pub fn d(&self) -> &[f64] {
        &self.d
    }

    /// Exact floating-point operation count of the most recent numeric
    /// factorization (the column-elimination work the MIB profiler
    /// attributes to the factor step).
    pub fn flops(&self) -> u64 {
        self.flops
    }

    /// Column pointers of the strictly lower triangular `L`.
    pub fn l_col_ptr(&self) -> &[usize] {
        &self.l_col_ptr
    }

    /// Row indices of `L` (per column, ascending).
    pub fn l_row_ind(&self) -> &[usize] {
        &self.l_row_ind
    }

    /// Values of `L`.
    pub fn l_values(&self) -> &[f64] {
        &self.l_values
    }

    /// Number of strictly-below-diagonal nonzeros of `L`.
    pub fn l_nnz(&self) -> usize {
        self.l_row_ind.len()
    }

    /// Returns `L` (strictly lower part, unit diagonal implicit) as a
    /// [`CscMatrix`].
    pub fn l_matrix(&self) -> CscMatrix {
        CscMatrix::from_parts(
            self.n,
            self.n,
            self.l_col_ptr.clone(),
            self.l_row_ind.clone(),
            self.l_values.clone(),
        )
        .expect("factor arrays satisfy csc invariants")
    }

    /// Solves `L x = b` in place (unit diagonal), using **column-oriented**
    /// substitution — the "column elimination" primitive of the paper
    /// (equations (8)–(12)).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n`.
    pub fn l_solve(&self, x: &mut [f64]) {
        assert_eq!(x.len(), self.n, "l_solve: rhs has wrong length");
        let path = crate::simd::dispatch_path();
        for j in 0..self.n {
            let xj = x[j];
            if xj != 0.0 {
                // `x -= l * xj` as `x += l * (-xj)` (exact negation).
                let r = self.l_col_ptr[j]..self.l_col_ptr[j + 1];
                crate::simd::scatter_axpy(
                    path,
                    x,
                    &self.l_row_ind[r.clone()],
                    &self.l_values[r],
                    -xj,
                );
            }
        }
    }

    /// Solves `Lᵀ x = b` in place (unit diagonal), using **row-oriented**
    /// substitution — the MAC primitive of the paper (equation (7) applied
    /// to `Lᵀ`).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n`.
    pub fn lt_solve(&self, x: &mut [f64]) {
        assert_eq!(x.len(), self.n, "lt_solve: rhs has wrong length");
        let path = crate::simd::dispatch_path();
        for j in (0..self.n).rev() {
            let r = self.l_col_ptr[j]..self.l_col_ptr[j + 1];
            let s = crate::simd::gather_dot(path, &self.l_values[r.clone()], &self.l_row_ind[r], x);
            x[j] -= s;
        }
    }

    /// Applies `x <- D⁻¹ x` (element-wise multiply by the reciprocal
    /// diagonal).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n`.
    pub fn d_solve(&self, x: &mut [f64]) {
        assert_eq!(x.len(), self.n, "d_solve: rhs has wrong length");
        crate::simd::mul_assign(x, &self.dinv);
    }

    /// Solves `(L D Lᵀ) x = b` in place via forward–backward substitution.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n`.
    pub fn solve_in_place(&self, x: &mut [f64]) {
        self.l_solve(x);
        self.d_solve(x);
        self.lt_solve(x);
    }

    /// Solves `(L D Lᵀ) x = b` into a caller-provided buffer — the
    /// allocation-free triangular-solve kernel.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n` or `x.len() != n`.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64]) {
        assert_eq!(b.len(), self.n, "solve_into: rhs has wrong length");
        assert_eq!(x.len(), self.n, "solve_into: out has wrong length");
        x.copy_from_slice(b);
        self.solve_in_place(x);
    }

    /// Solves `(L D Lᵀ) x = b`, returning a fresh vector.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x);
        x
    }
}

/// A complete direct solver: fill-reducing permutation + symbolic analysis +
/// numeric factorization of a symmetric (upper-triangle-stored) matrix.
///
/// This is the software twin of the paper's OSQP-direct KKT backend: the
/// permutation is realized on the MIB machine by the `permutate` /
/// `inverse_permutate` network schedules, `L`/`D`/`Lᵀ` solves by the
/// `L_solve` / `D_solve` / `Lt_solve` schedules of Listing 1.
#[derive(Debug, Clone)]
pub struct LdlSolver {
    perm: Permutation,
    permuted: CscMatrix,
    symbolic: LdlSymbolic,
    factor: LdlFactor,
    /// Pattern of the original (unpermuted) matrix, for validating value
    /// updates without rebuilding the permuted matrix.
    orig_col_ptr: Vec<usize>,
    orig_row_ind: Vec<usize>,
    /// `val_map[k]` is the slot in `permuted.values()` holding original
    /// entry `k` (storage order). `None` when the original matrix carried
    /// duplicate coordinates, in which case value updates fall back to the
    /// allocating rebuild.
    val_map: Option<Vec<usize>>,
}

impl LdlSolver {
    /// Orders (with the given ordering method), analyses and factors `a`.
    ///
    /// # Errors
    ///
    /// Propagates structural errors and [`SparseError::ZeroPivot`].
    pub fn new(a: &CscMatrix, method: crate::order::Ordering) -> Result<Self> {
        let perm = crate::order::compute(a, method)?;
        let permuted = perm.sym_perm_upper(a)?;
        let symbolic = LdlSymbolic::new(&permuted)?;
        let factor = symbolic.factor(&permuted)?;
        let val_map = build_value_map(a, &perm, &permuted);
        Ok(LdlSolver {
            perm,
            permuted,
            symbolic,
            factor,
            orig_col_ptr: a.col_ptr().to_vec(),
            orig_row_ind: a.row_ind().to_vec(),
            val_map,
        })
    }

    /// The fill-reducing permutation in use.
    pub fn perm(&self) -> &Permutation {
        &self.perm
    }

    /// The symbolic analysis (pattern-only data).
    pub fn symbolic(&self) -> &LdlSymbolic {
        &self.symbolic
    }

    /// The current numeric factor.
    pub fn factor(&self) -> &LdlFactor {
        &self.factor
    }

    /// The permuted matrix `P A Pᵀ` that was factored (upper triangle).
    pub fn permuted_matrix(&self) -> &CscMatrix {
        &self.permuted
    }

    /// Updates the numeric values of the matrix (same pattern as the one the
    /// solver was built from) and refactors without symbolic analysis.
    ///
    /// Allocation-free on the common path: values are scattered through the
    /// precomputed original-slot → permuted-slot map and the numeric
    /// factorization reuses the factor's workspaces.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidStructure`] if the pattern differs, or
    /// [`SparseError::ZeroPivot`] from the factorization.
    pub fn update_values(&mut self, a: &CscMatrix) -> Result<()> {
        if a.col_ptr() != &self.orig_col_ptr[..] || a.row_ind() != &self.orig_row_ind[..] {
            return Err(SparseError::InvalidStructure(
                "update_values requires the original sparsity pattern".into(),
            ));
        }
        match &self.val_map {
            Some(map) => {
                let dst = self.permuted.values_mut();
                for (k, &slot) in map.iter().enumerate() {
                    dst[slot] = a.values()[k];
                }
            }
            None => {
                // Duplicate coordinates in the original: rebuild (sums them).
                self.permuted = self.perm.sym_perm_upper(a)?;
            }
        }
        self.symbolic.refactor(&self.permuted, &mut self.factor)
    }

    /// Solves `A x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the matrix dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut work = vec![0.0; b.len()];
        let mut out = vec![0.0; b.len()];
        self.solve_into(b, &mut work, &mut out);
        out
    }

    /// Solves `A x = b` into caller-provided buffers: `work` holds the
    /// permuted intermediate, `out` receives the solution. Allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if any buffer length differs from the matrix dimension.
    pub fn solve_into(&self, b: &[f64], work: &mut [f64], out: &mut [f64]) {
        self.perm.apply_into(b, work);
        self.factor.solve_in_place(work);
        self.perm.apply_inv_into(work, out);
    }
}

/// Maps each stored entry of `a` (storage order) to the slot of
/// `permuted = P A Pᵀ` holding its value. Returns `None` if two entries of
/// `a` collide in the permuted matrix (duplicate coordinates): the rebuild
/// path must then be used so duplicates keep summing.
fn build_value_map(a: &CscMatrix, perm: &Permutation, permuted: &CscMatrix) -> Option<Vec<usize>> {
    if a.nnz() != permuted.nnz() {
        return None;
    }
    let inv = perm.inv();
    let mut map = Vec::with_capacity(a.nnz());
    let mut seen = vec![false; permuted.nnz()];
    for (i, j, _) in a.iter() {
        let (i2, j2) = (inv[i], inv[j]);
        let (r, c) = if i2 <= j2 { (i2, j2) } else { (j2, i2) };
        let range = permuted.col_range(c);
        let rows = &permuted.row_ind()[range.clone()];
        let slot = range.start + rows.binary_search(&r).ok()?;
        if seen[slot] {
            return None;
        }
        seen[slot] = true;
        map.push(slot);
    }
    Some(map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::Ordering;

    /// Dense symmetric positive definite test matrix (upper triangle).
    fn spd_upper() -> CscMatrix {
        // A = [ 4 1 0 2 ]
        //     [ 1 5 1 0 ]
        //     [ 0 1 6 1 ]
        //     [ 2 0 1 7 ]
        CscMatrix::from_dense(
            4,
            4,
            &[
                4.0, 1.0, 0.0, 2.0, //
                0.0, 5.0, 1.0, 0.0, //
                0.0, 0.0, 6.0, 1.0, //
                0.0, 0.0, 0.0, 7.0,
            ],
        )
    }

    fn full_from_upper(u: &CscMatrix) -> Vec<f64> {
        let n = u.nrows();
        let mut d = vec![0.0; n * n];
        for (i, j, v) in u.iter() {
            d[i * n + j] = v;
            d[j * n + i] = v;
        }
        d
    }

    fn reconstruct(f: &LdlFactor) -> Vec<f64> {
        let n = f.n();
        let l = f.l_matrix().to_dense();
        let mut ld = vec![0.0; n * n];
        // (L + I) * D
        for i in 0..n {
            for j in 0..n {
                let lij = if i == j { 1.0 } else { l[i * n + j] };
                ld[i * n + j] = lij * f.d()[j];
            }
        }
        // (LD) * (L + I)^T
        let mut out = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    let ljk = if j == k { 1.0 } else { l[j * n + k] };
                    acc += ld[i * n + k] * ljk;
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = spd_upper();
        let sym = LdlSymbolic::new(&a).unwrap();
        let f = sym.factor(&a).unwrap();
        let rec = reconstruct(&f);
        let full = full_from_upper(&a);
        for (x, y) in rec.iter().zip(&full) {
            assert!((x - y).abs() < 1e-12, "reconstruction mismatch: {x} vs {y}");
        }
    }

    #[test]
    fn solve_matches_direct_inversion() {
        let a = spd_upper();
        let sym = LdlSymbolic::new(&a).unwrap();
        let f = sym.factor(&a).unwrap();
        let b = [1.0, 2.0, 3.0, 4.0];
        let x = f.solve(&b);
        // Check A x == b using the symmetric product.
        let ax = a.sym_upper_mul_vec(&x);
        for (u, v) in ax.iter().zip(&b) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn quasi_definite_kkt_factors() {
        // KKT-style quasi-definite matrix:
        // [ P + σI   Aᵀ  ]
        // [ A      -1/ρ I]
        // with P = diag(1, 2), A = [1 1], σ = 1e-6, ρ = 10.
        let sigma = 1e-6;
        let rho = 10.0;
        let d = vec![
            1.0 + sigma,
            0.0,
            1.0,
            0.0,
            2.0 + sigma,
            1.0,
            1.0,
            1.0,
            -1.0 / rho,
        ];
        let a = CscMatrix::from_dense(3, 3, &d).upper_triangle().unwrap();
        let sym = LdlSymbolic::new(&a).unwrap();
        let f = sym.factor(&a).unwrap();
        // One negative pivot (one constraint row).
        assert_eq!(f.d().iter().filter(|&&v| v < 0.0).count(), 1);
        let b = [1.0, -1.0, 0.5];
        let x = f.solve(&b);
        let ax = a.sym_upper_mul_vec(&x);
        for (u, v) in ax.iter().zip(&b) {
            assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn refactor_reuses_pattern() {
        let a = spd_upper();
        let sym = LdlSymbolic::new(&a).unwrap();
        let mut f = sym.factor(&a).unwrap();
        // Scale values; same pattern.
        let a2 = a.map_values(|v| v * 2.0);
        sym.refactor(&a2, &mut f).unwrap();
        let b = [1.0, 0.0, 0.0, 1.0];
        let x = f.solve(&b);
        let ax = a2.sym_upper_mul_vec(&x);
        for (u, v) in ax.iter().zip(&b) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn zero_pivot_reported() {
        let a = CscMatrix::from_dense(2, 2, &[0.0, 0.0, 0.0, 1.0]);
        let sym = LdlSymbolic::new(&a).unwrap();
        assert!(matches!(sym.factor(&a), Err(SparseError::ZeroPivot(0))));
    }

    #[test]
    fn solver_with_ordering_round_trips() {
        let a = spd_upper();
        for method in [Ordering::Natural, Ordering::Rcm, Ordering::MinDegree] {
            let solver = LdlSolver::new(&a, method).unwrap();
            let b = [4.0, 3.0, 2.0, 1.0];
            let x = solver.solve(&b);
            let ax = a.sym_upper_mul_vec(&x);
            for (u, v) in ax.iter().zip(&b) {
                assert!((u - v).abs() < 1e-10, "ordering {method:?} failed");
            }
        }
    }

    #[test]
    fn update_values_refactors() {
        let a = spd_upper();
        let mut solver = LdlSolver::new(&a, Ordering::MinDegree).unwrap();
        let a2 = a.map_values(|v| v * 3.0);
        solver.update_values(&a2).unwrap();
        let b = [1.0, 1.0, 1.0, 1.0];
        let x = solver.solve(&b);
        let ax = a2.sym_upper_mul_vec(&x);
        for (u, v) in ax.iter().zip(&b) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn l_is_strictly_lower_and_sorted() {
        let a = spd_upper();
        let f = LdlSymbolic::new(&a).unwrap().factor(&a).unwrap();
        let l = f.l_matrix();
        for (i, j, _) in l.iter() {
            assert!(i > j, "L must be strictly lower triangular");
        }
    }
}
