//! Structural combinators: stacking and Kronecker products.
//!
//! The benchmark problem generators assemble standard-form QP matrices from
//! blocks (Section II.B of the paper: "the three constraints are preserved as
//! distinct blocks in the matrix A"). These helpers build those block
//! matrices without going through dense intermediates.

use crate::{CscMatrix, Result, SparseError};

/// Stacks matrices vertically: `[A; B; ...]`.
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] if the column counts differ,
/// or [`SparseError::InvalidStructure`] for an empty input list.
pub fn vstack(blocks: &[&CscMatrix]) -> Result<CscMatrix> {
    let first = blocks
        .first()
        .ok_or_else(|| SparseError::InvalidStructure("vstack of zero blocks".into()))?;
    let ncols = first.ncols();
    let mut nrows = 0usize;
    for b in blocks {
        if b.ncols() != ncols {
            return Err(SparseError::DimensionMismatch {
                op: "vstack",
                lhs: (first.nrows(), ncols),
                rhs: b.shape(),
            });
        }
        nrows += b.nrows();
    }
    let nnz: usize = blocks.iter().map(|b| b.nnz()).sum();
    let mut col_ptr = vec![0usize; ncols + 1];
    let mut row_ind = Vec::with_capacity(nnz);
    let mut values = Vec::with_capacity(nnz);
    for j in 0..ncols {
        let mut offset = 0usize;
        for b in blocks {
            for (i, v) in b.col(j) {
                row_ind.push(i + offset);
                values.push(v);
            }
            offset += b.nrows();
        }
        col_ptr[j + 1] = row_ind.len();
    }
    CscMatrix::from_parts(nrows, ncols, col_ptr, row_ind, values)
}

/// Stacks matrices horizontally: `[A, B, ...]`.
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] if the row counts differ, or
/// [`SparseError::InvalidStructure`] for an empty input list.
pub fn hstack(blocks: &[&CscMatrix]) -> Result<CscMatrix> {
    let first = blocks
        .first()
        .ok_or_else(|| SparseError::InvalidStructure("hstack of zero blocks".into()))?;
    let nrows = first.nrows();
    let mut ncols = 0usize;
    for b in blocks {
        if b.nrows() != nrows {
            return Err(SparseError::DimensionMismatch {
                op: "hstack",
                lhs: (nrows, first.ncols()),
                rhs: b.shape(),
            });
        }
        ncols += b.ncols();
    }
    let nnz: usize = blocks.iter().map(|b| b.nnz()).sum();
    let mut col_ptr = Vec::with_capacity(ncols + 1);
    col_ptr.push(0);
    let mut row_ind = Vec::with_capacity(nnz);
    let mut values = Vec::with_capacity(nnz);
    for b in blocks {
        for j in 0..b.ncols() {
            for (i, v) in b.col(j) {
                row_ind.push(i);
                values.push(v);
            }
            col_ptr.push(row_ind.len());
        }
    }
    CscMatrix::from_parts(nrows, ncols, col_ptr, row_ind, values)
}

/// Builds the block-diagonal matrix `diag(A, B, ...)`.
///
/// # Errors
///
/// Returns [`SparseError::InvalidStructure`] for an empty input list.
pub fn block_diag(blocks: &[&CscMatrix]) -> Result<CscMatrix> {
    if blocks.is_empty() {
        return Err(SparseError::InvalidStructure(
            "block_diag of zero blocks".into(),
        ));
    }
    let nrows: usize = blocks.iter().map(|b| b.nrows()).sum();
    let ncols: usize = blocks.iter().map(|b| b.ncols()).sum();
    let nnz: usize = blocks.iter().map(|b| b.nnz()).sum();
    let mut col_ptr = Vec::with_capacity(ncols + 1);
    col_ptr.push(0);
    let mut row_ind = Vec::with_capacity(nnz);
    let mut values = Vec::with_capacity(nnz);
    let mut row_offset = 0usize;
    for b in blocks {
        for j in 0..b.ncols() {
            for (i, v) in b.col(j) {
                row_ind.push(i + row_offset);
                values.push(v);
            }
            col_ptr.push(row_ind.len());
        }
        row_offset += b.nrows();
    }
    CscMatrix::from_parts(nrows, ncols, col_ptr, row_ind, values)
}

/// Kronecker product `A ⊗ B`.
///
/// Used by the MPC generator, where the stage dynamics repeat along the
/// horizon: the stacked equality constraints contain `I_T ⊗ A_d` style
/// blocks.
pub fn kron(a: &CscMatrix, b: &CscMatrix) -> CscMatrix {
    let nrows = a.nrows() * b.nrows();
    let ncols = a.ncols() * b.ncols();
    let mut col_ptr = Vec::with_capacity(ncols + 1);
    col_ptr.push(0usize);
    let mut row_ind = Vec::with_capacity(a.nnz() * b.nnz());
    let mut values = Vec::with_capacity(a.nnz() * b.nnz());
    for ja in 0..a.ncols() {
        for jb in 0..b.ncols() {
            for (ia, va) in a.col(ja) {
                for (ib, vb) in b.col(jb) {
                    row_ind.push(ia * b.nrows() + ib);
                    values.push(va * vb);
                }
            }
            col_ptr.push(row_ind.len());
        }
    }
    CscMatrix::from_parts(nrows, ncols, col_ptr, row_ind, values)
        .expect("kron preserves csc invariants")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(m: &CscMatrix) -> Vec<f64> {
        m.to_dense()
    }

    #[test]
    fn vstack_stacks_rows() {
        let a = CscMatrix::identity(2);
        let b = CscMatrix::from_dense(1, 2, &[3.0, 4.0]);
        let s = vstack(&[&a, &b]).unwrap();
        assert_eq!(s.shape(), (3, 2));
        assert_eq!(dense(&s), vec![1.0, 0.0, 0.0, 1.0, 3.0, 4.0]);
    }

    #[test]
    fn hstack_stacks_cols() {
        let a = CscMatrix::identity(2);
        let b = CscMatrix::from_dense(2, 1, &[5.0, 6.0]);
        let s = hstack(&[&a, &b]).unwrap();
        assert_eq!(s.shape(), (2, 3));
        assert_eq!(dense(&s), vec![1.0, 0.0, 5.0, 0.0, 1.0, 6.0]);
    }

    #[test]
    fn block_diag_places_blocks() {
        let a = CscMatrix::from_dense(1, 1, &[2.0]);
        let b = CscMatrix::from_dense(2, 2, &[0.0, 1.0, 1.0, 0.0]);
        let d = block_diag(&[&a, &b]).unwrap();
        assert_eq!(d.shape(), (3, 3));
        assert_eq!(d.get(0, 0), 2.0);
        assert_eq!(d.get(1, 2), 1.0);
        assert_eq!(d.get(2, 1), 1.0);
        assert_eq!(d.get(0, 1), 0.0);
    }

    #[test]
    fn mismatched_shapes_error() {
        let a = CscMatrix::identity(2);
        let b = CscMatrix::identity(3);
        assert!(vstack(&[&a, &b]).is_err());
        assert!(hstack(&[&a, &b]).is_err());
    }

    #[test]
    fn kron_matches_dense_definition() {
        let a = CscMatrix::from_dense(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = CscMatrix::from_dense(2, 2, &[0.0, 1.0, 1.0, 0.0]);
        let k = kron(&a, &b);
        assert_eq!(k.shape(), (4, 4));
        // (A ⊗ B)[i*2+p, j*2+q] = A[i,j] * B[p,q]
        for i in 0..2 {
            for j in 0..2 {
                for p in 0..2 {
                    for q in 0..2 {
                        assert_eq!(k.get(i * 2 + p, j * 2 + q), a.get(i, j) * b.get(p, q));
                    }
                }
            }
        }
    }

    #[test]
    fn kron_with_identity_is_block_diag() {
        let b = CscMatrix::from_dense(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let k = kron(&CscMatrix::identity(3), &b);
        let d = block_diag(&[&b, &b, &b]).unwrap();
        assert_eq!(k, d);
    }
}
