//! Runtime-dispatched SIMD kernels behind **one canonical reduction
//! order**.
//!
//! Every hot `_into` kernel in this crate (and the ADMM/PDQP stage loops
//! in `mib-qp`) routes through the free functions in this module. Each
//! function has two implementations:
//!
//! * a **portable** chunked-scalar path (plain safe Rust, autovectorized
//!   by LLVM to whatever the build target offers), and
//! * an **AVX2** path written with `core::arch` intrinsics, selected at
//!   runtime via `is_x86_feature_detected!` so the shipped binary runs
//!   everywhere.
//!
//! The two paths are **bitwise identical** by construction, which is what
//! lets the rest of the repo keep its reproducibility invariants
//! (pooled ≡ fresh, parallel ≡ sequential, shadow audits) while the
//! dispatch decision varies per host:
//!
//! * **Canonical reduction order.** Reductions accumulate into
//!   [`LANES`] = 4 independent lanes over the full 4-chunks
//!   (`acc[l] += term(4c + l)`), combine the lanes as
//!   `(acc[0] + acc[2]) + (acc[1] + acc[3])` — exactly the cheap AVX2
//!   horizontal reduction (`vaddpd` of the two 128-bit halves, then one
//!   scalar add) — and fold the remainder sequentially *after* the
//!   combine. The portable path implements the same schedule in scalar
//!   code, so both paths perform the identical sequence of IEEE-754
//!   additions.
//! * **No FMA.** Both paths multiply then add as separate (exactly
//!   rounded) operations; fused multiply-add would change the bits.
//! * **Canonical min/max.** `vmaxpd`/`vminpd` have fixed NaN/±0
//!   semantics (`max(a,b) = a > b ? a : b`). [`cmax`]/[`cmin`] reproduce
//!   them exactly and are what the portable path (and the scalar tails)
//!   use instead of `f64::max`/`f64::min`.
//! * **Scatter order.** AVX2 has no scatter instruction; the vector path
//!   computes the four products with `vmulpd` and applies the four adds
//!   in lane order — the same order as the scalar loop — so even
//!   duplicate indices (which cannot occur in CSC columns, but still)
//!   would be handled identically.
//!
//! Dispatch is resolved once per process from the `MIB_SIMD` environment
//! variable (`scalar`/`portable` forces the fallback, `avx2` requests
//! AVX2, unset auto-detects) and can be overridden at runtime with
//! [`force_dispatch`] — the hook the differential proptest suite and
//! `kernel_bench` use to measure and compare both paths in one process.
//! Because the paths are bitwise identical, flipping the global override
//! mid-solve is harmless.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Number of `f64` lanes every kernel chunks by, on every dispatch path.
pub const LANES: usize = 4;

/// Which kernel implementation [`dispatch_path`] resolves to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DispatchPath {
    /// Chunked-scalar fallback (safe Rust, works on every target).
    Portable,
    /// `core::arch::x86_64` AVX2 intrinsics (runtime-detected).
    Avx2,
}

impl DispatchPath {
    /// Stable lowercase name (used by benches and logs).
    pub fn as_str(self) -> &'static str {
        match self {
            DispatchPath::Portable => "portable",
            DispatchPath::Avx2 => "avx2",
        }
    }
}

/// 0 = no override, 1 = forced portable, 2 = forced AVX2.
static FORCED: AtomicU8 = AtomicU8::new(0);
/// Process-wide default, resolved once from `MIB_SIMD` + CPU detection.
static DEFAULT: OnceLock<DispatchPath> = OnceLock::new();

fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

fn default_path() -> DispatchPath {
    *DEFAULT.get_or_init(|| match std::env::var("MIB_SIMD").as_deref() {
        Ok("scalar" | "portable") => DispatchPath::Portable,
        Ok("avx2") => {
            if avx2_available() {
                DispatchPath::Avx2
            } else {
                DispatchPath::Portable
            }
        }
        _ => {
            if avx2_available() {
                DispatchPath::Avx2
            } else {
                DispatchPath::Portable
            }
        }
    })
}

/// The path kernels currently dispatch to: a [`force_dispatch`] override
/// if one is set, otherwise the process default (`MIB_SIMD` env var, or
/// auto-detection). One relaxed atomic load; hoist the result when
/// calling the `*_with` sparse primitives in a per-column loop.
#[inline]
pub fn dispatch_path() -> DispatchPath {
    match FORCED.load(Ordering::Relaxed) {
        1 => DispatchPath::Portable,
        2 => DispatchPath::Avx2,
        _ => default_path(),
    }
}

/// Overrides (or with `None`, restores) the dispatch decision process
/// wide. Returns `false` — leaving the state unchanged — if AVX2 was
/// requested on a host that does not support it. This is the test /
/// bench hook; because all paths are bitwise identical, flipping it
/// while solves are in flight cannot change any result.
pub fn force_dispatch(path: Option<DispatchPath>) -> bool {
    let code = match path {
        None => 0,
        Some(DispatchPath::Portable) => 1,
        Some(DispatchPath::Avx2) => {
            if !avx2_available() {
                return false;
            }
            2
        }
    };
    FORCED.store(code, Ordering::Relaxed);
    true
}

/// CPU features this host actually exposes, for bench provenance.
pub fn detected_features() -> Vec<&'static str> {
    let mut out = Vec::new();
    #[cfg(target_arch = "x86_64")]
    {
        for (name, have) in [
            ("sse2", is_x86_feature_detected!("sse2")),
            ("sse4.2", is_x86_feature_detected!("sse4.2")),
            ("avx", is_x86_feature_detected!("avx")),
            ("avx2", is_x86_feature_detected!("avx2")),
            ("fma", is_x86_feature_detected!("fma")),
            ("avx512f", is_x86_feature_detected!("avx512f")),
        ] {
            if have {
                out.push(name);
            }
        }
    }
    out
}

/// Canonical maximum with `vmaxpd` semantics: `if a > b { a } else { b }`
/// (so the second operand wins on NaN and on ±0 ties). Used by every
/// max-reduction and projection on every dispatch path.
#[inline(always)]
pub fn cmax(a: f64, b: f64) -> f64 {
    if a > b {
        a
    } else {
        b
    }
}

/// Canonical minimum with `vminpd` semantics: `if a < b { a } else { b }`.
#[inline(always)]
pub fn cmin(a: f64, b: f64) -> f64 {
    if a < b {
        a
    } else {
        b
    }
}

/// Selects the body for the given path; on non-x86_64 targets the AVX2
/// arm falls back to portable (that path is never produced there anyway).
macro_rules! dispatched {
    ($path:expr, $portable:expr, $avx2:expr) => {
        match $path {
            DispatchPath::Portable => $portable,
            #[cfg(target_arch = "x86_64")]
            // SAFETY (for every use in this module): the Avx2 variant is
            // only ever produced after `is_x86_feature_detected!("avx2")`
            // returned true (see `default_path`/`force_dispatch`), and
            // the wrappers assert every slice-length precondition the
            // `#[target_feature]` bodies rely on.
            DispatchPath::Avx2 => $avx2,
            #[cfg(not(target_arch = "x86_64"))]
            DispatchPath::Avx2 => $portable,
        }
    };
}

// ---------------------------------------------------------------------------
// Reductions (canonical lane-chunked order).
// ---------------------------------------------------------------------------

/// Dot product `Σ x[i]·y[i]` in the canonical reduction order.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    dispatched!(dispatch_path(), portable::dot(x, y), unsafe {
        avx2::dot(x, y)
    })
}

/// `max |x[i]|` (canonical max semantics; `0.0` for an empty slice).
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    dispatched!(dispatch_path(), portable::norm_inf(x), unsafe {
        avx2::norm_inf(x)
    })
}

/// `max |a[i] - b[i]|`.
#[inline]
pub fn norm_inf_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "norm_inf_diff: length mismatch");
    dispatched!(dispatch_path(), portable::norm_inf_diff(a, b), unsafe {
        avx2::norm_inf_diff(a, b)
    })
}

/// `max |(a[i] + b[i]) + c[i]|` — the ADMM/PDQP dual-residual reduction,
/// fused so the three-term sum is formed once per element.
#[inline]
pub fn norm_inf_sum3(a: &[f64], b: &[f64], c: &[f64]) -> f64 {
    let n = a.len();
    assert!(
        b.len() == n && c.len() == n,
        "norm_inf_sum3: length mismatch"
    );
    dispatched!(dispatch_path(), portable::norm_inf_sum3(a, b, c), unsafe {
        avx2::norm_inf_sum3(a, b, c)
    })
}

// ---------------------------------------------------------------------------
// Sparse primitives (dispatch hoisted by the caller).
// ---------------------------------------------------------------------------

/// Sparse dot `Σ vals[k]·x[idx[k]]` in the canonical reduction order.
///
/// The AVX2 path uses `vgatherqpd`, upgraded to a contiguous `vmovupd`
/// when a 4-chunk of indices is consecutive (the common case for banded
/// columns) — the load strategy does not affect the arithmetic. Callers
/// hoist [`dispatch_path`] out of their per-column loops.
#[inline]
pub fn gather_dot(path: DispatchPath, vals: &[f64], idx: &[usize], x: &[f64]) -> f64 {
    assert_eq!(vals.len(), idx.len(), "gather_dot: length mismatch");
    dispatched!(path, portable::gather_dot(vals, idx, x), unsafe {
        avx2::gather_dot(vals, idx, x)
    })
}

/// Sparse update `y[idx[k]] += vals[k]·s` for every `k`, in index order.
///
/// AVX2 has no scatter: the vector path forms the four products with one
/// `vmulpd` and applies the adds in lane order (bitwise identical to the
/// scalar loop, duplicate-safe), with a contiguous fast path when the
/// 4-chunk of indices is consecutive.
#[inline]
pub fn scatter_axpy(path: DispatchPath, y: &mut [f64], idx: &[usize], vals: &[f64], s: f64) {
    assert_eq!(vals.len(), idx.len(), "scatter_axpy: length mismatch");
    dispatched!(path, portable::scatter_axpy(y, idx, vals, s), unsafe {
        avx2::scatter_axpy(y, idx, vals, s)
    })
}

/// [`dot`] with a caller-hoisted dispatch path, for per-column hot loops
/// (fully contiguous columns degrade a gather-dot into a dense dot with
/// zero index traffic; re-resolving dispatch per column would waste it).
#[inline]
pub fn dot_with(path: DispatchPath, x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    dispatched!(path, portable::dot(x, y), unsafe { avx2::dot(x, y) })
}

/// [`axpy_into`] with a caller-hoisted dispatch path (see [`dot_with`]).
#[inline]
pub fn axpy_into_with(path: DispatchPath, y: &mut [f64], a: f64, x: &[f64]) {
    assert_eq!(y.len(), x.len(), "axpy_into: length mismatch");
    dispatched!(path, portable::axpy_into(y, a, x), unsafe {
        avx2::axpy_into(y, a, x)
    })
}

// ---------------------------------------------------------------------------
// Elementwise kernels. Per-element formulas are evaluated in the same
// operation order on both paths, so bitwise parity is automatic; the
// wrappers assert the length preconditions the AVX2 bodies rely on.
// ---------------------------------------------------------------------------

macro_rules! assert_same_len {
    ($name:literal, $n:expr $(, $s:expr)+) => {
        assert!($( $s.len() == $n )&&+, concat!($name, ": length mismatch"));
    };
}

/// `y[i] += a·x[i]`.
#[inline]
pub fn axpy_into(y: &mut [f64], a: f64, x: &[f64]) {
    assert_same_len!("axpy_into", y.len(), x);
    dispatched!(dispatch_path(), portable::axpy_into(y, a, x), unsafe {
        avx2::axpy_into(y, a, x)
    })
}

/// `v0[i] = s0·v0[i] + s1·v1[i]`.
#[inline]
pub fn axpby_into(s0: f64, v0: &mut [f64], s1: f64, v1: &[f64]) {
    assert_same_len!("axpby_into", v0.len(), v1);
    dispatched!(
        dispatch_path(),
        portable::axpby_into(s0, v0, s1, v1),
        unsafe { avx2::axpby_into(s0, v0, s1, v1) }
    )
}

/// `out[i] = a[i]·b[i]`.
#[inline]
pub fn ew_prod_into(out: &mut [f64], a: &[f64], b: &[f64]) {
    assert_same_len!("ew_prod_into", out.len(), a, b);
    dispatched!(dispatch_path(), portable::ew_prod_into(out, a, b), unsafe {
        avx2::ew_prod_into(out, a, b)
    })
}

/// `out[i] = (a[i]·b[i])·s`.
#[inline]
pub fn prod_scale_into(out: &mut [f64], a: &[f64], b: &[f64], s: f64) {
    assert_same_len!("prod_scale_into", out.len(), a, b);
    dispatched!(
        dispatch_path(),
        portable::prod_scale_into(out, a, b, s),
        unsafe { avx2::prod_scale_into(out, a, b, s) }
    )
}

/// `x[i] *= w[i]`.
#[inline]
pub fn mul_assign(x: &mut [f64], w: &[f64]) {
    assert_same_len!("mul_assign", x.len(), w);
    dispatched!(dispatch_path(), portable::mul_assign(x, w), unsafe {
        avx2::mul_assign(x, w)
    })
}

/// `y[i] += x[i]`.
#[inline]
pub fn add_assign(y: &mut [f64], x: &[f64]) {
    assert_same_len!("add_assign", y.len(), x);
    dispatched!(dispatch_path(), portable::add_assign(y, x), unsafe {
        avx2::add_assign(y, x)
    })
}

/// `out[i] = a[i] - b[i]`.
#[inline]
pub fn sub_into(out: &mut [f64], a: &[f64], b: &[f64]) {
    assert_same_len!("sub_into", out.len(), a, b);
    dispatched!(dispatch_path(), portable::sub_into(out, a, b), unsafe {
        avx2::sub_into(out, a, b)
    })
}

/// `out[i] = -a[i]` (sign-bit flip, exact).
#[inline]
pub fn neg_into(out: &mut [f64], a: &[f64]) {
    assert_same_len!("neg_into", out.len(), a);
    dispatched!(dispatch_path(), portable::neg_into(out, a), unsafe {
        avx2::neg_into(out, a)
    })
}

/// `out[i] = x[i] / t` (true IEEE division — not a reciprocal multiply).
#[inline]
pub fn div_scale_into(out: &mut [f64], x: &[f64], t: f64) {
    assert_same_len!("div_scale_into", out.len(), x);
    dispatched!(
        dispatch_path(),
        portable::div_scale_into(out, x, t),
        unsafe { avx2::div_scale_into(out, x, t) }
    )
}

/// `out[i] = s·x[i] - y[i]`.
#[inline]
pub fn sax_sub_into(out: &mut [f64], s: f64, x: &[f64], y: &[f64]) {
    assert_same_len!("sax_sub_into", out.len(), x, y);
    dispatched!(
        dispatch_path(),
        portable::sax_sub_into(out, s, x, y),
        unsafe { avx2::sax_sub_into(out, s, x, y) }
    )
}

/// `out[i] = a[i] - w[i]·b[i]`.
#[inline]
pub fn sub_prod_into(out: &mut [f64], a: &[f64], w: &[f64], b: &[f64]) {
    assert_same_len!("sub_prod_into", out.len(), a, w, b);
    dispatched!(
        dispatch_path(),
        portable::sub_prod_into(out, a, w, b),
        unsafe { avx2::sub_prod_into(out, a, w, b) }
    )
}

/// `out[i] = a[i] + w[i]·(b[i] - c[i])`.
#[inline]
pub fn add_prod_diff_into(out: &mut [f64], a: &[f64], w: &[f64], b: &[f64], c: &[f64]) {
    assert_same_len!("add_prod_diff_into", out.len(), a, w, b, c);
    dispatched!(
        dispatch_path(),
        portable::add_prod_diff_into(out, a, w, b, c),
        unsafe { avx2::add_prod_diff_into(out, a, w, b, c) }
    )
}

/// `out[i] = w[i]·(b[i] - c[i])`.
#[inline]
pub fn prod_diff_into(out: &mut [f64], w: &[f64], b: &[f64], c: &[f64]) {
    assert_same_len!("prod_diff_into", out.len(), w, b, c);
    dispatched!(
        dispatch_path(),
        portable::prod_diff_into(out, w, b, c),
        unsafe { avx2::prod_diff_into(out, w, b, c) }
    )
}

/// Over-relaxation + delta capture (ADMM x-update):
/// `x_new = α·xt[i] + (1-α)·x[i]`, `delta[i] = x_new - x[i]`,
/// `x[i] = x_new`.
#[inline]
pub fn relax_delta_into(x: &mut [f64], delta: &mut [f64], alpha: f64, xt: &[f64]) {
    assert_same_len!("relax_delta_into", x.len(), delta, xt);
    dispatched!(
        dispatch_path(),
        portable::relax_delta_into(x, delta, alpha, xt),
        unsafe { avx2::relax_delta_into(x, delta, alpha, xt) }
    )
}

/// Over-relaxation + box projection (ADMM z-update):
/// `zr = α·zt[i] + (1-α)·z[i]`, `z_rel[i] = zr`,
/// `z[i] = clamp(zr + w[i]·y[i], l[i], u[i])` with canonical min/max.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn relax_project_into(
    z: &mut [f64],
    z_rel: &mut [f64],
    alpha: f64,
    zt: &[f64],
    w: &[f64],
    y: &[f64],
    l: &[f64],
    u: &[f64],
) {
    assert_same_len!("relax_project_into", z.len(), z_rel, zt, w, y, l, u);
    dispatched!(
        dispatch_path(),
        portable::relax_project_into(z, z_rel, alpha, zt, w, y, l, u),
        unsafe { avx2::relax_project_into(z, z_rel, alpha, zt, w, y, l, u) }
    )
}

/// Scaled-difference update + delta capture (ADMM y-update):
/// `y_new = y[i] + w[i]·(b[i] - c[i])`, `delta[i] = y_new - y[i]`,
/// `y[i] = y_new`.
#[inline]
pub fn scaled_diff_update_into(y: &mut [f64], delta: &mut [f64], w: &[f64], b: &[f64], c: &[f64]) {
    assert_same_len!("scaled_diff_update_into", y.len(), delta, w, b, c);
    dispatched!(
        dispatch_path(),
        portable::scaled_diff_update_into(y, delta, w, b, c),
        unsafe { avx2::scaled_diff_update_into(y, delta, w, b, c) }
    )
}

/// In-place box projection `x[i] = clamp(x[i], l[i], u[i])` with
/// canonical min/max (`cmin(cmax(x, l), u)`).
#[inline]
pub fn project_box_into(x: &mut [f64], l: &[f64], u: &[f64]) {
    assert_same_len!("project_box_into", x.len(), l, u);
    dispatched!(
        dispatch_path(),
        portable::project_box_into(x, l, u),
        unsafe { avx2::project_box_into(x, l, u) }
    )
}

/// Out-of-place box projection `out[i] = clamp(v[i], l[i], u[i])`.
#[inline]
pub fn clamp_into(out: &mut [f64], v: &[f64], l: &[f64], u: &[f64]) {
    assert_same_len!("clamp_into", out.len(), v, l, u);
    dispatched!(
        dispatch_path(),
        portable::clamp_into(out, v, l, u),
        unsafe { avx2::clamp_into(out, v, l, u) }
    )
}

/// PDQP gradient step + extrapolation:
/// `x_new = x[i] - τ·((g1[i] + g2[i]) + g3[i])`, `xt[i] = x_new`,
/// `ext[i] = 2·x_new - x[i]`.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn grad_step_into(
    xt: &mut [f64],
    ext: &mut [f64],
    x: &[f64],
    tau: f64,
    g1: &[f64],
    g2: &[f64],
    g3: &[f64],
) {
    assert_same_len!("grad_step_into", xt.len(), ext, x, g1, g2, g3);
    dispatched!(
        dispatch_path(),
        portable::grad_step_into(xt, ext, x, tau, g1, g2, g3),
        unsafe { avx2::grad_step_into(xt, ext, x, tau, g1, g2, g3) }
    )
}

/// PDQP dual Moreau step:
/// `w = y[i] + σ·ax[i]`, `t = clamp(w/σ, l[i], u[i])`, `zt[i] = t`,
/// `y[i] = w - σ·t`.
#[inline]
pub fn moreau_into(y: &mut [f64], zt: &mut [f64], sigma: f64, ax: &[f64], l: &[f64], u: &[f64]) {
    assert_same_len!("moreau_into", y.len(), zt, ax, l, u);
    dispatched!(
        dispatch_path(),
        portable::moreau_into(y, zt, sigma, ax, l, u),
        unsafe { avx2::moreau_into(y, zt, sigma, ax, l, u) }
    )
}

/// PCG direction update `p[i] = -d[i] + μ·p[i]`.
#[inline]
pub fn update_dir_into(p: &mut [f64], d: &[f64], mu: f64) {
    assert_same_len!("update_dir_into", p.len(), d);
    dispatched!(
        dispatch_path(),
        portable::update_dir_into(p, d, mu),
        unsafe { avx2::update_dir_into(p, d, mu) }
    )
}

// ---------------------------------------------------------------------------
// Portable (chunked-scalar) implementations.
// ---------------------------------------------------------------------------

mod portable {
    use super::{cmax, cmin, LANES};

    pub(super) fn dot(x: &[f64], y: &[f64]) -> f64 {
        let n = x.len();
        let c4 = n - n % LANES;
        let mut acc = [0.0f64; LANES];
        for base in (0..c4).step_by(LANES) {
            for l in 0..LANES {
                acc[l] += x[base + l] * y[base + l];
            }
        }
        let mut s = (acc[0] + acc[2]) + (acc[1] + acc[3]);
        for i in c4..n {
            s += x[i] * y[i];
        }
        s
    }

    pub(super) fn norm_inf(x: &[f64]) -> f64 {
        let n = x.len();
        let c4 = n - n % LANES;
        let mut acc = [0.0f64; LANES];
        for base in (0..c4).step_by(LANES) {
            for l in 0..LANES {
                acc[l] = cmax(acc[l], x[base + l].abs());
            }
        }
        let mut m = cmax(cmax(acc[0], acc[2]), cmax(acc[1], acc[3]));
        for &v in &x[c4..] {
            m = cmax(m, v.abs());
        }
        m
    }

    pub(super) fn norm_inf_diff(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len();
        let c4 = n - n % LANES;
        let mut acc = [0.0f64; LANES];
        for base in (0..c4).step_by(LANES) {
            for l in 0..LANES {
                acc[l] = cmax(acc[l], (a[base + l] - b[base + l]).abs());
            }
        }
        let mut m = cmax(cmax(acc[0], acc[2]), cmax(acc[1], acc[3]));
        for i in c4..n {
            m = cmax(m, (a[i] - b[i]).abs());
        }
        m
    }

    pub(super) fn norm_inf_sum3(a: &[f64], b: &[f64], c: &[f64]) -> f64 {
        let n = a.len();
        let c4 = n - n % LANES;
        let mut acc = [0.0f64; LANES];
        for base in (0..c4).step_by(LANES) {
            for (l, a_l) in acc.iter_mut().enumerate() {
                let i = base + l;
                *a_l = cmax(*a_l, ((a[i] + b[i]) + c[i]).abs());
            }
        }
        let mut m = cmax(cmax(acc[0], acc[2]), cmax(acc[1], acc[3]));
        for i in c4..n {
            m = cmax(m, ((a[i] + b[i]) + c[i]).abs());
        }
        m
    }

    pub(super) fn gather_dot(vals: &[f64], idx: &[usize], x: &[f64]) -> f64 {
        let n = vals.len();
        let c4 = n - n % LANES;
        let mut acc = [0.0f64; LANES];
        for base in (0..c4).step_by(LANES) {
            for l in 0..LANES {
                acc[l] += vals[base + l] * x[idx[base + l]];
            }
        }
        let mut s = (acc[0] + acc[2]) + (acc[1] + acc[3]);
        for k in c4..n {
            s += vals[k] * x[idx[k]];
        }
        s
    }

    pub(super) fn scatter_axpy(y: &mut [f64], idx: &[usize], vals: &[f64], s: f64) {
        for (&v, &i) in vals.iter().zip(idx) {
            y[i] += v * s;
        }
    }

    pub(super) fn axpy_into(y: &mut [f64], a: f64, x: &[f64]) {
        for (yi, &xi) in y.iter_mut().zip(x) {
            *yi += a * xi;
        }
    }

    pub(super) fn axpby_into(s0: f64, v0: &mut [f64], s1: f64, v1: &[f64]) {
        for (a, &b) in v0.iter_mut().zip(v1) {
            *a = s0 * *a + s1 * b;
        }
    }

    pub(super) fn ew_prod_into(out: &mut [f64], a: &[f64], b: &[f64]) {
        for i in 0..out.len() {
            out[i] = a[i] * b[i];
        }
    }

    pub(super) fn prod_scale_into(out: &mut [f64], a: &[f64], b: &[f64], s: f64) {
        for i in 0..out.len() {
            out[i] = (a[i] * b[i]) * s;
        }
    }

    pub(super) fn mul_assign(x: &mut [f64], w: &[f64]) {
        for (a, &b) in x.iter_mut().zip(w) {
            *a *= b;
        }
    }

    pub(super) fn add_assign(y: &mut [f64], x: &[f64]) {
        for (a, &b) in y.iter_mut().zip(x) {
            *a += b;
        }
    }

    pub(super) fn sub_into(out: &mut [f64], a: &[f64], b: &[f64]) {
        for i in 0..out.len() {
            out[i] = a[i] - b[i];
        }
    }

    pub(super) fn neg_into(out: &mut [f64], a: &[f64]) {
        for i in 0..out.len() {
            out[i] = -a[i];
        }
    }

    pub(super) fn div_scale_into(out: &mut [f64], x: &[f64], t: f64) {
        for i in 0..out.len() {
            out[i] = x[i] / t;
        }
    }

    pub(super) fn sax_sub_into(out: &mut [f64], s: f64, x: &[f64], y: &[f64]) {
        for i in 0..out.len() {
            out[i] = s * x[i] - y[i];
        }
    }

    pub(super) fn sub_prod_into(out: &mut [f64], a: &[f64], w: &[f64], b: &[f64]) {
        for i in 0..out.len() {
            out[i] = a[i] - w[i] * b[i];
        }
    }

    pub(super) fn add_prod_diff_into(out: &mut [f64], a: &[f64], w: &[f64], b: &[f64], c: &[f64]) {
        for i in 0..out.len() {
            out[i] = a[i] + w[i] * (b[i] - c[i]);
        }
    }

    pub(super) fn prod_diff_into(out: &mut [f64], w: &[f64], b: &[f64], c: &[f64]) {
        for i in 0..out.len() {
            out[i] = w[i] * (b[i] - c[i]);
        }
    }

    pub(super) fn relax_delta_into(x: &mut [f64], delta: &mut [f64], alpha: f64, xt: &[f64]) {
        let beta = 1.0 - alpha;
        for i in 0..x.len() {
            let x_new = alpha * xt[i] + beta * x[i];
            delta[i] = x_new - x[i];
            x[i] = x_new;
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn relax_project_into(
        z: &mut [f64],
        z_rel: &mut [f64],
        alpha: f64,
        zt: &[f64],
        w: &[f64],
        y: &[f64],
        l: &[f64],
        u: &[f64],
    ) {
        let beta = 1.0 - alpha;
        for i in 0..z.len() {
            let zr = alpha * zt[i] + beta * z[i];
            z_rel[i] = zr;
            let v = zr + w[i] * y[i];
            z[i] = cmin(cmax(v, l[i]), u[i]);
        }
    }

    pub(super) fn scaled_diff_update_into(
        y: &mut [f64],
        delta: &mut [f64],
        w: &[f64],
        b: &[f64],
        c: &[f64],
    ) {
        for i in 0..y.len() {
            let y_new = y[i] + w[i] * (b[i] - c[i]);
            delta[i] = y_new - y[i];
            y[i] = y_new;
        }
    }

    pub(super) fn project_box_into(x: &mut [f64], l: &[f64], u: &[f64]) {
        for i in 0..x.len() {
            x[i] = cmin(cmax(x[i], l[i]), u[i]);
        }
    }

    pub(super) fn clamp_into(out: &mut [f64], v: &[f64], l: &[f64], u: &[f64]) {
        for i in 0..out.len() {
            out[i] = cmin(cmax(v[i], l[i]), u[i]);
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn grad_step_into(
        xt: &mut [f64],
        ext: &mut [f64],
        x: &[f64],
        tau: f64,
        g1: &[f64],
        g2: &[f64],
        g3: &[f64],
    ) {
        for i in 0..xt.len() {
            let x_new = x[i] - tau * ((g1[i] + g2[i]) + g3[i]);
            xt[i] = x_new;
            ext[i] = 2.0 * x_new - x[i];
        }
    }

    pub(super) fn moreau_into(
        y: &mut [f64],
        zt: &mut [f64],
        sigma: f64,
        ax: &[f64],
        l: &[f64],
        u: &[f64],
    ) {
        for i in 0..y.len() {
            let w = y[i] + sigma * ax[i];
            let t = cmin(cmax(w / sigma, l[i]), u[i]);
            zt[i] = t;
            y[i] = w - sigma * t;
        }
    }

    pub(super) fn update_dir_into(p: &mut [f64], d: &[f64], mu: f64) {
        for i in 0..p.len() {
            p[i] = -d[i] + mu * p[i];
        }
    }
}

// ---------------------------------------------------------------------------
// AVX2 implementations. Every body is `unsafe fn` + `#[target_feature]`;
// callers guarantee AVX2 is present (runtime detection) and that all
// slice lengths match (asserted in the public wrappers). No FMA — all
// multiplies and adds are separate, exactly rounded ops, matching the
// portable path bit for bit.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::LANES;
    use core::arch::x86_64::*;

    /// Canonical horizontal sum: `(v0 + v2) + (v1 + v3)`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn hsum(v: __m256d) -> f64 {
        let lo = _mm256_castpd256_pd128(v);
        let hi = _mm256_extractf128_pd::<1>(v);
        let t = _mm_add_pd(lo, hi); // [v0+v2, v1+v3]
        _mm_cvtsd_f64(_mm_add_sd(t, _mm_unpackhi_pd(t, t)))
    }

    /// Canonical horizontal max: `cmax(cmax(v0, v2), cmax(v1, v3))`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn hmax(v: __m256d) -> f64 {
        let lo = _mm256_castpd256_pd128(v);
        let hi = _mm256_extractf128_pd::<1>(v);
        let t = _mm_max_pd(lo, hi);
        _mm_cvtsd_f64(_mm_max_sd(t, _mm_unpackhi_pd(t, t)))
    }

    /// `|v|` via sign-bit clear — identical to `f64::abs` per lane.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn vabs(v: __m256d) -> __m256d {
        _mm256_andnot_pd(_mm256_set1_pd(-0.0), v)
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dot(x: &[f64], y: &[f64]) -> f64 {
        let n = x.len();
        let c4 = n - n % LANES;
        let xp = x.as_ptr();
        let yp = y.as_ptr();
        let mut acc = _mm256_setzero_pd();
        let mut i = 0;
        while i < c4 {
            let xv = _mm256_loadu_pd(xp.add(i));
            let yv = _mm256_loadu_pd(yp.add(i));
            acc = _mm256_add_pd(acc, _mm256_mul_pd(xv, yv));
            i += LANES;
        }
        let mut s = hsum(acc);
        for k in c4..n {
            s += x[k] * y[k];
        }
        s
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn norm_inf(x: &[f64]) -> f64 {
        let n = x.len();
        let c4 = n - n % LANES;
        let xp = x.as_ptr();
        let mut acc = _mm256_setzero_pd();
        let mut i = 0;
        while i < c4 {
            acc = _mm256_max_pd(acc, vabs(_mm256_loadu_pd(xp.add(i))));
            i += LANES;
        }
        let mut m = hmax(acc);
        for &v in &x[c4..] {
            m = super::cmax(m, v.abs());
        }
        m
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn norm_inf_diff(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len();
        let c4 = n - n % LANES;
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let mut acc = _mm256_setzero_pd();
        let mut i = 0;
        while i < c4 {
            let d = _mm256_sub_pd(_mm256_loadu_pd(ap.add(i)), _mm256_loadu_pd(bp.add(i)));
            acc = _mm256_max_pd(acc, vabs(d));
            i += LANES;
        }
        let mut m = hmax(acc);
        for k in c4..n {
            m = super::cmax(m, (a[k] - b[k]).abs());
        }
        m
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn norm_inf_sum3(a: &[f64], b: &[f64], c: &[f64]) -> f64 {
        let n = a.len();
        let c4 = n - n % LANES;
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let cp = c.as_ptr();
        let mut acc = _mm256_setzero_pd();
        let mut i = 0;
        while i < c4 {
            let s = _mm256_add_pd(
                _mm256_add_pd(_mm256_loadu_pd(ap.add(i)), _mm256_loadu_pd(bp.add(i))),
                _mm256_loadu_pd(cp.add(i)),
            );
            acc = _mm256_max_pd(acc, vabs(s));
            i += LANES;
        }
        let mut m = hmax(acc);
        for k in c4..n {
            m = super::cmax(m, ((a[k] + b[k]) + c[k]).abs());
        }
        m
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn gather_dot(vals: &[f64], idx: &[usize], x: &[f64]) -> f64 {
        let n = vals.len();
        let c4 = n - n % LANES;
        let vp = vals.as_ptr();
        let xp = x.as_ptr();
        let xlen = x.len();
        #[allow(clippy::cast_possible_wrap)]
        let lim = _mm256_set1_epi64x(xlen as i64);
        let mut acc = _mm256_setzero_pd();
        let mut k = 0;
        while k < c4 {
            let i0 = idx[k];
            let xv = if idx[k + 3] == i0 + 3
                && idx[k + 1] == i0 + 1
                && idx[k + 2] == i0 + 2
                && i0 + LANES <= xlen
            {
                // Consecutive indices (banded column): plain vector load;
                // the load strategy does not change the arithmetic.
                _mm256_loadu_pd(xp.add(i0))
            } else {
                let vindex = _mm256_loadu_si256(idx.as_ptr().add(k).cast());
                // All four indices must be in bounds for the gather.
                let ok = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(lim, vindex)));
                assert!(ok == 0b1111, "gather_dot: index out of bounds");
                _mm256_i64gather_pd::<8>(xp, vindex)
            };
            let vv = _mm256_loadu_pd(vp.add(k));
            acc = _mm256_add_pd(acc, _mm256_mul_pd(vv, xv));
            k += LANES;
        }
        let mut s = hsum(acc);
        for k in c4..n {
            s += vals[k] * x[idx[k]];
        }
        s
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn scatter_axpy(y: &mut [f64], idx: &[usize], vals: &[f64], s: f64) {
        let n = vals.len();
        let c4 = n - n % LANES;
        let ylen = y.len();
        let yp = y.as_mut_ptr();
        let vp = vals.as_ptr();
        let sv = _mm256_set1_pd(s);
        let mut k = 0;
        while k < c4 {
            let prod = _mm256_mul_pd(_mm256_loadu_pd(vp.add(k)), sv);
            let i0 = idx[k];
            if idx[k + 3] == i0 + 3
                && idx[k + 1] == i0 + 1
                && idx[k + 2] == i0 + 2
                && i0 + LANES <= ylen
            {
                // Consecutive (necessarily distinct) targets: vector RMW,
                // same per-lane add as the scalar loop.
                let yv = _mm256_loadu_pd(yp.add(i0));
                _mm256_storeu_pd(yp.add(i0), _mm256_add_pd(yv, prod));
            } else {
                // No AVX2 scatter: apply the four adds in lane order,
                // exactly like the scalar loop (duplicate-safe).
                let mut buf = [0.0f64; LANES];
                _mm256_storeu_pd(buf.as_mut_ptr(), prod);
                for (l, &b) in buf.iter().enumerate() {
                    y[idx[k + l]] += b;
                }
            }
            k += LANES;
        }
        for k in c4..n {
            y[idx[k]] += vals[k] * s;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn axpy_into(y: &mut [f64], a: f64, x: &[f64]) {
        let n = y.len();
        let c4 = n - n % LANES;
        let c8 = n - n % (2 * LANES);
        let yp = y.as_mut_ptr();
        let xp = x.as_ptr();
        let av = _mm256_set1_pd(a);
        let mut i = 0;
        // Two independent chunks per iteration hide the load-use latency;
        // each lane still computes exactly `y[i] + a * x[i]`, so the
        // unroll is bitwise-neutral (element-wise ops have no cross-lane
        // reduction order to preserve).
        while i < c8 {
            let y0 = _mm256_loadu_pd(yp.add(i));
            let x0 = _mm256_loadu_pd(xp.add(i));
            let y1 = _mm256_loadu_pd(yp.add(i + LANES));
            let x1 = _mm256_loadu_pd(xp.add(i + LANES));
            _mm256_storeu_pd(yp.add(i), _mm256_add_pd(y0, _mm256_mul_pd(av, x0)));
            _mm256_storeu_pd(yp.add(i + LANES), _mm256_add_pd(y1, _mm256_mul_pd(av, x1)));
            i += 2 * LANES;
        }
        while i < c4 {
            let yv = _mm256_loadu_pd(yp.add(i));
            let xv = _mm256_loadu_pd(xp.add(i));
            _mm256_storeu_pd(yp.add(i), _mm256_add_pd(yv, _mm256_mul_pd(av, xv)));
            i += LANES;
        }
        while i < n {
            y[i] += a * x[i];
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn axpby_into(s0: f64, v0: &mut [f64], s1: f64, v1: &[f64]) {
        let n = v0.len();
        let c4 = n - n % LANES;
        let ap = v0.as_mut_ptr();
        let bp = v1.as_ptr();
        let s0v = _mm256_set1_pd(s0);
        let s1v = _mm256_set1_pd(s1);
        let mut i = 0;
        while i < c4 {
            let av = _mm256_loadu_pd(ap.add(i));
            let bv = _mm256_loadu_pd(bp.add(i));
            _mm256_storeu_pd(
                ap.add(i),
                _mm256_add_pd(_mm256_mul_pd(s0v, av), _mm256_mul_pd(s1v, bv)),
            );
            i += LANES;
        }
        while i < n {
            v0[i] = s0 * v0[i] + s1 * v1[i];
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn ew_prod_into(out: &mut [f64], a: &[f64], b: &[f64]) {
        let n = out.len();
        let c4 = n - n % LANES;
        let op = out.as_mut_ptr();
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let mut i = 0;
        while i < c4 {
            _mm256_storeu_pd(
                op.add(i),
                _mm256_mul_pd(_mm256_loadu_pd(ap.add(i)), _mm256_loadu_pd(bp.add(i))),
            );
            i += LANES;
        }
        while i < n {
            out[i] = a[i] * b[i];
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn prod_scale_into(out: &mut [f64], a: &[f64], b: &[f64], s: f64) {
        let n = out.len();
        let c4 = n - n % LANES;
        let op = out.as_mut_ptr();
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let sv = _mm256_set1_pd(s);
        let mut i = 0;
        while i < c4 {
            let prod = _mm256_mul_pd(_mm256_loadu_pd(ap.add(i)), _mm256_loadu_pd(bp.add(i)));
            _mm256_storeu_pd(op.add(i), _mm256_mul_pd(prod, sv));
            i += LANES;
        }
        while i < n {
            out[i] = (a[i] * b[i]) * s;
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn mul_assign(x: &mut [f64], w: &[f64]) {
        let n = x.len();
        let c4 = n - n % LANES;
        let xp = x.as_mut_ptr();
        let wp = w.as_ptr();
        let mut i = 0;
        while i < c4 {
            _mm256_storeu_pd(
                xp.add(i),
                _mm256_mul_pd(_mm256_loadu_pd(xp.add(i)), _mm256_loadu_pd(wp.add(i))),
            );
            i += LANES;
        }
        while i < n {
            x[i] *= w[i];
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn add_assign(y: &mut [f64], x: &[f64]) {
        let n = y.len();
        let c4 = n - n % LANES;
        let yp = y.as_mut_ptr();
        let xp = x.as_ptr();
        let mut i = 0;
        while i < c4 {
            _mm256_storeu_pd(
                yp.add(i),
                _mm256_add_pd(_mm256_loadu_pd(yp.add(i)), _mm256_loadu_pd(xp.add(i))),
            );
            i += LANES;
        }
        while i < n {
            y[i] += x[i];
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn sub_into(out: &mut [f64], a: &[f64], b: &[f64]) {
        let n = out.len();
        let c4 = n - n % LANES;
        let op = out.as_mut_ptr();
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let mut i = 0;
        while i < c4 {
            _mm256_storeu_pd(
                op.add(i),
                _mm256_sub_pd(_mm256_loadu_pd(ap.add(i)), _mm256_loadu_pd(bp.add(i))),
            );
            i += LANES;
        }
        while i < n {
            out[i] = a[i] - b[i];
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn neg_into(out: &mut [f64], a: &[f64]) {
        let n = out.len();
        let c4 = n - n % LANES;
        let op = out.as_mut_ptr();
        let ap = a.as_ptr();
        let sign = _mm256_set1_pd(-0.0);
        let mut i = 0;
        while i < c4 {
            _mm256_storeu_pd(op.add(i), _mm256_xor_pd(_mm256_loadu_pd(ap.add(i)), sign));
            i += LANES;
        }
        while i < n {
            out[i] = -a[i];
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn div_scale_into(out: &mut [f64], x: &[f64], t: f64) {
        let n = out.len();
        let c4 = n - n % LANES;
        let op = out.as_mut_ptr();
        let xp = x.as_ptr();
        let tv = _mm256_set1_pd(t);
        let mut i = 0;
        while i < c4 {
            _mm256_storeu_pd(op.add(i), _mm256_div_pd(_mm256_loadu_pd(xp.add(i)), tv));
            i += LANES;
        }
        while i < n {
            out[i] = x[i] / t;
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn sax_sub_into(out: &mut [f64], s: f64, x: &[f64], y: &[f64]) {
        let n = out.len();
        let c4 = n - n % LANES;
        let op = out.as_mut_ptr();
        let xp = x.as_ptr();
        let yp = y.as_ptr();
        let sv = _mm256_set1_pd(s);
        let mut i = 0;
        while i < c4 {
            let sx = _mm256_mul_pd(sv, _mm256_loadu_pd(xp.add(i)));
            _mm256_storeu_pd(op.add(i), _mm256_sub_pd(sx, _mm256_loadu_pd(yp.add(i))));
            i += LANES;
        }
        while i < n {
            out[i] = s * x[i] - y[i];
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn sub_prod_into(out: &mut [f64], a: &[f64], w: &[f64], b: &[f64]) {
        let n = out.len();
        let c4 = n - n % LANES;
        let op = out.as_mut_ptr();
        let ap = a.as_ptr();
        let wp = w.as_ptr();
        let bp = b.as_ptr();
        let mut i = 0;
        while i < c4 {
            let wb = _mm256_mul_pd(_mm256_loadu_pd(wp.add(i)), _mm256_loadu_pd(bp.add(i)));
            _mm256_storeu_pd(op.add(i), _mm256_sub_pd(_mm256_loadu_pd(ap.add(i)), wb));
            i += LANES;
        }
        while i < n {
            out[i] = a[i] - w[i] * b[i];
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn add_prod_diff_into(
        out: &mut [f64],
        a: &[f64],
        w: &[f64],
        b: &[f64],
        c: &[f64],
    ) {
        let n = out.len();
        let c4 = n - n % LANES;
        let op = out.as_mut_ptr();
        let ap = a.as_ptr();
        let wp = w.as_ptr();
        let bp = b.as_ptr();
        let cp = c.as_ptr();
        let mut i = 0;
        while i < c4 {
            let d = _mm256_sub_pd(_mm256_loadu_pd(bp.add(i)), _mm256_loadu_pd(cp.add(i)));
            let wd = _mm256_mul_pd(_mm256_loadu_pd(wp.add(i)), d);
            _mm256_storeu_pd(op.add(i), _mm256_add_pd(_mm256_loadu_pd(ap.add(i)), wd));
            i += LANES;
        }
        while i < n {
            out[i] = a[i] + w[i] * (b[i] - c[i]);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn prod_diff_into(out: &mut [f64], w: &[f64], b: &[f64], c: &[f64]) {
        let n = out.len();
        let c4 = n - n % LANES;
        let op = out.as_mut_ptr();
        let wp = w.as_ptr();
        let bp = b.as_ptr();
        let cp = c.as_ptr();
        let mut i = 0;
        while i < c4 {
            let d = _mm256_sub_pd(_mm256_loadu_pd(bp.add(i)), _mm256_loadu_pd(cp.add(i)));
            _mm256_storeu_pd(op.add(i), _mm256_mul_pd(_mm256_loadu_pd(wp.add(i)), d));
            i += LANES;
        }
        while i < n {
            out[i] = w[i] * (b[i] - c[i]);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn relax_delta_into(
        x: &mut [f64],
        delta: &mut [f64],
        alpha: f64,
        xt: &[f64],
    ) {
        let n = x.len();
        let c4 = n - n % LANES;
        let beta = 1.0 - alpha;
        let xp = x.as_mut_ptr();
        let dp = delta.as_mut_ptr();
        let tp = xt.as_ptr();
        let av = _mm256_set1_pd(alpha);
        let bv = _mm256_set1_pd(beta);
        let mut i = 0;
        while i < c4 {
            let xv = _mm256_loadu_pd(xp.add(i));
            let tv = _mm256_loadu_pd(tp.add(i));
            let xn = _mm256_add_pd(_mm256_mul_pd(av, tv), _mm256_mul_pd(bv, xv));
            _mm256_storeu_pd(dp.add(i), _mm256_sub_pd(xn, xv));
            _mm256_storeu_pd(xp.add(i), xn);
            i += LANES;
        }
        while i < n {
            let x_new = alpha * xt[i] + beta * x[i];
            delta[i] = x_new - x[i];
            x[i] = x_new;
            i += 1;
        }
    }

    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn relax_project_into(
        z: &mut [f64],
        z_rel: &mut [f64],
        alpha: f64,
        zt: &[f64],
        w: &[f64],
        y: &[f64],
        l: &[f64],
        u: &[f64],
    ) {
        let n = z.len();
        let c4 = n - n % LANES;
        let beta = 1.0 - alpha;
        let zp = z.as_mut_ptr();
        let rp = z_rel.as_mut_ptr();
        let tp = zt.as_ptr();
        let wp = w.as_ptr();
        let yp = y.as_ptr();
        let lp = l.as_ptr();
        let up = u.as_ptr();
        let av = _mm256_set1_pd(alpha);
        let bv = _mm256_set1_pd(beta);
        let mut i = 0;
        while i < c4 {
            let zv = _mm256_loadu_pd(zp.add(i));
            let tv = _mm256_loadu_pd(tp.add(i));
            let zr = _mm256_add_pd(_mm256_mul_pd(av, tv), _mm256_mul_pd(bv, zv));
            _mm256_storeu_pd(rp.add(i), zr);
            let wy = _mm256_mul_pd(_mm256_loadu_pd(wp.add(i)), _mm256_loadu_pd(yp.add(i)));
            let v = _mm256_add_pd(zr, wy);
            let clamped = _mm256_min_pd(
                _mm256_max_pd(v, _mm256_loadu_pd(lp.add(i))),
                _mm256_loadu_pd(up.add(i)),
            );
            _mm256_storeu_pd(zp.add(i), clamped);
            i += LANES;
        }
        while i < n {
            let zr = alpha * zt[i] + beta * z[i];
            z_rel[i] = zr;
            let v = zr + w[i] * y[i];
            z[i] = super::cmin(super::cmax(v, l[i]), u[i]);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn scaled_diff_update_into(
        y: &mut [f64],
        delta: &mut [f64],
        w: &[f64],
        b: &[f64],
        c: &[f64],
    ) {
        let n = y.len();
        let c4 = n - n % LANES;
        let yp = y.as_mut_ptr();
        let dp = delta.as_mut_ptr();
        let wp = w.as_ptr();
        let bp = b.as_ptr();
        let cp = c.as_ptr();
        let mut i = 0;
        while i < c4 {
            let yv = _mm256_loadu_pd(yp.add(i));
            let d = _mm256_sub_pd(_mm256_loadu_pd(bp.add(i)), _mm256_loadu_pd(cp.add(i)));
            let yn = _mm256_add_pd(yv, _mm256_mul_pd(_mm256_loadu_pd(wp.add(i)), d));
            _mm256_storeu_pd(dp.add(i), _mm256_sub_pd(yn, yv));
            _mm256_storeu_pd(yp.add(i), yn);
            i += LANES;
        }
        while i < n {
            let y_new = y[i] + w[i] * (b[i] - c[i]);
            delta[i] = y_new - y[i];
            y[i] = y_new;
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn project_box_into(x: &mut [f64], l: &[f64], u: &[f64]) {
        let n = x.len();
        let c4 = n - n % LANES;
        let xp = x.as_mut_ptr();
        let lp = l.as_ptr();
        let up = u.as_ptr();
        let mut i = 0;
        while i < c4 {
            let v = _mm256_max_pd(_mm256_loadu_pd(xp.add(i)), _mm256_loadu_pd(lp.add(i)));
            _mm256_storeu_pd(xp.add(i), _mm256_min_pd(v, _mm256_loadu_pd(up.add(i))));
            i += LANES;
        }
        while i < n {
            x[i] = super::cmin(super::cmax(x[i], l[i]), u[i]);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn clamp_into(out: &mut [f64], v: &[f64], l: &[f64], u: &[f64]) {
        let n = out.len();
        let c4 = n - n % LANES;
        let op = out.as_mut_ptr();
        let vp = v.as_ptr();
        let lp = l.as_ptr();
        let up = u.as_ptr();
        let mut i = 0;
        while i < c4 {
            let t = _mm256_max_pd(_mm256_loadu_pd(vp.add(i)), _mm256_loadu_pd(lp.add(i)));
            _mm256_storeu_pd(op.add(i), _mm256_min_pd(t, _mm256_loadu_pd(up.add(i))));
            i += LANES;
        }
        while i < n {
            out[i] = super::cmin(super::cmax(v[i], l[i]), u[i]);
            i += 1;
        }
    }

    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn grad_step_into(
        xt: &mut [f64],
        ext: &mut [f64],
        x: &[f64],
        tau: f64,
        g1: &[f64],
        g2: &[f64],
        g3: &[f64],
    ) {
        let n = xt.len();
        let c4 = n - n % LANES;
        let tp = xt.as_mut_ptr();
        let ep = ext.as_mut_ptr();
        let xp = x.as_ptr();
        let g1p = g1.as_ptr();
        let g2p = g2.as_ptr();
        let g3p = g3.as_ptr();
        let tauv = _mm256_set1_pd(tau);
        let two = _mm256_set1_pd(2.0);
        let mut i = 0;
        while i < c4 {
            let g = _mm256_add_pd(
                _mm256_add_pd(_mm256_loadu_pd(g1p.add(i)), _mm256_loadu_pd(g2p.add(i))),
                _mm256_loadu_pd(g3p.add(i)),
            );
            let xv = _mm256_loadu_pd(xp.add(i));
            let xn = _mm256_sub_pd(xv, _mm256_mul_pd(tauv, g));
            _mm256_storeu_pd(tp.add(i), xn);
            _mm256_storeu_pd(ep.add(i), _mm256_sub_pd(_mm256_mul_pd(two, xn), xv));
            i += LANES;
        }
        while i < n {
            let x_new = x[i] - tau * ((g1[i] + g2[i]) + g3[i]);
            xt[i] = x_new;
            ext[i] = 2.0 * x_new - x[i];
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn moreau_into(
        y: &mut [f64],
        zt: &mut [f64],
        sigma: f64,
        ax: &[f64],
        l: &[f64],
        u: &[f64],
    ) {
        let n = y.len();
        let c4 = n - n % LANES;
        let yp = y.as_mut_ptr();
        let zp = zt.as_mut_ptr();
        let ap = ax.as_ptr();
        let lp = l.as_ptr();
        let up = u.as_ptr();
        let sv = _mm256_set1_pd(sigma);
        let mut i = 0;
        while i < c4 {
            let w = _mm256_add_pd(
                _mm256_loadu_pd(yp.add(i)),
                _mm256_mul_pd(sv, _mm256_loadu_pd(ap.add(i))),
            );
            let t = _mm256_min_pd(
                _mm256_max_pd(_mm256_div_pd(w, sv), _mm256_loadu_pd(lp.add(i))),
                _mm256_loadu_pd(up.add(i)),
            );
            _mm256_storeu_pd(zp.add(i), t);
            _mm256_storeu_pd(yp.add(i), _mm256_sub_pd(w, _mm256_mul_pd(sv, t)));
            i += LANES;
        }
        while i < n {
            let w = y[i] + sigma * ax[i];
            let t = super::cmin(super::cmax(w / sigma, l[i]), u[i]);
            zt[i] = t;
            y[i] = w - sigma * t;
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn update_dir_into(p: &mut [f64], d: &[f64], mu: f64) {
        let n = p.len();
        let c4 = n - n % LANES;
        let pp = p.as_mut_ptr();
        let dp = d.as_ptr();
        let sign = _mm256_set1_pd(-0.0);
        let muv = _mm256_set1_pd(mu);
        let mut i = 0;
        while i < c4 {
            let nd = _mm256_xor_pd(_mm256_loadu_pd(dp.add(i)), sign);
            let mp = _mm256_mul_pd(muv, _mm256_loadu_pd(pp.add(i)));
            _mm256_storeu_pd(pp.add(i), _mm256_add_pd(nd, mp));
            i += LANES;
        }
        while i < n {
            p[i] = -d[i] + mu * p[i];
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize, seed: u64) -> Vec<f64> {
        // Deterministic xorshift64* stream mapped into [-1, 1].
        let mut s = seed.wrapping_mul(2685821657736338717).max(1);
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                #[allow(clippy::cast_precision_loss)]
                let u = (s >> 11) as f64 / (1u64 << 53) as f64;
                2.0 * u - 1.0
            })
            .collect()
    }

    #[test]
    fn short_vectors_match_sequential_sums() {
        // For n < LANES the canonical order degenerates to the plain
        // sequential sum (lane accumulators stay zero).
        let x = [1.0, 2.0, 3.0];
        let y = [4.0, 5.0, 6.0];
        assert_eq!(dot(&x, &y), 1.0 * 4.0 + 2.0 * 5.0 + 3.0 * 6.0);
        assert_eq!(norm_inf(&[-3.0, 2.0]), 3.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn canonical_order_is_lane_chunked() {
        let x = data(11, 7);
        let y = data(11, 9);
        let mut acc = [0.0f64; LANES];
        for base in (0..8).step_by(LANES) {
            for l in 0..LANES {
                acc[l] += x[base + l] * y[base + l];
            }
        }
        let mut want = (acc[0] + acc[2]) + (acc[1] + acc[3]);
        for i in 8..11 {
            want += x[i] * y[i];
        }
        assert_eq!(dot(&x, &y).to_bits(), want.to_bits());
    }

    #[test]
    fn force_dispatch_roundtrip_and_paths_agree() {
        let x = data(1003, 3);
        let y = data(1003, 5);
        let idx: Vec<usize> = (0..x.len()).step_by(1).collect();
        assert!(force_dispatch(Some(DispatchPath::Portable)));
        assert_eq!(dispatch_path(), DispatchPath::Portable);
        let d_p = dot(&x, &y);
        let g_p = gather_dot(DispatchPath::Portable, &x, &idx, &y);
        let mut s_p = vec![0.0; x.len()];
        scatter_axpy(DispatchPath::Portable, &mut s_p, &idx, &x, 1.5);
        if force_dispatch(Some(DispatchPath::Avx2)) {
            assert_eq!(dispatch_path(), DispatchPath::Avx2);
            let d_a = dot(&x, &y);
            let g_a = gather_dot(DispatchPath::Avx2, &x, &idx, &y);
            let mut s_a = vec![0.0; x.len()];
            scatter_axpy(DispatchPath::Avx2, &mut s_a, &idx, &x, 1.5);
            assert_eq!(d_p.to_bits(), d_a.to_bits());
            assert_eq!(g_p.to_bits(), g_a.to_bits());
            for (p, a) in s_p.iter().zip(&s_a) {
                assert_eq!(p.to_bits(), a.to_bits());
            }
        }
        assert!(force_dispatch(None));
    }

    #[test]
    fn gather_respects_non_contiguous_indices() {
        let x = data(64, 11);
        let vals = data(8, 13);
        let idx = [0usize, 9, 18, 27, 36, 45, 54, 63];
        let want: f64 = {
            let mut acc = [0.0f64; LANES];
            for base in (0..8).step_by(LANES) {
                for l in 0..LANES {
                    acc[l] += vals[base + l] * x[idx[base + l]];
                }
            }
            (acc[0] + acc[2]) + (acc[1] + acc[3])
        };
        for path in [DispatchPath::Portable, DispatchPath::Avx2] {
            if path == DispatchPath::Avx2 && !force_dispatch(Some(DispatchPath::Avx2)) {
                continue;
            }
            force_dispatch(None);
            assert_eq!(gather_dot(path, &vals, &idx, &x).to_bits(), want.to_bits());
        }
    }

    #[test]
    fn cmax_cmin_match_vector_semantics() {
        // Second operand wins on ties and NaN — the vmaxpd/vminpd rule.
        assert_eq!(cmax(0.0, -0.0).to_bits(), (-0.0f64).to_bits());
        assert_eq!(cmin(-0.0, 0.0).to_bits(), (0.0f64).to_bits());
        assert!(cmax(1.0, f64::NAN).is_nan());
        assert_eq!(cmax(f64::NAN, 1.0), 1.0);
    }
}
