//! Reusable scratch-buffer pool for allocation-free sparse kernels.
//!
//! The `_into` kernels on [`CscMatrix`](crate::CscMatrix) and the
//! triangular solves in [`ldl`](crate::ldl) all borrow caller-provided
//! buffers. [`SparseWorkspace`] is the companion allocator: it hands out
//! zeroed `Vec<f64>` scratch buffers and takes them back for reuse, so a
//! hot loop that needs temporaries of varying sizes allocates only on its
//! first pass. Buffers are matched by capacity, so one pool serves mixed
//! `n`/`m`/`n+m` sized requests.

/// A pool of reusable `f64` scratch buffers.
///
/// `take(len)` returns a zeroed buffer of exactly `len` elements, reusing
/// the pooled buffer with the smallest sufficient capacity; `put` returns
/// a buffer to the pool. After the pool has warmed up (each concurrent
/// size seen once), `take`/`put` cycles perform no heap allocation.
///
/// # Example
///
/// ```
/// use mib_sparse::SparseWorkspace;
///
/// let mut ws = SparseWorkspace::new();
/// let buf = ws.take(8); // allocates (cold)
/// ws.put(buf);
/// let buf = ws.take(4); // reuses the 8-capacity buffer
/// assert_eq!(buf.len(), 4);
/// assert!(buf.iter().all(|&v| v == 0.0));
/// ws.put(buf);
/// assert_eq!(ws.pooled(), 1);
/// ```
#[derive(Debug, Default)]
pub struct SparseWorkspace {
    pool: Vec<Vec<f64>>,
}

impl SparseWorkspace {
    /// An empty pool.
    pub fn new() -> Self {
        SparseWorkspace { pool: Vec::new() }
    }

    /// A pool pre-warmed with one buffer per requested length, so the
    /// first `take` of each listed size is already allocation-free.
    pub fn with_buffers(lens: &[usize]) -> Self {
        SparseWorkspace {
            pool: lens.iter().map(|&l| vec![0.0; l]).collect(),
        }
    }

    /// Checks out a zeroed buffer of length `len`.
    ///
    /// Reuses the pooled buffer with the smallest capacity `>= len` if one
    /// exists; otherwise allocates.
    pub fn take(&mut self, len: usize) -> Vec<f64> {
        let best = self
            .pool
            .iter()
            .enumerate()
            .filter(|(_, b)| b.capacity() >= len)
            .min_by_key(|(_, b)| b.capacity())
            .map(|(i, _)| i);
        match best {
            Some(i) => {
                let mut buf = self.pool.swap_remove(i);
                buf.clear();
                buf.resize(len, 0.0);
                buf
            }
            None => vec![0.0; len],
        }
    }

    /// Returns a buffer to the pool for later reuse.
    pub fn put(&mut self, buf: Vec<f64>) {
        self.pool.push(buf);
    }

    /// Number of buffers currently pooled (checked in, not lent out).
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// Total `f64` capacity held by the pool.
    pub fn capacity(&self) -> usize {
        self.pool.iter().map(|b| b.capacity()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_zeroed_exact_length() {
        let mut ws = SparseWorkspace::new();
        let mut b = ws.take(5);
        b.fill(7.0);
        ws.put(b);
        let b = ws.take(3);
        assert_eq!(b.len(), 3);
        assert!(b.iter().all(|&v| v == 0.0), "reused buffer must be zeroed");
    }

    #[test]
    fn reuses_smallest_sufficient_buffer() {
        let mut ws = SparseWorkspace::with_buffers(&[16, 4, 64]);
        let b = ws.take(4);
        assert_eq!(b.capacity(), 4, "must pick the tightest fit");
        ws.put(b);
        let b = ws.take(10);
        assert_eq!(b.capacity(), 16);
        ws.put(b);
    }

    #[test]
    fn warm_pool_does_not_grow() {
        let mut ws = SparseWorkspace::new();
        for _ in 0..10 {
            let a = ws.take(8);
            let b = ws.take(12);
            ws.put(a);
            ws.put(b);
        }
        assert_eq!(ws.pooled(), 2);
        assert!(ws.capacity() <= 8 + 12 + 8, "pool must not accumulate");
    }

    #[test]
    fn pool_serves_spmv_scratch() {
        use crate::CscMatrix;
        let m = CscMatrix::from_dense(2, 3, &[1.0, 0.0, 2.0, 0.0, 3.0, 0.0]);
        let mut ws = SparseWorkspace::new();
        let mut y = ws.take(m.nrows());
        m.spmv_into(&[1.0, 1.0, 1.0], &mut y);
        assert_eq!(y, vec![3.0, 3.0]);
        ws.put(y);
    }
}
