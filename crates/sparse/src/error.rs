use std::error::Error;
use std::fmt;

/// Errors produced when constructing or manipulating sparse matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SparseError {
    /// A row or column index lies outside the matrix dimensions.
    IndexOutOfBounds {
        /// Offending row index.
        row: usize,
        /// Offending column index.
        col: usize,
        /// Number of rows of the matrix.
        nrows: usize,
        /// Number of columns of the matrix.
        ncols: usize,
    },
    /// The compressed-storage arrays are structurally inconsistent
    /// (e.g. non-monotone column pointers, mismatched lengths).
    InvalidStructure(String),
    /// Two matrices have incompatible shapes for the requested operation.
    DimensionMismatch {
        /// Human-readable description of the operation.
        op: &'static str,
        /// Shape of the left operand.
        lhs: (usize, usize),
        /// Shape of the right operand.
        rhs: (usize, usize),
    },
    /// A numerically zero (or negative where positivity is required) pivot
    /// was encountered during factorization at the given elimination step.
    ZeroPivot(usize),
    /// The operation requires a square matrix.
    NotSquare {
        /// Number of rows.
        nrows: usize,
        /// Number of columns.
        ncols: usize,
    },
    /// A permutation vector was not a bijection on `0..n`.
    InvalidPermutation(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds {
                row,
                col,
                nrows,
                ncols,
            } => write!(
                f,
                "index ({row}, {col}) out of bounds for {nrows}x{ncols} matrix"
            ),
            SparseError::InvalidStructure(msg) => {
                write!(f, "invalid sparse structure: {msg}")
            }
            SparseError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: {}x{} vs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            SparseError::ZeroPivot(k) => {
                write!(f, "zero pivot encountered at elimination step {k}")
            }
            SparseError::NotSquare { nrows, ncols } => {
                write!(f, "operation requires a square matrix, got {nrows}x{ncols}")
            }
            SparseError::InvalidPermutation(msg) => {
                write!(f, "invalid permutation: {msg}")
            }
        }
    }
}

impl Error for SparseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = SparseError::IndexOutOfBounds {
            row: 3,
            col: 4,
            nrows: 2,
            ncols: 2,
        };
        assert_eq!(e.to_string(), "index (3, 4) out of bounds for 2x2 matrix");
        let e = SparseError::ZeroPivot(7);
        assert!(e.to_string().contains("step 7"));
        let e = SparseError::DimensionMismatch {
            op: "spmv",
            lhs: (2, 3),
            rhs: (4, 1),
        };
        assert!(e.to_string().contains("spmv"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SparseError>();
    }
}
