//! Elimination trees for sparse symmetric factorization.
//!
//! The elimination tree (Liu [24] in the paper) is the spanning tree of the
//! factorization data-dependency graph: column `j` of `L` depends on column
//! `i < j` iff `i` is a descendant of `j`. The MIB compiler uses it twice:
//!
//! * the direct KKT solver runs symbolic analysis with it
//!   ([`crate::ldl::LdlSymbolic`]), and
//! * the network-instruction scheduler orders factorization instructions by
//!   tree level so that independent columns can be issued together
//!   (Section IV.C of the paper).
//!
//! All functions operate on the **upper triangle** pattern of a symmetric
//! matrix, the storage convention of the whole stack.

use crate::{CscMatrix, Result, SparseError};

/// Sentinel parent value for roots of the elimination forest.
pub const NO_PARENT: usize = usize::MAX;

/// Result of elimination-tree analysis of a symmetric matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EliminationTree {
    parent: Vec<usize>,
    col_counts: Vec<usize>,
}

impl EliminationTree {
    /// Computes the elimination tree and per-column nonzero counts of the
    /// LDLᵀ factor of a symmetric matrix given by its upper triangle.
    ///
    /// This is the QDLDL `etree` algorithm: a single pass over the columns,
    /// walking up partially-built tree paths with a work-marker array.
    /// `col_counts[i]` is the number of strictly-below-diagonal nonzeros in
    /// column `i` of `L`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotSquare`] for rectangular input and
    /// [`SparseError::InvalidStructure`] if entries below the diagonal are
    /// present.
    pub fn from_upper(a: &CscMatrix) -> Result<Self> {
        if a.nrows() != a.ncols() {
            return Err(SparseError::NotSquare {
                nrows: a.nrows(),
                ncols: a.ncols(),
            });
        }
        let n = a.ncols();
        let mut parent = vec![NO_PARENT; n];
        let mut col_counts = vec![0usize; n];
        // work[i] == j means node i has already been visited while
        // processing column j.
        let mut work = vec![NO_PARENT; n];
        for j in 0..n {
            work[j] = j;
            for (i, _) in a.col(j) {
                if i > j {
                    return Err(SparseError::InvalidStructure(format!(
                        "entry ({i}, {j}) below the diagonal; upper triangle expected"
                    )));
                }
                let mut i = i;
                while i != j && work[i] != j {
                    if parent[i] == NO_PARENT {
                        parent[i] = j;
                    }
                    // L has a nonzero at (j, i): row j, column i.
                    col_counts[i] += 1;
                    work[i] = j;
                    i = parent[i];
                }
            }
        }
        Ok(EliminationTree { parent, col_counts })
    }

    /// Number of nodes (matrix dimension).
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` for the empty tree.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Parent array; `parent()[i] == NO_PARENT` marks a root.
    pub fn parent(&self) -> &[usize] {
        &self.parent
    }

    /// Strictly-below-diagonal nonzero count of each column of `L`.
    pub fn col_counts(&self) -> &[usize] {
        &self.col_counts
    }

    /// Total number of below-diagonal nonzeros in `L`.
    pub fn l_nnz(&self) -> usize {
        self.col_counts.iter().sum()
    }

    /// Depth of each node: roots have level 0, children `parent level + 1`.
    ///
    /// Columns on the same level have no ancestor relation **along tree
    /// paths from distinct subtrees** and are candidates for simultaneous
    /// issue in the factorization schedule.
    pub fn levels(&self) -> Vec<usize> {
        let n = self.len();
        let mut level = vec![usize::MAX; n];
        for mut i in 0..n {
            // Walk up until a node with a known level (or a root).
            let mut path = Vec::new();
            while level[i] == usize::MAX {
                path.push(i);
                if self.parent[i] == NO_PARENT {
                    level[i] = 0;
                    break;
                }
                i = self.parent[i];
            }
            let mut l = level[i];
            for &p in path.iter().rev() {
                if p != i {
                    l += 1;
                    level[p] = l;
                }
            }
        }
        level
    }

    /// Height of each node: leaves have height 0, internal nodes
    /// `1 + max(child heights)`. A node's height is the length of the
    /// longest dependency chain below it — the factorization scheduler
    /// issues lower heights first.
    pub fn heights(&self) -> Vec<usize> {
        let n = self.len();
        let mut height = vec![0usize; n];
        // parent[i] > i always holds for elimination trees, so ascending
        // order visits children before parents.
        for i in 0..n {
            if self.parent[i] != NO_PARENT {
                let p = self.parent[i];
                height[p] = height[p].max(height[i] + 1);
            }
        }
        height
    }

    /// A postordering of the forest: children appear before parents and each
    /// subtree is contiguous. Returns `order` with `order[k]` = the node
    /// visited at position `k`.
    pub fn postorder(&self) -> Vec<usize> {
        let n = self.len();
        // Build child lists (reversed so iteration pops in ascending order).
        let mut head = vec![NO_PARENT; n];
        let mut next = vec![NO_PARENT; n];
        for i in (0..n).rev() {
            let p = self.parent[i];
            if p != NO_PARENT {
                next[i] = head[p];
                head[p] = i;
            }
        }
        let mut order = Vec::with_capacity(n);
        let mut stack = Vec::new();
        for root in 0..n {
            if self.parent[root] != NO_PARENT {
                continue;
            }
            stack.push((root, false));
            while let Some((node, expanded)) = stack.pop() {
                if expanded {
                    order.push(node);
                } else {
                    stack.push((node, true));
                    let mut c = head[node];
                    // Push children; they will be popped in reverse push
                    // order, so push descending to visit ascending.
                    let mut children = Vec::new();
                    while c != NO_PARENT {
                        children.push(c);
                        c = next[c];
                    }
                    for &c in children.iter().rev() {
                        stack.push((c, false));
                    }
                }
            }
        }
        order
    }

    /// Returns the row-pattern of row `k` of `L`: the set of columns
    /// `i < k` with `L[k, i] != 0`, in **ascending column order**.
    ///
    /// The pattern is the union of the tree paths from each nonzero
    /// `A[i, k]` (upper triangle, `i < k`) up toward `k` — the
    /// "elimination reach". `a` must be the same matrix the tree was built
    /// from.
    pub fn row_pattern(&self, a: &CscMatrix, k: usize) -> Vec<usize> {
        let mut marked = vec![false; k + 1];
        let mut pattern = Vec::new();
        for (i, _) in a.col(k) {
            if i >= k {
                continue;
            }
            let mut i = i;
            // Walk the path i -> parent -> ... until hitting k or a node
            // already collected.
            let mut path = Vec::new();
            while i != k && i < k && !marked[i] {
                path.push(i);
                marked[i] = true;
                if self.parent[i] == NO_PARENT {
                    break;
                }
                i = self.parent[i];
            }
            pattern.extend(path);
        }
        pattern.sort_unstable();
        pattern
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CscMatrix;

    /// Arrow matrix: dense last row/col + diagonal. Every column's parent is n-1.
    fn arrow(n: usize) -> CscMatrix {
        let mut d = vec![0.0; n * n];
        for i in 0..n {
            d[i * n + i] = 4.0;
            d[i * n + (n - 1)] = 1.0;
        }
        CscMatrix::from_dense(n, n, &d).upper_triangle().unwrap()
    }

    /// Tridiagonal matrix: parent of i is i+1, chain tree.
    fn tridiag(n: usize) -> CscMatrix {
        let mut d = vec![0.0; n * n];
        for i in 0..n {
            d[i * n + i] = 4.0;
            if i + 1 < n {
                d[i * n + i + 1] = -1.0;
            }
        }
        CscMatrix::from_dense(n, n, &d).upper_triangle().unwrap()
    }

    #[test]
    fn arrow_tree_is_flat() {
        let t = EliminationTree::from_upper(&arrow(5)).unwrap();
        assert_eq!(t.parent()[..4], [4, 4, 4, 4]);
        assert_eq!(t.parent()[4], NO_PARENT);
        // L's last row is dense: each column 0..4 has exactly one subdiagonal entry.
        assert_eq!(t.col_counts(), &[1, 1, 1, 1, 0]);
        assert_eq!(t.l_nnz(), 4);
        assert_eq!(t.heights(), vec![0, 0, 0, 0, 1]);
    }

    #[test]
    fn tridiag_tree_is_chain() {
        let t = EliminationTree::from_upper(&tridiag(4)).unwrap();
        assert_eq!(t.parent(), &[1, 2, 3, NO_PARENT]);
        assert_eq!(t.col_counts(), &[1, 1, 1, 0]);
        assert_eq!(t.levels(), vec![3, 2, 1, 0]);
        assert_eq!(t.heights(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn diagonal_matrix_is_forest_of_roots() {
        let t = EliminationTree::from_upper(&CscMatrix::identity(3)).unwrap();
        assert_eq!(t.parent(), &[NO_PARENT, NO_PARENT, NO_PARENT]);
        assert_eq!(t.l_nnz(), 0);
        assert_eq!(t.postorder().len(), 3);
    }

    #[test]
    fn postorder_children_before_parents() {
        let t = EliminationTree::from_upper(&arrow(6)).unwrap();
        let order = t.postorder();
        assert_eq!(order.len(), 6);
        let mut position = [0usize; 6];
        for (k, &node) in order.iter().enumerate() {
            position[node] = k;
        }
        for i in 0..6 {
            if t.parent()[i] != NO_PARENT {
                assert!(position[i] < position[t.parent()[i]]);
            }
        }
    }

    #[test]
    fn row_pattern_of_tridiag() {
        let m = tridiag(4);
        let t = EliminationTree::from_upper(&m).unwrap();
        assert_eq!(t.row_pattern(&m, 0), Vec::<usize>::new());
        assert_eq!(t.row_pattern(&m, 2), vec![1]);
        assert_eq!(t.row_pattern(&m, 3), vec![2]);
    }

    #[test]
    fn row_pattern_includes_fill() {
        // Pattern with fill-in:
        // [ x . x ]
        // [ . x x ]
        // [ x x x ]   -> L row 2 touches columns 0,1; no fill here.
        // Use a case with genuine fill: edges (0,1), (0,3): row 3 reaches
        // {0, 1, 2}? etree: col1 contains (0,1) -> parent[0]=1.
        // col3 contains (0,3): path 0 -> 1 -> parent[1]=3; L row 3 = {0, 1}.
        let mut d = vec![0.0; 16];
        for i in 0..4 {
            d[i * 4 + i] = 4.0;
        }
        d[1] = 1.0; // (0,1)
        d[3] = 1.0; // (0,3)
        let m = CscMatrix::from_dense(4, 4, &d).upper_triangle().unwrap();
        let t = EliminationTree::from_upper(&m).unwrap();
        assert_eq!(t.row_pattern(&m, 3), vec![0, 1]); // column 1 is fill
    }

    #[test]
    fn lower_triangle_input_is_rejected() {
        let m = CscMatrix::from_dense(2, 2, &[1.0, 0.0, 1.0, 1.0]);
        assert!(EliminationTree::from_upper(&m).is_err());
    }
}
