use crate::{CsrMatrix, Result, SparseError, TripletMatrix};

/// A sparse matrix in Compressed Sparse Column (CSC) format.
///
/// CSC is the working format of the whole MIB stack: OSQP stores `P` (upper
/// triangle) and `A` in CSC, the LDLᵀ factorization consumes and produces
/// CSC, and the MIB compiler reads CSC column structure when generating
/// column-elimination network instructions.
///
/// Invariants (enforced by all constructors):
///
/// * `col_ptr.len() == ncols + 1`, `col_ptr[0] == 0`,
///   `col_ptr[ncols] == row_ind.len() == values.len()`,
/// * `col_ptr` is non-decreasing,
/// * within each column, row indices are strictly increasing (sorted, no
///   duplicates) and less than `nrows`.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    nrows: usize,
    ncols: usize,
    col_ptr: Vec<usize>,
    row_ind: Vec<usize>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Creates an `nrows x ncols` matrix with no stored entries.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        CscMatrix {
            nrows,
            ncols,
            col_ptr: vec![0; ncols + 1],
            row_ind: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        CscMatrix {
            nrows: n,
            ncols: n,
            col_ptr: (0..=n).collect(),
            row_ind: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Creates a square diagonal matrix from the given diagonal entries.
    ///
    /// Zero diagonal entries are stored explicitly; callers that need a
    /// pruned matrix can use [`CscMatrix::prune`].
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        CscMatrix {
            nrows: n,
            ncols: n,
            col_ptr: (0..=n).collect(),
            row_ind: (0..n).collect(),
            values: diag.to_vec(),
        }
    }

    /// Builds a CSC matrix from triplet (COO) data, summing duplicates.
    ///
    /// # Errors
    ///
    /// Never fails for a well-formed [`TripletMatrix`]; the `Result` covers
    /// internal consistency only.
    pub fn from_triplets(t: &TripletMatrix) -> Result<Self> {
        let (rows, cols, vals) = t.parts();
        Self::from_triplet_parts(t.nrows(), t.ncols(), rows, cols, vals)
    }

    /// Builds a CSC matrix directly from parallel triplet arrays, summing
    /// duplicate entries.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] if any index exceeds the
    /// dimensions, or [`SparseError::InvalidStructure`] if the arrays have
    /// mismatched lengths.
    pub fn from_triplet_parts(
        nrows: usize,
        ncols: usize,
        rows: &[usize],
        cols: &[usize],
        vals: &[f64],
    ) -> Result<Self> {
        if rows.len() != cols.len() || rows.len() != vals.len() {
            return Err(SparseError::InvalidStructure(format!(
                "triplet arrays have mismatched lengths {}/{}/{}",
                rows.len(),
                cols.len(),
                vals.len()
            )));
        }
        for (&r, &c) in rows.iter().zip(cols) {
            if r >= nrows || c >= ncols {
                return Err(SparseError::IndexOutOfBounds {
                    row: r,
                    col: c,
                    nrows,
                    ncols,
                });
            }
        }
        // Count entries per column.
        let mut col_counts = vec![0usize; ncols];
        for &c in cols {
            col_counts[c] += 1;
        }
        let mut col_ptr = vec![0usize; ncols + 1];
        for j in 0..ncols {
            col_ptr[j + 1] = col_ptr[j] + col_counts[j];
        }
        // Scatter into place (unsorted within columns for now).
        let nnz = rows.len();
        let mut next = col_ptr[..ncols].to_vec();
        let mut row_ind = vec![0usize; nnz];
        let mut values = vec![0f64; nnz];
        for k in 0..nnz {
            let c = cols[k];
            let dst = next[c];
            row_ind[dst] = rows[k];
            values[dst] = vals[k];
            next[c] += 1;
        }
        // Sort each column by row index and merge duplicates.
        let mut out_ptr = vec![0usize; ncols + 1];
        let mut out_rows = Vec::with_capacity(nnz);
        let mut out_vals = Vec::with_capacity(nnz);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for j in 0..ncols {
            scratch.clear();
            scratch.extend(
                row_ind[col_ptr[j]..col_ptr[j + 1]]
                    .iter()
                    .copied()
                    .zip(values[col_ptr[j]..col_ptr[j + 1]].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(r, _)| r);
            let mut i = 0;
            while i < scratch.len() {
                let (r, mut v) = scratch[i];
                let mut k = i + 1;
                while k < scratch.len() && scratch[k].0 == r {
                    v += scratch[k].1;
                    k += 1;
                }
                out_rows.push(r);
                out_vals.push(v);
                i = k;
            }
            out_ptr[j + 1] = out_rows.len();
        }
        Ok(CscMatrix {
            nrows,
            ncols,
            col_ptr: out_ptr,
            row_ind: out_rows,
            values: out_vals,
        })
    }

    /// Builds a CSC matrix from raw compressed arrays, validating every
    /// structural invariant.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidStructure`] when the arrays violate the
    /// CSC invariants documented on the type.
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        col_ptr: Vec<usize>,
        row_ind: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self> {
        if col_ptr.len() != ncols + 1 {
            return Err(SparseError::InvalidStructure(format!(
                "col_ptr has length {} but expected {}",
                col_ptr.len(),
                ncols + 1
            )));
        }
        if col_ptr[0] != 0 {
            return Err(SparseError::InvalidStructure("col_ptr[0] must be 0".into()));
        }
        if *col_ptr.last().expect("non-empty col_ptr") != row_ind.len()
            || row_ind.len() != values.len()
        {
            return Err(SparseError::InvalidStructure(format!(
                "col_ptr end {} does not match nnz arrays {}/{}",
                col_ptr[ncols],
                row_ind.len(),
                values.len()
            )));
        }
        for j in 0..ncols {
            if col_ptr[j] > col_ptr[j + 1] {
                return Err(SparseError::InvalidStructure(format!(
                    "col_ptr decreases at column {j}"
                )));
            }
            let mut prev: Option<usize> = None;
            for &r in &row_ind[col_ptr[j]..col_ptr[j + 1]] {
                if r >= nrows {
                    return Err(SparseError::InvalidStructure(format!(
                        "row index {r} out of bounds in column {j}"
                    )));
                }
                if let Some(p) = prev {
                    if r <= p {
                        return Err(SparseError::InvalidStructure(format!(
                            "row indices not strictly increasing in column {j}"
                        )));
                    }
                }
                prev = Some(r);
            }
        }
        Ok(CscMatrix {
            nrows,
            ncols,
            col_ptr,
            row_ind,
            values,
        })
    }

    /// Builds a CSC matrix from a dense row-major matrix, storing entries
    /// with `|value| > 0.0` only.
    ///
    /// # Panics
    ///
    /// Panics if `rows.len() != nrows * ncols`.
    pub fn from_dense(nrows: usize, ncols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), nrows * ncols, "dense data has wrong length");
        let mut col_ptr = vec![0usize; ncols + 1];
        let mut row_ind = Vec::new();
        let mut values = Vec::new();
        for j in 0..ncols {
            for i in 0..nrows {
                let v = data[i * ncols + j];
                if v != 0.0 {
                    row_ind.push(i);
                    values.push(v);
                }
            }
            col_ptr[j + 1] = row_ind.len();
        }
        CscMatrix {
            nrows,
            ncols,
            col_ptr,
            row_ind,
            values,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// `(nrows, ncols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.row_ind.len()
    }

    /// The column pointer array (`ncols + 1` entries).
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// The row index array.
    pub fn row_ind(&self) -> &[usize] {
        &self.row_ind
    }

    /// The stored values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the stored values (the sparsity pattern is fixed).
    ///
    /// This is the hook OSQP-style parameter updates use: the KKT matrix is
    /// re-valued in place when `rho` changes without re-running symbolic
    /// analysis.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Iterates over the `(row, value)` entries of column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= ncols`.
    pub fn col(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let range = self.col_ptr[j]..self.col_ptr[j + 1];
        self.row_ind[range.clone()]
            .iter()
            .copied()
            .zip(self.values[range].iter().copied())
    }

    /// Index range of column `j` into [`CscMatrix::row_ind`] / [`CscMatrix::values`].
    pub fn col_range(&self, j: usize) -> std::ops::Range<usize> {
        self.col_ptr[j]..self.col_ptr[j + 1]
    }

    /// Returns the stored value at `(i, j)`, or `0.0` if the entry is not
    /// stored.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let range = self.col_range(j);
        match self.row_ind[range.clone()].binary_search(&i) {
            Ok(k) => self.values[range.start + k],
            Err(_) => 0.0,
        }
    }

    /// Iterates over all stored entries as `(row, col, value)` in
    /// column-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.ncols).flat_map(move |j| self.col(j).map(move |(i, v)| (i, j, v)))
    }

    /// Returns the transpose as a new CSC matrix.
    pub fn transpose(&self) -> CscMatrix {
        let mut counts = vec![0usize; self.nrows];
        for &r in &self.row_ind {
            counts[r] += 1;
        }
        let mut col_ptr = vec![0usize; self.nrows + 1];
        for i in 0..self.nrows {
            col_ptr[i + 1] = col_ptr[i] + counts[i];
        }
        let mut next = col_ptr[..self.nrows].to_vec();
        let mut row_ind = vec![0usize; self.nnz()];
        let mut values = vec![0f64; self.nnz()];
        for j in 0..self.ncols {
            for k in self.col_range(j) {
                let r = self.row_ind[k];
                let dst = next[r];
                row_ind[dst] = j;
                values[dst] = self.values[k];
                next[r] += 1;
            }
        }
        // Row indices of the transpose are automatically sorted because we
        // sweep columns of `self` in increasing order.
        CscMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            col_ptr,
            row_ind,
            values,
        }
    }

    // ----- SpMV kernels ---------------------------------------------------
    //
    // The `_into` methods below are the canonical allocation-free kernels;
    // every allocating spelling (`mul_vec`, `tr_mul_vec`, ...) is a thin
    // wrapper so hot paths can borrow caller-owned buffers instead.

    /// Computes `y = A * x` into a caller-provided buffer (overwriting it).
    /// This is the canonical allocation-free SpMV kernel.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols` or `y.len() != nrows`.
    pub fn spmv_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "spmv: x has wrong length");
        assert_eq!(y.len(), self.nrows, "spmv: y has wrong length");
        y.fill(0.0);
        self.gaxpy_into(x, y);
    }

    /// Accumulates `y += A * x` (the BLAS-style "gaxpy" update).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols` or `y.len() != nrows`.
    pub fn gaxpy_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "spmv: x has wrong length");
        assert_eq!(y.len(), self.nrows, "spmv: y has wrong length");
        let path = crate::simd::dispatch_path();
        for (j, &xj) in x.iter().enumerate() {
            if xj != 0.0 {
                let r = self.col_range(j);
                let idx = &self.row_ind[r.clone()];
                let vals = &self.values[r];
                // Row indices within a column are strictly increasing
                // (struct invariant), so one O(1) span check detects a
                // fully contiguous column; the dense axpy then runs with
                // zero index traffic. Bitwise-neutral: the updates are
                // element-wise on distinct rows (no reduction order) and
                // IEEE multiplication commutes.
                match idx {
                    [first, .., last] if last - first == idx.len() - 1 => {
                        crate::simd::axpy_into_with(path, &mut y[*first..=*last], xj, vals);
                    }
                    _ => crate::simd::scatter_axpy(path, y, idx, vals, xj),
                }
            }
        }
    }

    /// Computes `y = Aᵀ * x` into a caller-provided buffer (overwriting it)
    /// without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != nrows` or `y.len() != ncols`.
    pub fn spmv_t_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.nrows, "spmv^T: x has wrong length");
        assert_eq!(y.len(), self.ncols, "spmv^T: y has wrong length");
        y.fill(0.0);
        self.gaxpy_t_into(x, y);
    }

    /// Accumulates `y += Aᵀ * x` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != nrows` or `y.len() != ncols`.
    pub fn gaxpy_t_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.nrows, "spmv^T: x has wrong length");
        assert_eq!(y.len(), self.ncols, "spmv^T: y has wrong length");
        let path = crate::simd::dispatch_path();
        for (j, yj) in y.iter_mut().enumerate() {
            let r = self.col_range(j);
            let idx = &self.row_ind[r.clone()];
            let vals = &self.values[r];
            // Same O(1) contiguous-column detection as `gaxpy_into`. The
            // dense dot is bitwise-identical to the gather-dot here: both
            // implement the canonical lane-chunked reduction order and the
            // contiguous indices make them read identical operands.
            *yj += match idx {
                [first, .., last] if last - first == idx.len() - 1 => {
                    crate::simd::dot_with(path, vals, &x[*first..=*last])
                }
                _ => crate::simd::gather_dot(path, vals, idx, x),
            };
        }
    }

    /// Computes `y = P * x` into a caller-provided buffer where `self`
    /// stores only the **upper triangle** of a symmetric matrix `P` (the
    /// OSQP storage convention for the objective matrix).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or buffer lengths mismatch.
    pub fn sym_upper_mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(y.len(), self.nrows, "sym spmv: y has wrong length");
        y.fill(0.0);
        self.sym_upper_mul_vec_acc(x, y);
    }

    /// Computes `y = A * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.nrows];
        self.spmv_into(x, &mut y);
        y
    }

    /// Computes `y = A * x` into a caller-provided buffer (overwriting it).
    /// Alias of [`CscMatrix::spmv_into`], kept for source compatibility.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols` or `y.len() != nrows`.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        self.spmv_into(x, y);
    }

    /// Accumulates `y += A * x`. Alias of [`CscMatrix::gaxpy_into`], kept
    /// for source compatibility.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols` or `y.len() != nrows`.
    pub fn mul_vec_acc(&self, x: &[f64], y: &mut [f64]) {
        self.gaxpy_into(x, y);
    }

    /// Computes `y = Aᵀ * x` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != nrows`.
    pub fn tr_mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.ncols];
        self.spmv_t_into(x, &mut y);
        y
    }

    /// Accumulates `y += Aᵀ * x`. Alias of [`CscMatrix::gaxpy_t_into`],
    /// kept for source compatibility.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != nrows` or `y.len() != ncols`.
    pub fn tr_mul_vec_acc(&self, x: &[f64], y: &mut [f64]) {
        self.gaxpy_t_into(x, y);
    }

    /// Computes `y = P * x` where `self` stores only the **upper triangle**
    /// of a symmetric matrix `P` (the OSQP storage convention for the
    /// objective matrix).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `x.len() != n`.
    pub fn sym_upper_mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.nrows];
        self.sym_upper_mul_vec_into(x, &mut y);
        y
    }

    /// Accumulates `y += P * x` for an upper-triangle-stored symmetric `P`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or buffer lengths mismatch.
    pub fn sym_upper_mul_vec_acc(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(
            self.nrows, self.ncols,
            "symmetric product requires square matrix"
        );
        assert_eq!(x.len(), self.ncols, "sym spmv: x has wrong length");
        assert_eq!(y.len(), self.nrows, "sym spmv: y has wrong length");
        let path = crate::simd::dispatch_path();
        for j in 0..self.ncols {
            let r = self.col_range(j);
            let rows = &self.row_ind[r.clone()];
            let vals = &self.values[r];
            debug_assert!(
                rows.iter().all(|&i| i <= j),
                "matrix is not upper triangular"
            );
            // Upper-triangle pass: y[i] += v * x[j] for every stored entry
            // of column j, diagonal included.
            crate::simd::scatter_axpy(path, y, rows, vals, x[j]);
            // Mirrored strictly-lower pass, as one gather-dot over the
            // strictly-upper entries (row indices are ascending, so a
            // diagonal entry is always last in the column).
            let strict = rows.len() - usize::from(rows.last() == Some(&j));
            y[j] += crate::simd::gather_dot(path, &vals[..strict], &rows[..strict], x);
        }
    }

    /// Extracts the upper triangle (including the diagonal) of a square
    /// matrix as a new CSC matrix.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotSquare`] for rectangular inputs.
    pub fn upper_triangle(&self) -> Result<CscMatrix> {
        if self.nrows != self.ncols {
            return Err(SparseError::NotSquare {
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        let mut col_ptr = vec![0usize; self.ncols + 1];
        let mut row_ind = Vec::new();
        let mut values = Vec::new();
        for j in 0..self.ncols {
            for (i, v) in self.col(j) {
                if i <= j {
                    row_ind.push(i);
                    values.push(v);
                }
            }
            col_ptr[j + 1] = row_ind.len();
        }
        Ok(CscMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            col_ptr,
            row_ind,
            values,
        })
    }

    /// Returns `true` if every stored entry lies on or above the diagonal.
    pub fn is_upper_triangular(&self) -> bool {
        self.iter().all(|(i, j, _)| i <= j)
    }

    /// Returns a copy with entries equal to `0.0` removed from storage.
    pub fn prune(&self) -> CscMatrix {
        let mut col_ptr = vec![0usize; self.ncols + 1];
        let mut row_ind = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        for j in 0..self.ncols {
            for (i, v) in self.col(j) {
                if v != 0.0 {
                    row_ind.push(i);
                    values.push(v);
                }
            }
            col_ptr[j + 1] = row_ind.len();
        }
        CscMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            col_ptr,
            row_ind,
            values,
        }
    }

    /// Applies `f` to every stored value, returning a matrix with the same
    /// pattern.
    pub fn map_values(&self, mut f: impl FnMut(f64) -> f64) -> CscMatrix {
        let mut out = self.clone();
        for v in &mut out.values {
            *v = f(*v);
        }
        out
    }

    /// Scales row `i` by `d[i]` in place (`A <- diag(d) * A`).
    ///
    /// # Panics
    ///
    /// Panics if `d.len() != nrows`.
    pub fn scale_rows(&mut self, d: &[f64]) {
        assert_eq!(d.len(), self.nrows, "row scaling vector has wrong length");
        for k in 0..self.row_ind.len() {
            self.values[k] *= d[self.row_ind[k]];
        }
    }

    /// Scales column `j` by `d[j]` in place (`A <- A * diag(d)`).
    ///
    /// # Panics
    ///
    /// Panics if `d.len() != ncols`.
    pub fn scale_cols(&mut self, d: &[f64]) {
        assert_eq!(
            d.len(),
            self.ncols,
            "column scaling vector has wrong length"
        );
        for (j, &dj) in d.iter().enumerate() {
            for k in self.col_ptr[j]..self.col_ptr[j + 1] {
                self.values[k] *= dj;
            }
        }
    }

    /// Infinity norm of each column: `out[j] = max_i |A[i, j]|`.
    pub fn col_norms_inf(&self) -> Vec<f64> {
        let mut out = vec![0.0f64; self.ncols];
        for (j, oj) in out.iter_mut().enumerate() {
            for k in self.col_range(j) {
                *oj = oj.max(self.values[k].abs());
            }
        }
        out
    }

    /// Infinity norm of each row: `out[i] = max_j |A[i, j]|`.
    pub fn row_norms_inf(&self) -> Vec<f64> {
        let mut out = vec![0.0f64; self.nrows];
        for (k, &r) in self.row_ind.iter().enumerate() {
            out[r] = out[r].max(self.values[k].abs());
        }
        out
    }

    /// Column infinity norms of the full symmetric matrix whose upper
    /// triangle is stored in `self` (entries below the diagonal are mirrored).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn sym_upper_col_norms_inf(&self) -> Vec<f64> {
        assert_eq!(
            self.nrows, self.ncols,
            "symmetric norms require square matrix"
        );
        let mut out = vec![0.0f64; self.ncols];
        for (i, j, v) in self.iter() {
            let a = v.abs();
            out[j] = out[j].max(a);
            if i != j {
                out[i] = out[i].max(a);
            }
        }
        out
    }

    /// Converts to a dense row-major buffer (for tests and small examples).
    pub fn to_dense(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.nrows * self.ncols];
        for (i, j, v) in self.iter() {
            d[i * self.ncols + j] += v;
        }
        d
    }

    /// Converts to Compressed Sparse Row form.
    pub fn to_csr(&self) -> CsrMatrix {
        CsrMatrix::from_csc(self)
    }

    /// Frobenius-style structural equality: same shape and same pattern
    /// (ignores values).
    pub fn same_pattern(&self, other: &CscMatrix) -> bool {
        self.nrows == other.nrows
            && self.ncols == other.ncols
            && self.col_ptr == other.col_ptr
            && self.row_ind == other.row_ind
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CscMatrix {
        // [ 1 0 2 ]
        // [ 0 3 0 ]
        // [ 4 0 5 ]
        CscMatrix::from_dense(3, 3, &[1.0, 0.0, 2.0, 0.0, 3.0, 0.0, 4.0, 0.0, 5.0])
    }

    #[test]
    fn from_triplets_sums_duplicates_and_sorts() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(1, 0, 1.0).unwrap();
        t.push(0, 0, 2.0).unwrap();
        t.push(1, 0, 0.5).unwrap();
        let m = CscMatrix::from_triplets(&t).unwrap();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 0), 2.0);
        assert_eq!(m.get(1, 0), 1.5);
        assert_eq!(m.row_ind(), &[0, 1]);
    }

    #[test]
    fn from_parts_validates_structure() {
        assert!(CscMatrix::from_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        assert!(CscMatrix::from_parts(2, 2, vec![1, 1, 1], vec![0], vec![1.0]).is_err());
        assert!(CscMatrix::from_parts(2, 2, vec![0, 2, 2], vec![1, 0], vec![1.0, 2.0]).is_err());
        assert!(CscMatrix::from_parts(2, 2, vec![0, 1, 2], vec![0, 2], vec![1.0, 2.0]).is_err());
        let ok = CscMatrix::from_parts(2, 2, vec![0, 2, 2], vec![0, 1], vec![1.0, 2.0]);
        assert!(ok.is_ok());
    }

    #[test]
    fn spmv_matches_dense() {
        let m = sample();
        let y = m.mul_vec(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![7.0, 6.0, 19.0]);
    }

    #[test]
    fn transpose_round_trips() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.get(0, 2), 4.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn tr_mul_matches_transpose_mul() {
        let m = sample();
        let x = [1.0, -1.0, 0.5];
        assert_eq!(m.tr_mul_vec(&x), m.transpose().mul_vec(&x));
    }

    #[test]
    fn symmetric_upper_product() {
        // Full symmetric matrix:
        // [ 2 1 0 ]
        // [ 1 3 1 ]
        // [ 0 1 4 ]
        let upper = CscMatrix::from_dense(3, 3, &[2.0, 1.0, 0.0, 0.0, 3.0, 1.0, 0.0, 0.0, 4.0]);
        let y = upper.sym_upper_mul_vec(&[1.0, 1.0, 1.0]);
        assert_eq!(y, vec![3.0, 5.0, 5.0]);
    }

    #[test]
    fn upper_triangle_extraction() {
        let m = sample();
        let u = m.upper_triangle().unwrap();
        assert!(u.is_upper_triangular());
        assert_eq!(u.get(0, 2), 2.0);
        assert_eq!(u.get(2, 0), 0.0);
        assert_eq!(u.get(2, 2), 5.0);
    }

    #[test]
    fn scaling_rows_and_cols() {
        let mut m = sample();
        m.scale_rows(&[2.0, 1.0, 0.5]);
        assert_eq!(m.get(0, 0), 2.0);
        assert_eq!(m.get(2, 2), 2.5);
        m.scale_cols(&[1.0, 10.0, 2.0]);
        assert_eq!(m.get(1, 1), 30.0);
        // (0,2) was 2.0, row-scaled by 2.0 then column-scaled by 2.0.
        assert_eq!(m.get(0, 2), 8.0);
    }

    #[test]
    fn norms() {
        let m = sample();
        assert_eq!(m.col_norms_inf(), vec![4.0, 3.0, 5.0]);
        assert_eq!(m.row_norms_inf(), vec![2.0, 3.0, 5.0]);
    }

    #[test]
    fn prune_removes_explicit_zeros() {
        let m = CscMatrix::from_diag(&[1.0, 0.0, 3.0]);
        assert_eq!(m.nnz(), 3);
        let p = m.prune();
        assert_eq!(p.nnz(), 2);
        assert_eq!(p.get(2, 2), 3.0);
    }

    #[test]
    fn identity_and_diag() {
        let i = CscMatrix::identity(3);
        let x = [3.0, -1.0, 2.0];
        assert_eq!(i.mul_vec(&x), x.to_vec());
        let d = CscMatrix::from_diag(&[2.0, 3.0, 4.0]);
        assert_eq!(d.mul_vec(&x), vec![6.0, -3.0, 8.0]);
    }

    #[test]
    fn sym_norms_mirror_lower_part() {
        let upper = CscMatrix::from_dense(2, 2, &[1.0, 5.0, 0.0, 2.0]);
        // Full matrix [[1,5],[5,2]]: both column norms are 5.
        assert_eq!(upper.sym_upper_col_norms_inf(), vec![5.0, 5.0]);
    }
}
