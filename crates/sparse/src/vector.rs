//! Dense vector kernels used by the solver algorithm.
//!
//! These correspond one-to-one with the element-wise top-level instructions
//! of the MIB ISA (Table I of the paper): `norm_inf`, `ew_reci`, `ew_prod`,
//! `axpby`, `select_min`, `select_max`, plus the dot products and Euclidean
//! projection the ADMM loop needs.

/// Infinity norm `max_i |x_i|` (`norm_inf` in the MIB ISA).
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
}

/// Euclidean norm `sqrt(sum x_i^2)`.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Infinity norm of the difference `max_i |x_i - y_i|`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn norm_inf_diff(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "norm_inf_diff length mismatch");
    x.iter()
        .zip(y)
        .fold(0.0f64, |m, (&a, &b)| m.max((a - b).abs()))
}

/// Dot product `xᵀy`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    x.iter().zip(y).map(|(&a, &b)| a * b).sum()
}

/// Element-wise reciprocal `out_i = 1 / x_i` (`ew_reci`).
pub fn ew_reci(x: &[f64]) -> Vec<f64> {
    x.iter().map(|&v| 1.0 / v).collect()
}

/// Element-wise product `out_i = x_i * y_i` (`ew_prod`).
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn ew_prod(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "ew_prod length mismatch");
    x.iter().zip(y).map(|(&a, &b)| a * b).collect()
}

/// Scaled sum `out = s0 * v0 + s1 * v1` (`axpby`).
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn axpby(s0: f64, v0: &[f64], s1: f64, v1: &[f64]) -> Vec<f64> {
    assert_eq!(v0.len(), v1.len(), "axpby length mismatch");
    v0.iter().zip(v1).map(|(&a, &b)| s0 * a + s1 * b).collect()
}

/// In-place scaled sum `v0 <- s0 * v0 + s1 * v1`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn axpby_into(s0: f64, v0: &mut [f64], s1: f64, v1: &[f64]) {
    assert_eq!(v0.len(), v1.len(), "axpby length mismatch");
    for (a, &b) in v0.iter_mut().zip(v1) {
        *a = s0 * *a + s1 * b;
    }
}

/// Element-wise maximum (`select_max`).
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn select_max(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "select_max length mismatch");
    x.iter().zip(y).map(|(&a, &b)| a.max(b)).collect()
}

/// Element-wise minimum (`select_min`).
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn select_min(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "select_min length mismatch");
    x.iter().zip(y).map(|(&a, &b)| a.min(b)).collect()
}

/// Euclidean projection of `x` onto the box `[l, u]`, element-wise
/// (the `Π(·)` operator in step 6 of the OSQP algorithm).
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn project_box(x: &[f64], l: &[f64], u: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), l.len(), "project_box length mismatch");
    assert_eq!(x.len(), u.len(), "project_box length mismatch");
    x.iter()
        .zip(l.iter().zip(u))
        .map(|(&v, (&lo, &hi))| v.max(lo).min(hi))
        .collect()
}

/// In-place box projection.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn project_box_into(x: &mut [f64], l: &[f64], u: &[f64]) {
    assert_eq!(x.len(), l.len(), "project_box length mismatch");
    assert_eq!(x.len(), u.len(), "project_box length mismatch");
    for ((v, &lo), &hi) in x.iter_mut().zip(l).zip(u) {
        *v = v.max(lo).min(hi);
    }
}

/// Geometric mean of strictly positive values; returns `f64::NAN` on an
/// empty slice.
///
/// The paper reports all cross-platform comparisons as geometric means.
pub fn geomean(x: &[f64]) -> f64 {
    if x.is_empty() {
        return f64::NAN;
    }
    let s: f64 = x.iter().map(|&v| v.ln()).sum();
    (s / x.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms() {
        assert_eq!(norm_inf(&[1.0, -3.0, 2.0]), 3.0);
        assert_eq!(norm_inf(&[]), 0.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(norm_inf_diff(&[1.0, 2.0], &[0.0, 5.0]), 3.0);
    }

    #[test]
    fn elementwise_ops() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(ew_reci(&[2.0, 4.0]), vec![0.5, 0.25]);
        assert_eq!(ew_prod(&[2.0, 3.0], &[4.0, -1.0]), vec![8.0, -3.0]);
        assert_eq!(axpby(2.0, &[1.0, 0.0], 3.0, &[0.0, 1.0]), vec![2.0, 3.0]);
        assert_eq!(select_max(&[1.0, 5.0], &[2.0, 3.0]), vec![2.0, 5.0]);
        assert_eq!(select_min(&[1.0, 5.0], &[2.0, 3.0]), vec![1.0, 3.0]);
    }

    #[test]
    fn axpby_into_matches_axpby() {
        let mut v = vec![1.0, -2.0];
        axpby_into(0.5, &mut v, 2.0, &[4.0, 4.0]);
        assert_eq!(v, axpby(0.5, &[1.0, -2.0], 2.0, &[4.0, 4.0]));
    }

    #[test]
    fn projection_clamps_to_box() {
        let p = project_box(&[-5.0, 0.5, 5.0], &[0.0, 0.0, 0.0], &[1.0, 1.0, 1.0]);
        assert_eq!(p, vec![0.0, 0.5, 1.0]);
        // Projection is idempotent.
        assert_eq!(project_box(&p, &[0.0, 0.0, 0.0], &[1.0, 1.0, 1.0]), p);
    }

    #[test]
    fn geomean_of_constants() {
        assert!((geomean(&[4.0, 4.0, 4.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
        assert!(geomean(&[]).is_nan());
    }
}
