//! Dense vector kernels used by the solver algorithm.
//!
//! These correspond one-to-one with the element-wise top-level instructions
//! of the MIB ISA (Table I of the paper): `norm_inf`, `ew_reci`, `ew_prod`,
//! `axpby`, `select_min`, `select_max`, plus the dot products and Euclidean
//! projection the ADMM loop needs.
//!
//! Every hot kernel here is a thin re-export of (or delegates to) the
//! runtime-dispatched implementations in [`crate::simd`] — the single
//! source of truth for the canonical lane-chunked reduction order and the
//! canonical min/max semantics. The allocating convenience wrappers
//! (`ew_prod`, `axpby`, `project_box`, ...) build their output through the
//! same kernels, so there is exactly one definition of every arithmetic
//! sequence in the crate.

pub use crate::simd::{
    add_assign, add_prod_diff_into, axpby_into, axpy_into, clamp_into, div_scale_into, dot,
    ew_prod_into, grad_step_into, moreau_into, mul_assign, neg_into, norm_inf, norm_inf_diff,
    norm_inf_sum3, prod_diff_into, prod_scale_into, project_box_into, relax_delta_into,
    relax_project_into, sax_sub_into, scaled_diff_update_into, sub_into, sub_prod_into,
    update_dir_into,
};

/// Euclidean norm `sqrt(sum x_i^2)` (canonical reduction order).
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Element-wise reciprocal `out_i = 1 / x_i` (`ew_reci`).
pub fn ew_reci(x: &[f64]) -> Vec<f64> {
    x.iter().map(|&v| 1.0 / v).collect()
}

/// Element-wise product `out_i = x_i * y_i` (`ew_prod`).
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn ew_prod(x: &[f64], y: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; x.len()];
    ew_prod_into(&mut out, x, y);
    out
}

/// Scaled sum `out = s0 * v0 + s1 * v1` (`axpby`).
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn axpby(s0: f64, v0: &[f64], s1: f64, v1: &[f64]) -> Vec<f64> {
    let mut out = v0.to_vec();
    axpby_into(s0, &mut out, s1, v1);
    out
}

/// Element-wise maximum (`select_max`), with the canonical
/// [`cmax`](crate::simd::cmax) semantics.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn select_max(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "select_max length mismatch");
    x.iter()
        .zip(y)
        .map(|(&a, &b)| crate::simd::cmax(a, b))
        .collect()
}

/// Element-wise minimum (`select_min`), with the canonical
/// [`cmin`](crate::simd::cmin) semantics.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn select_min(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "select_min length mismatch");
    x.iter()
        .zip(y)
        .map(|(&a, &b)| crate::simd::cmin(a, b))
        .collect()
}

/// Euclidean projection of `x` onto the box `[l, u]`, element-wise
/// (the `Π(·)` operator in step 6 of the OSQP algorithm).
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn project_box(x: &[f64], l: &[f64], u: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; x.len()];
    clamp_into(&mut out, x, l, u);
    out
}

/// Geometric mean of strictly positive values; returns `f64::NAN` on an
/// empty slice.
///
/// The paper reports all cross-platform comparisons as geometric means.
pub fn geomean(x: &[f64]) -> f64 {
    if x.is_empty() {
        return f64::NAN;
    }
    let s: f64 = x.iter().map(|&v| v.ln()).sum();
    (s / x.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms() {
        assert_eq!(norm_inf(&[1.0, -3.0, 2.0]), 3.0);
        assert_eq!(norm_inf(&[]), 0.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(norm_inf_diff(&[1.0, 2.0], &[0.0, 5.0]), 3.0);
    }

    #[test]
    fn elementwise_ops() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(ew_reci(&[2.0, 4.0]), vec![0.5, 0.25]);
        assert_eq!(ew_prod(&[2.0, 3.0], &[4.0, -1.0]), vec![8.0, -3.0]);
        assert_eq!(axpby(2.0, &[1.0, 0.0], 3.0, &[0.0, 1.0]), vec![2.0, 3.0]);
        assert_eq!(select_max(&[1.0, 5.0], &[2.0, 3.0]), vec![2.0, 5.0]);
        assert_eq!(select_min(&[1.0, 5.0], &[2.0, 3.0]), vec![1.0, 3.0]);
    }

    #[test]
    fn axpby_into_matches_axpby() {
        let mut v = vec![1.0, -2.0];
        axpby_into(0.5, &mut v, 2.0, &[4.0, 4.0]);
        assert_eq!(v, axpby(0.5, &[1.0, -2.0], 2.0, &[4.0, 4.0]));
    }

    #[test]
    fn projection_clamps_to_box() {
        let p = project_box(&[-5.0, 0.5, 5.0], &[0.0, 0.0, 0.0], &[1.0, 1.0, 1.0]);
        assert_eq!(p, vec![0.0, 0.5, 1.0]);
        // Projection is idempotent.
        assert_eq!(project_box(&p, &[0.0, 0.0, 0.0], &[1.0, 1.0, 1.0]), p);
    }

    #[test]
    fn project_box_into_matches_allocating_form() {
        let mut x = vec![-5.0, 0.5, 5.0, 2.0, -1.0];
        let l = vec![0.0; 5];
        let u = vec![1.0; 5];
        let want = project_box(&x, &l, &u);
        project_box_into(&mut x, &l, &u);
        assert_eq!(x, want);
    }

    #[test]
    fn geomean_of_constants() {
        assert!((geomean(&[4.0, 4.0, 4.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
        assert!(geomean(&[]).is_nan());
    }
}
