//! Fill-reducing orderings for symmetric sparse factorization.
//!
//! The paper's compiler permutes the KKT matrix with AMD [2] before
//! factorization. We implement a minimum-degree ordering on a quotient
//! graph with element absorption ([`Ordering::MinDegree`], an
//! Amestoy–Davis–Duff-style algorithm with exact external degrees — see
//! DESIGN.md §1 for why this substitution preserves behaviour), plus reverse
//! Cuthill–McKee ([`Ordering::Rcm`]) and the identity ordering
//! ([`Ordering::Natural`]) as baselines for the ordering ablation bench.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::{CscMatrix, Permutation, Result, SparseError};

/// Selects the fill-reducing ordering applied before LDLᵀ factorization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Ordering {
    /// No permutation (identity).
    Natural,
    /// Reverse Cuthill–McKee: bandwidth-reducing BFS ordering.
    Rcm,
    /// Minimum degree with element absorption (AMD-style).
    #[default]
    MinDegree,
}

/// Computes the selected ordering for a symmetric matrix given by its upper
/// triangle. Returns a [`Permutation`] with `perm[new] = old`.
///
/// # Errors
///
/// Returns [`SparseError::NotSquare`] for rectangular input.
pub fn compute(a: &CscMatrix, method: Ordering) -> Result<Permutation> {
    if a.nrows() != a.ncols() {
        return Err(SparseError::NotSquare {
            nrows: a.nrows(),
            ncols: a.ncols(),
        });
    }
    match method {
        Ordering::Natural => Ok(Permutation::identity(a.ncols())),
        Ordering::Rcm => Ok(rcm(a)),
        Ordering::MinDegree => Ok(min_degree(a)),
    }
}

/// Builds the undirected adjacency structure (no diagonal, both directions)
/// from the upper-triangle pattern.
fn adjacency(a: &CscMatrix) -> Vec<Vec<usize>> {
    let n = a.ncols();
    let mut adj = vec![Vec::new(); n];
    for (i, j, _) in a.iter() {
        if i != j {
            adj[i].push(j);
            adj[j].push(i);
        }
    }
    for list in &mut adj {
        list.sort_unstable();
        list.dedup();
    }
    adj
}

/// Reverse Cuthill–McKee ordering.
fn rcm(a: &CscMatrix) -> Permutation {
    let n = a.ncols();
    let adj = adjacency(a);
    let degree: Vec<usize> = adj.iter().map(Vec::len).collect();
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    // Start each component's BFS from a minimum-degree vertex (a cheap
    // stand-in for a pseudo-peripheral vertex).
    let mut starts: Vec<usize> = (0..n).collect();
    starts.sort_unstable_by_key(|&v| degree[v]);
    for &start in &starts {
        if visited[start] {
            continue;
        }
        visited[start] = true;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let mut nbrs: Vec<usize> = adj[v].iter().copied().filter(|&u| !visited[u]).collect();
            nbrs.sort_unstable_by_key(|&u| degree[u]);
            for u in nbrs {
                visited[u] = true;
                queue.push_back(u);
            }
        }
    }
    order.reverse();
    Permutation::from_vec(order).expect("bfs visits every vertex exactly once")
}

/// Minimum-degree ordering on a quotient graph with element absorption.
///
/// Eliminated vertices become *elements* (reusing their index); the
/// adjacency of a live variable is the union of its remaining variable
/// neighbours and the members of its adjacent elements. Degrees are exact
/// external degrees recomputed with a marker sweep after each elimination —
/// the accuracy of classical MMD with the data structures of AMD.
fn min_degree(a: &CscMatrix) -> Permutation {
    let n = a.ncols();
    let mut var_adj = adjacency(a);
    // elem_adj[u]: element ids adjacent to variable u.
    let mut elem_adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    // elements[e]: member variables of element e (meaningful once eliminated).
    let mut elements: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut eliminated = vec![false; n];
    let mut absorbed = vec![false; n];
    let mut degree: Vec<usize> = var_adj.iter().map(Vec::len).collect();
    // Marker array with version tags for set unions.
    let mut mark = vec![usize::MAX; n];
    let mut stamp = 0usize;

    let mut heap: BinaryHeap<Reverse<(usize, usize)>> =
        (0..n).map(|v| Reverse((degree[v], v))).collect();
    let mut order = Vec::with_capacity(n);

    // Computes the current external degree of `u` with a marker sweep.
    let external_degree = |u: usize,
                           var_adj: &[Vec<usize>],
                           elem_adj: &[Vec<usize>],
                           elements: &[Vec<usize>],
                           eliminated: &[bool],
                           absorbed: &[bool],
                           mark: &mut [usize],
                           stamp: usize|
     -> usize {
        let mut d = 0usize;
        mark[u] = stamp;
        for &w in &var_adj[u] {
            if !eliminated[w] && mark[w] != stamp {
                mark[w] = stamp;
                d += 1;
            }
        }
        for &e in &elem_adj[u] {
            if absorbed[e] {
                continue;
            }
            for &w in &elements[e] {
                if !eliminated[w] && mark[w] != stamp {
                    mark[w] = stamp;
                    d += 1;
                }
            }
        }
        d
    };

    while let Some(Reverse((d, v))) = heap.pop() {
        if eliminated[v] || d != degree[v] {
            continue; // stale heap entry
        }
        eliminated[v] = true;
        order.push(v);

        // Gather Lv: the live neighbourhood of v (variables reachable via
        // variable edges or elements of v).
        stamp += 1;
        mark[v] = stamp;
        let mut lv: Vec<usize> = Vec::new();
        for &u in &var_adj[v] {
            if !eliminated[u] && mark[u] != stamp {
                mark[u] = stamp;
                lv.push(u);
            }
        }
        for &e in &elem_adj[v] {
            if absorbed[e] {
                continue;
            }
            for &u in &elements[e] {
                if !eliminated[u] && mark[u] != stamp {
                    mark[u] = stamp;
                    lv.push(u);
                }
            }
            absorbed[e] = true; // e is absorbed by the new element v
        }

        // v becomes an element with members Lv.
        elements[v].clone_from(&lv);
        let lv_stamp = stamp;

        // First pass: prune adjacency lists while the Lv markers are valid
        // (the degree sweeps below reuse the marker array).
        for &u in &lv {
            // Drop eliminated vertices and vertices now covered by element v
            // (members of Lv).
            var_adj[u].retain(|&w| !eliminated[w] && mark[w] != lv_stamp);
            // Prune absorbed elements; add element v.
            elem_adj[u].retain(|&e| !absorbed[e]);
            elem_adj[u].push(v);
        }
        // Second pass: exact external degree updates.
        for &u in &lv {
            stamp += 1;
            degree[u] = external_degree(
                u,
                &var_adj,
                &elem_adj,
                &elements,
                &eliminated,
                &absorbed,
                &mut mark,
                stamp,
            );
            heap.push(Reverse((degree[u], u)));
        }
    }
    Permutation::from_vec(order).expect("every vertex eliminated exactly once")
}

/// Counts the below-diagonal fill of the LDLᵀ factor of `PAPᵀ` for a given
/// ordering — the metric the ordering ablation bench reports.
///
/// # Errors
///
/// Propagates structural errors from permutation and elimination-tree
/// construction.
pub fn fill_in(a: &CscMatrix, method: Ordering) -> Result<usize> {
    let p = compute(a, method)?;
    let permuted = p.sym_perm_upper(a)?;
    let tree = crate::etree::EliminationTree::from_upper(&permuted)?;
    Ok(tree.l_nnz())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Star graph: vertex 0 connected to all others. Natural order is the
    /// worst case (eliminating the hub first gives a dense factor); any
    /// minimum-degree order eliminates leaves first giving zero fill beyond
    /// the original edges.
    fn star(n: usize) -> CscMatrix {
        let mut d = vec![0.0; n * n];
        for i in 0..n {
            d[i * n + i] = 4.0;
            if i > 0 {
                d[i] = 1.0; // (0, i) upper entry
            }
        }
        CscMatrix::from_dense(n, n, &d).upper_triangle().unwrap()
    }

    #[test]
    fn min_degree_avoids_star_fill() {
        let a = star(12);
        let natural_hub_first = {
            // Force the hub to be eliminated first by reversing: natural
            // order already eliminates the hub (vertex 0) first.
            fill_in(&a, Ordering::Natural).unwrap()
        };
        let md = fill_in(&a, Ordering::MinDegree).unwrap();
        assert_eq!(md, 11, "min degree keeps the star's original 11 edges only");
        assert!(natural_hub_first > md, "hub-first must create fill");
    }

    #[test]
    fn orderings_are_valid_permutations() {
        let a = star(7);
        for method in [Ordering::Natural, Ordering::Rcm, Ordering::MinDegree] {
            let p = compute(&a, method).unwrap();
            assert_eq!(p.len(), 7);
        }
    }

    #[test]
    fn natural_is_identity() {
        let a = star(5);
        let p = compute(&a, Ordering::Natural).unwrap();
        assert_eq!(p.perm(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn rcm_reduces_bandwidth_on_shuffled_chain() {
        // A chain 0-5-1-4-2-3 (a path with scrambled labels) has large
        // natural bandwidth; RCM recovers a banded order.
        let edges = [(0usize, 5usize), (5, 1), (1, 4), (4, 2), (2, 3)];
        let n = 6;
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        for i in 0..n {
            rows.push(i);
            cols.push(i);
            vals.push(4.0);
        }
        for &(i, j) in &edges {
            let (a, b) = (i.min(j), i.max(j));
            rows.push(a);
            cols.push(b);
            vals.push(1.0);
        }
        let a = CscMatrix::from_triplet_parts(n, n, &rows, &cols, &vals).unwrap();
        let bandwidth = |p: &Permutation| -> usize {
            edges
                .iter()
                .map(|&(i, j)| p.inv()[i].abs_diff(p.inv()[j]))
                .max()
                .unwrap()
        };
        let natural = bandwidth(&Permutation::identity(n));
        let rcm_bw = bandwidth(&compute(&a, Ordering::Rcm).unwrap());
        assert_eq!(rcm_bw, 1, "a path graph reorders to bandwidth 1");
        assert!(natural > rcm_bw);
    }

    #[test]
    fn min_degree_on_grid_beats_natural() {
        // 2D 6x6 grid Laplacian pattern.
        let k = 6;
        let n = k * k;
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        for i in 0..n {
            rows.push(i);
            cols.push(i);
            vals.push(4.0);
        }
        for r in 0..k {
            for c in 0..k {
                let v = r * k + c;
                if c + 1 < k {
                    rows.push(v);
                    cols.push(v + 1);
                    vals.push(-1.0);
                }
                if r + 1 < k {
                    rows.push(v);
                    cols.push(v + k);
                    vals.push(-1.0);
                }
            }
        }
        let a = CscMatrix::from_triplet_parts(n, n, &rows, &cols, &vals).unwrap();
        let nat = fill_in(&a, Ordering::Natural).unwrap();
        let md = fill_in(&a, Ordering::MinDegree).unwrap();
        assert!(
            md < nat,
            "min degree ({md}) should beat natural ({nat}) on a grid"
        );
    }

    #[test]
    fn rectangular_input_rejected() {
        let a = CscMatrix::zeros(2, 3);
        assert!(compute(&a, Ordering::MinDegree).is_err());
    }

    #[test]
    fn diagonal_matrix_any_order_zero_fill() {
        let a = CscMatrix::identity(8);
        for method in [Ordering::Natural, Ordering::Rcm, Ordering::MinDegree] {
            assert_eq!(fill_in(&a, method).unwrap(), 0);
        }
    }
}
