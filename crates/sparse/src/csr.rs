use crate::CscMatrix;

/// A sparse matrix in Compressed Sparse Row (CSR) format.
///
/// The MIB compiler schedules the MAC (row-oriented multiply–accumulate)
/// primitive by walking matrix *rows*; CSR gives it contiguous access to the
/// nonzeros of each row, mirroring how the hardware streams row segments from
/// HBM (Section III.A of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_ind: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Converts a CSC matrix to CSR.
    pub fn from_csc(a: &CscMatrix) -> Self {
        // CSR of A has the same arrays as CSC of Aᵀ.
        let t = a.transpose();
        CsrMatrix {
            nrows: a.nrows(),
            ncols: a.ncols(),
            row_ptr: t.col_ptr().to_vec(),
            col_ind: t.row_ind().to_vec(),
            values: t.values().to_vec(),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.col_ind.len()
    }

    /// The row pointer array (`nrows + 1` entries).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The column index array.
    pub fn col_ind(&self) -> &[usize] {
        &self.col_ind
    }

    /// The stored values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterates over the `(col, value)` entries of row `i` in increasing
    /// column order.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nrows`.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let range = self.row_ptr[i]..self.row_ptr[i + 1];
        self.col_ind[range.clone()]
            .iter()
            .copied()
            .zip(self.values[range].iter().copied())
    }

    /// Number of nonzeros in row `i`.
    pub fn row_nnz(&self, i: usize) -> usize {
        self.row_ptr[i + 1] - self.row_ptr[i]
    }

    /// Computes `y = A * x` row by row.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "csr spmv: x has wrong length");
        (0..self.nrows)
            .map(|i| self.row(i).map(|(j, v)| v * x[j]).sum())
            .collect()
    }

    /// Converts back to CSC.
    pub fn to_csc(&self) -> CscMatrix {
        // CSR arrays of A are CSC arrays of Aᵀ; transpose once more.
        CscMatrix::from_parts(
            self.ncols,
            self.nrows,
            self.row_ptr.clone(),
            self.col_ind.clone(),
            self.values.clone(),
        )
        .expect("csr invariants imply csc invariants")
        .transpose()
    }
}

impl From<&CscMatrix> for CsrMatrix {
    fn from(a: &CscMatrix) -> Self {
        CsrMatrix::from_csc(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csc_csr_round_trip() {
        let a = CscMatrix::from_dense(2, 3, &[1.0, 0.0, 2.0, 0.0, 3.0, 0.0]);
        let r = a.to_csr();
        assert_eq!(r.nnz(), 3);
        assert_eq!(r.row(0).collect::<Vec<_>>(), vec![(0, 1.0), (2, 2.0)]);
        assert_eq!(r.row(1).collect::<Vec<_>>(), vec![(1, 3.0)]);
        assert_eq!(r.to_csc(), a);
    }

    #[test]
    fn csr_spmv_matches_csc() {
        let a = CscMatrix::from_dense(3, 2, &[1.0, 2.0, 0.0, -1.0, 4.0, 0.5]);
        let x = [2.0, -3.0];
        assert_eq!(a.to_csr().mul_vec(&x), a.mul_vec(&x));
    }

    #[test]
    fn row_nnz_counts() {
        let a = CscMatrix::from_dense(2, 2, &[1.0, 1.0, 0.0, 1.0]);
        let r = a.to_csr();
        assert_eq!(r.row_nnz(0), 2);
        assert_eq!(r.row_nnz(1), 1);
    }
}
