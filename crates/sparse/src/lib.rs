//! Sparse linear-algebra substrate for the Multi-Issue Butterfly QP stack.
//!
//! This crate implements, from scratch, everything the OSQP-style solver and
//! the MIB compiler need from a sparse matrix library:
//!
//! * [`CscMatrix`] / [`CsrMatrix`] compressed storage with validated
//!   construction from [`TripletMatrix`] (COO) data,
//! * structural operations: transpose, horizontal/vertical/diagonal stacking,
//!   Kronecker products, sub-matrix extraction, symmetric permutation,
//! * matrix–vector products, including the symmetric-upper-triangular product
//!   used for the objective matrix `P`,
//! * fill-reducing orderings ([`order`]): minimum degree with approximate
//!   external degrees, reverse Cuthill–McKee, and the natural order,
//! * the elimination tree machinery ([`etree`]): Liu's algorithm, postorder,
//!   row/column non-zero counts,
//! * an up-looking sparse LDLᵀ factorization ([`ldl`]) in the style of QDLDL
//!   (the factorization OSQP ships), with separate symbolic and numeric
//!   phases and both row- and column-oriented triangular solves,
//! * allocation-free `_into` kernels for every hot-path product and solve,
//!   backed by a reusable scratch-buffer pool ([`SparseWorkspace`]).
//!
//! The scalar type is `f64` throughout: the paper's FPGA prototype uses
//! floating-point function units, and `f64` matches the reference OSQP
//! implementation the paper benchmarks against.
//!
//! # Example
//!
//! ```
//! use mib_sparse::{CscMatrix, TripletMatrix};
//!
//! # fn main() -> Result<(), mib_sparse::SparseError> {
//! let mut t = TripletMatrix::new(2, 2);
//! t.push(0, 0, 4.0)?;
//! t.push(1, 1, 2.0)?;
//! let m = CscMatrix::from_triplets(&t)?;
//! let y = m.mul_vec(&[1.0, 1.0]);
//! assert_eq!(y, vec![4.0, 2.0]);
//! # Ok(())
//! # }
//! ```

// `unsafe` is denied crate-wide; the single, audited exception is the
// `simd` module, whose `core::arch` intrinsic bodies are gated behind
// runtime feature detection and differentially tested bit-for-bit
// against the safe portable path.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod csc;
mod csr;
mod error;
pub mod etree;
pub mod ldl;
pub mod order;
mod perm;
#[allow(unsafe_code)]
pub mod simd;
mod stack;
mod triplet;
pub mod vector;
mod workspace;

pub use csc::CscMatrix;
pub use csr::CsrMatrix;
pub use error::SparseError;
pub use perm::Permutation;
pub use stack::{block_diag, hstack, kron, vstack};
pub use triplet::TripletMatrix;
pub use workspace::SparseWorkspace;

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, SparseError>;
