//! mib-obs: the observability admin plane.
//!
//! A deliberately tiny HTTP/1.1 server — std sockets, no async runtime,
//! no HTTP library — that exposes the read side of a running
//! [`QpServer`] on a separate port from the wire protocol:
//!
//! | route | body |
//! |---|---|
//! | `GET /metrics` | [`Metrics::render`] verbatim — byte-identical to an in-process snapshot |
//! | `GET /healthz` | `200 ok` / `503 shedding` from the rolling shed ratio |
//! | `GET /slo` | burn-rate / rolling-quantile text from [`ObsPlane::render_slo`] |
//! | `GET /trace` | index of retained flight-recorder traces (id, reason, records) |
//! | `GET /trace/<32-hex-id>` | that trace as Chrome `chrome://tracing` JSON |
//!
//! The listener is *hung off* the serving stack, never in front of it:
//! every handler only reads shared state (atomic counters, the bounded
//! flight ring, the rolling windows), so a slow or hostile scraper can
//! degrade nothing but its own connection. Responses always carry
//! `Content-Length` and `Connection: close`; one request per
//! connection keeps the parser ~40 lines and removes every keep-alive
//! state machine.
//!
//! [`Metrics::render`]: mib_serve::Metrics::render
//! [`ObsPlane::render_slo`]: mib_serve::ObsPlane::render_slo

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use mib_serve::QpServer;
use mib_trace::{format_trace_id, parse_trace_id};

/// Cap on an inbound request head. Anything larger than this is not a
/// scrape, it is a mistake (or an attack) — the connection is closed.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// How long a connection may dribble its request line before the
/// handler gives up on it.
const REQUEST_PATIENCE: Duration = Duration::from_secs(2);

/// The admin-plane HTTP listener. Dropping it stops the acceptor and
/// joins every in-flight handler thread.
pub struct AdminServer {
    shared: Arc<AdminShared>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

struct AdminShared {
    qp: Arc<QpServer>,
    stop: AtomicBool,
}

impl AdminServer {
    /// Binds `addr` (use port 0 to let the OS pick) and starts serving
    /// the admin routes against `qp`.
    ///
    /// # Errors
    ///
    /// Propagates listener bind/configuration failures.
    pub fn bind<A: ToSocketAddrs>(addr: A, qp: Arc<QpServer>) -> io::Result<AdminServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(AdminShared {
            qp,
            stop: AtomicBool::new(false),
        });
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            thread::Builder::new()
                .name("mib-obs-admin".into())
                .spawn(move || accept_loop(&listener, &shared, &conns))
                .expect("spawn admin acceptor thread")
        };
        Ok(AdminServer {
            shared,
            local_addr,
            acceptor: Some(acceptor),
            conns,
        })
    }

    /// The bound address of the admin listener.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting and joins all handler threads. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        let handles: Vec<_> = {
            let mut conns = self.conns.lock().expect("admin connection registry lock");
            conns.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for AdminServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<AdminShared>,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                let handle = thread::Builder::new()
                    .name("mib-obs-conn".into())
                    .spawn(move || serve_connection(stream, &shared))
                    .expect("spawn admin connection thread");
                conns
                    .lock()
                    .expect("admin connection registry lock")
                    .push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => thread::sleep(Duration::from_millis(2)),
        }
    }
}

fn serve_connection(mut stream: TcpStream, shared: &Arc<AdminShared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
    if let Some((method, path)) = read_request(&mut stream, &shared.stop) {
        let response = route(shared, &method, &path);
        let _ = stream.write_all(response.as_bytes());
        let _ = stream.flush();
    }
    let _ = stream.shutdown(Shutdown::Both);
}

/// Reads until the blank line ending the request head and returns
/// `(method, path)` from the request line. `None` on malformed input,
/// timeout, or shutdown.
fn read_request(stream: &mut TcpStream, stop: &AtomicBool) -> Option<(String, String)> {
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    let patience = Instant::now() + REQUEST_PATIENCE;
    loop {
        if stop.load(Ordering::SeqCst) || Instant::now() > patience {
            return None;
        }
        if head.windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
        match stream.read(&mut buf) {
            Ok(0) => return None,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.len() > MAX_REQUEST_BYTES {
                    return None;
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(_) => return None,
        }
    }
    let head = String::from_utf8_lossy(&head);
    let request_line = head.lines().next()?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next()?.to_string();
    let path = parts.next()?.to_string();
    Some((method, path))
}

/// Dispatches one request to its handler and serializes the full
/// HTTP/1.1 response (status line, headers, body).
fn route(shared: &Arc<AdminShared>, method: &str, path: &str) -> String {
    if method != "GET" {
        return respond(
            405,
            "Method Not Allowed",
            "text/plain",
            "only GET is served\n",
        );
    }
    let qp = &shared.qp;
    let obs = qp.obs();
    match path {
        "/metrics" => respond(
            200,
            "OK",
            "text/plain; version=0.0.4",
            &qp.metrics().render(),
        ),
        "/healthz" => {
            let (ok, body) = obs.healthz(Instant::now());
            if ok {
                respond(200, "OK", "text/plain", &body)
            } else {
                respond(503, "Service Unavailable", "text/plain", &body)
            }
        }
        "/slo" => respond(200, "OK", "text/plain", &obs.render_slo(Instant::now())),
        "/trace" | "/trace/" => {
            let mut body = String::new();
            for (id, reason, records) in obs.flight().index() {
                let _ = writeln!(
                    body,
                    "{} {} {}",
                    format_trace_id(id),
                    reason.as_str(),
                    records
                );
            }
            respond(200, "OK", "text/plain", &body)
        }
        _ => match path.strip_prefix("/trace/").and_then(parse_trace_id) {
            Some(id) => match obs.flight().lookup(id) {
                Some(record) => respond(200, "OK", "application/json", &record.to_chrome_json()),
                None => respond(404, "Not Found", "text/plain", "no retained trace\n"),
            },
            None => respond(404, "Not Found", "text/plain", "unknown route\n"),
        },
    }
}

fn respond(code: u16, phrase: &str, content_type: &str, body: &str) -> String {
    format!(
        "HTTP/1.1 {code} {phrase}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

/// Issues one blocking `GET path` against an admin listener and returns
/// `(status_code, body)`. Shared by the integration tests, the load
/// bench's scraper thread and `scripts/check.sh`'s smoke gate — having
/// it here keeps all three talking exactly the protocol the server
/// speaks.
///
/// # Errors
///
/// I/O failures connecting/reading, or a response head that is not
/// minimal valid HTTP/1.1.
pub fn http_get(addr: SocketAddr, path: &str) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: mib\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8(raw)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8 response"))?;
    let header_end = text
        .find("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing header terminator"))?;
    let status = text
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|c| c.parse::<u16>().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed status line"))?;
    Ok((status, text[header_end + 4..].to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mib_serve::{ObsConfig, ServeConfig};

    fn admin_fixture() -> (AdminServer, SocketAddr, Arc<QpServer>) {
        let p = mib_sparse::CscMatrix::from_dense(2, 2, &[4.0, 1.0, 0.0, 2.0])
            .upper_triangle()
            .unwrap();
        let a = mib_sparse::CscMatrix::from_dense(3, 2, &[1.0, 1.0, 1.0, 0.0, 0.0, 1.0]);
        let problem = mib_qp::Problem::new(
            p,
            vec![1.0, 1.0],
            a,
            vec![1.0, 0.0, 0.0],
            vec![1.0, 0.7, 0.7],
        )
        .unwrap();
        let qp = Arc::new(QpServer::new(ServeConfig {
            obs: ObsConfig {
                enabled: true,
                ..ObsConfig::default()
            },
            ..ServeConfig::default()
        }));
        let tenant = qp.register(problem, mib_qp::Settings::default()).unwrap();
        let ticket = qp
            .submit(tenant, mib_serve::Request::with_q(vec![0.5, 1.5]))
            .unwrap();
        assert!(ticket.wait().outcome.is_solved());
        let admin = AdminServer::bind("127.0.0.1:0", Arc::clone(&qp)).unwrap();
        let addr = admin.local_addr();
        (admin, addr, qp)
    }

    #[test]
    fn metrics_route_matches_in_process_render_byte_for_byte() {
        let (mut admin, addr, qp) = admin_fixture();
        // Quiesced server: no concurrent mutation, so the scrape must
        // equal a snapshot taken around it. (The under-load variant
        // lives in the crate's integration tests.)
        let (status, body) = http_get(addr, "/metrics").unwrap();
        let snapshot = qp.metrics().render();
        assert_eq!(status, 200);
        assert_eq!(body, snapshot, "scrape must be Metrics::render() verbatim");
        admin.shutdown();
        qp.shutdown();
    }

    #[test]
    fn healthz_and_slo_routes_serve_text() {
        let (mut admin, addr, qp) = admin_fixture();
        let (status, body) = http_get(addr, "/healthz").unwrap();
        assert_eq!(status, 200);
        assert!(body.starts_with("ok"), "healthy server reports ok: {body}");
        let (status, body) = http_get(addr, "/slo").unwrap();
        assert_eq!(status, 200);
        assert!(
            body.contains("mib_slo_burn_rate"),
            "missing burn rate: {body}"
        );
        admin.shutdown();
        qp.shutdown();
    }

    #[test]
    fn unknown_routes_and_methods_are_refused() {
        let (mut admin, addr, qp) = admin_fixture();
        let (status, _) = http_get(addr, "/nope").unwrap();
        assert_eq!(status, 404);
        let (status, _) = http_get(addr, "/trace/not-a-trace-id").unwrap();
        assert_eq!(status, 404);
        let (status, _) =
            http_get(addr, &format!("/trace/{}", format_trace_id(0xdead_beef))).unwrap();
        assert_eq!(status, 404, "well-formed but unknown id is a 404");

        // Non-GET: speak the wire by hand.
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "POST /metrics HTTP/1.1\r\nHost: mib\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 405"), "got: {raw}");
        admin.shutdown();
        qp.shutdown();
    }

    #[test]
    fn trace_index_lists_retained_flight_records() {
        let (mut admin, addr, qp) = admin_fixture();
        // Force a retained record through the public shed path.
        qp.obs().record_shed(0x77, "queue_full", Instant::now());
        let (status, body) = http_get(addr, "/trace").unwrap();
        assert_eq!(status, 200);
        assert!(
            body.contains(&format_trace_id(0x77)),
            "index missing shed trace: {body}"
        );
        let (status, json) = http_get(addr, &format!("/trace/{}", format_trace_id(0x77))).unwrap();
        assert_eq!(status, 200);
        assert!(json.contains("traceEvents"), "not chrome json: {json}");
        admin.shutdown();
        qp.shutdown();
    }
}
