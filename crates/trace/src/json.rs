//! A small strict JSON syntax validator (RFC 8259), used by tests and
//! `trace_report` to certify exporter output without a serde dependency.

/// Validates that `s` is exactly one well-formed JSON value (with
/// optional surrounding whitespace). Returns the byte offset and a
/// message on the first error.
pub fn validate_json(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing data after the JSON value"));
    }
    Ok(())
}

/// Nesting depth bound — far above anything the exporter emits, small
/// enough that the recursive parser cannot overflow the stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("invalid JSON at byte {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", want as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<(), String> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("expected a JSON value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value(depth + 1)?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => return Ok(()),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or '}' in object"));
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value(depth + 1)?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b']') => return Ok(()),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or ']' in array"));
                }
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.bump() {
                Some(b'"') => return Ok(()),
                Some(b'\\') => match self.bump() {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {}
                    Some(b'u') => {
                        for _ in 0..4 {
                            if !self.bump().is_some_and(|b| b.is_ascii_hexdigit()) {
                                return Err(self.err("bad \\u escape"));
                            }
                        }
                    }
                    _ => return Err(self.err("bad escape character")),
                },
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {}
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => self.digits()?,
            _ => return Err(self.err("expected a digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits()?;
        }
        Ok(())
    }

    fn digits(&mut self) -> Result<(), String> {
        if !self.peek().is_some_and(|b| b.is_ascii_digit()) {
            return Err(self.err("expected a digit"));
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for s in [
            "{}",
            "[]",
            "null",
            "true",
            "-0.5e+10",
            "\"a\\n\\u0041\"",
            r#"{"a":[1,2,{"b":null}],"c":"d"}"#,
            "  { \"x\" : [ 1 , 2 ] }  ",
            "0",
            "[0.125, 1e3, -7]",
        ] {
            validate_json(s).unwrap_or_else(|e| panic!("{s}: {e}"));
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for s in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "01",
            "1.",
            "1e",
            "nul",
            "\"unterminated",
            "\"bad\\q\"",
            "\"\\u12g4\"",
            "{} {}",
            "[1] extra",
            "Infinity",
            "NaN",
            "'single'",
            "{1: 2}",
        ] {
            assert!(validate_json(s).is_err(), "should reject: {s}");
        }
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = "[".repeat(4000) + &"]".repeat(4000);
        assert!(validate_json(&deep).is_err());
    }

    #[test]
    fn rejects_raw_control_characters() {
        assert!(validate_json("\"a\u{1}b\"").is_err());
    }
}
