//! Text summary exporter: aggregates spans and point events into a
//! terminal-friendly report.

use std::collections::BTreeMap;
use std::fmt::Write;

use crate::event::Event;
use crate::Trace;

#[derive(Default)]
struct SpanAgg {
    count: u64,
    total_ns: u64,
    max_ns: u64,
}

#[derive(Default)]
struct ScheduleAgg {
    count: u64,
    slots: u64,
    logical: u64,
    forced_appends: u64,
    predicted_cycles: u64,
}

/// Renders a human-readable summary: per-span wall-time aggregates
/// (matched `Begin`/`End` pairs, grouped by category and name), solver
/// iteration/ρ tallies, compiler cache and schedule-quality tallies.
/// Rows are sorted by name, so the layout is deterministic even though
/// the durations are not.
pub fn summarize(trace: &Trace) -> String {
    let mut spans: BTreeMap<(&str, &str), SpanAgg> = BTreeMap::new();
    let mut schedules: BTreeMap<&str, ScheduleAgg> = BTreeMap::new();
    let mut iterations: u64 = 0;
    let mut pcg_iters: u64 = 0;
    let mut kkt_ns: u64 = 0;
    let mut rho_updates: u64 = 0;
    let mut cache_hits: u64 = 0;
    let mut cache_misses: u64 = 0;
    let mut marks: u64 = 0;
    let mut unmatched: u64 = 0;

    for thread in &trace.threads {
        // Open spans on this thread: (span id, begin timestamp).
        let mut open: Vec<(u64, u64)> = Vec::new();
        for record in &thread.records {
            match record.event {
                Event::Begin { .. } => open.push((record.span, record.ts_ns)),
                Event::End { name, cat } => {
                    // Spans nest per thread, so a well-formed trace ends
                    // the innermost open span; a drained-mid-span trace
                    // may not — count those instead of guessing.
                    if open.last().is_some_and(|&(id, _)| id == record.span) {
                        let (_, begin_ts) = open.pop().expect("guarded by last()");
                        let agg = spans.entry((cat.as_str(), name)).or_default();
                        agg.count += 1;
                        let dur = record.ts_ns.saturating_sub(begin_ts);
                        agg.total_ns += dur;
                        agg.max_ns = agg.max_ns.max(dur);
                    } else {
                        unmatched += 1;
                    }
                }
                Event::Iteration {
                    pcg_iters: pcg,
                    kkt_ns: kkt,
                    ..
                } => {
                    iterations += 1;
                    pcg_iters += u64::from(pcg);
                    kkt_ns += kkt;
                }
                Event::RhoUpdate { .. } => rho_updates += 1,
                Event::CacheAccess { hit, .. } => {
                    if hit {
                        cache_hits += 1;
                    } else {
                        cache_misses += 1;
                    }
                }
                Event::ScheduleQuality {
                    name,
                    slots,
                    logical,
                    forced_appends,
                    predicted_cycles,
                } => {
                    let agg = schedules.entry(name).or_default();
                    agg.count += 1;
                    agg.slots += u64::from(slots);
                    agg.logical += u64::from(logical);
                    agg.forced_appends += u64::from(forced_appends);
                    agg.predicted_cycles += u64::from(predicted_cycles);
                }
                Event::Mark { .. } => marks += 1,
            }
        }
        unmatched += open.len() as u64;
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace summary: {} records on {} thread(s), {} dropped",
        trace.len(),
        trace.threads.len(),
        trace.dropped()
    );
    if !spans.is_empty() {
        out.push_str("\nspans (category/name, count, total, max):\n");
        for ((cat, name), agg) in &spans {
            let _ = writeln!(
                out,
                "  {cat:>8}/{name:<20} {:>6}  {:>12}  {:>12}",
                agg.count,
                fmt_ns(agg.total_ns),
                fmt_ns(agg.max_ns)
            );
        }
    }
    if iterations > 0 || rho_updates > 0 {
        out.push_str("\nsolver:\n");
        let _ = writeln!(
            out,
            "  iteration records {iterations}, pcg iterations {pcg_iters}, kkt time {}, rho updates {rho_updates}",
            fmt_ns(kkt_ns)
        );
    }
    if cache_hits + cache_misses > 0 {
        let _ = writeln!(
            out,
            "\ncompiler cache: {cache_hits} hit(s), {cache_misses} miss(es)"
        );
    }
    if !schedules.is_empty() {
        out.push_str(
            "\nschedules (program, count, slots, logical, forced appends, predicted cycles):\n",
        );
        for (name, agg) in &schedules {
            let _ = writeln!(
                out,
                "  {name:<12} {:>4}  {:>8}  {:>8}  {:>4}  {:>10}",
                agg.count, agg.slots, agg.logical, agg.forced_appends, agg.predicted_cycles
            );
        }
    }
    if marks > 0 {
        let _ = writeln!(out, "\nmarks: {marks}");
    }
    if unmatched > 0 {
        let _ = writeln!(out, "\nunmatched span boundaries: {unmatched}");
    }
    out
}

/// Formats nanoseconds with a readable unit.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        #[allow(clippy::cast_precision_loss)]
        let s = ns as f64 / 1e9;
        format!("{s:.3}s")
    } else if ns >= 1_000_000 {
        #[allow(clippy::cast_precision_loss)]
        let ms = ns as f64 / 1e6;
        format!("{ms:.3}ms")
    } else if ns >= 1_000 {
        #[allow(clippy::cast_precision_loss)]
        let us = ns as f64 / 1e3;
        format!("{us:.3}us")
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Category, Record};
    use crate::ThreadTrace;

    #[test]
    fn summarizes_spans_and_events() {
        let records = vec![
            Record {
                ts_ns: 100,
                span: 1,
                event: Event::Begin {
                    name: "solve",
                    cat: Category::Solver,
                },
            },
            Record {
                ts_ns: 200,
                span: 1,
                event: Event::Iteration {
                    algo: "admm",
                    iter: 25,
                    prim_res: 1.0,
                    dual_res: 2.0,
                    rho: 0.1,
                    pcg_iters: 5,
                    kkt_ns: 1000,
                },
            },
            Record {
                ts_ns: 300,
                span: 1,
                event: Event::CacheAccess {
                    name: "program_cache",
                    hit: true,
                },
            },
            Record {
                ts_ns: 2600,
                span: 1,
                event: Event::End {
                    name: "solve",
                    cat: Category::Solver,
                },
            },
        ];
        let trace = Trace {
            threads: vec![ThreadTrace {
                tid: 1,
                name: "main".into(),
                records,
                dropped: 0,
            }],
        };
        let s = summarize(&trace);
        assert!(s.contains("4 records"), "{s}");
        assert!(s.contains("solver/solve"), "{s}");
        assert!(s.contains("2.500us"), "{s}");
        assert!(s.contains("iteration records 1"), "{s}");
        assert!(s.contains("1 hit(s), 0 miss(es)"), "{s}");
    }

    #[test]
    fn counts_unmatched_boundaries() {
        let records = vec![Record {
            ts_ns: 100,
            span: 7,
            event: Event::Begin {
                name: "dangling",
                cat: Category::Other,
            },
        }];
        let trace = Trace {
            threads: vec![ThreadTrace {
                tid: 1,
                name: "main".into(),
                records,
                dropped: 0,
            }],
        };
        assert!(summarize(&trace).contains("unmatched span boundaries: 1"));
    }

    #[test]
    fn unit_formatting() {
        assert_eq!(fmt_ns(12), "12ns");
        assert_eq!(fmt_ns(1_500), "1.500us");
        assert_eq!(fmt_ns(2_000_000), "2.000ms");
        assert_eq!(fmt_ns(3_500_000_000), "3.500s");
    }
}
