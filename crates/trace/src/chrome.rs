//! Chrome trace-event JSON exporter.
//!
//! Emits the JSON Object Format understood by `chrome://tracing` and
//! Perfetto: a `traceEvents` array of `B`/`E` duration events (spans),
//! `i` instant events (point events), `C` counter events (per-iteration
//! residual tracks) and `M` metadata events (thread names). Written with
//! plain `std::fmt` — the workspace has no serde.
//!
//! ["JSON Object Format"]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use std::fmt::Write;

use crate::event::{Event, Record};
use crate::Trace;

/// Serializes the trace to Chrome trace-event JSON. The output is one
/// self-contained JSON object; [`crate::validate_json`] accepts it by
/// construction (pinned by tests).
pub fn to_chrome_json(trace: &Trace) -> String {
    let mut out = String::with_capacity(128 + trace.len() * 96);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for thread in &trace.threads {
        write_meta(&mut out, &mut first, thread.tid, &thread.name);
        for record in &thread.records {
            write_record(&mut out, &mut first, thread.tid, record);
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}");
    out
}

/// Writes the `thread_name` metadata event for one thread.
fn write_meta(out: &mut String, first: &mut bool, tid: u64, name: &str) {
    sep(out, first);
    out.push_str("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":");
    let _ = write!(out, "{tid}");
    out.push_str(",\"args\":{\"name\":");
    json_string(out, name);
    out.push_str("}}");
}

fn write_record(out: &mut String, first: &mut bool, tid: u64, record: &Record) {
    match record.event {
        Event::Begin { name, cat } => {
            event_head(out, first, name, cat.as_str(), 'B', tid, record.ts_ns);
            let _ = write!(out, ",\"args\":{{\"span\":{}}}}}", record.span);
        }
        Event::End { name, cat } => {
            event_head(out, first, name, cat.as_str(), 'E', tid, record.ts_ns);
            let _ = write!(out, ",\"args\":{{\"span\":{}}}}}", record.span);
        }
        Event::Mark { name, cat, value } => {
            event_head(out, first, name, cat.as_str(), 'i', tid, record.ts_ns);
            out.push_str(",\"s\":\"t\",\"args\":{\"value\":");
            json_f64(out, value);
            out.push_str("}}");
        }
        Event::Iteration {
            algo,
            iter,
            prim_res,
            dual_res,
            rho,
            pcg_iters,
            kkt_ns,
        } => {
            // A counter event draws the residual tracks...
            event_head(out, first, "residuals", "solver", 'C', tid, record.ts_ns);
            out.push_str(",\"args\":{\"prim_res\":");
            json_f64(out, prim_res);
            out.push_str(",\"dual_res\":");
            json_f64(out, dual_res);
            out.push_str(",\"rho\":");
            json_f64(out, rho);
            out.push_str("}}");
            // ... and an instant event carries the full payload.
            event_head(out, first, "iteration", "solver", 'i', tid, record.ts_ns);
            let _ = write!(
                out,
                ",\"s\":\"t\",\"args\":{{\"algo\":\"{algo}\",\"iter\":{iter},\
                 \"pcg_iters\":{pcg_iters},\"kkt_ns\":{kkt_ns}}}}}"
            );
        }
        Event::RhoUpdate {
            iter,
            rho_old,
            rho_new,
        } => {
            event_head(out, first, "rho_update", "solver", 'i', tid, record.ts_ns);
            let _ = write!(out, ",\"s\":\"t\",\"args\":{{\"iter\":{iter},\"rho_old\":");
            json_f64(out, rho_old);
            out.push_str(",\"rho_new\":");
            json_f64(out, rho_new);
            out.push_str("}}");
        }
        Event::CacheAccess { name, hit } => {
            event_head(out, first, name, "compiler", 'i', tid, record.ts_ns);
            let _ = write!(out, ",\"s\":\"t\",\"args\":{{\"hit\":{hit}}}}}");
        }
        Event::ScheduleQuality {
            name,
            slots,
            logical,
            forced_appends,
            predicted_cycles,
        } => {
            event_head(
                out,
                first,
                "schedule_quality",
                "compiler",
                'i',
                tid,
                record.ts_ns,
            );
            let _ = write!(
                out,
                ",\"s\":\"t\",\"args\":{{\"program\":\"{name}\",\"slots\":{slots},\
                 \"logical\":{logical},\"forced_appends\":{forced_appends},\
                 \"predicted_cycles\":{predicted_cycles}}}}}"
            );
        }
    }
}

/// Writes the common `{"name":…,"cat":…,"ph":…,"ts":…,"pid":1,"tid":…`
/// prefix (the event stays open for `args`).
fn event_head(
    out: &mut String,
    first: &mut bool,
    name: &str,
    cat: &str,
    ph: char,
    tid: u64,
    ts_ns: u64,
) {
    sep(out, first);
    out.push_str("{\"name\":");
    json_string(out, name);
    let _ = write!(
        out,
        ",\"cat\":\"{cat}\",\"ph\":\"{ph}\",\"ts\":{}.{:03},\"pid\":1,\"tid\":{tid}",
        ts_ns / 1000,
        ts_ns % 1000
    );
}

fn sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push(',');
    }
}

/// Writes a JSON string literal with the required escapes.
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes an `f64` as a JSON number (`null` for non-finite values, which
/// JSON cannot represent). Rust's shortest-roundtrip `Display` keeps the
/// value bit-exact for finite inputs, but always suffix integral values
/// so they read back as floats.
fn json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
        if v == v.trunc() && v.abs() < 1e15 {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Category;
    use crate::ThreadTrace;

    fn sample_trace() -> Trace {
        let records = vec![
            Record {
                ts_ns: 1000,
                span: 1,
                event: Event::Begin {
                    name: "solve",
                    cat: Category::Solver,
                },
            },
            Record {
                ts_ns: 1500,
                span: 1,
                event: Event::Iteration {
                    algo: "admm",
                    iter: 25,
                    prim_res: 1.25e-3,
                    dual_res: 3.0,
                    rho: 0.1,
                    pcg_iters: 12,
                    kkt_ns: 987,
                },
            },
            Record {
                ts_ns: 1600,
                span: 1,
                event: Event::RhoUpdate {
                    iter: 25,
                    rho_old: 0.1,
                    rho_new: 0.7,
                },
            },
            Record {
                ts_ns: 1700,
                span: 1,
                event: Event::CacheAccess {
                    name: "program_cache",
                    hit: false,
                },
            },
            Record {
                ts_ns: 1800,
                span: 1,
                event: Event::ScheduleQuality {
                    name: "iteration",
                    slots: 10,
                    logical: 30,
                    forced_appends: 0,
                    predicted_cycles: 15,
                },
            },
            Record {
                ts_ns: 1900,
                span: 1,
                event: Event::Mark {
                    name: "weird \"name\"\n",
                    cat: Category::Other,
                    value: f64::INFINITY,
                },
            },
            Record {
                ts_ns: 2000,
                span: 1,
                event: Event::End {
                    name: "solve",
                    cat: Category::Solver,
                },
            },
        ];
        Trace {
            threads: vec![ThreadTrace {
                tid: 1,
                name: "main".into(),
                records,
                dropped: 0,
            }],
        }
    }

    #[test]
    fn exporter_output_is_valid_json() {
        let json = to_chrome_json(&sample_trace());
        crate::validate_json(&json).expect("chrome export must be valid JSON");
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"rho_new\":0.7"));
        assert!(json.contains("\"algo\":\"admm\""));
        // Non-finite values become null, not invalid tokens.
        assert!(json.contains("\"value\":null"));
    }

    #[test]
    fn empty_trace_is_valid() {
        let json = to_chrome_json(&Trace::default());
        crate::validate_json(&json).expect("empty export must be valid JSON");
        assert!(json.starts_with("{\"traceEvents\":["));
    }

    #[test]
    fn floats_round_trip_through_display() {
        for v in [1.25e-3, 3.0, 0.1, f64::MIN_POSITIVE, 1.0 / 3.0, -2.5e300] {
            let mut s = String::new();
            json_f64(&mut s, v);
            let back: f64 = s.parse().expect("parseable");
            assert_eq!(back.to_bits(), v.to_bits(), "{v} -> {s}");
        }
    }

    #[test]
    fn string_escaping() {
        let mut s = String::new();
        json_string(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
