//! **mib-trace** — zero-cost-when-disabled structured tracing for the
//! MIB stack.
//!
//! The recorder is a set of thread-local bounded buffers of
//! `(monotonic_ts, span_id, event)` records behind a single process-wide
//! atomic enable flag:
//!
//! * **Disabled** (the default), every instrumentation site costs exactly
//!   one `Relaxed` atomic load and touches neither thread-local storage
//!   nor the heap — the solver's zero-allocation `solve_into` guarantee
//!   survives instrumentation (pinned by the workspace counting-allocator
//!   test).
//! * **Enabled**, [`span`] hands out a [`SpanGuard`] whose `Drop` closes
//!   the span, and point events ([`Event::Iteration`],
//!   [`Event::CacheAccess`], ...) are appended to the current thread's
//!   buffer. Buffers are bounded ([`BUFFER_CAPACITY`] records per
//!   thread); overflow drops new records and counts them, it never blocks
//!   or reallocates past the bound.
//!
//! [`take`] drains every thread's buffer into a [`Trace`], which exports
//! to Chrome trace-event JSON ([`Trace::to_chrome_json`], loadable in
//! Perfetto or `chrome://tracing`) or a human text summary
//! ([`Trace::summary`]).
//!
//! ```
//! use mib_trace::Category;
//!
//! mib_trace::enable();
//! {
//!     let _solve = mib_trace::span("solve", Category::Solver);
//!     mib_trace::mark("residual", Category::Solver, 1e-5);
//! }
//! let trace = mib_trace::take();
//! mib_trace::disable();
//! assert_eq!(trace.len(), 3); // Begin, Mark, End
//! let json = trace.to_chrome_json();
//! assert!(mib_trace::validate_json(&json).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
mod event;
mod flight;
mod json;
mod summary;

pub use chrome::to_chrome_json;
pub use event::{Category, Event, Record};
pub use flight::{format_trace_id, parse_trace_id, FlightRecord, FlightRecorder, KeepReason};
pub use json::validate_json;
pub use summary::summarize;

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Maximum records held per thread; further records are dropped (and
/// counted in [`ThreadTrace::dropped`]) until the buffer is drained.
pub const BUFFER_CAPACITY: usize = 1 << 16;

/// The single flag every instrumentation site checks.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Opt-in flag for high-frequency per-stage kernel spans
/// ([`Category::Kernel`]): these fire several times per solver iteration,
/// so they stay off even when tracing is otherwise enabled.
static KERNEL_SPANS: AtomicBool = AtomicBool::new(false);
/// Iteration stride for per-iteration kernel detail (1 = every
/// iteration; see [`set_kernel_span_stride`]).
static KERNEL_STRIDE: AtomicU32 = AtomicU32::new(1);
/// Process-unique span ids (0 is reserved for "no enclosing span").
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);
/// Trace-local thread ids, assigned at first use per thread.
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
/// Epoch all timestamps are measured from (set once, at first need).
static EPOCH: OnceLock<Instant> = OnceLock::new();
/// Every live (or drained-pending) thread buffer, so [`take`] can see
/// records from threads other than the caller, including exited ones.
static REGISTRY: Mutex<Vec<Arc<ThreadBuf>>> = Mutex::new(Vec::new());
/// Process-lifetime count of records lost to buffer overflow. Unlike the
/// per-drain [`ThreadTrace::dropped`] counters this one is never reset by
/// [`take`] — it is the monotonic series metrics exporters scrape.
static TOTAL_DROPPED: AtomicU64 = AtomicU64::new(0);

/// One thread's bounded record buffer, shared between the owning thread
/// (push) and [`take`] (drain).
struct ThreadBuf {
    tid: u64,
    name: String,
    records: Mutex<Vec<Record>>,
    dropped: AtomicU64,
}

impl ThreadBuf {
    fn push(&self, record: Record) {
        let mut records = self.records.lock().expect("trace buffer lock");
        if records.len() < BUFFER_CAPACITY {
            records.push(record);
        } else {
            drop(records);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            TOTAL_DROPPED.fetch_add(1, Ordering::Relaxed);
        }
    }
}

thread_local! {
    /// This thread's buffer, registered on first traced event.
    static LOCAL: Arc<ThreadBuf> = {
        let buf = Arc::new(ThreadBuf {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            name: std::thread::current().name().unwrap_or("unnamed").to_owned(),
            records: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
        });
        REGISTRY
            .lock()
            .expect("trace registry lock")
            .push(Arc::clone(&buf));
        buf
    };
    /// Innermost open span on this thread (0 at top level).
    static CURRENT_SPAN: Cell<u64> = const { Cell::new(0) };
}

/// Turns tracing on process-wide. Idempotent; the timestamp epoch is
/// pinned by the first call of the process.
pub fn enable() {
    EPOCH.get_or_init(Instant::now);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns tracing off process-wide. Records already buffered stay
/// available to [`take`]. Spans currently open keep their guards working
/// (their `End` is still recorded) so traces stay balanced.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether tracing is enabled — one `Relaxed` atomic load. Callers with
/// per-event payload computation hoist this once per hot region.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Opts in to per-stage kernel spans ([`Category::Kernel`]). They still
/// only record while tracing itself is [`enable`]d.
pub fn enable_kernel_spans() {
    KERNEL_SPANS.store(true, Ordering::SeqCst);
}

/// Turns kernel spans back off (the default).
pub fn disable_kernel_spans() {
    KERNEL_SPANS.store(false, Ordering::SeqCst);
}

/// Whether kernel spans should record: tracing enabled *and* kernel
/// spans opted in. Hot loops hoist this once per solve/iteration, like
/// [`enabled`].
#[inline]
pub fn kernel_spans() -> bool {
    enabled() && KERNEL_SPANS.load(Ordering::Relaxed)
}

/// Sets the kernel-detail stride: with stride `n`, instrumented solver
/// loops record their per-iteration kernel detail (stage spans and KKT
/// timing) only on iteration 1 and every `n`-th iteration thereafter.
///
/// Stride 1 — the default — records every iteration and is what the
/// offline attribution harnesses rely on for exact stage totals. The
/// serving plane raises the stride so always-on tracing prices a
/// *sample* of iterations instead of timestamping every one; retained
/// flight traces still carry representative kernel spans. `0` is
/// coerced to 1.
pub fn set_kernel_span_stride(stride: u32) {
    KERNEL_STRIDE.store(stride.max(1), Ordering::SeqCst);
}

/// The current kernel-detail stride (see [`set_kernel_span_stride`]).
/// Hot loops hoist this once per solve.
#[inline]
pub fn kernel_span_stride() -> u32 {
    KERNEL_STRIDE.load(Ordering::Relaxed).max(1)
}

/// Nanoseconds since the trace epoch.
fn now_ns() -> u64 {
    u64::try_from(EPOCH.get_or_init(Instant::now).elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Records lost to buffer overflow over the whole process lifetime.
/// Monotonic — [`take`] resets the per-drain counters but not this one —
/// so it renders directly as a Prometheus-style `_total` series.
pub fn total_dropped() -> u64 {
    TOTAL_DROPPED.load(Ordering::Relaxed)
}

/// Converts an [`Instant`] into nanoseconds since the trace epoch
/// (saturating at 0 for instants before the epoch). Lets callers build
/// synthetic [`Record`]s — e.g. a queue-wait span whose begin predates
/// the worker picking the request up — on the same clock as live spans.
pub fn timestamp_ns(at: Instant) -> u64 {
    let epoch = *EPOCH.get_or_init(Instant::now);
    u64::try_from(at.saturating_duration_since(epoch).as_nanos()).unwrap_or(u64::MAX)
}

/// Allocates a process-unique span id without opening a span — for
/// synthetic records built by hand (see [`timestamp_ns`]).
pub fn fresh_span_id() -> u64 {
    NEXT_SPAN.fetch_add(1, Ordering::Relaxed)
}

/// The calling thread's trace-local id and registered name.
pub fn thread_info() -> (u64, String) {
    LOCAL.with(|buf| (buf.tid, buf.name.clone()))
}

/// A position in the calling thread's record buffer (see [`cursor`]).
#[derive(Debug, Clone, Copy)]
pub struct Cursor {
    len: usize,
}

/// Marks the current end of the calling thread's buffer. Pair with
/// [`take_since`] to extract exactly the records this thread appended in
/// between — the tail-sampling primitive: cheap to capture per request,
/// and the records are only materialized for requests worth keeping.
pub fn cursor() -> Cursor {
    LOCAL.with(|buf| Cursor {
        len: buf.records.lock().expect("trace buffer lock").len(),
    })
}

/// Removes and returns the calling thread's records appended since
/// `cursor`. Only touches this thread's own buffer; a concurrent global
/// [`take`] may have already drained them, in which case the result is
/// simply shorter (the position is clamped, never out of bounds).
pub fn take_since(cursor: Cursor) -> Vec<Record> {
    LOCAL.with(|buf| {
        let mut records = buf.records.lock().expect("trace buffer lock");
        let at = cursor.len.min(records.len());
        records.split_off(at)
    })
}

/// Discards every record currently in the calling thread's buffer
/// without counting them as dropped. Housekeeping for long-lived worker
/// threads that consume their own records per request ([`take_since`])
/// and must not let ambient records (batch envelopes, marks recorded
/// between requests) accumulate to the buffer bound.
pub fn discard_local() {
    LOCAL.with(|buf| buf.records.lock().expect("trace buffer lock").clear());
}

/// Appends `record` to the current thread's buffer.
fn push(record: Record) {
    LOCAL.with(|buf| buf.push(record));
}

/// Records a point event under the innermost open span, if tracing is
/// enabled (one atomic load otherwise).
#[inline]
pub fn record(event: Event) {
    if !enabled() {
        return;
    }
    push(Record {
        ts_ns: now_ns(),
        span: CURRENT_SPAN.get(),
        event,
    });
}

/// Records a named scalar observation ([`Event::Mark`]).
#[inline]
pub fn mark(name: &'static str, cat: Category, value: f64) {
    record(Event::Mark { name, cat, value });
}

/// Opens a span; the returned guard records the matching end when
/// dropped. When tracing is disabled this is exactly one atomic load and
/// the guard's drop is free (a plain bool test, no atomics).
#[inline]
pub fn span(name: &'static str, cat: Category) -> SpanGuard {
    span_if(enabled(), name, cat)
}

/// Like [`span`], but gated on a caller-hoisted enable flag instead of
/// re-reading the global one: a hot region does `let tracing =
/// mib_trace::enabled();` once and opens all its spans through
/// `span_if(tracing, ...)` — zero further atomic loads when disabled.
/// With `active == true` the span records unconditionally (the caller
/// owns the staleness window, which only affects whether a final
/// span/event lands in the buffer).
#[inline]
pub fn span_if(active: bool, name: &'static str, cat: Category) -> SpanGuard {
    if !active {
        return SpanGuard {
            active: false,
            name,
            cat,
            id: 0,
            parent: 0,
        };
    }
    let id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
    let parent = CURRENT_SPAN.replace(id);
    push(Record {
        ts_ns: now_ns(),
        span: id,
        event: Event::Begin { name, cat },
    });
    SpanGuard {
        active: true,
        name,
        cat,
        id,
        parent,
    }
}

/// Like [`record`], but gated on a caller-hoisted flag (see [`span_if`]).
#[inline]
pub fn record_if(active: bool, event: Event) {
    if active {
        push(Record {
            ts_ns: now_ns(),
            span: CURRENT_SPAN.get(),
            event,
        });
    }
}

/// Guard for an open span (see [`span`]). Must stay on the thread that
/// opened it — spans delimit per-thread regions.
#[must_use = "dropping the guard immediately closes the span"]
#[derive(Debug)]
pub struct SpanGuard {
    active: bool,
    name: &'static str,
    cat: Category,
    id: u64,
    parent: u64,
}

impl SpanGuard {
    /// The span's process-unique id (0 when tracing was disabled at
    /// creation).
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.active {
            CURRENT_SPAN.set(self.parent);
            push(Record {
                ts_ns: now_ns(),
                span: self.id,
                event: Event::End {
                    name: self.name,
                    cat: self.cat,
                },
            });
        }
    }
}

/// All records drained from one thread's buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadTrace {
    /// Trace-local thread id (dense, assigned at first traced event).
    pub tid: u64,
    /// The thread's name at registration ("unnamed" if none).
    pub name: String,
    /// Drained records, in recording order.
    pub records: Vec<Record>,
    /// Records lost to buffer overflow since the previous drain.
    pub dropped: u64,
}

/// A drained trace: every thread's records since the previous drain.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Per-thread record sequences, sorted by thread id.
    pub threads: Vec<ThreadTrace>,
}

impl Trace {
    /// Total number of records across all threads.
    pub fn len(&self) -> usize {
        self.threads.iter().map(|t| t.records.len()).sum()
    }

    /// `true` when no thread recorded anything.
    pub fn is_empty(&self) -> bool {
        self.threads.iter().all(|t| t.records.is_empty())
    }

    /// Total records lost to buffer overflow.
    pub fn dropped(&self) -> u64 {
        self.threads.iter().map(|t| t.dropped).sum()
    }

    /// Iterates every record (thread by thread, recording order within a
    /// thread).
    pub fn records(&self) -> impl Iterator<Item = &Record> {
        self.threads.iter().flat_map(|t| t.records.iter())
    }

    /// Exports to Chrome trace-event JSON (see [`to_chrome_json`]).
    pub fn to_chrome_json(&self) -> String {
        chrome::to_chrome_json(self)
    }

    /// Renders the human-readable text summary (see [`summarize`]).
    pub fn summary(&self) -> String {
        summary::summarize(self)
    }

    /// Merges another trace's threads into this one (thread ids are
    /// process-unique, so entries for the same tid are concatenated).
    pub fn merge(&mut self, other: Trace) {
        for thread in other.threads {
            if let Some(mine) = self.threads.iter_mut().find(|t| t.tid == thread.tid) {
                mine.records.extend(thread.records);
                mine.dropped += thread.dropped;
            } else {
                self.threads.push(thread);
            }
        }
        self.threads.sort_by_key(|t| t.tid);
    }
}

/// Drains every thread's buffer into a [`Trace`] and resets the overflow
/// counters. Buffers of threads that have exited are drained one last
/// time and then forgotten. Threads with nothing to report are omitted.
pub fn take() -> Trace {
    let mut registry = REGISTRY.lock().expect("trace registry lock");
    let mut threads = Vec::new();
    for buf in registry.iter() {
        let records = std::mem::take(&mut *buf.records.lock().expect("trace buffer lock"));
        let dropped = buf.dropped.swap(0, Ordering::Relaxed);
        if !records.is_empty() || dropped > 0 {
            threads.push(ThreadTrace {
                tid: buf.tid,
                name: buf.name.clone(),
                records,
                dropped,
            });
        }
    }
    // A strong count of 1 means the owning thread's TLS slot is gone —
    // the thread exited; its records were just drained, so let it go.
    registry.retain(|buf| Arc::strong_count(buf) > 1);
    drop(registry);
    threads.sort_by_key(|t| t.tid);
    Trace { threads }
}

/// Discards everything buffered so far (equivalent to dropping
/// [`take`]'s result).
pub fn clear() {
    let _ = take();
}

#[cfg(test)]
pub(crate) mod test_lock {
    use std::sync::{Mutex, MutexGuard};

    /// Tests that enable tracing serialize on this so the process-wide
    /// flag never leaks between concurrently running `#[test]` threads.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    pub fn hold() -> MutexGuard<'static, ()> {
        TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let _guard = test_lock::hold();
        disable();
        clear();
        let s = span("quiet", Category::Other);
        assert_eq!(s.id(), 0);
        record(Event::CacheAccess {
            name: "c",
            hit: true,
        });
        mark("m", Category::Other, 1.0);
        drop(s);
        assert!(take().is_empty());
    }

    #[test]
    fn span_nesting_and_point_event_attribution() {
        let _guard = test_lock::hold();
        clear();
        enable();
        let outer = span("outer", Category::Serve);
        let outer_id = outer.id();
        let inner = span("inner", Category::Solver);
        let inner_id = inner.id();
        mark("inside_inner", Category::Solver, 1.0);
        drop(inner);
        mark("inside_outer", Category::Serve, 2.0);
        drop(outer);
        mark("top_level", Category::Other, 3.0);
        disable();
        let trace = take();

        assert!(outer_id > 0 && inner_id > outer_id);
        let my_tid = std::thread::current().name().map(str::to_owned);
        let t = &trace.threads[0];
        assert_eq!(Some(t.name.clone()), my_tid);
        let spans: Vec<u64> = t.records.iter().map(|r| r.span).collect();
        // Begin(outer) Begin(inner) Mark Mark End(inner) Mark End(outer)
        // ordered: Bo Bi Mi Ei Mo Eo Mt
        assert_eq!(
            spans,
            vec![outer_id, inner_id, inner_id, inner_id, outer_id, outer_id, 0]
        );
        assert_eq!(t.records[2].event.name(), "inside_inner");
        assert_eq!(t.records[6].event.name(), "top_level");
        // Timestamps are monotonic within the thread.
        for pair in t.records.windows(2) {
            assert!(pair[0].ts_ns <= pair[1].ts_ns);
        }
    }

    #[test]
    fn buffer_overflow_drops_and_counts() {
        let _guard = test_lock::hold();
        clear();
        enable();
        for i in 0..(BUFFER_CAPACITY + 7) {
            mark("flood", Category::Other, i as f64);
        }
        disable();
        let trace = take();
        assert_eq!(trace.len(), BUFFER_CAPACITY);
        assert_eq!(trace.dropped(), 7);
        // The buffer is usable again after the drain.
        enable();
        mark("after", Category::Other, 0.0);
        disable();
        assert_eq!(take().len(), 1);
    }

    #[test]
    fn take_collects_other_threads() {
        let _guard = test_lock::hold();
        clear();
        enable();
        mark("from_main", Category::Other, 0.0);
        std::thread::Builder::new()
            .name("trace-test-worker".into())
            .spawn(|| {
                let _s = span("worker_span", Category::Other);
                mark("from_worker", Category::Other, 1.0);
            })
            .expect("spawn")
            .join()
            .expect("worker");
        disable();
        let trace = take();
        assert_eq!(trace.threads.len(), 2);
        assert_eq!(trace.len(), 4);
        let worker = trace
            .threads
            .iter()
            .find(|t| t.name == "trace-test-worker")
            .expect("worker thread present");
        assert_eq!(worker.records.len(), 3);
        // Thread ids are sorted and unique.
        assert!(trace.threads[0].tid < trace.threads[1].tid);
    }

    #[test]
    fn kernel_spans_require_both_flags() {
        let _guard = test_lock::hold();
        disable();
        disable_kernel_spans();
        clear();
        // Off by default, even with tracing enabled.
        enable();
        assert!(!kernel_spans());
        drop(span_if(kernel_spans(), "stage_x", Category::Kernel));
        assert!(take().is_empty());
        // Opted in: records while tracing is on ...
        enable_kernel_spans();
        assert!(kernel_spans());
        drop(span_if(kernel_spans(), "stage_x", Category::Kernel));
        assert_eq!(take().len(), 2);
        // ... but not once tracing itself is off.
        disable();
        assert!(!kernel_spans());
        disable_kernel_spans();
    }

    #[test]
    fn total_dropped_is_cumulative_across_drains() {
        let _guard = test_lock::hold();
        clear();
        enable();
        let before = total_dropped();
        for i in 0..(BUFFER_CAPACITY + 3) {
            mark("flood", Category::Other, i as f64);
        }
        disable();
        let trace = take();
        assert_eq!(trace.dropped(), 3, "per-drain counter sees this overflow");
        assert_eq!(
            total_dropped() - before,
            3,
            "process-lifetime counter advances with it"
        );
        // A second drain resets nothing: the cumulative count survives.
        let _ = take();
        assert_eq!(total_dropped() - before, 3);
    }

    #[test]
    fn cursor_take_since_extracts_only_the_tail() {
        let _guard = test_lock::hold();
        clear();
        enable();
        mark("before", Category::Other, 0.0);
        let cur = cursor();
        mark("after_a", Category::Other, 1.0);
        mark("after_b", Category::Other, 2.0);
        let tail = take_since(cur);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].event.name(), "after_a");
        assert_eq!(tail[1].event.name(), "after_b");
        // The prefix is still in the buffer for the global drain.
        disable();
        let trace = take();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.records().next().unwrap().event.name(), "before");
    }

    #[test]
    fn stale_cursor_after_global_drain_is_clamped() {
        let _guard = test_lock::hold();
        clear();
        enable();
        mark("a", Category::Other, 0.0);
        mark("b", Category::Other, 1.0);
        let cur = cursor();
        let _ = take(); // concurrent drain invalidates the position
        mark("c", Category::Other, 2.0);
        let tail = take_since(cur);
        // Position 2 is clamped to the buffer length (1): nothing panics,
        // and the result is at worst short, never wrong-thread data.
        assert!(tail.len() <= 1);
        disable();
        clear();
    }

    #[test]
    fn synthetic_timestamps_share_the_epoch() {
        let _guard = test_lock::hold();
        clear();
        enable();
        let before = Instant::now();
        mark("live", Category::Other, 0.0);
        let live_ts = take().records().next().unwrap().ts_ns;
        assert!(timestamp_ns(before) <= live_ts);
        assert!(fresh_span_id() > 0);
        let (tid, _name) = thread_info();
        assert!(tid > 0);
        disable();
    }

    #[test]
    fn merge_concatenates_per_thread() {
        let _guard = test_lock::hold();
        clear();
        enable();
        mark("a", Category::Other, 1.0);
        let mut first = take();
        mark("b", Category::Other, 2.0);
        let second = take();
        disable();
        first.merge(second);
        assert_eq!(first.len(), 2);
        assert_eq!(first.threads.len(), 1);
        assert_eq!(first.threads[0].records[1].event.name(), "b");
    }
}
