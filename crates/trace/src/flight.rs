//! Tail-sampling flight recorder: a bounded ring of per-request span
//! trees, retained only for requests worth a post-mortem.
//!
//! Head sampling (keep every Nth trace) is cheap but blind — the traces
//! an operator actually wants are precisely the anomalous ones. The
//! flight recorder inverts this: the serving layer captures a
//! [`cursor`](crate::cursor) when a request starts, and after the
//! request finishes it decides whether the records since the cursor are
//! interesting (slow, shed, cancelled, deadline-missed). Only then are
//! they moved into the ring; everything else is discarded without ever
//! leaving the thread-local buffer. The ring is bounded with
//! drop-oldest eviction and an eviction counter, mirroring the
//! drop-new-and-count policy of the thread buffers themselves: memory
//! is bounded, loss is visible.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::{Record, ThreadTrace, Trace};

/// Why a request's span tree was retained by the tail sampler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeepReason {
    /// Service time exceeded the configured slow threshold.
    Slow,
    /// The request missed its deadline (expired in queue or timed out
    /// inside the solver loop).
    DeadlineMissed,
    /// The request was cancelled (queued or mid-solve).
    Cancelled,
    /// The parametric data was rejected.
    Failed,
    /// The request was shed at admission or by a full queue.
    Shed,
}

impl KeepReason {
    /// Stable lowercase name used in exports and the admin plane.
    pub fn as_str(self) -> &'static str {
        match self {
            KeepReason::Slow => "slow",
            KeepReason::DeadlineMissed => "deadline_missed",
            KeepReason::Cancelled => "cancelled",
            KeepReason::Failed => "failed",
            KeepReason::Shed => "shed",
        }
    }
}

/// One retained request: its wire trace id, the keep reason, and the
/// span records captured on the thread that served it.
#[derive(Debug, Clone)]
pub struct FlightRecord {
    /// 128-bit trace id (client-supplied over the wire, or generated
    /// server-side when the client sent none).
    pub trace_id: u128,
    /// Why the tail sampler kept this request.
    pub reason: KeepReason,
    /// Trace-local id of the thread that served the request.
    pub tid: u64,
    /// Name of the thread that served the request.
    pub thread: String,
    /// The request's records, in recording order (synthetic queue-wait
    /// span first when the serving layer prepends one).
    pub records: Vec<Record>,
}

impl FlightRecord {
    /// Exports this record as a standalone Chrome trace-event JSON
    /// document (loadable in Perfetto or `chrome://tracing`).
    pub fn to_chrome_json(&self) -> String {
        let trace = Trace {
            threads: vec![ThreadTrace {
                tid: self.tid,
                name: self.thread.clone(),
                records: self.records.clone(),
                dropped: 0,
            }],
        };
        trace.to_chrome_json()
    }
}

/// A bounded ring of [`FlightRecord`]s with drop-oldest eviction and an
/// eviction counter. Shared by reference between serving workers
/// (push) and the admin plane (lookup/export).
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    ring: Mutex<VecDeque<FlightRecord>>,
    kept: AtomicU64,
    evicted: AtomicU64,
}

impl FlightRecorder {
    /// An empty recorder retaining at most `capacity` records. A
    /// capacity of 0 keeps nothing (every push counts as evicted).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity,
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            kept: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    /// The configured ring bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Retains `record`, evicting the oldest entries past the bound.
    pub fn push(&self, record: FlightRecord) {
        let mut ring = self.ring.lock().expect("flight ring lock");
        if self.capacity == 0 {
            drop(ring);
            self.evicted.fetch_add(1, Ordering::Relaxed);
            return;
        }
        while ring.len() >= self.capacity {
            ring.pop_front();
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(record);
        drop(ring);
        self.kept.fetch_add(1, Ordering::Relaxed);
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("flight ring lock").len()
    }

    /// `true` when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total records ever retained (monotonic).
    pub fn kept(&self) -> u64 {
        self.kept.load(Ordering::Relaxed)
    }

    /// Total records evicted by the ring bound (monotonic).
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// The newest retained record with `trace_id`, if any.
    pub fn lookup(&self, trace_id: u128) -> Option<FlightRecord> {
        self.ring
            .lock()
            .expect("flight ring lock")
            .iter()
            .rev()
            .find(|r| r.trace_id == trace_id)
            .cloned()
    }

    /// `(trace_id, reason, record_count)` of every retained record,
    /// oldest first.
    pub fn index(&self) -> Vec<(u128, KeepReason, usize)> {
        self.ring
            .lock()
            .expect("flight ring lock")
            .iter()
            .map(|r| (r.trace_id, r.reason, r.records.len()))
            .collect()
    }
}

/// Formats a 128-bit trace id as 32 lowercase hex digits (the wire and
/// admin-plane representation).
pub fn format_trace_id(id: u128) -> String {
    format!("{id:032x}")
}

/// Parses the 32-hex-digit representation back (case-insensitive).
/// `None` for anything of the wrong length or with non-hex digits.
pub fn parse_trace_id(s: &str) -> Option<u128> {
    if s.len() != 32 {
        return None;
    }
    u128::from_str_radix(s, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Category, Event};

    fn record_with(trace_id: u128, n: usize) -> FlightRecord {
        let span = trace_id as u64 + 1;
        let records = (0..n)
            .map(|i| Record {
                ts_ns: i as u64 * 10,
                span,
                event: if i == 0 {
                    Event::Begin {
                        name: "request",
                        cat: Category::Serve,
                    }
                } else if i == n - 1 {
                    Event::End {
                        name: "request",
                        cat: Category::Serve,
                    }
                } else {
                    Event::Mark {
                        name: "queue_wait_us",
                        cat: Category::Serve,
                        value: 42.0,
                    }
                },
            })
            .collect();
        FlightRecord {
            trace_id,
            reason: KeepReason::Slow,
            tid: 7,
            thread: "mib-serve-test-0".into(),
            records,
        }
    }

    #[test]
    fn ring_bounds_and_counts_evictions() {
        let rec = FlightRecorder::new(3);
        for id in 0..5u128 {
            rec.push(record_with(id, 3));
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.kept(), 5);
        assert_eq!(rec.evicted(), 2);
        // The two oldest are gone, the three newest remain.
        assert!(rec.lookup(0).is_none());
        assert!(rec.lookup(1).is_none());
        for id in 2..5u128 {
            assert_eq!(rec.lookup(id).expect("retained").trace_id, id);
        }
        let index = rec.index();
        assert_eq!(index.len(), 3);
        assert_eq!(index[0].0, 2);
        assert_eq!(index[2].0, 4);
    }

    #[test]
    fn zero_capacity_keeps_nothing() {
        let rec = FlightRecorder::new(0);
        rec.push(record_with(1, 2));
        assert!(rec.is_empty());
        assert_eq!(rec.kept(), 0);
        assert_eq!(rec.evicted(), 1);
    }

    #[test]
    fn chrome_export_is_valid_json() {
        let rec = record_with(0xdead_beef, 4);
        let json = rec.to_chrome_json();
        crate::validate_json(&json).expect("flight export must be valid JSON");
        assert!(json.contains("mib-serve-test-0"));
        assert!(json.contains("queue_wait_us"));
    }

    #[test]
    fn trace_id_format_round_trips() {
        for id in [0u128, 1, 0xdead_beef, u128::MAX, 1 << 127] {
            let s = format_trace_id(id);
            assert_eq!(s.len(), 32);
            assert_eq!(parse_trace_id(&s), Some(id));
            assert_eq!(parse_trace_id(&s.to_uppercase()), Some(id));
        }
        assert_eq!(parse_trace_id(""), None);
        assert_eq!(parse_trace_id("xyz"), None);
        assert_eq!(parse_trace_id(&"f".repeat(31)), None);
        assert_eq!(parse_trace_id(&"g".repeat(32)), None);
    }
}
